//! Solve a DIMACS CNF formula on the simulated quantum backends.
//!
//! Reads standard SAT-competition input from a file argument (or runs a
//! built-in pigeonhole-style instance when none is given), encodes it
//! with the repeated-variable NchooseK encoding, and solves it on the
//! simulated annealer, cross-checking classically.
//!
//! Run with: `cargo run --release --example dimacs_sat [-- file.cnf]`

use nchoosek::prelude::*;
use nck_problems::KSat;

const BUILTIN: &str = "\
c 8-variable satisfiable instance
p cnf 8 12
1 2 -3 0
-1 4 5 0
3 -4 6 0
-2 -5 7 0
-6 -7 8 0
1 -8 2 0
-3 5 -7 0
4 -6 8 0
2 3 -5 0
-1 -4 7 0
5 6 -8 0
-2 4 -7 0
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => BUILTIN.to_string(),
    };
    let sat = KSat::from_dimacs(&text).map_err(std::io::Error::other)?;
    println!("parsed {} variables, {} clauses", sat.num_vars(), sat.clauses().len());

    let program = sat.program_repeated();
    let compiled = compile(&program, &CompilerOptions::default())?;
    println!(
        "encoded: {} constraints ({} shapes) → {} QUBO variables ({} ancillas), {} terms",
        program.constraints().len(),
        program.num_nonsymmetric(),
        compiled.num_qubo_vars(),
        compiled.num_ancillas,
        compiled.qubo.num_terms(),
    );

    // Classical reference first: is it satisfiable at all?
    match run_classically(&program) {
        Ok((x, _)) => {
            assert!(sat.is_satisfying(&x[..sat.num_vars()]));
            println!("classical: SATISFIABLE");
        }
        Err(ExecError::Unsatisfiable) => {
            println!("classical: UNSATISFIABLE — skipping quantum runs");
            return Ok(());
        }
        Err(e) => return Err(e.into()),
    }

    let device = AnnealerDevice::advantage_4_1();
    let out = run_on_annealer(&program, &device, 100, 17)?;
    let solution = &out.assignment[..sat.num_vars()];
    println!("annealer: {} — formula satisfied: {}", out.quality, sat.is_satisfying(solution));
    let bits: String = solution.iter().map(|&b| if b { '1' } else { '0' }).collect();
    println!("assignment (x1..xn): {bits}");
    Ok(())
}
