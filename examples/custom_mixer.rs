//! §IX future work, implemented: the Quantum Alternating Operator
//! Ansatz with XY mixers for NchooseK's one-hot constraints.
//!
//! Map coloring's `nck(colors(v), {1})` constraints are *structural*:
//! instead of penalizing their violation in the cost Hamiltonian, an
//! XY ring mixer over each color group keeps the quantum state inside
//! the one-hot subspace for the whole evolution. Compare how much
//! probability mass each ansatz puts on valid colorings.
//!
//! Run with: `cargo run --release --example custom_mixer`

use nck_circuit::{qaoa_circuit_with_mixer, Mixer, StateVector};
use nck_compile::{compile, CompilerOptions};
use nck_problems::{Graph, MapColoring};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A triangle with 3 colors: 9 one-hot variables, 6 valid colorings.
    let problem = MapColoring::new(Graph::complete(3), 3);
    let program = problem.program();
    let compiled = compile(&program, &CompilerOptions::default())?;
    let ising = compiled.qubo.to_ising();
    let n = compiled.num_qubo_vars();
    println!(
        "map coloring K3 with 3 colors: {} variables, {} constraints",
        n,
        program.constraints().len()
    );

    let groups: Vec<Vec<usize>> =
        (0..3).map(|v| (0..3).map(|c| problem.var_index(v, c)).collect()).collect();

    let feasible_and_valid = |betas: &[f64], gammas: &[f64], mixer: &Mixer| -> (f64, f64) {
        let circuit = qaoa_circuit_with_mixer(&ising, betas, gammas, mixer);
        let mut s = StateVector::zero(n);
        s.run(&circuit);
        let mut one_hot_mass = 0.0;
        let mut valid_mass = 0.0;
        for bits in 0..1usize << n {
            let x: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            let p = s.prob(bits);
            if problem.decode(&x).is_some() {
                one_hot_mass += p;
                if problem.is_valid_coloring(&x) {
                    valid_mass += p;
                }
            }
        }
        (one_hot_mass, valid_mass)
    };

    // Sweep a small grid of angles and report the best of each ansatz.
    let mut best_tf = (0.0f64, 0.0f64);
    let mut best_xy = (0.0f64, 0.0f64);
    for bi in 1..8 {
        for gi in 1..8 {
            let (b, g) = (bi as f64 * 0.2, gi as f64 * 0.2);
            let tf = feasible_and_valid(&[b], &[g], &Mixer::TransverseField);
            if tf.1 > best_tf.1 {
                best_tf = tf;
            }
            let xy = feasible_and_valid(&[b], &[g], &Mixer::XyRings { groups: groups.clone() });
            if xy.1 > best_xy.1 {
                best_xy = xy;
            }
        }
    }
    println!("\nbest single-layer angles on a 7x7 grid:");
    println!(
        "  transverse-field mixer: {:>5.1}% one-hot, {:>5.1}% valid colorings",
        100.0 * best_tf.0,
        100.0 * best_tf.1
    );
    println!(
        "  XY ring mixer:          {:>5.1}% one-hot, {:>5.1}% valid colorings",
        100.0 * best_xy.0,
        100.0 * best_xy.1
    );
    assert!((best_xy.0 - 1.0).abs() < 1e-9, "XY mixer must keep all probability one-hot");
    assert!(best_xy.1 > best_tf.1, "XY mixer should win on valid mass");
    println!("\nthe XY ansatz never leaves the one-hot subspace, so every shot");
    println!("decodes to a coloring attempt — the paper's §IX intuition.");
    Ok(())
}
