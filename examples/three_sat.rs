//! 3-SAT — comparing the paper's two NchooseK encodings (§VI-A-f).
//!
//! The dual-rail encoding adds a negated twin per variable (`n + m`
//! constraints, 2 shapes); the repeated-variable encoding weights
//! negated literals by repetition (`m` constraints, but larger
//! collections that may need ancillas when compiled). Both are run on
//! the simulated annealer and cross-checked.
//!
//! Run with: `cargo run --release --example three_sat`

use nchoosek::prelude::*;
use nck_problems::KSat;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sat = KSat::random_3sat(9, 18, 99);
    println!(
        "3-SAT: {} variables, {} clauses (planted satisfiable)",
        sat.num_vars(),
        sat.clauses().len()
    );

    let device = AnnealerDevice::advantage_4_1();
    for (name, program) in
        [("dual-rail", sat.program_dual_rail()), ("repeated-variable", sat.program_repeated())]
    {
        let compiled = compile(&program, &CompilerOptions::default())?;
        let out = run_on_annealer(&program, &device, 100, 31)?;
        // Either encoding projects a solution onto the first n bits.
        let solution: Vec<bool> = out.assignment[..sat.num_vars()].to_vec();
        println!(
            "{name:>18}: {} constraints ({} shapes), {} QUBO vars ({} ancillas) → {} — satisfies formula: {}",
            program.constraints().len(),
            program.num_nonsymmetric(),
            compiled.num_qubo_vars(),
            compiled.num_ancillas,
            out.quality,
            sat.is_satisfying(&solution),
        );
    }
    Ok(())
}
