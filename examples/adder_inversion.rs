//! Circuit inversion with constraint idioms: run a binary adder
//! *backwards* on the simulated annealer.
//!
//! NchooseK constraints encode each logic gate of a 2-bit adder
//! (`xor_equals` / `and_equals` / `or_equals` read straight off truth
//! tables — the paper's §VI-C ease-of-construction argument). Pinning
//! the *output* sum and asking for satisfying assignments inverts the
//! circuit: which inputs produce this sum?
//!
//! Run with: `cargo run --release --example adder_inversion`

use nchoosek::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 2-bit adder: (a1 a0) + (b1 b0) = (s2 s1 s0).
    let mut p = Program::new();
    let a0 = p.new_var("a0")?;
    let a1 = p.new_var("a1")?;
    let b0 = p.new_var("b0")?;
    let b1 = p.new_var("b1")?;
    let s0 = p.new_var("s0")?;
    let s1 = p.new_var("s1")?;
    let s2 = p.new_var("s2")?;
    let c0 = p.new_var("carry0")?;
    let x1 = p.new_var("x1")?; // a1 ⊕ b1
    let g1 = p.new_var("g1")?; // a1 ∧ b1
    let t1 = p.new_var("t1")?; // x1 ∧ c0

    // Bit 0: half adder.
    p.xor_equals(a0, b0, s0)?;
    p.and_equals(a0, b0, c0)?;
    // Bit 1: full adder from two halves.
    p.xor_equals(a1, b1, x1)?;
    p.xor_equals(x1, c0, s1)?;
    p.and_equals(a1, b1, g1)?;
    p.and_equals(x1, c0, t1)?;
    p.or_equals(g1, t1, s2)?;

    // Invert: which (a, b) sum to 5 = 101₂?
    p.assign(s0, true)?;
    p.assign(s1, false)?;
    p.assign(s2, true)?;

    println!(
        "2-bit adder as {} NchooseK constraints over {} variables; output pinned to 5",
        p.constraints().len(),
        p.num_vars()
    );

    let device = AnnealerDevice::advantage_4_1();
    let out = run_on_annealer(&p, &device, 100, 21)?;
    let bit = |v: Var| u32::from(out.assignment[v.index()]);
    let a = bit(a0) + 2 * bit(a1);
    let b = bit(b0) + 2 * bit(b1);
    println!("annealer ({}) found {a} + {b} = {}", out.quality, a + b);
    assert_eq!(a + b, 5, "inverted adder must produce the pinned sum");

    // Exhaustively list every preimage classically.
    println!("\nall preimages of 5 (classical enumeration):");
    for bits in 0..16u64 {
        let mut x = vec![false; p.num_vars()];
        x[a0.index()] = bits & 1 == 1;
        x[a1.index()] = bits >> 1 & 1 == 1;
        x[b0.index()] = bits >> 2 & 1 == 1;
        x[b1.index()] = bits >> 3 & 1 == 1;
        // Complete the internal wires to their forced values.
        let (va0, va1, vb0, vb1) = (x[a0.index()], x[a1.index()], x[b0.index()], x[b1.index()]);
        x[s0.index()] = va0 ^ vb0;
        x[c0.index()] = va0 & vb0;
        x[x1.index()] = va1 ^ vb1;
        x[s1.index()] = x[x1.index()] ^ x[c0.index()];
        x[g1.index()] = va1 & vb1;
        x[t1.index()] = x[x1.index()] & x[c0.index()];
        x[s2.index()] = x[g1.index()] | x[t1.index()];
        if p.all_hard_satisfied(&x) {
            let a = u32::from(va0) + 2 * u32::from(va1);
            let b = u32::from(vb0) + 2 * u32::from(vb1);
            println!("  {a} + {b}");
        }
    }
    Ok(())
}
