//! Weighted soft constraints: shift scheduling with preferences.
//!
//! Four workers, three shifts. Hard constraints: every shift staffed by
//! exactly one worker; nobody works more than one shift. Soft
//! constraints: each worker's shift preferences, with *weights* —
//! seniority makes some preferences count more (the paper's §V remark
//! that soft scaling factors "could be chosen differently" realized as
//! integer importance weights).
//!
//! Run with: `cargo run --release --example weighted_scheduling`

use nchoosek::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workers = ["Ada", "Bea", "Cal", "Dan"];
    let shifts = ["morning", "evening", "night"];
    let mut p = Program::new();
    // x[w][s] = worker w takes shift s.
    let mut x = Vec::new();
    for w in workers {
        let mut row = Vec::new();
        for s in shifts {
            row.push(p.new_var(format!("{w}_{s}"))?);
        }
        x.push(row);
    }
    // Every shift staffed by exactly one worker.
    for s in 0..shifts.len() {
        let col: Vec<Var> = x.iter().map(|row| row[s]).collect();
        p.nck(col, [1])?;
    }
    // No worker takes two shifts.
    for row in &x {
        p.nck(row.clone(), [0, 1])?;
    }
    // Preferences, weighted by seniority: (worker, shift, weight).
    // Ada (most senior) hates nights; Bea wants mornings; Cal wants
    // nights; Dan mildly prefers evenings.
    let preferences = [
        (0usize, 2usize, 6u32, false), // Ada: NOT night (weight 6)
        (1, 0, 4, true),               // Bea: morning (weight 4)
        (2, 2, 3, true),               // Cal: night (weight 3)
        (3, 1, 1, true),               // Dan: evening (weight 1)
    ];
    for &(w, s, weight, want) in &preferences {
        p.nck_soft_weighted(vec![x[w][s]], [u32::from(want)], weight)?;
    }
    println!(
        "schedule program: {} variables, {} hard + {} soft constraints (total soft weight {})",
        p.num_vars(),
        p.num_hard(),
        p.num_soft(),
        p.total_soft_weight()
    );

    let device = AnnealerDevice::advantage_4_1();
    let out = run_on_annealer(&p, &device, 100, 33)?;
    println!(
        "annealer result: {} (satisfied weight {}/{})",
        out.quality,
        out.max_soft,
        p.total_soft_weight()
    );
    for (w, worker) in workers.iter().enumerate() {
        for (s, shift) in shifts.iter().enumerate() {
            if out.assignment[x[w][s].index()] {
                println!("  {worker}: {shift}");
            }
        }
    }
    // Sanity: Ada must not be on nights (her weight-6 preference can
    // always be honored here).
    assert!(!out.assignment[x[0][2].index()] || out.quality != SolutionQuality::Optimal);
    Ok(())
}
