//! Minimum Vertex Cover — the paper's §IV motivating example for soft
//! constraints, run end-to-end on the simulated annealer.
//!
//! Hard constraints cover every edge; soft constraints shrink the
//! cover. The backend must satisfy all hard constraints and as many
//! soft constraints as possible; the classical oracle judges the result
//! optimal / suboptimal / incorrect (Definition 8).
//!
//! Run with: `cargo run --release --example vertex_cover`

use nchoosek::prelude::*;
use nck_problems::{Graph, MinVertexCover};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Fig. 2 graph: a triangle a-b-c with a tail c-d-e.
    let graph = Graph::new(5, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)]);
    let problem = MinVertexCover::new(graph);
    let program = problem.program();
    println!(
        "minimum vertex cover: {} vertices, {} edges → {} hard + {} soft constraints ({} non-symmetric shapes)",
        problem.graph().num_vertices(),
        problem.graph().num_edges(),
        program.num_hard(),
        program.num_soft(),
        program.num_nonsymmetric(),
    );

    let device = AnnealerDevice::advantage_4_1();
    let out = run_on_annealer(&program, &device, 100, 7)?;
    let cover: Vec<usize> =
        out.assignment.iter().enumerate().filter(|(_, &b)| b).map(|(v, _)| v).collect();
    let names = ["a", "b", "c", "d", "e"];
    println!(
        "result: {} — cover {{{}}} (size {}, optimum satisfies {}/{} soft constraints)",
        out.quality,
        cover.iter().map(|&v| names[v]).collect::<Vec<_>>().join(", "),
        cover.len(),
        out.max_soft,
        program.num_soft(),
    );
    assert!(problem.is_cover(&out.assignment), "backend returned a non-cover");

    // Compare against the handcrafted QUBO of §VI-A-c: same ground
    // states, built by hand instead of by the compiler.
    let hand = problem.handcrafted_qubo();
    let generated = &out.compiled.qubo;
    println!(
        "QUBO terms: handcrafted {} vs compiler-generated {}",
        hand.num_terms(),
        generated.num_terms()
    );
    Ok(())
}
