//! Quickstart: express a constraint problem, compile it, and run it on
//! both simulated quantum backends and the classical solver.
//!
//! The problem is the paper's introductory example:
//!
//! ```text
//! nck({a, b}, {0, 1}) ∧ nck({b, c}, {1})
//! ```
//!
//! "Neither or exactly one of a and b must be TRUE, and, simultaneously,
//! exactly one of b and c must be TRUE."
//!
//! Run with: `cargo run --release --example quickstart`

use nchoosek::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the program.
    let mut p = Program::new();
    let a = p.new_var("a")?;
    let b = p.new_var("b")?;
    let c = p.new_var("c")?;
    p.nck(vec![a, b], [0, 1])?;
    p.nck(vec![b, c], [1])?;
    println!("program: {p}");

    // 2. Compile to a QUBO (what both quantum backends execute).
    let compiled = compile(&p, &CompilerOptions::default())?;
    println!(
        "compiled: {} QUBO variables ({} ancillas), {} terms, hard weight {}",
        compiled.num_qubo_vars(),
        compiled.num_ancillas,
        compiled.qubo.num_terms(),
        compiled.hard_weight
    );
    println!("qubo: {}", compiled.qubo);

    // 3. Run on the simulated D-Wave Advantage 4.1 (100 samples, as in
    //    the paper).
    let annealer = AnnealerDevice::advantage_4_1();
    let out = run_on_annealer(&p, &annealer, 100, 42)?;
    println!(
        "annealer: {} → a={} b={} c={}",
        out.quality,
        out.assignment[a.index()],
        out.assignment[b.index()],
        out.assignment[c.index()]
    );

    // 4. Run on the simulated 65-qubit IBM device via QAOA.
    let gate = GateModelDevice::ibmq_brooklyn();
    let out = run_on_gate_model(&p, &gate, 1, 4000, 40, 42)?;
    println!(
        "gate model: {} → a={} b={} c={}",
        out.quality,
        out.assignment[a.index()],
        out.assignment[b.index()],
        out.assignment[c.index()]
    );

    // 5. And classically (exact).
    let (x, _) = run_classically(&p)?;
    println!("classical:  a={} b={} c={}", x[a.index()], x[b.index()], x[c.index()]);
    assert!(p.all_hard_satisfied(&x));
    Ok(())
}
