//! Map Coloring — a hard-constraint-only NP-complete problem (§VI-A-d)
//! using the one-hot encoding, solved on the simulated annealer.
//!
//! This is the class of problem the *original* NchooseK could already
//! express (before soft constraints); it also shows the compiler
//! handling the two constraint shapes of the one-hot scheme.
//!
//! Run with: `cargo run --release --example map_coloring`

use nchoosek::prelude::*;
use nck_problems::{Graph, MapColoring};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Australia's mainland states — the classic map-coloring demo:
    // WA, NT, SA, Q, NSW, V (Tasmania is disconnected and omitted).
    let names = ["WA", "NT", "SA", "Q", "NSW", "V"];
    let edges = [
        (0, 1), // WA–NT
        (0, 2), // WA–SA
        (1, 2), // NT–SA
        (1, 3), // NT–Q
        (2, 3), // SA–Q
        (2, 4), // SA–NSW
        (2, 5), // SA–V
        (3, 4), // Q–NSW
        (4, 5), // NSW–V
    ];
    let graph = Graph::new(6, edges);
    let colors = 3;
    let problem = MapColoring::new(graph, colors);
    let program = problem.program();
    println!(
        "map coloring: {} regions, {} borders, {} colors → {} constraints over {} variables",
        names.len(),
        problem.graph().num_edges(),
        colors,
        program.constraints().len(),
        program.num_vars(),
    );

    let device = AnnealerDevice::advantage_4_1();
    let out = run_on_annealer(&program, &device, 100, 13)?;
    println!("result quality: {}", out.quality);
    match problem.decode(&out.assignment) {
        Some(coloring) => {
            let palette = ["red", "green", "blue"];
            for (region, &color) in names.iter().zip(&coloring) {
                println!("  {region}: {}", palette[color]);
            }
            assert!(problem.is_valid_coloring(&out.assignment), "adjacent regions share a color");
        }
        None => println!("  (sample was not a valid one-hot coloring)"),
    }

    // Two colors are provably insufficient (SA borders a triangle):
    // the classical solver reports unsatisfiability.
    let two = MapColoring::new(problem.graph().clone(), 2);
    match run_classically(&two.program()) {
        Err(ExecError::Unsatisfiable) => println!("2 colors: unsatisfiable, as expected"),
        other => println!("2 colors: unexpected outcome {other:?}"),
    }
    Ok(())
}
