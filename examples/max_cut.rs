//! Maximum Cut — the paper's simplest soft-only problem (§VI-A-g): one
//! soft `nck({u,v},{1})` per edge, nothing else.
//!
//! Demonstrates the all-soft path of the compiler (no hard/soft
//! weighting needed) and compares both quantum backends on the same
//! instance.
//!
//! Run with: `cargo run --release --example max_cut`

use nchoosek::prelude::*;
use nck_problems::{Graph, MaxCut};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 3-regular-ish random graph.
    let graph = Graph::random_gnm(10, 15, 2026);
    let problem = MaxCut::new(graph);
    let program = problem.program();
    println!(
        "max cut: {} vertices, {} edges → {} soft constraints, {} non-symmetric shape(s)",
        problem.graph().num_vertices(),
        problem.graph().num_edges(),
        program.num_soft(),
        program.num_nonsymmetric(),
    );

    // Classical optimum (the oracle).
    let (_, best_cut) = run_classically(&program)?;
    println!("classical optimum cuts {best_cut} edges");

    // Simulated D-Wave.
    let annealer = AnnealerDevice::advantage_4_1();
    let out = run_on_annealer(&program, &annealer, 100, 5)?;
    println!(
        "annealer:   {} — cut {} of {} edges",
        out.quality,
        problem.cut_size(&out.assignment),
        problem.graph().num_edges()
    );

    // Simulated IBM Q via QAOA.
    let gate = GateModelDevice::ibmq_brooklyn();
    let out = run_on_gate_model(&program, &gate, 1, 4000, 40, 5)?;
    println!(
        "gate model: {} — cut {} of {} edges",
        out.quality,
        problem.cut_size(&out.assignment),
        problem.graph().num_edges()
    );
    Ok(())
}
