//! Property-based tests for the exact-arithmetic substrate, checked
//! against native integer oracles.

use nck_smt::{BigInt, LinConstraint, LinExpr, LpProblem, LpResult, Rational, Relation};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn bigint_add_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let sum = &BigInt::from(a) + &BigInt::from(b);
        prop_assert_eq!(sum, BigInt::from(a as i128 + b as i128));
    }

    #[test]
    fn bigint_mul_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let prod = &BigInt::from(a) * &BigInt::from(b);
        prop_assert_eq!(prod, BigInt::from(a as i128 * b as i128));
    }

    #[test]
    fn bigint_divrem_identity(a in any::<i64>(), b in any::<i64>().prop_filter("nonzero", |&b| b != 0)) {
        let (q, r) = BigInt::from(a).divrem(&BigInt::from(b));
        // a = q·b + r with |r| < |b|
        prop_assert_eq!(&(&q * &BigInt::from(b)) + &r, BigInt::from(a));
        prop_assert!(r.abs() < BigInt::from(b).abs());
    }

    #[test]
    fn bigint_gcd_divides_both(a in any::<i32>(), b in any::<i32>()) {
        let g = BigInt::from(a as i64).gcd(&BigInt::from(b as i64));
        if !g.is_zero() {
            let (_, r1) = BigInt::from(a as i64).divrem(&g);
            let (_, r2) = BigInt::from(b as i64).divrem(&g);
            prop_assert!(r1.is_zero() && r2.is_zero());
        } else {
            prop_assert_eq!((a, b), (0, 0));
        }
    }

    #[test]
    fn bigint_ordering_matches_i64(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(BigInt::from(a).cmp(&BigInt::from(b)), a.cmp(&b));
    }

    #[test]
    fn rational_field_axioms(
        (an, ad) in (any::<i32>(), 1i32..1000),
        (bn, bd) in (any::<i32>(), 1i32..1000),
        (cn, cd) in (any::<i32>(), 1i32..1000),
    ) {
        let a = Rational::ratio(an as i64, ad as i64);
        let b = Rational::ratio(bn as i64, bd as i64);
        let c = Rational::ratio(cn as i64, cd as i64);
        // Commutativity and associativity.
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        // Distributivity.
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        // Subtraction inverts addition.
        prop_assert_eq!(&(&a + &b) - &b, a.clone());
        // Reciprocal.
        if !b.is_zero() {
            prop_assert_eq!(&(&a / &b) * &b, a);
        }
    }

    #[test]
    fn rational_ordering_consistent_with_f64(
        (an, ad) in (-1000i64..1000, 1i64..1000),
        (bn, bd) in (-1000i64..1000, 1i64..1000),
    ) {
        let a = Rational::ratio(an, ad);
        let b = Rational::ratio(bn, bd);
        let fa = an as f64 / ad as f64;
        let fb = bn as f64 / bd as f64;
        if (fa - fb).abs() > 1e-9 {
            prop_assert_eq!(a < b, fa < fb);
        }
    }

    /// Random interval systems: the LP is feasible iff the intervals
    /// intersect pairwise per variable and the witness satisfies every
    /// constraint.
    #[test]
    fn simplex_on_random_box_systems(
        bounds in prop::collection::vec((-50i64..50, -50i64..50), 1..5),
    ) {
        let n = bounds.len();
        let mut lp = LpProblem::new(n);
        let mut feasible = true;
        for (i, &(a, b)) in bounds.iter().enumerate() {
            let (lo, hi) = (a.min(b), a.max(b));
            if a > b {
                feasible = false;
                // Deliberately inverted: x ≥ a and x ≤ b with a > b.
                let (lo, hi) = (a, b);
                let mut e = LinExpr::var(i);
                e.add_constant(&Rational::from(-lo));
                lp.add(LinConstraint::new(e, Relation::Ge));
                let mut e = LinExpr::var(i);
                e.add_constant(&Rational::from(-hi));
                lp.add(LinConstraint::new(e, Relation::Le));
            } else {
                let mut e = LinExpr::var(i);
                e.add_constant(&Rational::from(-lo));
                lp.add(LinConstraint::new(e, Relation::Ge));
                let mut e = LinExpr::var(i);
                e.add_constant(&Rational::from(-hi));
                lp.add(LinConstraint::new(e, Relation::Le));
            }
        }
        match lp.feasible() {
            LpResult::Feasible(w) => {
                prop_assert!(feasible, "infeasible system declared feasible");
                for (i, &(a, b)) in bounds.iter().enumerate() {
                    let (lo, hi) = (a.min(b), a.max(b));
                    prop_assert!(w[i] >= Rational::from(lo) && w[i] <= Rational::from(hi));
                }
            }
            LpResult::Infeasible => prop_assert!(!feasible, "feasible system declared infeasible"),
        }
    }

    /// Random equality systems Ax = b with known solution x*: the
    /// simplex must find some solution (witness check), and never
    /// declare infeasibility.
    #[test]
    fn simplex_solves_consistent_equalities(
        xstar in prop::collection::vec(-20i64..20, 2..5),
        rows in prop::collection::vec(prop::collection::vec(-5i64..5, 2..5), 1..5),
    ) {
        let n = xstar.len();
        let mut lp = LpProblem::new(n);
        let mut constraints = Vec::new();
        for row in &rows {
            let mut e = LinExpr::zero();
            let mut rhs = 0i64;
            #[allow(clippy::needless_range_loop)] // xstar and row are index-coupled
            for i in 0..n {
                let c = row.get(i).copied().unwrap_or(0);
                e.add_term(i, Rational::from(c));
                rhs += c * xstar[i];
            }
            e.add_constant(&Rational::from(-rhs));
            let c = LinConstraint::new(e, Relation::Eq);
            constraints.push(c.clone());
            lp.add(c);
        }
        match lp.feasible() {
            LpResult::Feasible(w) => {
                for c in &constraints {
                    prop_assert!(c.holds(&w), "witness violates {c}");
                }
            }
            LpResult::Infeasible => prop_assert!(false, "consistent system declared infeasible"),
        }
    }
}
