//! Arbitrary-precision signed integers.
//!
//! The QUBO coefficient search runs an exact simplex whose pivots can
//! grow intermediate values well past 128 bits, so we need true big
//! integers. This is a compact sign-magnitude implementation over
//! little-endian `u64` limbs with schoolbook multiplication — the
//! matrices involved are small, so asymptotically fancy algorithms
//! would be wasted complexity.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Sign of a [`BigInt`]. Zero always carries [`Sign::Zero`], which keeps
/// equality and hashing canonical.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Strictly negative.
    Neg,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Pos,
}

impl Sign {
    fn flip(self) -> Sign {
        match self {
            Sign::Neg => Sign::Pos,
            Sign::Zero => Sign::Zero,
            Sign::Pos => Sign::Neg,
        }
    }
}

/// An arbitrary-precision signed integer.
///
/// Invariants: `mag` has no trailing zero limbs, and `mag.is_empty()`
/// iff `sign == Sign::Zero`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    mag: Vec<u64>,
}

impl BigInt {
    /// The integer 0.
    pub fn zero() -> Self {
        BigInt { sign: Sign::Zero, mag: Vec::new() }
    }

    /// The integer 1.
    pub fn one() -> Self {
        BigInt::from(1i64)
    }

    /// True iff this value is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// True iff this value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Neg
    }

    /// True iff this value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Pos
    }

    /// The sign of this value.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt {
            sign: if self.sign == Sign::Zero { Sign::Zero } else { Sign::Pos },
            mag: self.mag.clone(),
        }
    }

    fn from_mag(sign: Sign, mut mag: Vec<u64>) -> Self {
        while mag.last() == Some(&0) {
            mag.pop();
        }
        if mag.is_empty() {
            BigInt::zero()
        } else {
            debug_assert_ne!(sign, Sign::Zero);
            BigInt { sign, mag }
        }
    }

    fn cmp_mag(a: &[u64], b: &[u64]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for (x, y) in a.iter().rev().zip(b.iter().rev()) {
            match x.cmp(y) {
                Ordering::Equal => {}
                other => return other,
            }
        }
        Ordering::Equal
    }

    #[allow(clippy::needless_range_loop)] // parallel indexing of two slices
    fn add_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.len() {
            let s = short.get(i).copied().unwrap_or(0);
            let (v1, c1) = long[i].overflowing_add(s);
            let (v2, c2) = v1.overflowing_add(carry);
            out.push(v2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        out
    }

    /// `a - b`, requires `a >= b` in magnitude.
    #[allow(clippy::needless_range_loop)] // parallel indexing of two slices
    fn sub_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        debug_assert!(Self::cmp_mag(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0u64;
        for i in 0..a.len() {
            let s = b.get(i).copied().unwrap_or(0);
            let (v1, b1) = a[i].overflowing_sub(s);
            let (v2, b2) = v1.overflowing_sub(borrow);
            out.push(v2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    fn mul_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &x) in a.iter().enumerate() {
            if x == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &y) in b.iter().enumerate() {
                let cur = out[i + j] as u128 + (x as u128) * (y as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Divide magnitude by a single limb, returning (quotient, remainder).
    fn divrem_mag_limb(a: &[u64], d: u64) -> (Vec<u64>, u64) {
        debug_assert_ne!(d, 0);
        let mut q = vec![0u64; a.len()];
        let mut rem = 0u128;
        for i in (0..a.len()).rev() {
            let cur = (rem << 64) | a[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        while q.last() == Some(&0) {
            q.pop();
        }
        (q, rem as u64)
    }

    /// Magnitude division: schoolbook long division (Knuth algorithm D,
    /// simplified). Returns (quotient, remainder).
    fn divrem_mag(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
        debug_assert!(!b.is_empty(), "division by zero");
        if Self::cmp_mag(a, b) == Ordering::Less {
            return (Vec::new(), a.to_vec());
        }
        if b.len() == 1 {
            let (q, r) = Self::divrem_mag_limb(a, b[0]);
            return (q, if r == 0 { Vec::new() } else { vec![r] });
        }
        // Normalize so the divisor's top limb has its high bit set.
        let shift = b.last().unwrap().leading_zeros();
        let bn = Self::shl_bits(b, shift);
        let mut an = Self::shl_bits(a, shift);
        an.push(0); // room for the top partial remainder
        let n = bn.len();
        let m = an.len() - n - 1;
        let mut q = vec![0u64; m + 1];
        let btop = bn[n - 1] as u128;
        let bsec = bn[n - 2] as u128;
        for j in (0..=m).rev() {
            // Estimate the quotient limb.
            let num = ((an[j + n] as u128) << 64) | an[j + n - 1] as u128;
            let mut qhat = num / btop;
            let mut rhat = num % btop;
            while qhat >> 64 != 0 || qhat * bsec > ((rhat << 64) | an[j + n - 2] as u128) {
                qhat -= 1;
                rhat += btop;
                if rhat >> 64 != 0 {
                    break;
                }
            }
            // Multiply-and-subtract qhat * bn from an[j..j+n+1].
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * bn[i] as u128 + carry;
                carry = p >> 64;
                let sub = (an[j + i] as i128) - (p as u64 as i128) - borrow;
                an[j + i] = sub as u64;
                borrow = if sub < 0 { 1 } else { 0 };
            }
            let sub = (an[j + n] as i128) - (carry as i128) - borrow;
            an[j + n] = sub as u64;
            if sub < 0 {
                // qhat was one too large; add back.
                qhat -= 1;
                let mut c = 0u128;
                for i in 0..n {
                    let s = an[j + i] as u128 + bn[i] as u128 + c;
                    an[j + i] = s as u64;
                    c = s >> 64;
                }
                an[j + n] = an[j + n].wrapping_add(c as u64);
            }
            q[j] = qhat as u64;
        }
        while q.last() == Some(&0) {
            q.pop();
        }
        let mut rem = an[..n].to_vec();
        while rem.last() == Some(&0) {
            rem.pop();
        }
        let rem = Self::shr_bits(&rem, shift);
        (q, rem)
    }

    fn shl_bits(a: &[u64], bits: u32) -> Vec<u64> {
        if bits == 0 {
            return a.to_vec();
        }
        let mut out = Vec::with_capacity(a.len() + 1);
        let mut carry = 0u64;
        for &x in a {
            out.push((x << bits) | carry);
            carry = x >> (64 - bits);
        }
        if carry != 0 {
            out.push(carry);
        }
        out
    }

    fn shr_bits(a: &[u64], bits: u32) -> Vec<u64> {
        if bits == 0 {
            return a.to_vec();
        }
        let mut out = vec![0u64; a.len()];
        let mut carry = 0u64;
        for i in (0..a.len()).rev() {
            out[i] = (a[i] >> bits) | carry;
            carry = a[i] << (64 - bits);
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Truncating division with remainder (C semantics: remainder has
    /// the sign of the dividend). Panics on division by zero.
    pub fn divrem(&self, other: &BigInt) -> (BigInt, BigInt) {
        assert!(!other.is_zero(), "BigInt division by zero");
        if self.is_zero() {
            return (BigInt::zero(), BigInt::zero());
        }
        let (qm, rm) = Self::divrem_mag(&self.mag, &other.mag);
        let qsign = if qm.is_empty() {
            Sign::Zero
        } else if self.sign == other.sign {
            Sign::Pos
        } else {
            Sign::Neg
        };
        let rsign = if rm.is_empty() { Sign::Zero } else { self.sign };
        (BigInt::from_mag(qsign, qm), BigInt::from_mag(rsign, rm))
    }

    /// Greatest common divisor (always non-negative).
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        let mut a = self.abs();
        let mut b = other.abs();
        while !b.is_zero() {
            let (_, r) = a.divrem(&b);
            a = b;
            b = r.abs();
        }
        a
    }

    /// Lossy conversion to `f64` (used only for reporting, never for
    /// exact reasoning).
    pub fn to_f64(&self) -> f64 {
        let mut v = 0.0f64;
        for &limb in self.mag.iter().rev() {
            v = v * 1.8446744073709552e19 + limb as f64;
        }
        match self.sign {
            Sign::Neg => -v,
            _ => v,
        }
    }

    /// Exact conversion to `i64` if the value fits.
    pub fn to_i64(&self) -> Option<i64> {
        match self.mag.len() {
            0 => Some(0),
            1 => {
                let m = self.mag[0];
                match self.sign {
                    Sign::Pos if m <= i64::MAX as u64 => Some(m as i64),
                    Sign::Neg if m <= i64::MAX as u64 + 1 => Some((m as i64).wrapping_neg()),
                    _ => None,
                }
            }
            _ => None,
        }
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt { sign: Sign::Pos, mag: vec![v as u64] },
            Ordering::Less => BigInt { sign: Sign::Neg, mag: vec![v.unsigned_abs()] },
        }
    }
}

impl From<i32> for BigInt {
    fn from(v: i32) -> Self {
        BigInt::from(v as i64)
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        if v == 0 {
            BigInt::zero()
        } else {
            BigInt { sign: Sign::Pos, mag: vec![v] }
        }
    }
}

impl From<i128> for BigInt {
    fn from(v: i128) -> Self {
        if v == 0 {
            return BigInt::zero();
        }
        let sign = if v > 0 { Sign::Pos } else { Sign::Neg };
        let m = v.unsigned_abs();
        let lo = m as u64;
        let hi = (m >> 64) as u64;
        let mag = if hi == 0 { vec![lo] } else { vec![lo, hi] };
        BigInt { sign, mag }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        let rank = |s: Sign| match s {
            Sign::Neg => 0,
            Sign::Zero => 1,
            Sign::Pos => 2,
        };
        match rank(self.sign).cmp(&rank(other.sign)) {
            Ordering::Equal => {}
            other => return other,
        }
        match self.sign {
            Sign::Zero => Ordering::Equal,
            Sign::Pos => Self::cmp_mag(&self.mag, &other.mag),
            Sign::Neg => Self::cmp_mag(&other.mag, &self.mag),
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt { sign: self.sign.flip(), mag: self.mag }
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt { sign: self.sign.flip(), mag: self.mag.clone() }
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, other: &BigInt) -> BigInt {
        match (self.sign, other.sign) {
            (Sign::Zero, _) => other.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_mag(a, BigInt::add_mag(&self.mag, &other.mag)),
            _ => match BigInt::cmp_mag(&self.mag, &other.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => {
                    BigInt::from_mag(self.sign, BigInt::sub_mag(&self.mag, &other.mag))
                }
                Ordering::Less => {
                    BigInt::from_mag(other.sign, BigInt::sub_mag(&other.mag, &self.mag))
                }
            },
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, other: &BigInt) -> BigInt {
        self + &(-other)
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, other: &BigInt) -> BigInt {
        if self.is_zero() || other.is_zero() {
            return BigInt::zero();
        }
        let sign = if self.sign == other.sign { Sign::Pos } else { Sign::Neg };
        BigInt::from_mag(sign, BigInt::mul_mag(&self.mag, &other.mag))
    }
}

macro_rules! forward_owned_ops {
    ($($trait_:ident :: $m:ident),*) => {$(
        impl $trait_ for BigInt {
            type Output = BigInt;
            fn $m(self, other: BigInt) -> BigInt {
                (&self).$m(&other)
            }
        }
    )*};
}
forward_owned_ops!(Add::add, Sub::sub, Mul::mul);

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, other: &BigInt) {
        *self = &*self + other;
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, other: &BigInt) {
        *self = &*self - other;
    }
}

impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, other: &BigInt) {
        *self = &*self * other;
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        if self.sign == Sign::Neg {
            write!(f, "-")?;
        }
        // Repeated division by 10^19 (largest power of ten in u64).
        let mut chunks = Vec::new();
        let mut mag = self.mag.clone();
        while !mag.is_empty() {
            let (q, r) = BigInt::divrem_mag_limb(&mag, 10_000_000_000_000_000_000);
            chunks.push(r);
            mag = q;
        }
        write!(f, "{}", chunks.pop().unwrap())?;
        for c in chunks.iter().rev() {
            write!(f, "{c:019}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bi(v: i64) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn zero_is_canonical() {
        assert!(bi(0).is_zero());
        assert_eq!(bi(5) - bi(5), bi(0));
        assert_eq!(bi(-5) + bi(5), BigInt::zero());
    }

    #[test]
    fn small_arithmetic() {
        assert_eq!(bi(2) + bi(3), bi(5));
        assert_eq!(bi(2) - bi(3), bi(-1));
        assert_eq!(bi(-2) * bi(3), bi(-6));
        assert_eq!(bi(-2) * bi(-3), bi(6));
    }

    #[test]
    fn carry_across_limbs() {
        let a = BigInt::from(u64::MAX);
        let b = &a + &BigInt::one();
        assert_eq!(format!("{b}"), "18446744073709551616");
        assert_eq!(&b - &BigInt::one(), a);
    }

    #[test]
    fn multiplication_matches_i128() {
        let a = BigInt::from(123_456_789_012_345i64);
        let b = BigInt::from(987_654_321_098i64);
        let p = &a * &b;
        let expect = 123_456_789_012_345i128 * 987_654_321_098i128;
        assert_eq!(format!("{p}"), format!("{expect}"));
    }

    #[test]
    fn divrem_truncates_toward_zero() {
        let (q, r) = bi(7).divrem(&bi(2));
        assert_eq!((q, r), (bi(3), bi(1)));
        let (q, r) = bi(-7).divrem(&bi(2));
        assert_eq!((q, r), (bi(-3), bi(-1)));
        let (q, r) = bi(7).divrem(&bi(-2));
        assert_eq!((q, r), (bi(-3), bi(1)));
        let (q, r) = bi(-7).divrem(&bi(-2));
        assert_eq!((q, r), (bi(3), bi(-1)));
    }

    #[test]
    fn divrem_multi_limb() {
        // (2^130 + 12345) / (2^65 + 7)
        let two65 = &BigInt::from(1u64 << 63) * &bi(4);
        let a = &(&two65 * &two65) + &bi(12345);
        let b = &two65 + &bi(7);
        let (q, r) = a.divrem(&b);
        assert_eq!(&(&q * &b) + &r, a);
        assert!(r.abs() < b.abs());
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(bi(12).gcd(&bi(18)), bi(6));
        assert_eq!(bi(-12).gcd(&bi(18)), bi(6));
        assert_eq!(bi(0).gcd(&bi(5)), bi(5));
        assert_eq!(bi(7).gcd(&bi(0)), bi(7));
        assert_eq!(bi(17).gcd(&bi(13)), bi(1));
    }

    #[test]
    fn ordering() {
        assert!(bi(-3) < bi(-2));
        assert!(bi(-1) < bi(0));
        assert!(bi(0) < bi(1));
        assert!(bi(100) > bi(99));
        let big = &BigInt::from(u64::MAX) * &bi(10);
        assert!(big > bi(i64::MAX));
        assert!(-&big < bi(i64::MIN));
    }

    #[test]
    fn display_round_trip_large() {
        let mut v = BigInt::one();
        for _ in 0..10 {
            v = &v * &BigInt::from(1_000_000_007i64);
        }
        let s = format!("{v}");
        assert_eq!(s.len(), 91); // (10^9)^10 has 91 digits
        assert!(s.starts_with('1'));
    }

    #[test]
    fn to_i64_bounds() {
        assert_eq!(bi(i64::MAX).to_i64(), Some(i64::MAX));
        assert_eq!(bi(i64::MIN).to_i64(), Some(i64::MIN));
        let over = &bi(i64::MAX) + &BigInt::one();
        assert_eq!(over.to_i64(), None);
        assert_eq!((-&over).to_i64(), Some(i64::MIN));
    }

    #[test]
    fn to_f64_reasonable() {
        assert_eq!(bi(42).to_f64(), 42.0);
        assert_eq!(bi(-42).to_f64(), -42.0);
        let big = &BigInt::from(u64::MAX) * &BigInt::from(u64::MAX);
        let expect = (u64::MAX as f64) * (u64::MAX as f64);
        assert!((big.to_f64() / expect - 1.0).abs() < 1e-12);
    }
}
