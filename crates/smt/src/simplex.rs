//! Exact two-phase primal simplex over rationals.
//!
//! Used as the theory solver of the DPLL search in [`crate::dpll`]:
//! every node asks "is this conjunction of linear constraints over the
//! reals feasible, and if so give me a witness". Exact arithmetic with
//! Bland's anti-cycling rule makes both answers trustworthy, which is
//! what lets the QUBO compiler *prove* its coefficient tables correct.

use crate::linexpr::{LinConstraint, LinExpr, Relation};
use crate::rational::Rational;

/// Result of an LP solve.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LpResult {
    /// A witness assignment for the original (free) variables.
    Feasible(Vec<Rational>),
    /// No assignment satisfies the constraints.
    Infeasible,
}

/// A feasibility/optimization problem over `num_vars` free rational
/// variables.
#[derive(Clone, Debug, Default)]
pub struct LpProblem {
    num_vars: usize,
    constraints: Vec<LinConstraint>,
}

impl LpProblem {
    /// Create a problem over `num_vars` free variables.
    pub fn new(num_vars: usize) -> Self {
        LpProblem { num_vars, constraints: Vec::new() }
    }

    /// Number of free variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Add a constraint. Panics if it mentions a variable out of range.
    pub fn add(&mut self, c: LinConstraint) {
        if let Some(m) = c.expr.max_var() {
            assert!(m < self.num_vars, "constraint mentions variable {m} out of range");
        }
        self.constraints.push(c);
    }

    /// Solve for feasibility. Returns a witness on success.
    pub fn feasible(&self) -> LpResult {
        match Tableau::build(self).phase1() {
            Phase1::Feasible(t) => LpResult::Feasible(t.witness()),
            Phase1::Infeasible => LpResult::Infeasible,
        }
    }

    /// Minimize a linear `objective` subject to the constraints.
    /// Returns an optimal witness; on an unbounded objective, returns
    /// the current feasible witness (callers here only minimize
    /// norm-like objectives that are bounded below).
    pub fn minimize(&self, objective: &LinExpr) -> LpResult {
        if let Some(m) = objective.max_var() {
            assert!(m < self.num_vars, "objective mentions variable {m} out of range");
        }
        match Tableau::build(self).phase1() {
            Phase1::Feasible(mut t) => {
                t.phase2(objective);
                LpResult::Feasible(t.witness())
            }
            Phase1::Infeasible => LpResult::Infeasible,
        }
    }
}

/// Internal phase-1 outcome.
enum Phase1 {
    Feasible(Tableau),
    Infeasible,
}

/// Dense simplex tableau. Free variables are split `x = p − n` with
/// `p, n ≥ 0`; every row gets an artificial variable for phase 1.
struct Tableau {
    /// rows[r] has `ncols` structural coefficients followed by the rhs.
    rows: Vec<Vec<Rational>>,
    /// Column index that is basic in each row.
    basis: Vec<usize>,
    /// Total structural columns (split vars + slacks + artificials).
    ncols: usize,
    /// First artificial column index.
    art_start: usize,
    /// Number of original free variables.
    num_free: usize,
}

impl Tableau {
    fn build(p: &LpProblem) -> Tableau {
        let nv = p.num_vars;
        let m = p.constraints.len();
        // Columns: [p0..p(nv-1) | n0..n(nv-1) | slacks | artificials]
        let nslack = p.constraints.iter().filter(|c| c.rel != Relation::Eq).count();
        let art_start = 2 * nv + nslack;
        let ncols = art_start + m;
        let mut rows = Vec::with_capacity(m);
        let mut basis = Vec::with_capacity(m);
        let mut slack_idx = 2 * nv;
        for (r, c) in p.constraints.iter().enumerate() {
            let mut row = vec![Rational::zero(); ncols + 1];
            for (x, coeff) in c.expr.terms() {
                row[x] = coeff.clone();
                row[nv + x] = -coeff;
            }
            // expr (rel) 0  =>  Σ a·x (rel) −constant
            let mut rhs = -c.expr.constant_part();
            match c.rel {
                Relation::Le => {
                    row[slack_idx] = Rational::one();
                    slack_idx += 1;
                }
                Relation::Ge => {
                    row[slack_idx] = -Rational::one();
                    slack_idx += 1;
                }
                Relation::Eq => {}
            }
            if rhs.is_negative() {
                for v in row.iter_mut() {
                    *v = -&*v;
                }
                rhs = -rhs;
            }
            row[ncols] = rhs;
            row[art_start + r] = Rational::one();
            rows.push(row);
            basis.push(art_start + r);
        }
        Tableau { rows, basis, ncols, art_start, num_free: nv }
    }

    /// Phase-1 simplex: minimize the sum of artificial variables.
    #[allow(clippy::needless_range_loop)] // tableau columns are index-coupled
    fn phase1(mut self) -> Phase1 {
        // Reduced-cost row for cost vector c (1 on artificials, 0 else),
        // relative to the artificial basis: z[j] = c[j] − Σ_r rows[r][j].
        let mut z = vec![Rational::zero(); self.ncols + 1];
        for j in 0..=self.ncols {
            let mut s = Rational::zero();
            for row in &self.rows {
                s += &row[j];
            }
            z[j] = -s;
        }
        for j in self.art_start..self.ncols {
            z[j] += &Rational::one();
        }
        loop {
            // Bland's rule: entering column = lowest index with z < 0.
            let entering = (0..self.ncols).find(|&j| z[j].is_negative());
            let Some(e) = entering else { break };
            // Ratio test, Bland tie-break on lowest basis index.
            let mut pivot_row: Option<usize> = None;
            let mut best: Option<Rational> = None;
            for r in 0..self.rows.len() {
                if !self.rows[r][e].is_positive() {
                    continue;
                }
                let ratio = &self.rows[r][self.ncols] / &self.rows[r][e];
                let better = match &best {
                    None => true,
                    Some(b) => {
                        ratio < *b
                            || (ratio == *b && self.basis[r] < self.basis[pivot_row.unwrap()])
                    }
                };
                if better {
                    best = Some(ratio);
                    pivot_row = Some(r);
                }
            }
            let Some(pr) = pivot_row else {
                // Unbounded phase-1 objective cannot happen (bounded below
                // by 0); defensively treat as infeasible.
                return Phase1::Infeasible;
            };
            self.pivot(pr, e, &mut z);
        }
        // Objective value = −z[rhs] by our convention: z[ncols] currently
        // holds −Σ rhs adjusted through pivots; the phase-1 optimum is
        // reached, so check whether any artificial remains at a positive
        // level.
        for r in 0..self.rows.len() {
            if self.basis[r] >= self.art_start && self.rows[r][self.ncols].is_positive() {
                return Phase1::Infeasible;
            }
        }
        Phase1::Feasible(self)
    }

    /// Phase-2 simplex: minimize `objective` from the phase-1 feasible
    /// basis, never letting artificial variables re-enter. Stops at
    /// optimality or (defensively) on an unbounded direction.
    #[allow(clippy::needless_range_loop)] // tableau columns are index-coupled
    fn phase2(&mut self, objective: &LinExpr) {
        // Cost vector over the split representation: c[p_i] = obj_i,
        // c[n_i] = −obj_i, slacks 0, artificials barred.
        let mut cost = vec![Rational::zero(); self.ncols + 1];
        for (x, coeff) in objective.terms() {
            cost[x] = coeff.clone();
            cost[self.num_free + x] = -coeff;
        }
        // Reduced costs: z[j] = c[j] − Σ_r c[basis_r]·rows[r][j].
        let mut z = cost.clone();
        for r in 0..self.rows.len() {
            let cb = cost[self.basis[r]].clone();
            if cb.is_zero() {
                continue;
            }
            for j in 0..=self.ncols {
                let adj = &cb * &self.rows[r][j];
                z[j] -= &adj;
            }
        }
        loop {
            let entering = (0..self.art_start).find(|&j| z[j].is_negative());
            let Some(e) = entering else { break };
            let mut pivot_row: Option<usize> = None;
            let mut best: Option<Rational> = None;
            for r in 0..self.rows.len() {
                if !self.rows[r][e].is_positive() {
                    continue;
                }
                let ratio = &self.rows[r][self.ncols] / &self.rows[r][e];
                let better = match &best {
                    None => true,
                    Some(b) => {
                        ratio < *b
                            || (ratio == *b && self.basis[r] < self.basis[pivot_row.unwrap()])
                    }
                };
                if better {
                    best = Some(ratio);
                    pivot_row = Some(r);
                }
            }
            let Some(pr) = pivot_row else {
                break; // unbounded direction: keep the current vertex
            };
            self.pivot(pr, e, &mut z);
        }
    }

    /// Extract the witness `x = p − n` from the current basis.
    fn witness(&self) -> Vec<Rational> {
        let mut vals = vec![Rational::zero(); 2 * self.num_free];
        for r in 0..self.rows.len() {
            let b = self.basis[r];
            if b < 2 * self.num_free {
                vals[b] = self.rows[r][self.ncols].clone();
            }
        }
        (0..self.num_free).map(|i| &vals[i] - &vals[self.num_free + i]).collect()
    }

    fn pivot(&mut self, pr: usize, pc: usize, z: &mut [Rational]) {
        let inv = self.rows[pr][pc].recip();
        for v in self.rows[pr].iter_mut() {
            *v = &*v * &inv;
        }
        let pivot_row = self.rows[pr].clone();
        for (r, row) in self.rows.iter_mut().enumerate() {
            if r == pr || row[pc].is_zero() {
                continue;
            }
            let factor = row[pc].clone();
            for (v, pv) in row.iter_mut().zip(&pivot_row) {
                *v = &*v - &(&factor * pv);
            }
        }
        if !z[pc].is_zero() {
            let factor = z[pc].clone();
            for (v, pv) in z.iter_mut().zip(&pivot_row) {
                *v = &*v - &(&factor * pv);
            }
        }
        self.basis[pr] = pc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linexpr::LinExpr;

    fn r(n: i64, d: i64) -> Rational {
        Rational::ratio(n, d)
    }

    /// Build `Σ coeffs·x + c (rel) 0`.
    fn con(coeffs: &[(usize, i64)], c: i64, rel: Relation) -> LinConstraint {
        let mut e = LinExpr::constant(r(c, 1));
        for &(x, co) in coeffs {
            e.add_term(x, r(co, 1));
        }
        LinConstraint::new(e, rel)
    }

    fn check_witness(p: &LpProblem) -> Vec<Rational> {
        match p.feasible() {
            LpResult::Feasible(w) => {
                for (i, c) in (0..p.num_constraints()).zip(p.constraints.iter()) {
                    assert!(c.holds(&w), "constraint {i} ({c}) violated by witness {w:?}");
                }
                w
            }
            LpResult::Infeasible => panic!("expected feasible"),
        }
    }

    #[test]
    fn trivial_feasible() {
        let p = LpProblem::new(1);
        check_witness(&p);
    }

    #[test]
    fn single_equality() {
        let mut p = LpProblem::new(1);
        p.add(con(&[(0, 2)], -6, Relation::Eq)); // 2x = 6
        let w = check_witness(&p);
        assert_eq!(w[0], r(3, 1));
    }

    #[test]
    fn negative_solution_found() {
        let mut p = LpProblem::new(1);
        p.add(con(&[(0, 1)], 5, Relation::Le)); // x <= -5
        let w = check_witness(&p);
        assert!(w[0] <= r(-5, 1));
    }

    #[test]
    fn system_of_equalities() {
        // x + y = 10, x - y = 4  =>  x = 7, y = 3
        let mut p = LpProblem::new(2);
        p.add(con(&[(0, 1), (1, 1)], -10, Relation::Eq));
        p.add(con(&[(0, 1), (1, -1)], -4, Relation::Eq));
        let w = check_witness(&p);
        assert_eq!(w, vec![r(7, 1), r(3, 1)]);
    }

    #[test]
    fn infeasible_equalities() {
        let mut p = LpProblem::new(1);
        p.add(con(&[(0, 1)], -1, Relation::Eq)); // x = 1
        p.add(con(&[(0, 1)], -2, Relation::Eq)); // x = 2
        assert_eq!(p.feasible(), LpResult::Infeasible);
    }

    #[test]
    fn infeasible_inequalities() {
        let mut p = LpProblem::new(1);
        p.add(con(&[(0, 1)], -3, Relation::Ge)); // x >= 3
        p.add(con(&[(0, 1)], -2, Relation::Le)); // x <= 2
        assert_eq!(p.feasible(), LpResult::Infeasible);
    }

    #[test]
    fn inequality_band() {
        let mut p = LpProblem::new(2);
        p.add(con(&[(0, 1), (1, 1)], -2, Relation::Ge)); // x + y >= 2
        p.add(con(&[(0, 1)], 0, Relation::Le)); // x <= 0
        p.add(con(&[(1, 1)], -3, Relation::Le)); // y <= 3
        check_witness(&p);
    }

    #[test]
    fn rational_coefficients() {
        // x/2 + y/3 = 1, x = y  => x = y = 6/5
        let mut p = LpProblem::new(2);
        let mut e = LinExpr::constant(r(-1, 1));
        e.add_term(0, r(1, 2));
        e.add_term(1, r(1, 3));
        p.add(LinConstraint::new(e, Relation::Eq));
        p.add(con(&[(0, 1), (1, -1)], 0, Relation::Eq));
        let w = check_witness(&p);
        assert_eq!(w[0], r(6, 5));
        assert_eq!(w[1], r(6, 5));
    }

    #[test]
    fn redundant_constraints_ok() {
        let mut p = LpProblem::new(1);
        for _ in 0..5 {
            p.add(con(&[(0, 1)], -1, Relation::Eq)); // x = 1, five times
        }
        let w = check_witness(&p);
        assert_eq!(w[0], r(1, 1));
    }

    #[test]
    fn degenerate_does_not_cycle() {
        // A classically degenerate system; Bland's rule must terminate.
        let mut p = LpProblem::new(3);
        p.add(con(&[(0, 1), (1, -1)], 0, Relation::Le));
        p.add(con(&[(1, 1), (2, -1)], 0, Relation::Le));
        p.add(con(&[(2, 1), (0, -1)], 0, Relation::Le));
        p.add(con(&[(0, 1), (1, 1), (2, 1)], -3, Relation::Eq));
        let w = check_witness(&p);
        assert_eq!(&(&(&w[0] + &w[1]) + &w[2]), &r(3, 1));
    }

    #[test]
    fn minimize_simple_objective() {
        // x ≥ 3, minimize x  =>  x = 3.
        let mut p = LpProblem::new(1);
        p.add(con(&[(0, 1)], 3, Relation::Ge)); // wrong sign check below
                                                // expr = x + 3 ≥ 0 means x ≥ −3; build properly: x − 3 ≥ 0
        let mut p = LpProblem::new(1);
        p.add(con(&[(0, 1)], -3, Relation::Ge));
        match p.minimize(&LinExpr::var(0)) {
            LpResult::Feasible(w) => assert_eq!(w[0], r(3, 1)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn minimize_l1_norm_with_aux() {
        // Find x with x0 + x1 = 2 minimizing |x0| + |x1| via aux vars
        // t_i ≥ ±x_i: optimum value 2 (any split), each |x_i| = t_i.
        let mut p = LpProblem::new(4); // x0, x1, t0, t1
        p.add(con(&[(0, 1), (1, 1)], -2, Relation::Eq));
        for i in 0..2 {
            p.add(con(&[(2 + i, 1), (i, -1)], 0, Relation::Ge)); // t ≥ x
            p.add(con(&[(2 + i, 1), (i, 1)], 0, Relation::Ge)); // t ≥ −x
        }
        let mut obj = LinExpr::var(2);
        obj.add_term(3, r(1, 1));
        match p.minimize(&obj) {
            LpResult::Feasible(w) => {
                let l1 = &w[2] + &w[3];
                assert_eq!(l1, r(2, 1), "L1 optimum is 2, got {l1} at {w:?}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn minimize_on_infeasible_reports_infeasible() {
        let mut p = LpProblem::new(1);
        p.add(con(&[(0, 1)], -3, Relation::Ge));
        p.add(con(&[(0, 1)], 2, Relation::Le));
        assert_eq!(p.minimize(&LinExpr::var(0)), LpResult::Infeasible);
    }

    #[test]
    fn minimize_negative_region() {
        // x ≤ −1, x ≥ −5: minimize −x  =>  x = −5... minimize x => −5.
        let mut p = LpProblem::new(1);
        p.add(con(&[(0, 1)], 1, Relation::Le));
        p.add(con(&[(0, 1)], 5, Relation::Ge));
        match p.minimize(&LinExpr::var(0)) {
            LpResult::Feasible(w) => assert_eq!(w[0], r(-5, 1)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn many_vars_feasible() {
        // Chain x0 <= x1 <= ... <= x9, x9 <= -1, x0 >= -100
        let mut p = LpProblem::new(10);
        for i in 0..9 {
            p.add(con(&[(i, 1), (i + 1, -1)], 0, Relation::Le));
        }
        p.add(con(&[(9, 1)], 1, Relation::Le));
        p.add(con(&[(0, 1)], 100, Relation::Ge));
        let w = check_witness(&p);
        assert!(w[9] <= r(-1, 1));
    }
}
