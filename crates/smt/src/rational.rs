//! Exact rational numbers over [`BigInt`].
//!
//! Values are kept normalized: the denominator is strictly positive and
//! `gcd(num, den) == 1`, so equality and hashing are structural.

use crate::bigint::BigInt;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    num: BigInt,
    den: BigInt, // invariant: den > 0, gcd(num, den) == 1
}

impl Rational {
    /// The rational 0.
    pub fn zero() -> Self {
        Rational { num: BigInt::zero(), den: BigInt::one() }
    }

    /// The rational 1.
    pub fn one() -> Self {
        Rational { num: BigInt::one(), den: BigInt::one() }
    }

    /// Construct `num / den`, normalizing. Panics if `den == 0`.
    pub fn new(num: BigInt, den: BigInt) -> Self {
        assert!(!den.is_zero(), "Rational with zero denominator");
        let (num, den) = if den.is_negative() { (-num, -den) } else { (num, den) };
        let g = num.gcd(&den);
        if g.is_zero() {
            return Rational::zero();
        }
        let (num, _) = num.divrem(&g);
        let (den, _) = den.divrem(&g);
        Rational { num, den }
    }

    /// Construct from an integer ratio.
    pub fn ratio(num: i64, den: i64) -> Self {
        Rational::new(BigInt::from(num), BigInt::from(den))
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// True iff exactly zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// True iff strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// True iff strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// True iff the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == BigInt::one()
    }

    /// Multiplicative inverse. Panics on zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rational::new(self.den.clone(), self.num.clone())
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational { num: self.num.abs(), den: self.den.clone() }
    }

    /// Lossy conversion to `f64` for reporting.
    pub fn to_f64(&self) -> f64 {
        self.num.to_f64() / self.den.to_f64()
    }

    /// Exact integer value if this rational is an integer that fits in `i64`.
    pub fn to_i64(&self) -> Option<i64> {
        if self.is_integer() {
            self.num.to_i64()
        } else {
            None
        }
    }

    /// Round toward negative infinity to the nearest integer.
    pub fn floor(&self) -> BigInt {
        let (q, r) = self.num.divrem(&self.den);
        if r.is_negative() {
            &q - &BigInt::one()
        } else {
            q
        }
    }

    /// Round toward positive infinity to the nearest integer.
    pub fn ceil(&self) -> BigInt {
        let (q, r) = self.num.divrem(&self.den);
        if r.is_positive() {
            &q + &BigInt::one()
        } else {
            q
        }
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational { num: BigInt::from(v), den: BigInt::one() }
    }
}

impl From<i32> for Rational {
    fn from(v: i32) -> Self {
        Rational::from(v as i64)
    }
}

impl From<BigInt> for Rational {
    fn from(v: BigInt) -> Self {
        Rational { num: v, den: BigInt::one() }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d  <=>  a*d vs c*b   (b, d > 0)
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl Add for &Rational {
    type Output = Rational;
    fn add(self, other: &Rational) -> Rational {
        Rational::new(&(&self.num * &other.den) + &(&other.num * &self.den), &self.den * &other.den)
    }
}

impl Sub for &Rational {
    type Output = Rational;
    fn sub(self, other: &Rational) -> Rational {
        Rational::new(&(&self.num * &other.den) - &(&other.num * &self.den), &self.den * &other.den)
    }
}

impl Mul for &Rational {
    type Output = Rational;
    fn mul(self, other: &Rational) -> Rational {
        Rational::new(&self.num * &other.num, &self.den * &other.den)
    }
}

impl Div for &Rational {
    type Output = Rational;
    fn div(self, other: &Rational) -> Rational {
        assert!(!other.is_zero(), "Rational division by zero");
        Rational::new(&self.num * &other.den, &self.den * &other.num)
    }
}

macro_rules! forward_owned_ops {
    ($($trait_:ident :: $m:ident),*) => {$(
        impl $trait_ for Rational {
            type Output = Rational;
            fn $m(self, other: Rational) -> Rational {
                (&self).$m(&other)
            }
        }
    )*};
}
forward_owned_ops!(Add::add, Sub::sub, Mul::mul, Div::div);

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational { num: -self.num, den: self.den }
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational { num: -&self.num, den: self.den.clone() }
    }
}

impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, other: &Rational) {
        *self = &*self + other;
    }
}

impl SubAssign<&Rational> for Rational {
    fn sub_assign(&mut self, other: &Rational) {
        *self = &*self - other;
    }
}

impl MulAssign<&Rational> for Rational {
    fn mul_assign(&mut self, other: &Rational) {
        *self = &*self * other;
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_integer() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::ratio(n, d)
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 7), Rational::zero());
        assert!(r(2, -4).is_negative());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = r(1, 0);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(&r(1, 2) + &r(1, 3), r(5, 6));
        assert_eq!(&r(1, 2) - &r(1, 3), r(1, 6));
        assert_eq!(&r(2, 3) * &r(3, 4), r(1, 2));
        assert_eq!(&r(2, 3) / &r(4, 3), r(1, 2));
        assert_eq!(-r(1, 2), r(-1, 2));
    }

    #[test]
    fn comparison() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(7, 7) == Rational::one());
        assert!(r(-5, 3) < Rational::zero());
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(r(7, 2).floor(), BigInt::from(3i64));
        assert_eq!(r(7, 2).ceil(), BigInt::from(4i64));
        assert_eq!(r(-7, 2).floor(), BigInt::from(-4i64));
        assert_eq!(r(-7, 2).ceil(), BigInt::from(-3i64));
        assert_eq!(r(6, 2).floor(), BigInt::from(3i64));
        assert_eq!(r(6, 2).ceil(), BigInt::from(3i64));
    }

    #[test]
    fn recip_and_integer_checks() {
        assert_eq!(r(3, 4).recip(), r(4, 3));
        assert!(r(4, 2).is_integer());
        assert_eq!(r(4, 2).to_i64(), Some(2));
        assert_eq!(r(1, 2).to_i64(), None);
    }

    #[test]
    fn to_f64() {
        assert_eq!(r(1, 2).to_f64(), 0.5);
        assert_eq!(r(-3, 4).to_f64(), -0.75);
    }
}
