//! # nck-smt
//!
//! Exact arithmetic and a small satisfiability-modulo-linear-arithmetic
//! solver. This crate is the substrate that replaces the Z3 SMT solver
//! in the NchooseK paper's QUBO compiler: per-constraint QUBO
//! coefficients are found by solving a system of exact linear
//! (in)equalities with disjunctions over ancilla-variable settings.
//!
//! Layers, bottom to top:
//!
//! * [`bigint::BigInt`] — arbitrary-precision signed integers.
//! * [`rational::Rational`] — normalized exact rationals.
//! * [`linexpr`] — linear expressions and constraints over rational
//!   variables.
//! * [`simplex`] — exact two-phase primal simplex (Bland's rule), used
//!   for feasibility with witness extraction.
//! * [`dpll`] — depth-first search over disjunction groups with the
//!   simplex as theory oracle (a miniature DPLL(LRA)).
//!
//! All reasoning is exact; `f64` appears only in lossy reporting
//! conversions.

#![warn(missing_docs)]

pub mod bigint;
pub mod dpll;
pub mod linexpr;
pub mod rational;
pub mod simplex;

pub use bigint::BigInt;
pub use dpll::{DisjunctiveProblem, SearchStats};
pub use linexpr::{LinConstraint, LinExpr, Relation};
pub use rational::Rational;
pub use simplex::{LpProblem, LpResult};
