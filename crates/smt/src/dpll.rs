//! DPLL-style search over disjunctions of linear-arithmetic constraints.
//!
//! The QUBO coefficient search needs formulas of the shape
//!
//! ```text
//! (conjunction of linear constraints)
//!   ∧  ⋀_groups ( alt₁ ∨ alt₂ ∨ … )     where each altᵢ is a conjunction
//! ```
//!
//! — "for every satisfying assignment, *some* ancilla setting attains the
//! ground energy". This is the QF_LRA fragment Z3 solves for the paper's
//! compiler. We solve it with a depth-first search over one alternative
//! per group, using the exact simplex ([`crate::simplex`]) as the theory
//! oracle at every node, with witness-guided alternative ordering.

use crate::linexpr::{LinConstraint, LinExpr};
use crate::rational::Rational;
use crate::simplex::{LpProblem, LpResult};

/// A conjunction of linear constraints plus disjunction groups, each of
/// which must have at least one satisfied alternative.
#[derive(Clone, Debug, Default)]
pub struct DisjunctiveProblem {
    num_vars: usize,
    hard: Vec<LinConstraint>,
    groups: Vec<Vec<Vec<LinConstraint>>>,
}

/// Search statistics for reporting and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Number of LP feasibility checks performed.
    pub lp_calls: u64,
    /// Number of branches abandoned as infeasible.
    pub backtracks: u64,
}

impl DisjunctiveProblem {
    /// Create a problem over `num_vars` free rational variables.
    pub fn new(num_vars: usize) -> Self {
        DisjunctiveProblem { num_vars, hard: Vec::new(), groups: Vec::new() }
    }

    /// Number of free variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Add a constraint that must always hold.
    pub fn require(&mut self, c: LinConstraint) {
        self.hard.push(c);
    }

    /// Add a disjunction group: at least one alternative (a conjunction
    /// of constraints) must hold. An empty alternative list makes the
    /// problem unsatisfiable; an empty alternative is trivially true.
    pub fn require_any(&mut self, alternatives: Vec<Vec<LinConstraint>>) {
        self.groups.push(alternatives);
    }

    /// Solve; returns a witness assignment if satisfiable.
    pub fn solve(&self) -> Option<Vec<Rational>> {
        self.solve_with_stats().0
    }

    /// Solve, then polish the witness by minimizing `objective` within
    /// the satisfied branch (the chosen alternatives are kept fixed;
    /// this is a local optimum across branches, which is what the QUBO
    /// compiler wants — any valid table, with small coefficients).
    pub fn solve_minimizing(&self, objective: &LinExpr) -> Option<Vec<Rational>> {
        let mut stats = SearchStats::default();
        let root = self.check(&[], &mut stats)?;
        let mut order: Vec<usize> = (0..self.groups.len()).collect();
        order.sort_by_key(|&g| self.groups[g].len());
        let mut branch: Vec<(usize, usize)> = Vec::with_capacity(order.len());
        if !self.search_recording(&order, 0, &mut branch, root, &mut stats) {
            return None;
        }
        let mut lp = LpProblem::new(self.num_vars);
        for c in &self.hard {
            lp.add(c.clone());
        }
        for &(g, a) in &branch {
            for c in &self.groups[g][a] {
                lp.add(c.clone());
            }
        }
        match lp.minimize(objective) {
            LpResult::Feasible(w) => Some(w),
            LpResult::Infeasible => None,
        }
    }

    /// Like `search`, but leaves the winning branch in `chosen` and
    /// returns success instead of the witness.
    fn search_recording(
        &self,
        order: &[usize],
        depth: usize,
        chosen: &mut Vec<(usize, usize)>,
        witness: Vec<Rational>,
        stats: &mut SearchStats,
    ) -> bool {
        if depth == order.len() {
            return true;
        }
        let g = order[depth];
        let alts = &self.groups[g];
        let mut alt_order: Vec<usize> = (0..alts.len()).collect();
        alt_order.sort_by_key(|&a| {
            let sat = alts[a].iter().all(|c| c.holds(&witness));
            usize::from(!sat)
        });
        for a in alt_order {
            chosen.push((g, a));
            if let Some(w) = self.check(chosen, stats) {
                if self.search_recording(order, depth + 1, chosen, w, stats) {
                    return true;
                }
            } else {
                stats.backtracks += 1;
            }
            chosen.pop();
        }
        false
    }

    /// Solve, also returning search statistics.
    pub fn solve_with_stats(&self) -> (Option<Vec<Rational>>, SearchStats) {
        let mut stats = SearchStats::default();
        // Root feasibility on the hard constraints alone.
        let Some(witness) = self.check(&[], &mut stats) else {
            stats.backtracks += 1;
            return (None, stats);
        };
        // Branch on groups with the fewest alternatives first: smaller
        // fan-out near the root keeps the tree narrow.
        let mut order: Vec<usize> = (0..self.groups.len()).collect();
        order.sort_by_key(|&g| self.groups[g].len());
        let mut chosen: Vec<(usize, usize)> = Vec::with_capacity(order.len());
        let result = self.search(&order, 0, &mut chosen, witness, &mut stats);
        (result, stats)
    }

    fn search(
        &self,
        order: &[usize],
        depth: usize,
        chosen: &mut Vec<(usize, usize)>,
        witness: Vec<Rational>,
        stats: &mut SearchStats,
    ) -> Option<Vec<Rational>> {
        if depth == order.len() {
            return Some(witness);
        }
        let g = order[depth];
        let alts = &self.groups[g];
        // Witness guidance: try alternatives the current witness already
        // satisfies first — they are very likely to stay feasible.
        let mut alt_order: Vec<usize> = (0..alts.len()).collect();
        alt_order.sort_by_key(|&a| {
            let sat = alts[a].iter().all(|c| c.holds(&witness));
            usize::from(!sat)
        });
        for a in alt_order {
            chosen.push((g, a));
            if let Some(w) = self.check(chosen, stats) {
                if let Some(res) = self.search(order, depth + 1, chosen, w, stats) {
                    return Some(res);
                }
            } else {
                stats.backtracks += 1;
            }
            chosen.pop();
        }
        None
    }

    /// LP feasibility of hard constraints plus the chosen alternatives.
    fn check(&self, chosen: &[(usize, usize)], stats: &mut SearchStats) -> Option<Vec<Rational>> {
        stats.lp_calls += 1;
        let mut lp = LpProblem::new(self.num_vars);
        for c in &self.hard {
            lp.add(c.clone());
        }
        for &(g, a) in chosen {
            for c in &self.groups[g][a] {
                lp.add(c.clone());
            }
        }
        match lp.feasible() {
            LpResult::Feasible(w) => Some(w),
            LpResult::Infeasible => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linexpr::{LinExpr, Relation};

    fn r(n: i64) -> Rational {
        Rational::from(n)
    }

    /// `Σ coeffs·x + c (rel) 0`
    fn con(coeffs: &[(usize, i64)], c: i64, rel: Relation) -> LinConstraint {
        let mut e = LinExpr::constant(r(c));
        for &(x, co) in coeffs {
            e.add_term(x, r(co));
        }
        LinConstraint::new(e, rel)
    }

    #[test]
    fn no_groups_is_plain_lp() {
        let mut p = DisjunctiveProblem::new(1);
        p.require(con(&[(0, 1)], -2, Relation::Eq)); // x = 2
        let w = p.solve().unwrap();
        assert_eq!(w[0], r(2));
    }

    #[test]
    fn picks_feasible_alternative() {
        let mut p = DisjunctiveProblem::new(1);
        p.require(con(&[(0, 1)], -1, Relation::Ge)); // x >= 1
                                                     // x = 0  OR  x = 5
        p.require_any(vec![
            vec![con(&[(0, 1)], 0, Relation::Eq)],
            vec![con(&[(0, 1)], -5, Relation::Eq)],
        ]);
        let w = p.solve().unwrap();
        assert_eq!(w[0], r(5));
    }

    #[test]
    fn unsat_when_all_alternatives_conflict() {
        let mut p = DisjunctiveProblem::new(1);
        p.require(con(&[(0, 1)], -10, Relation::Ge)); // x >= 10
        p.require_any(vec![
            vec![con(&[(0, 1)], 0, Relation::Eq)],
            vec![con(&[(0, 1)], -5, Relation::Eq)],
        ]);
        assert_eq!(p.solve(), None);
    }

    #[test]
    fn empty_alternative_list_is_unsat() {
        let mut p = DisjunctiveProblem::new(1);
        p.require_any(vec![]);
        assert_eq!(p.solve(), None);
    }

    #[test]
    fn empty_alternative_is_trivially_true() {
        let mut p = DisjunctiveProblem::new(1);
        p.require(con(&[(0, 1)], -3, Relation::Eq));
        p.require_any(vec![vec![]]);
        let w = p.solve().unwrap();
        assert_eq!(w[0], r(3));
    }

    #[test]
    fn cross_group_interaction_requires_backtracking() {
        // x in {0, 5} and x in {5, 9}, plus x >= 1  =>  x = 5.
        // Witness guidance may first try x = 0 in group 1; the search
        // must backtrack through group choices to find the intersection.
        let mut p = DisjunctiveProblem::new(1);
        p.require(con(&[(0, 1)], -1, Relation::Ge));
        p.require_any(vec![
            vec![con(&[(0, 1)], 0, Relation::Eq)],
            vec![con(&[(0, 1)], -5, Relation::Eq)],
        ]);
        p.require_any(vec![
            vec![con(&[(0, 1)], -9, Relation::Eq)],
            vec![con(&[(0, 1)], -5, Relation::Eq)],
        ]);
        let (w, stats) = p.solve_with_stats();
        assert_eq!(w.unwrap()[0], r(5));
        assert!(stats.lp_calls >= 3);
    }

    #[test]
    fn multi_variable_groups() {
        // y = x + 1; (x = 0 ∧ y = 1) OR (x = 2 ∧ y = 0)
        let mut p = DisjunctiveProblem::new(2);
        p.require(con(&[(1, 1), (0, -1)], -1, Relation::Eq));
        p.require_any(vec![
            vec![con(&[(0, 1)], 0, Relation::Eq), con(&[(1, 1)], -1, Relation::Eq)],
            vec![con(&[(0, 1)], -2, Relation::Eq), con(&[(1, 1)], 0, Relation::Eq)],
        ]);
        let w = p.solve().unwrap();
        assert_eq!(w, vec![r(0), r(1)]);
    }

    #[test]
    fn stats_count_backtracks() {
        let mut p = DisjunctiveProblem::new(1);
        p.require(con(&[(0, 1)], -10, Relation::Ge));
        p.require_any(vec![
            vec![con(&[(0, 1)], 0, Relation::Eq)],
            vec![con(&[(0, 1)], -5, Relation::Eq)],
        ]);
        let (res, stats) = p.solve_with_stats();
        assert!(res.is_none());
        assert!(stats.backtracks >= 2);
    }
}
