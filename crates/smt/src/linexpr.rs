//! Linear expressions over numbered rational variables.

use crate::rational::Rational;
use std::collections::BTreeMap;
use std::fmt;

/// A linear expression `Σ cᵢ·xᵢ + constant` over variables identified
/// by `usize` indices. Terms are kept sorted and coalesced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinExpr {
    terms: BTreeMap<usize, Rational>,
    constant: Rational,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        LinExpr { terms: BTreeMap::new(), constant: Rational::zero() }
    }

    /// A constant expression.
    pub fn constant(c: Rational) -> Self {
        LinExpr { terms: BTreeMap::new(), constant: c }
    }

    /// The expression `1·x`.
    pub fn var(x: usize) -> Self {
        let mut e = LinExpr::zero();
        e.add_term(x, Rational::one());
        e
    }

    /// Add `coeff·x` to the expression, coalescing with any existing term.
    pub fn add_term(&mut self, x: usize, coeff: Rational) {
        if coeff.is_zero() {
            return;
        }
        let entry = self.terms.entry(x).or_insert_with(Rational::zero);
        *entry += &coeff;
        if entry.is_zero() {
            self.terms.remove(&x);
        }
    }

    /// Add a constant to the expression.
    pub fn add_constant(&mut self, c: &Rational) {
        self.constant += c;
    }

    /// Add another expression scaled by `k`.
    pub fn add_scaled(&mut self, other: &LinExpr, k: &Rational) {
        if k.is_zero() {
            return;
        }
        for (&x, c) in &other.terms {
            self.add_term(x, c * k);
        }
        self.constant += &(&other.constant * k);
    }

    /// The constant part.
    pub fn constant_part(&self) -> &Rational {
        &self.constant
    }

    /// Iterate over `(variable, coefficient)` terms in index order.
    pub fn terms(&self) -> impl Iterator<Item = (usize, &Rational)> {
        self.terms.iter().map(|(&x, c)| (x, c))
    }

    /// Number of variables with nonzero coefficient.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Largest variable index mentioned, if any.
    pub fn max_var(&self) -> Option<usize> {
        self.terms.keys().next_back().copied()
    }

    /// Evaluate the expression under a full assignment.
    pub fn eval(&self, assignment: &[Rational]) -> Rational {
        let mut v = self.constant.clone();
        for (&x, c) in &self.terms {
            v += &(c * &assignment[x]);
        }
        v
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (&x, c) in &self.terms {
            if first {
                write!(f, "{c}*x{x}")?;
                first = false;
            } else if c.is_negative() {
                write!(f, " - {}*x{x}", c.abs())?;
            } else {
                write!(f, " + {c}*x{x}")?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if !self.constant.is_zero() {
            if self.constant.is_negative() {
                write!(f, " - {}", self.constant.abs())?;
            } else {
                write!(f, " + {}", self.constant)?;
            }
        }
        Ok(())
    }
}

/// Comparison relation of a linear constraint against zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `expr ≤ 0`
    Le,
    /// `expr = 0`
    Eq,
    /// `expr ≥ 0`
    Ge,
}

/// A linear constraint `expr (rel) 0`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinConstraint {
    /// Left-hand side, compared against zero.
    pub expr: LinExpr,
    /// The comparison relation.
    pub rel: Relation,
}

impl LinConstraint {
    /// Build `expr (rel) 0`.
    pub fn new(expr: LinExpr, rel: Relation) -> Self {
        LinConstraint { expr, rel }
    }

    /// True iff the constraint holds under `assignment`.
    pub fn holds(&self, assignment: &[Rational]) -> bool {
        let v = self.expr.eval(assignment);
        match self.rel {
            Relation::Le => !v.is_positive(),
            Relation::Eq => v.is_zero(),
            Relation::Ge => !v.is_negative(),
        }
    }
}

impl fmt::Display for LinConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.rel {
            Relation::Le => "<=",
            Relation::Eq => "==",
            Relation::Ge => ">=",
        };
        write!(f, "{} {op} 0", self.expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::ratio(n, d)
    }

    #[test]
    fn terms_coalesce() {
        let mut e = LinExpr::var(3);
        e.add_term(3, r(2, 1));
        e.add_term(1, r(1, 2));
        assert_eq!(e.num_terms(), 2);
        e.add_term(3, r(-3, 1));
        assert_eq!(e.num_terms(), 1); // x3 coefficient hit zero
    }

    #[test]
    fn eval_with_constant() {
        let mut e = LinExpr::constant(r(5, 1));
        e.add_term(0, r(2, 1));
        e.add_term(1, r(-1, 1));
        let v = e.eval(&[r(3, 1), r(4, 1)]);
        assert_eq!(v, r(7, 1)); // 2*3 - 4 + 5
    }

    #[test]
    fn add_scaled_merges() {
        let mut a = LinExpr::var(0);
        let mut b = LinExpr::var(0);
        b.add_term(1, r(3, 1));
        b.add_constant(&r(1, 1));
        a.add_scaled(&b, &r(2, 1));
        assert_eq!(a.eval(&[r(1, 1), r(1, 1)]), r(11, 1)); // 1 + 2*(1+3+1)
    }

    #[test]
    fn constraint_holds() {
        // x0 - 3 >= 0
        let mut e = LinExpr::var(0);
        e.add_constant(&r(-3, 1));
        let c = LinConstraint::new(e, Relation::Ge);
        assert!(c.holds(&[r(3, 1)]));
        assert!(c.holds(&[r(4, 1)]));
        assert!(!c.holds(&[r(2, 1)]));
    }

    #[test]
    fn display_is_readable() {
        let mut e = LinExpr::var(0);
        e.add_term(2, r(-1, 2));
        e.add_constant(&r(-3, 1));
        let c = LinConstraint::new(e, Relation::Le);
        assert_eq!(format!("{c}"), "1*x0 - 1/2*x2 - 3 <= 0");
    }
}
