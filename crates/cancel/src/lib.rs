//! # nck-cancel
//!
//! A cooperative cancellation token shared by every solver hot loop.
//!
//! Real substrates fail by *time*: a D-Wave job queue backs up, a QAOA
//! classical optimizer stalls, a branch-and-bound search explodes. The
//! execution supervisor (`nck-exec`) turns a wall-clock deadline into a
//! [`CancelToken`] that the annealer sweep loop, the QAOA optimizer
//! iterations, the Grover guess loop, and the classical search all
//! poll — so a run under budget pressure winds down cooperatively with
//! whatever partial results it has, instead of being abandoned
//! mid-flight or running forever.
//!
//! The token is deliberately dependency-free and lives below every
//! substrate crate (`nck-anneal`, `nck-circuit`, `nck-classical`), so
//! each can poll it without depending on the execution layer.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug, Default)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A cheap, cloneable cancellation token: an explicit cancel flag plus
/// an optional wall-clock deadline. Clones share state.
///
/// Polling ([`is_cancelled`](CancelToken::is_cancelled)) costs one
/// atomic load plus, when a deadline is set, one monotonic clock read —
/// cheap enough for per-sweep / per-node loops.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that never fires on its own (no deadline). Equivalent to
    /// `CancelToken::default()`.
    pub fn never() -> Self {
        CancelToken::default()
    }

    /// A token that fires once `deadline` has elapsed from now.
    pub fn with_deadline(deadline: Duration) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + deadline),
            }),
        }
    }

    /// Cancel explicitly. Every clone observes the cancellation.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Has the token been cancelled (explicitly, or by its deadline)?
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match self.inner.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }

    /// Wall-clock time left before the deadline. `None` when no
    /// deadline is set; `Some(ZERO)` once it has passed.
    pub fn remaining(&self) -> Option<Duration> {
        self.inner.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Sleep for `duration`, waking early if cancelled. Sleeps in short
    /// slices so a deadline or explicit cancel is honored within a few
    /// milliseconds. Returns `true` if the full duration elapsed,
    /// `false` if cancellation cut it short.
    pub fn sleep(&self, duration: Duration) -> bool {
        const SLICE: Duration = Duration::from_millis(2);
        let until = Instant::now() + duration;
        loop {
            if self.is_cancelled() {
                return false;
            }
            let now = Instant::now();
            if now >= until {
                return true;
            }
            std::thread::sleep((until - now).min(SLICE));
        }
    }
}

/// A sink for mid-solve checkpoints, living next to [`CancelToken`] for
/// the same reason: every substrate hot loop (annealer reads, QAOA
/// optimizer iterations, branch-and-bound incumbents, Grover guesses)
/// can persist progress without depending on the execution layer.
///
/// `save` is infallible by design: a durable store that dies mid-run
/// signals the failure out-of-band (typically by cancelling the run's
/// [`CancelToken`]), so solver loops stay free of persistence error
/// plumbing. `load` hands back the most recent payload saved under a
/// tag, letting a resumed solver skip completed work.
pub trait Checkpointer: Send + Sync {
    /// Persist `payload` under `tag`, replacing any previous checkpoint
    /// with the same tag. Must not panic and must not block the hot
    /// loop for longer than a write + fsync.
    fn save(&self, tag: &str, payload: &[u8]);

    /// The most recent payload saved under `tag` in a *previous* run,
    /// if this run is a resume. Consumed semantics are up to the
    /// implementation; solvers call this once at startup.
    fn load(&self, tag: &str) -> Option<Vec<u8>>;

    /// Desired work units (reads, iterations, nodes — the solver's own
    /// metric) between checkpoints. `0` disables checkpointing, which
    /// is what [`NoopCheckpointer`] reports.
    fn interval(&self) -> u64 {
        0
    }
}

/// The default checkpointer: saves nothing, loads nothing, interval 0.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopCheckpointer;

impl Checkpointer for NoopCheckpointer {
    fn save(&self, _tag: &str, _payload: &[u8]) {}

    fn load(&self, _tag: &str) -> Option<Vec<u8>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_checkpointer_is_inert() {
        let ckpt = NoopCheckpointer;
        ckpt.save("tag", b"payload");
        assert_eq!(ckpt.load("tag"), None);
        assert_eq!(ckpt.interval(), 0);
        // And it is object-safe: solvers hold it as a trait object.
        let dyn_ckpt: &dyn Checkpointer = &ckpt;
        assert!(dyn_ckpt.load("tag").is_none());
    }

    #[test]
    fn never_is_never_cancelled() {
        let t = CancelToken::never();
        assert!(!t.is_cancelled());
        assert_eq!(t.remaining(), None);
    }

    #[test]
    fn explicit_cancel_is_shared_across_clones() {
        let t = CancelToken::never();
        let c = t.clone();
        c.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn deadline_fires() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled());
        assert_eq!(t.remaining(), Some(Duration::ZERO));
        let far = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
        assert!(far.remaining().unwrap() > Duration::from_secs(3500));
    }

    #[test]
    fn sleep_completes_when_uncancelled() {
        let t = CancelToken::never();
        assert!(t.sleep(Duration::from_millis(5)));
    }

    #[test]
    fn sleep_cut_short_by_cancellation() {
        let t = CancelToken::with_deadline(Duration::from_millis(10));
        let start = Instant::now();
        assert!(!t.sleep(Duration::from_secs(10)));
        assert!(start.elapsed() < Duration::from_secs(2), "sleep must wake near the deadline");
    }
}
