//! Property tests for the supervisor's retry backoff: deterministic
//! per seed, bounded by the cap, and never scheduling more cumulative
//! backoff than the run's deadline allows.

use nck_exec::{RetryPolicy, RunBudget};
use proptest::prelude::*;
use std::time::Duration;

fn arb_policy() -> impl Strategy<Value = RetryPolicy> {
    (0u32..12, 1u64..50, 1u64..500, 0f64..=1.0, any::<u64>()).prop_map(
        |(retries, base_ms, cap_ms, jitter, seed)| RetryPolicy {
            retries_per_rung: retries,
            base: Duration::from_millis(base_ms),
            cap: Duration::from_millis(cap_ms),
            jitter,
            seed,
        },
    )
}

proptest! {
    /// Same seed, same attempt → the exact same delay, always.
    #[test]
    fn backoff_is_deterministic_per_seed(policy in arb_policy(), attempt in 0u32..64) {
        let twin = policy;
        prop_assert_eq!(policy.delay(attempt), twin.delay(attempt));
    }

    /// No single delay ever exceeds the configured cap.
    #[test]
    fn backoff_is_bounded_by_the_cap(policy in arb_policy(), attempt in 0u32..64) {
        prop_assert!(policy.delay(attempt) <= policy.cap);
    }

    /// Delays grow (jitter aside) but never overflow: with jitter off,
    /// the sequence is monotonically non-decreasing up to the cap.
    #[test]
    fn jitterless_backoff_is_monotone(policy in arb_policy(), attempt in 0u32..63) {
        let p = RetryPolicy { jitter: 0.0, ..policy };
        prop_assert!(p.delay(attempt) <= p.delay(attempt + 1));
    }

    /// The scheduled cumulative backoff for a rung never exceeds the
    /// budget's deadline — a supervisor cannot sleep its way past its
    /// own budget.
    #[test]
    fn total_scheduled_backoff_fits_the_deadline(
        policy in arb_policy(),
        deadline_ms in 0u64..2_000,
    ) {
        let budget = RunBudget::with_deadline(Duration::from_millis(deadline_ms));
        let schedule = policy.schedule(&budget);
        prop_assert_eq!(schedule.len(), policy.retries_per_rung as usize);
        let total: Duration = schedule.iter().sum();
        prop_assert!(
            total <= Duration::from_millis(deadline_ms),
            "cumulative backoff {:?} exceeds deadline {}ms", total, deadline_ms
        );
    }

    /// Different seeds decorrelate: with full jitter, two seeds almost
    /// surely differ somewhere in the first few delays.
    #[test]
    fn seeds_decorrelate_the_jitter_stream(seed_a in any::<u64>(), delta in 1u64..u64::MAX) {
        let seed_b = seed_a ^ delta; // delta != 0, so the seeds differ
        let mk = |seed| RetryPolicy { jitter: 1.0, seed, ..RetryPolicy::default() };
        let (a, b) = (mk(seed_a), mk(seed_b));
        let differs = (0..8).any(|k| a.delay(k) != b.delay(k));
        prop_assert!(differs);
    }
}

/// Executable deterministic sweeps over the same properties (the
/// vendored proptest is a type-check-only stub, so these carry the
/// actual coverage).
mod deterministic_sweeps {
    use super::*;

    fn policies() -> impl Iterator<Item = RetryPolicy> {
        (0..64u64).map(|i| RetryPolicy {
            retries_per_rung: (i % 9) as u32,
            base: Duration::from_millis(1 + i % 47),
            cap: Duration::from_millis(1 + (i * 13) % 400),
            jitter: (i % 11) as f64 / 10.0,
            seed: i.wrapping_mul(0x9e3779b97f4a7c15),
        })
    }

    #[test]
    fn delays_are_deterministic_and_capped_across_a_policy_sweep() {
        for p in policies() {
            for k in 0..32 {
                assert_eq!(p.delay(k), p.delay(k), "seed {} attempt {k}", p.seed);
                assert!(p.delay(k) <= p.cap, "seed {} attempt {k} exceeds cap", p.seed);
            }
        }
    }

    #[test]
    fn jitterless_delays_are_monotone_across_a_policy_sweep() {
        for p in policies() {
            let p = RetryPolicy { jitter: 0.0, ..p };
            for k in 0..31 {
                assert!(p.delay(k) <= p.delay(k + 1), "seed {} attempt {k}", p.seed);
            }
        }
    }

    #[test]
    fn schedules_fit_the_deadline_across_a_policy_sweep() {
        for p in policies() {
            for deadline_ms in [0u64, 1, 7, 50, 333, 1999] {
                let budget = RunBudget::with_deadline(Duration::from_millis(deadline_ms));
                let schedule = p.schedule(&budget);
                assert_eq!(schedule.len(), p.retries_per_rung as usize);
                let total: Duration = schedule.iter().sum();
                assert!(
                    total <= Duration::from_millis(deadline_ms),
                    "seed {}: cumulative backoff {total:?} exceeds {deadline_ms}ms",
                    p.seed
                );
            }
        }
    }

    #[test]
    fn distinct_seeds_decorrelate_across_a_seed_sweep() {
        let mk = |seed| RetryPolicy { jitter: 1.0, seed, ..RetryPolicy::default() };
        for s in 0..64u64 {
            let (a, b) = (mk(s), mk(s + 1));
            assert!((0..8).any(|k| a.delay(k) != b.delay(k)), "seeds {s} and {} collide", s + 1);
        }
    }
}
