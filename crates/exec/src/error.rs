//! Typed end-to-end execution failures.
//!
//! Every backend reports problems through [`ExecError`] instead of
//! panicking, so library callers can match on the failure mode and
//! apply their own policy (retry, fall back, skip the instance).

use nck_anneal::AnnealError;
use nck_circuit::QaoaError;
use nck_compile::CompileError;
use std::fmt;

/// Errors from end-to-end execution.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    /// Compilation to QUBO failed.
    Compile(CompileError),
    /// The annealing backend failed.
    Anneal(AnnealError),
    /// The gate-model backend failed.
    Qaoa(QaoaError),
    /// The program's hard constraints are unsatisfiable.
    Unsatisfiable,
    /// The backend cannot express soft constraints (Grover amplifies
    /// *satisfying* assignments; it has no notion of soft-count
    /// optimality).
    SoftUnsupported {
        /// Soft constraints present in the program.
        num_soft: usize,
    },
    /// The instance exceeds a hard backend capacity limit.
    TooLarge {
        /// Variables the instance requires.
        vars: usize,
        /// The backend's limit.
        limit: usize,
    },
    /// The backend returned no candidate assignments to classify.
    NoCandidates,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Compile(e) => write!(f, "compile error: {e}"),
            ExecError::Anneal(e) => write!(f, "annealer error: {e}"),
            ExecError::Qaoa(e) => write!(f, "gate-model error: {e}"),
            ExecError::Unsatisfiable => write!(f, "hard constraints are unsatisfiable"),
            ExecError::SoftUnsupported { num_soft } => write!(
                f,
                "backend supports hard-only programs ({num_soft} soft constraint(s) present)"
            ),
            ExecError::TooLarge { vars, limit } => {
                write!(f, "instance needs {vars} variables, backend limit is {limit}")
            }
            ExecError::NoCandidates => write!(f, "backend returned no candidate assignments"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<CompileError> for ExecError {
    fn from(e: CompileError) -> Self {
        ExecError::Compile(e)
    }
}
impl From<AnnealError> for ExecError {
    fn from(e: AnnealError) -> Self {
        ExecError::Anneal(e)
    }
}
impl From<QaoaError> for ExecError {
    fn from(e: QaoaError) -> Self {
        ExecError::Qaoa(e)
    }
}
