//! Typed end-to-end execution failures.
//!
//! Every backend reports problems through [`ExecError`] instead of
//! panicking, so library callers can match on the failure mode and
//! apply their own policy (retry, fall back, skip the instance). The
//! supervisor layer additionally needs two refinements, both here:
//!
//! * a **transient / permanent** split
//!   ([`ExecError::transient`]) — transient failures are worth a
//!   retry with backoff, permanent ones go straight to the next rung
//!   of the degradation ladder;
//! * **provenance** ([`FailedAttempt`]) — which backend, which
//!   pipeline stage, which attempt index produced the error, kept even
//!   for errors a fallback later suppressed.

use nck_anneal::AnnealError;
use nck_circuit::QaoaError;
use nck_compile::CompileError;
use nck_qubo::QuboIoError;
use nck_store::StoreError;
use std::fmt;

/// The kind of substrate fault behind an
/// [`ExecError::Transient`] failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A scripted transient failure from the fault plane (stands in
    /// for queue rejections, dropped network calls, device resets).
    Injected,
    /// The annealer job's chain-break fraction exceeded the backend's
    /// acceptance threshold — a storm, not a usable sample set.
    ChainBreakStorm,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Injected => write!(f, "injected transient fault"),
            FaultKind::ChainBreakStorm => write!(f, "chain-break storm"),
        }
    }
}

/// Errors from end-to-end execution.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    /// Compilation to QUBO failed.
    Compile(CompileError),
    /// The annealing backend failed.
    Anneal(AnnealError),
    /// The gate-model backend failed.
    Qaoa(QaoaError),
    /// The program's hard constraints are unsatisfiable.
    Unsatisfiable,
    /// The backend cannot express soft constraints (Grover amplifies
    /// *satisfying* assignments; it has no notion of soft-count
    /// optimality).
    SoftUnsupported {
        /// Soft constraints present in the program.
        num_soft: usize,
    },
    /// The instance exceeds a hard backend capacity limit.
    TooLarge {
        /// Variables the instance requires.
        vars: usize,
        /// The backend's limit.
        limit: usize,
    },
    /// The backend returned no candidate assignments to classify.
    NoCandidates,
    /// The run was cancelled cooperatively (wall-clock deadline or an
    /// explicit cancel) before the backend produced anything usable.
    Cancelled {
        /// Backend that observed the cancellation.
        backend: &'static str,
        /// Pipeline stage that was executing.
        stage: &'static str,
    },
    /// A transient substrate fault: worth retrying with backoff.
    Transient {
        /// Backend that faulted.
        backend: &'static str,
        /// Pipeline stage that faulted.
        stage: &'static str,
        /// What kind of fault.
        kind: FaultKind,
        /// Attempt index the fault hit (0-based).
        attempt: u32,
    },
    /// The backend's circuit breaker is open: the call was rejected
    /// without invoking the backend, to stop burning budget on a rung
    /// that keeps failing.
    BreakerOpen {
        /// Backend whose breaker rejected the call.
        backend: &'static str,
    },
    /// A [`RunBudget`](crate::RunBudget) dimension ran out before any
    /// rung produced a report.
    BudgetExhausted {
        /// Which budget dimension (`"attempts"`, `"samples"`,
        /// `"deadline"`).
        what: &'static str,
    },
    /// The durable run store failed (I/O error, corrupt file, or a
    /// simulated crash from the kill-point harness).
    Store(StoreError),
    /// A `.qubo` input document failed to parse.
    QuboIo(QuboIoError),
    /// A resume pointed at a run directory whose journal already ends
    /// in a terminal event; there is nothing left to execute.
    AlreadyFinished {
        /// The run directory.
        dir: String,
    },
}

impl ExecError {
    /// Is this failure *transient* — caused by a passing substrate
    /// condition that a retry with backoff may outlive? Everything
    /// else is [`permanent`](ExecError::permanent): retrying the same
    /// backend with the same inputs cannot help, so the supervisor
    /// moves to the next rung of the ladder instead.
    pub fn transient(&self) -> bool {
        matches!(self, ExecError::Transient { .. })
    }

    /// Is this failure *permanent* for the backend that produced it?
    /// The complement of [`transient`](ExecError::transient).
    pub fn permanent(&self) -> bool {
        !self.transient()
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Compile(e) => write!(f, "compile error: {e}"),
            ExecError::Anneal(e) => write!(f, "annealer error: {e}"),
            ExecError::Qaoa(e) => write!(f, "gate-model error: {e}"),
            ExecError::Unsatisfiable => write!(f, "hard constraints are unsatisfiable"),
            ExecError::SoftUnsupported { num_soft } => write!(
                f,
                "backend supports hard-only programs ({num_soft} soft constraint(s) present)"
            ),
            ExecError::TooLarge { vars, limit } => {
                write!(f, "instance needs {vars} variables, backend limit is {limit}")
            }
            ExecError::NoCandidates => write!(f, "backend returned no candidate assignments"),
            ExecError::Cancelled { backend, stage } => {
                write!(f, "cancelled during {backend}/{stage} (deadline or explicit cancel)")
            }
            ExecError::Transient { backend, stage, kind, attempt } => {
                write!(f, "transient fault in {backend}/{stage} on attempt {attempt}: {kind}")
            }
            ExecError::BreakerOpen { backend } => {
                write!(f, "circuit breaker for {backend} is open")
            }
            ExecError::BudgetExhausted { what } => {
                write!(f, "run budget exhausted: {what}")
            }
            ExecError::Store(e) => write!(f, "durable store error: {e}"),
            ExecError::QuboIo(e) => write!(f, "qubo input error: {e}"),
            ExecError::AlreadyFinished { dir } => {
                write!(f, "run in {dir} already finished; nothing to resume")
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl From<CompileError> for ExecError {
    fn from(e: CompileError) -> Self {
        ExecError::Compile(e)
    }
}
impl From<AnnealError> for ExecError {
    fn from(e: AnnealError) -> Self {
        ExecError::Anneal(e)
    }
}
impl From<QaoaError> for ExecError {
    fn from(e: QaoaError) -> Self {
        ExecError::Qaoa(e)
    }
}
impl From<StoreError> for ExecError {
    fn from(e: StoreError) -> Self {
        ExecError::Store(e)
    }
}
impl From<QuboIoError> for ExecError {
    fn from(e: QuboIoError) -> Self {
        ExecError::QuboIo(e)
    }
}

/// A failed attempt with full provenance: backend, pipeline stage, and
/// attempt index — attached to every error the execution layer
/// reports, and to every suppressed error in the
/// [`RunJournal`](crate::RunJournal).
#[derive(Clone, Debug, PartialEq)]
pub struct FailedAttempt {
    /// Backend that failed.
    pub backend: &'static str,
    /// Pipeline stage that was executing when the error surfaced.
    pub stage: &'static str,
    /// Attempt index on that backend (0-based).
    pub attempt: u32,
    /// The typed error.
    pub error: ExecError,
}

impl fmt::Display for FailedAttempt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} attempt {}: {}", self.backend, self.stage, self.attempt, self.error)
    }
}

impl std::error::Error for FailedAttempt {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_classification() {
        let t = ExecError::Transient {
            backend: "annealer",
            stage: "sample",
            kind: FaultKind::Injected,
            attempt: 0,
        };
        assert!(t.transient());
        assert!(!t.permanent());
        for e in [
            ExecError::Unsatisfiable,
            ExecError::NoCandidates,
            ExecError::SoftUnsupported { num_soft: 1 },
            ExecError::TooLarge { vars: 30, limit: 20 },
            ExecError::Cancelled { backend: "gate", stage: "sample" },
            ExecError::BreakerOpen { backend: "gate" },
            ExecError::BudgetExhausted { what: "attempts" },
        ] {
            assert!(e.permanent(), "{e} must be permanent");
        }
    }

    #[test]
    fn failed_attempt_carries_provenance() {
        let fa = FailedAttempt {
            backend: "annealer",
            stage: "embed",
            attempt: 2,
            error: ExecError::NoCandidates,
        };
        let s = fa.to_string();
        assert!(s.contains("annealer/embed"), "{s}");
        assert!(s.contains("attempt 2"), "{s}");
    }
}
