//! Deterministic fault injection for exercising backend fallback
//! policies.
//!
//! The retry and fallback paths of [`AnnealerBackend`] and
//! [`GateModelBackend`] (embedding rip-up reseeds, the clique-embedding
//! fallback, the analytic p = 1 QAOA fallback) otherwise only trigger
//! when a real instance happens to defeat the heuristic embedder or
//! overflow the state-vector simulator. A [`FaultInjection`] makes
//! those failures happen on demand — and deterministically — so the
//! `nck-verify` harness and the fallback tests can drive every branch
//! of the policy on small, fast instances.
//!
//! [`AnnealerBackend`]: crate::AnnealerBackend
//! [`GateModelBackend`]: crate::GateModelBackend

/// Faults to inject into a backend run. The default injects nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultInjection {
    /// Treat this many leading heuristic embedding attempts as failed,
    /// as if the rip-up embedder could not fit the problem. Values in
    /// `1..=embed_reseed_tries` exercise the reseed retry; larger
    /// values exhaust every heuristic attempt and force the
    /// clique-embedding fallback (or a typed
    /// [`EmbeddingFailed`](nck_anneal::AnnealError::EmbeddingFailed)
    /// when no fallback is configured).
    pub embed_failures: u32,
    /// Report a state-vector overflow
    /// ([`TooLargeToSimulate`](nck_circuit::QaoaError::TooLargeToSimulate))
    /// on the first QAOA attempt, forcing the analytic p = 1 fallback
    /// (or the typed error when the fallback is disabled).
    pub qaoa_overflow: bool,
}

impl FaultInjection {
    /// No faults (the default).
    pub fn none() -> Self {
        FaultInjection::default()
    }

    /// Fail the first `n` heuristic embedding attempts.
    pub fn embed_failures(n: u32) -> Self {
        FaultInjection { embed_failures: n, ..FaultInjection::default() }
    }

    /// Force a state-vector overflow on the first QAOA attempt.
    pub fn qaoa_overflow() -> Self {
        FaultInjection { qaoa_overflow: true, ..FaultInjection::default() }
    }
}
