//! Deterministic fault injection: a general fault plane for exercising
//! backend fallback policies and the resilience supervisor.
//!
//! The retry and fallback paths of [`AnnealerBackend`] and
//! [`GateModelBackend`] (embedding rip-up reseeds, the clique-embedding
//! fallback, the analytic p = 1 QAOA fallback) otherwise only trigger
//! when a real instance happens to defeat the heuristic embedder or
//! overflow the state-vector simulator — and the supervisor's retry /
//! breaker / ladder machinery only triggers when a substrate actually
//! misbehaves. A [`FaultInjection`] makes those failures happen on
//! demand — and deterministically — so the `nck-verify` harness, the
//! fallback tests, and the chaos suite can drive every branch of the
//! policy on small, fast instances.
//!
//! Faults are **attempt-indexed**: a script like
//! `transient_failures: 2` fails attempts 0 and 1 and lets attempt 2
//! through, standing in for a substrate hiccup that a retry outlives.
//! Latency and stalls sleep through the cooperative
//! [`CancelToken`](nck_cancel::CancelToken), so a deadline always cuts
//! them short.
//!
//! [`AnnealerBackend`]: crate::AnnealerBackend
//! [`GateModelBackend`]: crate::GateModelBackend

use crate::error::{ExecError, FaultKind};
use crate::journal::RunCtx;
use std::time::Duration;

/// Faults to inject into a backend run. The default injects nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultInjection {
    /// Treat this many leading heuristic embedding attempts as failed,
    /// as if the rip-up embedder could not fit the problem. Values in
    /// `1..=embed_reseed_tries` exercise the reseed retry; larger
    /// values exhaust every heuristic attempt and force the
    /// clique-embedding fallback (or a typed
    /// [`EmbeddingFailed`](nck_anneal::AnnealError::EmbeddingFailed)
    /// when no fallback is configured).
    pub embed_failures: u32,
    /// Report a state-vector overflow
    /// ([`TooLargeToSimulate`](nck_circuit::QaoaError::TooLargeToSimulate))
    /// on the first QAOA attempt, forcing the analytic p = 1 fallback
    /// (or the typed error when the fallback is disabled).
    pub qaoa_overflow: bool,
    /// Injected latency added to every attempt's sample stage (a slow
    /// but healthy substrate). Slept cooperatively, so a deadline cuts
    /// it short.
    pub latency: Duration,
    /// Injected stall: the sample stage hangs for this long on *every*
    /// attempt (a wedged substrate). Unlike `latency` the stall is
    /// meant to be escaped only by the deadline token — it models a
    /// sampler that will never come back.
    pub stall: Duration,
    /// Fail this many leading attempts with a transient error
    /// ([`ExecError::Transient`](crate::ExecError) /
    /// [`FaultKind::Injected`](crate::FaultKind)): attempt `k` fails
    /// while `k < transient_failures`, then the substrate recovers.
    pub transient_failures: u32,
    /// Annealer-only: the first `n` attempts report a chain-break
    /// storm ([`FaultKind::ChainBreakStorm`](crate::FaultKind)) — the
    /// sample set comes back but is unusable, a classic
    /// retry-with-backoff situation.
    pub chain_break_storms: u32,
}

impl FaultInjection {
    /// No faults (the default).
    pub fn none() -> Self {
        FaultInjection::default()
    }

    /// Fail the first `n` heuristic embedding attempts.
    pub fn embed_failures(n: u32) -> Self {
        FaultInjection { embed_failures: n, ..FaultInjection::default() }
    }

    /// Force a state-vector overflow on the first QAOA attempt.
    pub fn qaoa_overflow() -> Self {
        FaultInjection { qaoa_overflow: true, ..FaultInjection::default() }
    }

    /// Add `d` of injected latency to every attempt.
    pub fn latency(d: Duration) -> Self {
        FaultInjection { latency: d, ..FaultInjection::default() }
    }

    /// Stall the sample stage for `d` on every attempt.
    pub fn stall(d: Duration) -> Self {
        FaultInjection { stall: d, ..FaultInjection::default() }
    }

    /// Fail the first `n` attempts with a transient fault, then
    /// recover.
    pub fn transient_failures(n: u32) -> Self {
        FaultInjection { transient_failures: n, ..FaultInjection::default() }
    }

    /// Chain-break storms on the first `n` annealer attempts.
    pub fn chain_break_storms(n: u32) -> Self {
        FaultInjection { chain_break_storms: n, ..FaultInjection::default() }
    }

    /// Does this script inject anything at all?
    pub fn any(&self) -> bool {
        *self != FaultInjection::none()
    }

    /// Apply the attempt-indexed sample-stage faults for the attempt in
    /// `ctx`: scripted transient failures first (cheap), then injected
    /// latency and stalls, slept cooperatively so the deadline token
    /// cuts them short.
    pub(crate) fn apply_sample_faults(&self, ctx: &mut RunCtx) -> Result<(), ExecError> {
        if ctx.attempt < self.transient_failures {
            return Err(ExecError::Transient {
                backend: ctx.backend,
                stage: ctx.stage,
                kind: FaultKind::Injected,
                attempt: ctx.attempt,
            });
        }
        for d in [self.latency, self.stall] {
            if !d.is_zero() && !ctx.cancel.sleep(d) {
                return Err(ExecError::Cancelled { backend: ctx.backend, stage: ctx.stage });
            }
        }
        Ok(())
    }
}
