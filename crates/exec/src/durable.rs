//! Durable execution: the wire format and live sink that persist a
//! supervised run into an [`nck_store::RunStore`].
//!
//! Everything a resumed run needs crosses this module as one of two
//! byte shapes:
//!
//! * **WAL records** — a [`Record`] per journal event, budget-progress
//!   mark, rung completion, mid-solve checkpoint, and terminal event,
//!   appended (and fsynced) as the run proceeds;
//! * **snapshots** — a serialized [`RecoveredRun`] written at rung
//!   boundaries and at the end of the run, collapsing the WAL.
//!
//! The codec is hand-rolled little-endian (the workspace is
//! dependency-free by policy) and *exact*: journal timestamps are
//! monotonic offsets serialized as whole seconds plus subsecond
//! nanoseconds, so a decoded journal compares equal — `Duration` and
//! all — to the one that was encoded. Floats travel as raw IEEE-754
//! bits for the same reason. Decoding is an untrusted-input path
//! (the file may be truncated or bit-flipped in ways the store's CRC
//! already rejects, but defense in depth is cheap): every decoder
//! returns a typed error or `None`, never panics, and never allocates
//! more than the input's own length.

use crate::error::{ExecError, FaultKind};
use crate::journal::{JournalEvent, JournalKind, RunJournal};
use nck_anneal::{AnnealError, AnnealSample};
use nck_cancel::{CancelToken, Checkpointer};
use nck_circuit::{NmState, QaoaError};
use nck_classical::Incumbent;
use nck_compile::CompileError;
use nck_qubo::QuboIoError;
use nck_store::{Recovered, RunStore, StoreError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::Duration;

/// Default solver work units (annealer reads, optimizer iterations,
/// Grover guesses) between mid-solve checkpoints.
pub const DEFAULT_CHECKPOINT_INTERVAL: u64 = 16;

// ---------------------------------------------------------------------
// Primitive codec
// ---------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
    put_u64(out, v.len() as u64);
    out.extend_from_slice(v);
}

fn put_str(out: &mut Vec<u8>, v: &str) {
    put_bytes(out, v.as_bytes());
}

fn put_duration(out: &mut Vec<u8>, d: Duration) {
    put_u64(out, d.as_secs());
    put_u32(out, d.subsec_nanos());
}

/// Bounded little-endian reader over an untrusted byte slice. Every
/// read is range-checked; a short or malformed buffer yields a typed
/// [`StoreError::Corrupt`], never a panic.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn corrupt(&self, reason: &str) -> StoreError {
        StoreError::Corrupt {
            path: "<record>".to_string(),
            offset: self.pos as u64,
            reason: reason.to_string(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self.pos.checked_add(n).ok_or_else(|| self.corrupt("length overflow"))?;
        if end > self.buf.len() {
            return Err(self.corrupt("record truncated"));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn usize(&mut self) -> Result<usize, StoreError> {
        usize::try_from(self.u64()?).map_err(|_| self.corrupt("count exceeds usize"))
    }

    fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A length-prefixed byte string. The length is validated against
    /// the bytes actually present, so a flipped length field cannot
    /// trigger a huge allocation.
    fn bytes(&mut self) -> Result<&'a [u8], StoreError> {
        let n = self.usize()?;
        if n > self.buf.len().saturating_sub(self.pos) {
            return Err(self.corrupt("length prefix exceeds record"));
        }
        self.take(n)
    }

    fn string(&mut self) -> Result<String, StoreError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| self.corrupt("invalid utf-8"))
    }

    /// A `&'static str` that round-trips exactly: known vocabulary
    /// strings (backend names, stages, budget dimensions, …) decode to
    /// the same static, and the rare unknown string is leaked once —
    /// journals are finite and decode happens once per resume.
    fn static_str(&mut self) -> Result<&'static str, StoreError> {
        let b = self.bytes()?;
        let s = std::str::from_utf8(b).map_err(|_| self.corrupt("invalid utf-8"))?;
        Ok(intern(s))
    }

    fn duration(&mut self) -> Result<Duration, StoreError> {
        let secs = self.u64()?;
        let nanos = self.u32()?;
        if nanos >= 1_000_000_000 {
            return Err(self.corrupt("subsecond nanoseconds out of range"));
        }
        Ok(Duration::new(secs, nanos))
    }

    fn finish(&self) -> Result<(), StoreError> {
        if self.pos != self.buf.len() {
            return Err(self.corrupt("trailing bytes after record"));
        }
        Ok(())
    }
}

/// The `&'static str` vocabulary the execution layer journals: backend
/// and stage names, fallback labels, budget dimensions, store
/// operations, kill-point names, `.qubo` token kinds. Unknown strings
/// (future vocabulary decoded by an old binary) are leaked — bounded
/// by the journal's own size, paid once per resume.
fn intern(s: &str) -> &'static str {
    const VOCAB: &[&str] = &[
        // Backends + supervisor provenance.
        "annealer",
        "gate",
        "grover",
        "classical",
        "supervisor",
        // Pipeline stages.
        "compile",
        "embed",
        "sample",
        "decode",
        "classify",
        // Supervisor stages.
        "breaker",
        "budget",
        "ladder",
        "store",
        // Fallback labels.
        "clique embedding",
        "analytic p=1 QAOA",
        // Budget dimensions.
        "attempts",
        "samples",
        "deadline",
        "nodes",
        // `.qubo` token kinds.
        "offset",
        "node count",
        "index",
        "value",
        // Store operations and kill-point names.
        "mkdir",
        "open",
        "create",
        "read",
        "write",
        "sync",
        "sync_dir",
        "rename",
        "remove",
        "seek",
        "set_len",
        "append",
        "snapshot",
        "crash-before-fsync",
        "crash-mid-frame",
        "crash-between-snapshot-and-truncate",
        "io-failure",
    ];
    for v in VOCAB {
        if *v == s {
            return v;
        }
    }
    Box::leak(s.to_string().into_boxed_str())
}

// ---------------------------------------------------------------------
// Error codecs (exact round trip, so replayed journals compare equal)
// ---------------------------------------------------------------------

fn put_exec_error(out: &mut Vec<u8>, e: &ExecError) {
    match e {
        ExecError::Compile(ce) => {
            put_u8(out, 0);
            match ce {
                CompileError::Unsatisfiable(what) => {
                    put_u8(out, 0);
                    put_str(out, what);
                }
                CompileError::NoQuboFound { ancillas_tried, shape } => {
                    put_u8(out, 1);
                    put_u32(out, *ancillas_tried);
                    put_str(out, shape);
                }
            }
        }
        ExecError::Anneal(AnnealError::EmbeddingFailed { logical_vars, device_qubits }) => {
            put_u8(out, 1);
            put_u64(out, *logical_vars as u64);
            put_u64(out, *device_qubits as u64);
        }
        ExecError::Qaoa(qe) => {
            put_u8(out, 2);
            match qe {
                QaoaError::TooManyQubits { needed, available } => {
                    put_u8(out, 0);
                    put_u64(out, *needed as u64);
                    put_u64(out, *available as u64);
                }
                QaoaError::TooLargeToSimulate { needed, sim_limit } => {
                    put_u8(out, 1);
                    put_u64(out, *needed as u64);
                    put_u64(out, *sim_limit as u64);
                }
            }
        }
        ExecError::Unsatisfiable => put_u8(out, 3),
        ExecError::SoftUnsupported { num_soft } => {
            put_u8(out, 4);
            put_u64(out, *num_soft as u64);
        }
        ExecError::TooLarge { vars, limit } => {
            put_u8(out, 5);
            put_u64(out, *vars as u64);
            put_u64(out, *limit as u64);
        }
        ExecError::NoCandidates => put_u8(out, 6),
        ExecError::Cancelled { backend, stage } => {
            put_u8(out, 7);
            put_str(out, backend);
            put_str(out, stage);
        }
        ExecError::Transient { backend, stage, kind, attempt } => {
            put_u8(out, 8);
            put_str(out, backend);
            put_str(out, stage);
            put_u8(
                out,
                match kind {
                    FaultKind::Injected => 0,
                    FaultKind::ChainBreakStorm => 1,
                },
            );
            put_u32(out, *attempt);
        }
        ExecError::BreakerOpen { backend } => {
            put_u8(out, 9);
            put_str(out, backend);
        }
        ExecError::BudgetExhausted { what } => {
            put_u8(out, 10);
            put_str(out, what);
        }
        ExecError::Store(se) => {
            put_u8(out, 11);
            put_store_error(out, se);
        }
        ExecError::QuboIo(qe) => {
            put_u8(out, 12);
            put_qubo_io_error(out, qe);
        }
        ExecError::AlreadyFinished { dir } => {
            put_u8(out, 13);
            put_str(out, dir);
        }
    }
}

fn read_exec_error(r: &mut Reader<'_>) -> Result<ExecError, StoreError> {
    Ok(match r.u8()? {
        0 => ExecError::Compile(match r.u8()? {
            0 => CompileError::Unsatisfiable(r.string()?),
            1 => CompileError::NoQuboFound { ancillas_tried: r.u32()?, shape: r.string()? },
            _ => return Err(r.corrupt("unknown compile error tag")),
        }),
        1 => ExecError::Anneal(AnnealError::EmbeddingFailed {
            logical_vars: r.usize()?,
            device_qubits: r.usize()?,
        }),
        2 => ExecError::Qaoa(match r.u8()? {
            0 => QaoaError::TooManyQubits { needed: r.usize()?, available: r.usize()? },
            1 => QaoaError::TooLargeToSimulate { needed: r.usize()?, sim_limit: r.usize()? },
            _ => return Err(r.corrupt("unknown qaoa error tag")),
        }),
        3 => ExecError::Unsatisfiable,
        4 => ExecError::SoftUnsupported { num_soft: r.usize()? },
        5 => ExecError::TooLarge { vars: r.usize()?, limit: r.usize()? },
        6 => ExecError::NoCandidates,
        7 => ExecError::Cancelled { backend: r.static_str()?, stage: r.static_str()? },
        8 => ExecError::Transient {
            backend: r.static_str()?,
            stage: r.static_str()?,
            kind: match r.u8()? {
                0 => FaultKind::Injected,
                1 => FaultKind::ChainBreakStorm,
                _ => return Err(r.corrupt("unknown fault kind tag")),
            },
            attempt: r.u32()?,
        },
        9 => ExecError::BreakerOpen { backend: r.static_str()? },
        10 => ExecError::BudgetExhausted { what: r.static_str()? },
        11 => ExecError::Store(read_store_error(r)?),
        12 => ExecError::QuboIo(read_qubo_io_error(r)?),
        13 => ExecError::AlreadyFinished { dir: r.string()? },
        _ => return Err(r.corrupt("unknown exec error tag")),
    })
}

fn put_store_error(out: &mut Vec<u8>, e: &StoreError) {
    match e {
        StoreError::Io { op, path, kind } => {
            put_u8(out, 0);
            put_str(out, op);
            put_str(out, path);
            put_str(out, kind);
        }
        StoreError::Corrupt { path, offset, reason } => {
            put_u8(out, 1);
            put_str(out, path);
            put_u64(out, *offset);
            put_str(out, reason);
        }
        StoreError::Killed { point } => {
            put_u8(out, 2);
            put_str(out, point);
        }
        StoreError::Dead => put_u8(out, 3),
        StoreError::NotEmpty { path } => {
            put_u8(out, 4);
            put_str(out, path);
        }
        StoreError::NoRun { path } => {
            put_u8(out, 5);
            put_str(out, path);
        }
    }
}

fn read_store_error(r: &mut Reader<'_>) -> Result<StoreError, StoreError> {
    Ok(match r.u8()? {
        0 => StoreError::Io { op: r.static_str()?, path: r.string()?, kind: r.string()? },
        1 => StoreError::Corrupt { path: r.string()?, offset: r.u64()?, reason: r.string()? },
        2 => StoreError::Killed { point: r.static_str()? },
        3 => StoreError::Dead,
        4 => StoreError::NotEmpty { path: r.string()? },
        5 => StoreError::NoRun { path: r.string()? },
        _ => return Err(r.corrupt("unknown store error tag")),
    })
}

fn put_qubo_io_error(out: &mut Vec<u8>, e: &QuboIoError) {
    match e {
        QuboIoError::MissingHeader => put_u8(out, 0),
        QuboIoError::MalformedHeader { line } => {
            put_u8(out, 1);
            put_u64(out, *line as u64);
        }
        QuboIoError::BadNumber { line, what, token } => {
            put_u8(out, 2);
            put_u64(out, *line as u64);
            put_str(out, what);
            put_str(out, token);
        }
        QuboIoError::TermBeforeHeader { line } => {
            put_u8(out, 3);
            put_u64(out, *line as u64);
        }
        QuboIoError::MalformedTerm { line } => {
            put_u8(out, 4);
            put_u64(out, *line as u64);
        }
        QuboIoError::IndexOutOfRange { line, index, declared } => {
            put_u8(out, 5);
            put_u64(out, *line as u64);
            put_u64(out, *index as u64);
            put_u64(out, *declared as u64);
        }
    }
}

fn read_qubo_io_error(r: &mut Reader<'_>) -> Result<QuboIoError, StoreError> {
    Ok(match r.u8()? {
        0 => QuboIoError::MissingHeader,
        1 => QuboIoError::MalformedHeader { line: r.usize()? },
        2 => QuboIoError::BadNumber { line: r.usize()?, what: r.static_str()?, token: r.string()? },
        3 => QuboIoError::TermBeforeHeader { line: r.usize()? },
        4 => QuboIoError::MalformedTerm { line: r.usize()? },
        5 => QuboIoError::IndexOutOfRange {
            line: r.usize()?,
            index: r.usize()?,
            declared: r.usize()?,
        },
        _ => return Err(r.corrupt("unknown qubo io error tag")),
    })
}

// ---------------------------------------------------------------------
// Journal event codec
// ---------------------------------------------------------------------

fn put_journal_event(out: &mut Vec<u8>, e: &JournalEvent) {
    put_duration(out, e.at);
    put_str(out, e.backend);
    put_u32(out, e.attempt);
    match &e.kind {
        JournalKind::AttemptStarted => put_u8(out, 0),
        JournalKind::StageFailed { stage, error, suppressed } => {
            put_u8(out, 1);
            put_str(out, stage);
            put_exec_error(out, error);
            put_u8(out, u8::from(*suppressed));
        }
        JournalKind::FallbackTaken { what } => {
            put_u8(out, 2);
            put_str(out, what);
        }
        JournalKind::Retry { backoff } => {
            put_u8(out, 3);
            put_duration(out, *backoff);
        }
        JournalKind::BreakerOpened => put_u8(out, 4),
        JournalKind::BreakerShortCircuit => put_u8(out, 5),
        JournalKind::BreakerProbe => put_u8(out, 6),
        JournalKind::RungExhausted { reason } => {
            put_u8(out, 7);
            put_str(out, reason);
        }
        JournalKind::LadderStep { from, to } => {
            put_u8(out, 8);
            put_str(out, from);
            put_str(out, to);
        }
        JournalKind::PartialResult { candidates } => {
            put_u8(out, 9);
            put_u64(out, *candidates as u64);
        }
        JournalKind::Succeeded => put_u8(out, 10),
        JournalKind::Failed { error } => {
            put_u8(out, 11);
            put_exec_error(out, error);
        }
    }
}

fn read_journal_event(r: &mut Reader<'_>) -> Result<JournalEvent, StoreError> {
    let at = r.duration()?;
    let backend = r.static_str()?;
    let attempt = r.u32()?;
    let kind = match r.u8()? {
        0 => JournalKind::AttemptStarted,
        1 => JournalKind::StageFailed {
            stage: r.static_str()?,
            error: read_exec_error(r)?,
            suppressed: r.u8()? != 0,
        },
        2 => JournalKind::FallbackTaken { what: r.static_str()? },
        3 => JournalKind::Retry { backoff: r.duration()? },
        4 => JournalKind::BreakerOpened,
        5 => JournalKind::BreakerShortCircuit,
        6 => JournalKind::BreakerProbe,
        7 => JournalKind::RungExhausted { reason: r.string()? },
        8 => JournalKind::LadderStep { from: r.static_str()?, to: r.static_str()? },
        9 => JournalKind::PartialResult { candidates: r.usize()? },
        10 => JournalKind::Succeeded,
        11 => JournalKind::Failed { error: read_exec_error(r)? },
        _ => return Err(r.corrupt("unknown journal kind tag")),
    };
    Ok(JournalEvent { at, backend, attempt, kind })
}

// ---------------------------------------------------------------------
// WAL records
// ---------------------------------------------------------------------

/// One durable WAL record of a supervised run.
#[derive(Clone, Debug, PartialEq)]
pub enum Record {
    /// A journal event, persisted as it is journaled.
    Journal(JournalEvent),
    /// Budget position at the *start* of an attempt. A crash mid-attempt
    /// resumes with the same counters, hence the same derived attempt
    /// seed — which is what makes mid-solve checkpoints replayable.
    Progress {
        /// Ladder rung index the attempt runs on.
        rung: u32,
        /// Attempt index within the rung.
        rung_attempt: u32,
        /// Attempt index across the whole run (seeds derive from this).
        global_attempt: u32,
        /// Samples consumed by earlier attempts.
        samples_used: u64,
    },
    /// A ladder rung finished and the run stepped past it; resume never
    /// re-enters rungs recorded here.
    RungCompleted {
        /// The completed rung's index.
        rung: u32,
    },
    /// A mid-solve checkpoint from a backend hot loop (annealer reads,
    /// optimizer simplex, branch-and-bound incumbent, Grover schedule).
    Checkpoint {
        /// The backend's checkpoint tag.
        tag: String,
        /// Opaque payload; the backend's codec gives it meaning.
        payload: Vec<u8>,
    },
    /// The run reached a terminal event; resuming is now an error.
    Finished {
        /// True when the run produced a report.
        success: bool,
    },
}

/// Encode one [`Record`] for the WAL.
pub fn encode_record(rec: &Record) -> Vec<u8> {
    let mut out = Vec::new();
    match rec {
        Record::Journal(e) => {
            put_u8(&mut out, 1);
            put_journal_event(&mut out, e);
        }
        Record::Progress { rung, rung_attempt, global_attempt, samples_used } => {
            put_u8(&mut out, 2);
            put_u32(&mut out, *rung);
            put_u32(&mut out, *rung_attempt);
            put_u32(&mut out, *global_attempt);
            put_u64(&mut out, *samples_used);
        }
        Record::RungCompleted { rung } => {
            put_u8(&mut out, 3);
            put_u32(&mut out, *rung);
        }
        Record::Checkpoint { tag, payload } => {
            put_u8(&mut out, 4);
            put_str(&mut out, tag);
            put_bytes(&mut out, payload);
        }
        Record::Finished { success } => {
            put_u8(&mut out, 5);
            put_u8(&mut out, u8::from(*success));
        }
    }
    out
}

/// Decode one WAL record. Typed error — never a panic — on any
/// malformed input.
pub fn decode_record(buf: &[u8]) -> Result<Record, StoreError> {
    let mut r = Reader::new(buf);
    let rec = match r.u8()? {
        1 => Record::Journal(read_journal_event(&mut r)?),
        2 => Record::Progress {
            rung: r.u32()?,
            rung_attempt: r.u32()?,
            global_attempt: r.u32()?,
            samples_used: r.u64()?,
        },
        3 => Record::RungCompleted { rung: r.u32()? },
        4 => Record::Checkpoint { tag: r.string()?, payload: r.bytes()?.to_vec() },
        5 => Record::Finished {
            success: match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(r.corrupt("finished flag out of range")),
            },
        },
        _ => return Err(r.corrupt("unknown record tag")),
    };
    r.finish()?;
    Ok(rec)
}

// ---------------------------------------------------------------------
// Recovered run state
// ---------------------------------------------------------------------

/// Everything a resumed supervised run restores: the journal so far,
/// its monotonic timebase offset, the ladder/budget position, and the
/// latest mid-solve checkpoint per backend tag.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoveredRun {
    /// The journal as persisted — an exact prefix of what the crashed
    /// run held in memory.
    pub journal: RunJournal,
    /// The journal's timebase offset: the resumed run's clock starts
    /// here so journal offsets stay monotonic across the crash.
    pub elapsed: Duration,
    /// Ladder rungs fully completed; resume starts at this rung index.
    pub completed_rungs: u32,
    /// Attempt index within the interrupted rung.
    pub rung_attempt: u32,
    /// Attempt index across the whole run (attempt seeds derive from
    /// this, so the resumed attempt replays the crashed one exactly).
    pub global_attempt: u32,
    /// Samples consumed before the crash.
    pub samples_used: u64,
    /// Latest mid-solve checkpoint per backend tag.
    pub checkpoints: HashMap<String, Vec<u8>>,
    /// Terminal state, if the run finished before the crash — resuming
    /// a finished run is a typed error, not a re-execution.
    pub finished: Option<bool>,
}

impl RecoveredRun {
    /// Fold one WAL record into the recovered state.
    pub fn apply(&mut self, rec: Record) {
        match rec {
            Record::Journal(e) => {
                if e.at > self.elapsed {
                    self.elapsed = e.at;
                }
                self.journal.events.push(e);
            }
            Record::Progress { rung_attempt, global_attempt, samples_used, .. } => {
                self.rung_attempt = rung_attempt;
                self.global_attempt = global_attempt;
                self.samples_used = samples_used;
            }
            Record::RungCompleted { rung } => {
                self.completed_rungs = self.completed_rungs.max(rung + 1);
                // Checkpoints and attempt position belong to the rung
                // that just closed; the next rung starts fresh.
                self.rung_attempt = 0;
                self.checkpoints.clear();
            }
            Record::Checkpoint { tag, payload } => {
                self.checkpoints.insert(tag, payload);
            }
            Record::Finished { success } => {
                self.finished = Some(success);
            }
        }
    }

    /// Serialize for a snapshot. Mid-solve checkpoints are *not*
    /// snapshotted: snapshots are taken at rung boundaries and at the
    /// end of the run, where in-rung solver state is dead weight.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_duration(&mut out, self.elapsed);
        put_u32(&mut out, self.completed_rungs);
        put_u32(&mut out, self.rung_attempt);
        put_u32(&mut out, self.global_attempt);
        put_u64(&mut out, self.samples_used);
        put_u8(
            &mut out,
            match self.finished {
                None => 0,
                Some(false) => 1,
                Some(true) => 2,
            },
        );
        put_u64(&mut out, self.journal.events.len() as u64);
        for e in &self.journal.events {
            put_journal_event(&mut out, e);
        }
        out
    }

    /// Decode a snapshot produced by [`encode`](RecoveredRun::encode).
    pub fn decode(buf: &[u8]) -> Result<RecoveredRun, StoreError> {
        let mut r = Reader::new(buf);
        let elapsed = r.duration()?;
        let completed_rungs = r.u32()?;
        let rung_attempt = r.u32()?;
        let global_attempt = r.u32()?;
        let samples_used = r.u64()?;
        let finished = match r.u8()? {
            0 => None,
            1 => Some(false),
            2 => Some(true),
            _ => return Err(r.corrupt("finished flag out of range")),
        };
        let n = r.usize()?;
        let mut journal = RunJournal::default();
        for _ in 0..n {
            journal.events.push(read_journal_event(&mut r)?);
        }
        r.finish()?;
        Ok(RecoveredRun {
            journal,
            elapsed,
            completed_rungs,
            rung_attempt,
            global_attempt,
            samples_used,
            checkpoints: HashMap::new(),
            finished,
        })
    }

    /// Rebuild the run state from what the store recovered on open:
    /// decode the snapshot (if any), then fold every WAL record beyond
    /// it, in order.
    pub fn recover(recovered: &Recovered) -> Result<RecoveredRun, StoreError> {
        let mut run = match &recovered.snapshot {
            Some(bytes) => RecoveredRun::decode(bytes)?,
            None => RecoveredRun::default(),
        };
        for rec in &recovered.records {
            run.apply(decode_record(rec)?);
        }
        Ok(run)
    }
}

// ---------------------------------------------------------------------
// The live sink
// ---------------------------------------------------------------------

/// The live persistence sink for one supervised run: owns the
/// [`RunStore`], serializes [`Record`]s into it, and doubles as the
/// [`Checkpointer`] every backend hot loop sees.
///
/// Persistence failures are deliberately *soft* from the solver's
/// perspective ([`Checkpointer::save`] is infallible): the first store
/// failure is latched, the run's [`CancelToken`] is cancelled so the
/// run winds down cooperatively, and [`death`](DurableRun::death)
/// exposes the typed error for the caller and the chaos harness.
pub struct DurableRun {
    store: Mutex<RunStore>,
    restored: Mutex<HashMap<String, Vec<u8>>>,
    cancel: Mutex<Option<CancelToken>>,
    death: Mutex<Option<StoreError>>,
    interval: u64,
}

impl DurableRun {
    /// A sink over a fresh store.
    pub fn new(store: RunStore) -> Self {
        Self::with_restored(store, HashMap::new())
    }

    /// A sink over a resumed store, pre-loaded with the recovered
    /// mid-solve checkpoints. Each checkpoint is handed out exactly
    /// once ([`Checkpointer::load`] consumes), so a later attempt with
    /// a different seed can never restore stale solver state.
    pub fn with_restored(store: RunStore, checkpoints: HashMap<String, Vec<u8>>) -> Self {
        DurableRun {
            store: Mutex::new(store),
            restored: Mutex::new(checkpoints),
            cancel: Mutex::new(None),
            death: Mutex::new(None),
            interval: DEFAULT_CHECKPOINT_INTERVAL,
        }
    }

    /// Override the mid-solve checkpoint interval (work units between
    /// checkpoints; 0 disables mid-solve checkpoints but keeps journal
    /// and rung durability).
    pub fn with_interval(mut self, interval: u64) -> Self {
        self.interval = interval;
        self
    }

    /// Bind the run's cancellation token; a store failure cancels it so
    /// the run winds down instead of computing results that can no
    /// longer be persisted.
    pub fn bind_cancel(&self, token: CancelToken) {
        *self.cancel.lock() = Some(token);
    }

    /// The first store failure, if the store died mid-run.
    pub fn death(&self) -> Option<StoreError> {
        self.death.lock().clone()
    }

    /// Append one record durably. Failures are latched, not returned.
    pub fn record(&self, rec: &Record) {
        let bytes = encode_record(rec);
        let result = self.store.lock().append(&bytes);
        if let Err(e) = result {
            self.fail(e);
        }
    }

    /// Write a snapshot (collapsing the WAL). Failures are latched.
    pub fn snapshot(&self, state: &[u8]) {
        let result = self.store.lock().snapshot(state);
        if let Err(e) = result {
            self.fail(e);
        }
    }

    fn fail(&self, e: StoreError) {
        // Using a dead store reports `Dead` on every call; keep the
        // original failure, which names the kill-point or I/O error.
        let mut death = self.death.lock();
        if death.is_none() {
            *death = Some(e);
        }
        drop(death);
        if let Some(t) = &*self.cancel.lock() {
            t.cancel();
        }
    }
}

impl Checkpointer for DurableRun {
    fn save(&self, tag: &str, payload: &[u8]) {
        self.record(&Record::Checkpoint { tag: tag.to_string(), payload: payload.to_vec() });
    }

    fn load(&self, tag: &str) -> Option<Vec<u8>> {
        self.restored.lock().remove(tag)
    }

    fn interval(&self) -> u64 {
        self.interval
    }
}

// ---------------------------------------------------------------------
// Backend checkpoint payloads
// ---------------------------------------------------------------------

/// Encode annealer progress: reads completed plus every decoded sample
/// so far, in generation order.
pub fn encode_anneal_progress(reads_done: usize, samples: &[AnnealSample]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, reads_done as u64);
    put_u64(&mut out, samples.len() as u64);
    for s in samples {
        put_u64(&mut out, s.assignment.len() as u64);
        for &b in &s.assignment {
            put_u8(&mut out, u8::from(b));
        }
        put_f64(&mut out, s.energy);
        put_u64(&mut out, s.broken_chains as u64);
    }
    out
}

/// Decode annealer progress; `None` on any malformed payload (the
/// backend then starts the job from scratch).
pub fn decode_anneal_progress(buf: &[u8]) -> Option<(usize, Vec<AnnealSample>)> {
    let mut r = Reader::new(buf);
    let inner = |r: &mut Reader<'_>| -> Result<(usize, Vec<AnnealSample>), StoreError> {
        let reads_done = r.usize()?;
        let n = r.usize()?;
        let mut samples = Vec::new();
        for _ in 0..n {
            let len = r.usize()?;
            if len > r.buf.len().saturating_sub(r.pos) {
                return Err(r.corrupt("assignment length exceeds payload"));
            }
            let mut assignment = Vec::with_capacity(len);
            for _ in 0..len {
                assignment.push(r.u8()? != 0);
            }
            let energy = r.f64()?;
            let broken_chains = r.usize()?;
            samples.push(AnnealSample { assignment, energy, broken_chains });
        }
        r.finish()?;
        Ok((reads_done, samples))
    };
    inner(&mut r).ok()
}

/// Encode a Nelder–Mead optimizer state (the QAOA backend's
/// checkpoint).
pub fn encode_nm_state(state: &NmState) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, state.evaluations as u64);
    put_u64(&mut out, state.iterations as u64);
    put_u64(&mut out, state.simplex.len() as u64);
    for (x, fx) in &state.simplex {
        put_u64(&mut out, x.len() as u64);
        for &v in x {
            put_f64(&mut out, v);
        }
        put_f64(&mut out, *fx);
    }
    out
}

/// Decode a Nelder–Mead optimizer state; `None` on any malformed
/// payload.
pub fn decode_nm_state(buf: &[u8]) -> Option<NmState> {
    let mut r = Reader::new(buf);
    let inner = |r: &mut Reader<'_>| -> Result<NmState, StoreError> {
        let evaluations = r.usize()?;
        let iterations = r.usize()?;
        let n = r.usize()?;
        let mut simplex = Vec::new();
        for _ in 0..n {
            let d = r.usize()?;
            if d.saturating_mul(8) > r.buf.len().saturating_sub(r.pos) {
                return Err(r.corrupt("simplex vertex exceeds payload"));
            }
            let mut x = Vec::with_capacity(d);
            for _ in 0..d {
                x.push(r.f64()?);
            }
            let fx = r.f64()?;
            simplex.push((x, fx));
        }
        r.finish()?;
        Ok(NmState { simplex, evaluations, iterations })
    };
    inner(&mut r).ok()
}

/// Encode a branch-and-bound incumbent (the classical backend's
/// checkpoint).
pub fn encode_incumbent(inc: &Incumbent) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, inc.assignment.len() as u64);
    for &b in &inc.assignment {
        put_u8(&mut out, u8::from(b));
    }
    put_u64(&mut out, inc.soft_satisfied as u64);
    put_u64(&mut out, inc.soft_weight);
    put_u64(&mut out, inc.violated_weight);
    out
}

/// Decode a branch-and-bound incumbent; `None` on any malformed
/// payload.
pub fn decode_incumbent(buf: &[u8]) -> Option<Incumbent> {
    let mut r = Reader::new(buf);
    let inner = |r: &mut Reader<'_>| -> Result<Incumbent, StoreError> {
        let len = r.usize()?;
        if len > r.buf.len().saturating_sub(r.pos) {
            return Err(r.corrupt("assignment length exceeds payload"));
        }
        let mut assignment = Vec::with_capacity(len);
        for _ in 0..len {
            assignment.push(r.u8()? != 0);
        }
        let soft_satisfied = r.usize()?;
        let soft_weight = r.u64()?;
        let violated_weight = r.u64()?;
        r.finish()?;
        Ok(Incumbent { assignment, soft_satisfied, soft_weight, violated_weight })
    };
    inner(&mut r).ok()
}

/// Progress of the Grover backend's BBHT schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GroverProgress {
    /// Next BBHT guess index to run.
    pub next_guess: u64,
    /// Measurements taken so far.
    pub measurements: u64,
    /// Grover iterations accumulated so far.
    pub total_iterations: u64,
    /// The current BBHT iteration-count estimate `m`.
    pub m: f64,
    /// Success probability reported by the last measurement.
    pub success_probability: f64,
}

/// Encode the Grover backend's BBHT schedule position.
pub fn encode_grover_progress(p: &GroverProgress) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, p.next_guess);
    put_u64(&mut out, p.measurements);
    put_u64(&mut out, p.total_iterations);
    put_f64(&mut out, p.m);
    put_f64(&mut out, p.success_probability);
    out
}

/// Decode the Grover backend's BBHT schedule position; `None` on any
/// malformed payload.
pub fn decode_grover_progress(buf: &[u8]) -> Option<GroverProgress> {
    let mut r = Reader::new(buf);
    let inner = |r: &mut Reader<'_>| -> Result<GroverProgress, StoreError> {
        let p = GroverProgress {
            next_guess: r.u64()?,
            measurements: r.u64()?,
            total_iterations: r.u64()?,
            m: r.f64()?,
            success_probability: r.f64()?,
        };
        r.finish()?;
        Ok(p)
    };
    inner(&mut r).ok()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<JournalEvent> {
        vec![
            JournalEvent {
                at: Duration::new(3, 999_999_999),
                backend: "annealer",
                attempt: 0,
                kind: JournalKind::AttemptStarted,
            },
            JournalEvent {
                at: Duration::from_micros(1),
                backend: "gate",
                attempt: 2,
                kind: JournalKind::StageFailed {
                    stage: "sample",
                    error: ExecError::Transient {
                        backend: "gate",
                        stage: "sample",
                        kind: FaultKind::ChainBreakStorm,
                        attempt: 2,
                    },
                    suppressed: true,
                },
            },
            JournalEvent {
                at: Duration::ZERO,
                backend: "supervisor",
                attempt: 7,
                kind: JournalKind::Failed {
                    error: ExecError::Store(StoreError::Corrupt {
                        path: "wal.log".into(),
                        offset: 99,
                        reason: "bad crc".into(),
                    }),
                },
            },
            JournalEvent {
                at: Duration::from_millis(5),
                backend: "classical",
                attempt: 1,
                kind: JournalKind::RungExhausted { reason: "permanent error: x".into() },
            },
            JournalEvent {
                at: Duration::from_secs(1),
                backend: "grover",
                attempt: 0,
                kind: JournalKind::LadderStep { from: "grover", to: "classical" },
            },
        ]
    }

    #[test]
    fn records_round_trip_exactly() {
        let mut recs: Vec<Record> = sample_events().into_iter().map(Record::Journal).collect();
        recs.push(Record::Progress {
            rung: 1,
            rung_attempt: 3,
            global_attempt: 9,
            samples_used: 1234,
        });
        recs.push(Record::RungCompleted { rung: 2 });
        recs.push(Record::Checkpoint { tag: "annealer".into(), payload: vec![1, 2, 3] });
        recs.push(Record::Finished { success: true });
        recs.push(Record::Finished { success: false });
        for rec in recs {
            let bytes = encode_record(&rec);
            assert_eq!(decode_record(&bytes).unwrap(), rec, "{rec:?}");
        }
    }

    #[test]
    fn every_exec_error_round_trips() {
        let errors = vec![
            ExecError::Compile(CompileError::Unsatisfiable("c1".into())),
            ExecError::Compile(CompileError::NoQuboFound { ancillas_tried: 4, shape: "s".into() }),
            ExecError::Anneal(AnnealError::EmbeddingFailed { logical_vars: 9, device_qubits: 5 }),
            ExecError::Qaoa(QaoaError::TooManyQubits { needed: 70, available: 65 }),
            ExecError::Qaoa(QaoaError::TooLargeToSimulate { needed: 30, sim_limit: 24 }),
            ExecError::Unsatisfiable,
            ExecError::SoftUnsupported { num_soft: 3 },
            ExecError::TooLarge { vars: 30, limit: 20 },
            ExecError::NoCandidates,
            ExecError::Cancelled { backend: "annealer", stage: "embed" },
            ExecError::Transient {
                backend: "classical",
                stage: "sample",
                kind: FaultKind::Injected,
                attempt: 5,
            },
            ExecError::BreakerOpen { backend: "gate" },
            ExecError::BudgetExhausted { what: "deadline" },
            ExecError::Store(StoreError::Io {
                op: "append",
                path: "/x/wal.log".into(),
                kind: "permission denied".into(),
            }),
            ExecError::Store(StoreError::Killed { point: "crash-mid-frame" }),
            ExecError::Store(StoreError::Dead),
            ExecError::Store(StoreError::NotEmpty { path: "/x".into() }),
            ExecError::Store(StoreError::NoRun { path: "/y".into() }),
            ExecError::QuboIo(QuboIoError::MissingHeader),
            ExecError::QuboIo(QuboIoError::BadNumber {
                line: 3,
                what: "value",
                token: "zzz".into(),
            }),
            ExecError::QuboIo(QuboIoError::IndexOutOfRange { line: 2, index: 9, declared: 4 }),
            ExecError::AlreadyFinished { dir: "/runs/a".into() },
        ];
        for e in errors {
            let mut bytes = Vec::new();
            put_exec_error(&mut bytes, &e);
            let mut r = Reader::new(&bytes);
            assert_eq!(read_exec_error(&mut r).unwrap(), e, "{e:?}");
            r.finish().unwrap();
        }
    }

    #[test]
    fn journal_timebase_round_trips_bit_exactly() {
        // The satellite bugfix: journal offsets are monotonic
        // durations serialized exactly (secs + subsec nanos), never
        // wall-clock, so a replayed journal compares equal.
        for e in sample_events() {
            let mut bytes = Vec::new();
            put_journal_event(&mut bytes, &e);
            let mut r = Reader::new(&bytes);
            let back = read_journal_event(&mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(back, e);
            assert_eq!(back.at.as_nanos(), e.at.as_nanos());
            // Static strings intern back to the same vocabulary entry.
            assert!(std::ptr::eq(back.backend, intern(e.backend)), "{} not interned", e.backend);
        }
    }

    #[test]
    fn snapshot_state_round_trips() {
        let mut run = RecoveredRun {
            elapsed: Duration::new(12, 345_678_901),
            completed_rungs: 2,
            rung_attempt: 1,
            global_attempt: 6,
            samples_used: 5000,
            finished: None,
            ..RecoveredRun::default()
        };
        run.journal.events = sample_events();
        let back = RecoveredRun::decode(&run.encode()).unwrap();
        assert_eq!(back, run);
        let finished = RecoveredRun { finished: Some(true), ..run.clone() };
        assert_eq!(RecoveredRun::decode(&finished.encode()).unwrap().finished, Some(true));
    }

    #[test]
    fn recovery_folds_snapshot_then_records() {
        let mut snap = RecoveredRun { completed_rungs: 1, global_attempt: 2, ..Default::default() };
        snap.journal.events.push(sample_events().remove(0));
        let records = vec![
            encode_record(&Record::Progress {
                rung: 1,
                rung_attempt: 0,
                global_attempt: 3,
                samples_used: 100,
            }),
            encode_record(&Record::Checkpoint { tag: "classical".into(), payload: vec![9] }),
            encode_record(&Record::Journal(JournalEvent {
                at: Duration::from_secs(5),
                backend: "classical",
                attempt: 0,
                kind: JournalKind::AttemptStarted,
            })),
        ];
        let recovered = Recovered { snapshot: Some(snap.encode()), records, recovered_tail: false };
        let run = RecoveredRun::recover(&recovered).unwrap();
        assert_eq!(run.completed_rungs, 1);
        assert_eq!(run.global_attempt, 3);
        assert_eq!(run.samples_used, 100);
        assert_eq!(run.journal.events.len(), 2);
        assert_eq!(run.elapsed, Duration::from_secs(5), "elapsed tracks the latest event");
        assert_eq!(run.checkpoints.get("classical"), Some(&vec![9]));
    }

    #[test]
    fn rung_completion_discards_in_rung_state() {
        let mut run = RecoveredRun::default();
        run.apply(Record::Progress {
            rung: 0,
            rung_attempt: 4,
            global_attempt: 5,
            samples_used: 7,
        });
        run.apply(Record::Checkpoint { tag: "annealer".into(), payload: vec![1] });
        run.apply(Record::RungCompleted { rung: 0 });
        assert_eq!(run.completed_rungs, 1);
        assert_eq!(run.rung_attempt, 0, "next rung starts at attempt 0");
        assert!(run.checkpoints.is_empty(), "checkpoints die with their rung");
        assert_eq!(run.global_attempt, 5, "global counters survive");
    }

    #[test]
    fn corrupt_records_are_typed_errors_never_panics() {
        // Every truncation of a valid record must fail cleanly.
        let rec = Record::Journal(sample_events().remove(1));
        let bytes = encode_record(&rec);
        for cut in 0..bytes.len() {
            assert!(decode_record(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
        // Unknown tags, hostile lengths, bad utf-8.
        assert!(decode_record(&[]).is_err());
        assert!(decode_record(&[99]).is_err());
        let mut hostile = vec![4u8];
        put_u64(&mut hostile, u64::MAX); // tag length far beyond the buffer
        hostile.extend_from_slice(b"xx");
        assert!(decode_record(&hostile).is_err());
        let mut bad_utf8 = vec![4u8];
        put_bytes(&mut bad_utf8, &[0xff, 0xfe]);
        put_bytes(&mut bad_utf8, b"");
        assert!(decode_record(&bad_utf8).is_err());
        // Snapshots too.
        let snap = RecoveredRun { completed_rungs: 3, ..Default::default() }.encode();
        for cut in 0..snap.len() {
            assert!(RecoveredRun::decode(&snap[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn backend_checkpoint_payloads_round_trip() {
        let samples = vec![
            AnnealSample { assignment: vec![true, false, true], energy: -1.25, broken_chains: 2 },
            AnnealSample { assignment: vec![false], energy: f64::MIN_POSITIVE, broken_chains: 0 },
        ];
        let (done, back) = decode_anneal_progress(&encode_anneal_progress(17, &samples)).unwrap();
        assert_eq!(done, 17);
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].assignment, samples[0].assignment);
        assert_eq!(back[0].energy.to_bits(), samples[0].energy.to_bits());
        assert_eq!(back[1].broken_chains, 0);

        let nm = NmState {
            simplex: vec![(vec![0.1, -0.2], 3.5), (vec![1.0, 2.0], -0.5), (vec![0.0, 0.0], 9.0)],
            evaluations: 41,
            iterations: 12,
        };
        assert_eq!(decode_nm_state(&encode_nm_state(&nm)).unwrap(), nm);

        let inc = Incumbent {
            assignment: vec![true, true, false],
            soft_satisfied: 2,
            soft_weight: 5,
            violated_weight: 1,
        };
        assert_eq!(decode_incumbent(&encode_incumbent(&inc)).unwrap(), inc);

        let g = GroverProgress {
            next_guess: 9,
            measurements: 9,
            total_iterations: 140,
            m: 10.6044,
            success_probability: 0.82,
        };
        assert_eq!(decode_grover_progress(&encode_grover_progress(&g)).unwrap(), g);

        // Malformed payloads decode to None, never panic.
        for buf in [&b""[..], &[0xff; 7][..], &[0xff; 64][..]] {
            assert!(decode_anneal_progress(buf).is_none());
            assert!(decode_nm_state(buf).is_none());
            assert!(decode_incumbent(buf).is_none());
            assert!(decode_grover_progress(buf).is_none());
        }
    }
}
