//! [`ExecutionPlan`]: compile once, fan out to any backend or seed
//! sweep.
//!
//! The plan owns the two expensive program-level artifacts — the
//! compiled QUBO and the classical optimality oracle — behind caches,
//! so a multi-seed or multi-backend study (the shape of the Fig. 7/8
//! sweeps) pays for each exactly once instead of per run. The paper
//! itself warns what the alternative costs: its prototype's redundant
//! recompilation made compilation 40–50× slower than a direct
//! classical solve (§VIII-C).

use crate::backend::{Backend, BackendMetrics, Candidates, Prepared};
use crate::breaker::{BreakerConfig, CircuitBreaker};
use crate::error::{ExecError, FailedAttempt};
use crate::journal::{RunCtx, RunJournal};
use crate::stage::StageTimings;
use nck_classical::OptimalityOracle;
use nck_compile::{compile, CompiledProgram, CompilerOptions};
use nck_core::{Program, SolutionQuality};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Classification tally over one run's candidate assignments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Tally {
    /// Candidates classified optimal.
    pub optimal: usize,
    /// Candidates classified suboptimal.
    pub suboptimal: usize,
    /// Candidates classified incorrect.
    pub incorrect: usize,
}

impl Tally {
    fn add(&mut self, q: SolutionQuality) {
        match q {
            SolutionQuality::Optimal => self.optimal += 1,
            SolutionQuality::Suboptimal => self.suboptimal += 1,
            SolutionQuality::Incorrect => self.incorrect += 1,
        }
    }

    /// Total candidates tallied.
    pub fn total(&self) -> usize {
        self.optimal + self.suboptimal + self.incorrect
    }
}

/// Cache counters for one plan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Actual compilations performed (1 after any number of runs).
    pub compiles: u64,
    /// Runs served the compiled program from the cache.
    pub compile_cache_hits: u64,
    /// Optimality-oracle classical solves performed.
    pub oracle_builds: u64,
    /// Runs served the oracle from the cache (or from a classical
    /// backend's proven optimum).
    pub oracle_cache_hits: u64,
}

/// The full result of one backend execution through a plan.
#[derive(Clone, Debug)]
pub struct ExecReport {
    /// Which backend produced this result.
    pub backend: &'static str,
    /// Best assignment over the program variables.
    pub assignment: Vec<bool>,
    /// Its quality per Definition 8, judged against the classical
    /// optimum.
    pub quality: SolutionQuality,
    /// Soft constraints satisfied by `assignment` (count).
    pub soft_satisfied: usize,
    /// Soft *weight* satisfied by `assignment`.
    pub soft_weight: u64,
    /// The classical soft optimum, as a satisfied weight (equal to a
    /// count when all weights are 1).
    pub max_soft: u64,
    /// Classification tally over every candidate the backend returned.
    pub tally: Tally,
    /// Per-stage wall-times and counters.
    pub timings: StageTimings,
    /// Backend-specific metrics.
    pub metrics: BackendMetrics,
    /// The compiled program, shared with the plan's cache.
    pub compiled: Arc<CompiledProgram>,
    /// The structured journal of the run: every attempt, fault,
    /// fallback, breaker transition, and ladder step. Empty for plain
    /// fault-free runs.
    pub journal: RunJournal,
}

/// A program prepared for execution: compiles once, fans out to any
/// backend or seed sweep.
#[derive(Debug)]
pub struct ExecutionPlan<'p> {
    program: &'p Program,
    options: CompilerOptions,
    compiled: Mutex<Option<Arc<CompiledProgram>>>,
    oracle: Mutex<Option<Arc<OptimalityOracle>>>,
    compiles: AtomicU64,
    compile_hits: AtomicU64,
    oracle_builds: AtomicU64,
    oracle_hits: AtomicU64,
    breaker_config: BreakerConfig,
    breakers: Mutex<HashMap<&'static str, CircuitBreaker>>,
}

impl<'p> ExecutionPlan<'p> {
    /// A plan over `program` with default compiler options.
    pub fn new(program: &'p Program) -> Self {
        Self::with_options(program, CompilerOptions::default())
    }

    /// A plan over `program` with explicit compiler options.
    pub fn with_options(program: &'p Program, options: CompilerOptions) -> Self {
        ExecutionPlan {
            program,
            options,
            compiled: Mutex::new(None),
            oracle: Mutex::new(None),
            compiles: AtomicU64::new(0),
            compile_hits: AtomicU64::new(0),
            oracle_builds: AtomicU64::new(0),
            oracle_hits: AtomicU64::new(0),
            breaker_config: BreakerConfig::default(),
            breakers: Mutex::new(HashMap::new()),
        }
    }

    /// Override the circuit-breaker tuning used for every backend
    /// executed through this plan.
    pub fn with_breaker_config(mut self, config: BreakerConfig) -> Self {
        self.breaker_config = config;
        self
    }

    /// Pre-seed the optimality oracle (e.g. from a closed-form or
    /// dynamic-programming optimum, as the scaling studies do for
    /// instances too large to branch-and-bound).
    pub fn with_oracle(self, oracle: OptimalityOracle) -> Self {
        *self.oracle.lock() = Some(Arc::new(oracle));
        self
    }

    /// The program this plan executes.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// The compiled program, compiling on first use and serving the
    /// cache thereafter.
    pub fn compiled(&self) -> Result<Arc<CompiledProgram>, ExecError> {
        self.compiled_cached().map(|(c, _)| c)
    }

    fn compiled_cached(&self) -> Result<(Arc<CompiledProgram>, bool), ExecError> {
        let mut guard = self.compiled.lock();
        if let Some(c) = &*guard {
            self.compile_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(c), true));
        }
        let compiled = Arc::new(compile(self.program, &self.options)?);
        self.compiles.fetch_add(1, Ordering::Relaxed);
        *guard = Some(Arc::clone(&compiled));
        Ok((compiled, false))
    }

    /// The optimality oracle, built by a classical solve on first use
    /// and served from the cache thereafter.
    pub fn oracle(&self) -> Arc<OptimalityOracle> {
        let mut guard = self.oracle.lock();
        if let Some(o) = &*guard {
            self.oracle_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(o);
        }
        let oracle = Arc::new(OptimalityOracle::build(self.program));
        self.oracle_builds.fetch_add(1, Ordering::Relaxed);
        *guard = Some(Arc::clone(&oracle));
        oracle
    }

    /// Seed the oracle from a proven optimum if it isn't built yet.
    fn seed_oracle(&self, soft_weight: u64) {
        let mut guard = self.oracle.lock();
        if guard.is_none() {
            *guard = Some(Arc::new(OptimalityOracle { max_soft: Some(soft_weight) }));
        }
    }

    /// Cache counters so far.
    pub fn stats(&self) -> PlanStats {
        PlanStats {
            compiles: self.compiles.load(Ordering::Relaxed),
            compile_cache_hits: self.compile_hits.load(Ordering::Relaxed),
            oracle_builds: self.oracle_builds.load(Ordering::Relaxed),
            oracle_cache_hits: self.oracle_hits.load(Ordering::Relaxed),
        }
    }

    /// Run a closure against the (lazily created) circuit breaker for
    /// `backend`. Breakers are per-plan, per-backend-name, shared
    /// across every supervised run through this plan.
    pub fn breaker<R>(&self, backend: &'static str, f: impl FnOnce(&mut CircuitBreaker) -> R) -> R {
        let mut guard = self.breakers.lock();
        let b = guard.entry(backend).or_insert_with(|| CircuitBreaker::new(self.breaker_config));
        f(b)
    }

    /// Execute once on `backend` with `seed`, sharing the plan's
    /// compiled program and oracle. A plain, unsupervised run: never
    /// cancelled, attempt 0, no retries — exactly the pre-supervisor
    /// behaviour.
    pub fn run(&self, backend: &dyn Backend, seed: u64) -> Result<ExecReport, ExecError> {
        let mut ctx = RunCtx::plain(backend.name());
        self.run_with_ctx(backend, seed, &mut ctx)
    }

    /// Execute once on `backend` under an explicit [`RunCtx`] (the
    /// supervisor's entry point: the context carries the shared
    /// cancellation token, the attempt index, and the journal
    /// timebase). On success the context's journal and stage timings
    /// move into the report.
    pub fn run_with_ctx(
        &self,
        backend: &dyn Backend,
        seed: u64,
        ctx: &mut RunCtx,
    ) -> Result<ExecReport, ExecError> {
        ctx.enter_stage("compile");
        let t = Instant::now();
        let (compiled, compile_hit) = self.compiled_cached()?;
        // A cache hit costs only the lock; a miss is the real compile,
        // whose wall-time the compiler already recorded.
        ctx.stages.compile = if compile_hit { t.elapsed() } else { compiled.elapsed };
        ctx.stages.compile_cache_hit = compile_hit;
        let prepared = Prepared { program: self.program, compiled: &compiled };
        let (candidates, metrics) = backend.run(&prepared, seed, ctx)?;

        ctx.enter_stage("decode");
        let t = Instant::now();
        let assignments: Vec<Vec<bool>> = match candidates {
            Candidates::Qubo(raw) => {
                raw.iter().map(|a| compiled.program_assignment(a).to_vec()).collect()
            }
            Candidates::Program(raw) => raw,
            Candidates::Exact { assignment, soft_weight } => {
                self.seed_oracle(soft_weight);
                vec![assignment]
            }
        };
        ctx.stages.decode = t.elapsed();
        ctx.stages.candidates = assignments.len();

        ctx.enter_stage("classify");
        let t = Instant::now();
        let oracle = self.oracle();
        let max_soft = oracle.max_soft.ok_or(ExecError::Unsatisfiable)?;
        let mut tally = Tally::default();
        let mut best: Option<(SolutionQuality, u64, usize, Vec<bool>)> = None;
        for a in assignments {
            let quality = oracle.classify(self.program, &a);
            tally.add(quality);
            let ev = self.program.evaluate(&a);
            if best
                .as_ref()
                .is_none_or(|(q, w, _, _)| (quality, ev.soft_weight_satisfied) > (*q, *w))
            {
                best = Some((quality, ev.soft_weight_satisfied, ev.soft_satisfied, a));
            }
        }
        ctx.stages.classify = t.elapsed();
        let (quality, soft_weight, soft_satisfied, assignment) =
            best.ok_or(ExecError::NoCandidates)?;
        Ok(ExecReport {
            backend: backend.name(),
            assignment,
            quality,
            soft_satisfied,
            soft_weight,
            max_soft,
            tally,
            timings: std::mem::take(&mut ctx.stages),
            metrics,
            compiled,
            journal: std::mem::take(&mut ctx.journal),
        })
    }

    /// Like [`run_with_ctx`](ExecutionPlan::run_with_ctx), but failures
    /// come back as a [`FailedAttempt`] carrying the backend name, the
    /// pipeline stage that was executing, and the attempt index — the
    /// provenance the supervisor journals and reports.
    pub fn run_attempt(
        &self,
        backend: &dyn Backend,
        seed: u64,
        ctx: &mut RunCtx,
    ) -> Result<ExecReport, FailedAttempt> {
        self.run_with_ctx(backend, seed, ctx).map_err(|error| FailedAttempt {
            backend: ctx.backend,
            stage: ctx.stage,
            attempt: ctx.attempt,
            error,
        })
    }

    /// Execute the same backend across a seed sweep — the Fig. 7/8
    /// shape. The program compiles exactly once for the whole sweep.
    pub fn run_seeds(
        &self,
        backend: &dyn Backend,
        seeds: &[u64],
    ) -> Result<Vec<ExecReport>, ExecError> {
        seeds.iter().map(|&s| self.run(backend, s)).collect()
    }

    /// Fan the same compiled program out to several backends.
    pub fn run_each(
        &self,
        backends: &[&dyn Backend],
        seed: u64,
    ) -> Vec<Result<ExecReport, ExecError>> {
        backends.iter().map(|b| self.run(*b, seed)).collect()
    }
}
