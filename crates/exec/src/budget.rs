//! [`RunBudget`] and [`RetryPolicy`]: the cost envelope of a
//! supervised execution.
//!
//! A budget bounds a run in three dimensions — wall-clock deadline,
//! total attempts across every ladder rung, and total candidate
//! samples — and the retry policy spaces attempts with deterministic,
//! seedable exponential backoff plus jitter. Determinism matters here
//! the same way it does everywhere else in this reproduction: two runs
//! with the same seed must schedule the same backoffs, so chaos-suite
//! failures replay exactly.

use nck_cancel::CancelToken;
use std::time::Duration;

/// SplitMix64 finalizer (same mixing as the annealer's per-read seed
/// derivation): jitter for attempt `k` of seed `s` is derived from the
/// `k`-th element of the SplitMix64 stream at `s`.
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// The cost envelope of one supervised run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunBudget {
    /// Wall-clock deadline for the whole run (all rungs, retries, and
    /// backoffs included). `None` = unbounded.
    pub deadline: Option<Duration>,
    /// Total attempts across every rung of the ladder.
    pub max_attempts: u32,
    /// Total candidate samples across every attempt. `None` =
    /// unbounded. Attempts already in flight complete; the budget
    /// gates *further* attempts.
    pub max_samples: Option<u64>,
}

impl Default for RunBudget {
    fn default() -> Self {
        RunBudget { deadline: None, max_attempts: 12, max_samples: None }
    }
}

impl RunBudget {
    /// A budget bounded only by `deadline`.
    pub fn with_deadline(deadline: Duration) -> Self {
        RunBudget { deadline: Some(deadline), ..RunBudget::default() }
    }

    /// A cancellation token armed with this budget's deadline (a
    /// never-firing token when unbounded).
    pub fn token(&self) -> CancelToken {
        match self.deadline {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::never(),
        }
    }
}

/// Deterministic exponential backoff with jitter.
///
/// The delay before retry `k` (0-based) is
/// `min(cap, base · 2^k) · (1 − jitter · u_k)` where `u_k ∈ [0, 1)` is
/// drawn from the SplitMix64 stream at `seed` — fully determined by
/// `(seed, k)`, monotonically bounded by `cap`, and never negative.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Retries per rung after the first attempt (so a rung makes at
    /// most `1 + retries_per_rung` attempts).
    pub retries_per_rung: u32,
    /// Base backoff before the first retry.
    pub base: Duration,
    /// Upper bound on any single backoff delay.
    pub cap: Duration,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a
    /// deterministic factor in `[1 − jitter, 1]`.
    pub jitter: f64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries_per_rung: 2,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(200),
            jitter: 0.5,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The backoff delay before retry `attempt` (0-based): capped
    /// exponential with deterministic jitter.
    pub fn delay(&self, attempt: u32) -> Duration {
        let exp = self.base.as_secs_f64() * 2f64.powi(attempt.min(63) as i32);
        let capped = exp.min(self.cap.as_secs_f64());
        let u = splitmix64(self.seed ^ u64::from(attempt).wrapping_mul(0x9e3779b97f4a7c15)) as f64
            / u64::MAX as f64;
        let jitter = self.jitter.clamp(0.0, 1.0);
        Duration::from_secs_f64(capped * (1.0 - jitter * u))
    }

    /// The full backoff schedule for one rung, clamped so that the
    /// *cumulative* scheduled backoff never exceeds `budget`'s
    /// deadline: once the running total reaches the deadline the
    /// remaining delays are truncated to zero (the run would be
    /// cancelled before sleeping them anyway).
    pub fn schedule(&self, budget: &RunBudget) -> Vec<Duration> {
        let mut total = Duration::ZERO;
        (0..self.retries_per_rung)
            .map(|k| {
                let mut d = self.delay(k);
                if let Some(deadline) = budget.deadline {
                    d = d.min(deadline.saturating_sub(total));
                }
                total += d;
                d
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unbounded_in_time() {
        let b = RunBudget::default();
        assert!(b.deadline.is_none());
        assert!(!b.token().is_cancelled());
    }

    #[test]
    fn deadline_budget_arms_the_token() {
        let b = RunBudget::with_deadline(Duration::ZERO);
        assert!(b.token().is_cancelled());
    }

    #[test]
    fn delay_is_deterministic_and_capped() {
        let p = RetryPolicy { seed: 42, ..RetryPolicy::default() };
        for k in 0..10 {
            assert_eq!(p.delay(k), p.delay(k));
            assert!(p.delay(k) <= p.cap);
        }
        let q = RetryPolicy { seed: 43, ..p };
        assert_ne!(p.delay(0), q.delay(0), "different seeds must jitter differently");
    }

    #[test]
    fn schedule_respects_deadline() {
        let p = RetryPolicy {
            retries_per_rung: 8,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(1),
            jitter: 0.0,
            seed: 1,
        };
        let b = RunBudget::with_deadline(Duration::from_millis(120));
        let schedule = p.schedule(&b);
        let total: Duration = schedule.iter().sum();
        assert!(total <= Duration::from_millis(120), "total backoff {total:?} exceeds deadline");
    }
}
