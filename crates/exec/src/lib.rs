//! # nck-exec
//!
//! The unified multi-backend execution layer — the paper's claim that
//! *one* NchooseK program runs unchanged on D-Wave, IBM Q, and Z3,
//! expressed as one [`Backend`] trait with four implementations:
//!
//! * [`AnnealerBackend`] — the simulated D-Wave annealer, with an
//!   embedding cache and rip-up-reseed retry + clique-fallback policy;
//! * [`GateModelBackend`] — the simulated IBM Q device via QAOA, with
//!   analytic p=1 fallback when the state vector overflows;
//! * [`GroverBackend`] — BBHT-scheduled Grover search for hard-only
//!   programs, with typed capacity errors instead of panics;
//! * [`ClassicalBackend`] — the exact branch-and-bound baseline, whose
//!   proven optimum seeds the optimality oracle for free.
//!
//! An [`ExecutionPlan`] compiles a program once and fans out to any
//! backend or seed sweep, serving the compiled QUBO and the classical
//! optimality oracle from caches; every run returns an [`ExecReport`]
//! with per-stage wall-times ([`StageTimings`]) aligned with the
//! paper's §VIII-C timing experiment.
//!
//! ```
//! use nck_core::{Program, SolutionQuality};
//! use nck_exec::{AnnealerBackend, Backend, ClassicalBackend, ExecutionPlan};
//! use nck_anneal::AnnealerDevice;
//!
//! // Minimum vertex cover of the paper's Fig. 2 graph.
//! let mut p = Program::new();
//! let vs = p.new_vars("v", 5).unwrap();
//! for (u, w) in [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)] {
//!     p.nck(vec![vs[u], vs[w]], [1, 2]).unwrap();
//! }
//! for &v in &vs {
//!     p.nck_soft(vec![v], [0]).unwrap();
//! }
//!
//! let plan = ExecutionPlan::new(&p);
//! let annealer = AnnealerBackend::new(AnnealerDevice::ideal(16), 100);
//! let classical = ClassicalBackend::default();
//! // One compile serves both backends and every seed.
//! for backend in [&annealer as &dyn Backend, &classical] {
//!     let report = plan.run(backend, 42).unwrap();
//!     assert_eq!(report.quality, SolutionQuality::Optimal);
//! }
//! assert_eq!(plan.stats().compiles, 1);
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod backends;
pub mod breaker;
pub mod budget;
pub mod durable;
pub mod error;
pub mod fault;
pub mod journal;
pub mod plan;
pub mod stage;
pub mod supervisor;

pub use backend::{Backend, BackendMetrics, Candidates, Prepared};
pub use backends::{
    AnnealerBackend, ClassicalBackend, GateModelBackend, GroverBackend, BBHT_GROWTH,
    PACKED_SAMPLER_LIMIT,
};
pub use breaker::{Admission, BreakerConfig, BreakerState, CircuitBreaker};
pub use budget::{RetryPolicy, RunBudget};
pub use durable::{DurableRun, Record, RecoveredRun, DEFAULT_CHECKPOINT_INTERVAL};
pub use error::{ExecError, FailedAttempt, FaultKind};
pub use fault::FaultInjection;
pub use journal::{JournalEvent, JournalKind, RunCtx, RunJournal};
pub use nck_cancel::{CancelToken, Checkpointer, NoopCheckpointer};
pub use nck_store::{KillPoint, KillSpec, Recovered, RunStore, StoreError};
pub use plan::{ExecReport, ExecutionPlan, PlanStats, Tally};
pub use stage::{StageOutcome, StageTimings};
pub use supervisor::{SupervisedFailure, Supervisor};

use nck_anneal::AnnealerDevice;
use nck_circuit::GateModelDevice;
use nck_compile::CompiledProgram;
use nck_core::{Program, SolutionQuality};
use std::sync::Arc;

/// The outcome of running a program on a backend — the original
/// porcelain shape, kept for callers of the free-function entry
/// points. [`ExecReport`] carries the same result plus stage timings,
/// tallies, and backend metrics.
#[derive(Clone, Debug)]
pub struct ExecOutcome {
    /// Best assignment over the program variables.
    pub assignment: Vec<bool>,
    /// Its quality per Definition 8, judged against the classical
    /// optimum.
    pub quality: SolutionQuality,
    /// Soft constraints satisfied by `assignment` (count).
    pub soft_satisfied: usize,
    /// The classical soft optimum, as a satisfied *weight* (equal to a
    /// count when all weights are 1).
    pub max_soft: u64,
    /// The compiled program (QUBO size, ancillas, weights, stats).
    pub compiled: CompiledProgram,
}

impl ExecReport {
    /// Collapse the report to the original [`ExecOutcome`] shape.
    pub fn into_outcome(self) -> ExecOutcome {
        ExecOutcome {
            assignment: self.assignment,
            quality: self.quality,
            soft_satisfied: self.soft_satisfied,
            max_soft: self.max_soft,
            compiled: Arc::try_unwrap(self.compiled).unwrap_or_else(|arc| (*arc).clone()),
        }
    }
}

/// Solve on the simulated D-Wave annealer: one job of `num_reads`
/// samples, best sample reported (the paper's §VII protocol). Thin
/// wrapper over [`ExecutionPlan`] + [`AnnealerBackend`].
pub fn run_on_annealer(
    program: &Program,
    device: &AnnealerDevice,
    num_reads: usize,
    seed: u64,
) -> Result<ExecOutcome, ExecError> {
    let plan = ExecutionPlan::new(program);
    let backend = AnnealerBackend::new(device.clone(), num_reads);
    plan.run(&backend, seed).map(ExecReport::into_outcome)
}

/// Solve on the simulated gate-model device via QAOA (single returned
/// result, as in §VIII-B). Thin wrapper over [`ExecutionPlan`] +
/// [`GateModelBackend`].
pub fn run_on_gate_model(
    program: &Program,
    device: &GateModelDevice,
    layers: usize,
    shots: usize,
    max_iter: usize,
    seed: u64,
) -> Result<ExecOutcome, ExecError> {
    let plan = ExecutionPlan::new(program);
    let backend = GateModelBackend::new(device.clone(), layers, shots, max_iter);
    plan.run(&backend, seed).map(ExecReport::into_outcome)
}

/// Solve a *hard-only* program by Grover search on the simulated gate
/// model. Thin wrapper over [`ExecutionPlan`] + [`GroverBackend`];
/// soft constraints or oversized programs yield
/// [`ExecError::SoftUnsupported`] / [`ExecError::TooLarge`].
pub fn run_on_grover(program: &Program, seed: u64) -> Result<ExecOutcome, ExecError> {
    let plan = ExecutionPlan::new(program);
    plan.run(&GroverBackend::default(), seed).map(ExecReport::into_outcome)
}

/// Solve classically (the Z3-role baseline): exact branch and bound.
/// Thin wrapper over [`ExecutionPlan`] + [`ClassicalBackend`].
pub fn run_classically(program: &Program) -> Result<(Vec<bool>, usize), ExecError> {
    let plan = ExecutionPlan::new(program);
    plan.run(&ClassicalBackend::default(), 0).map(|r| (r.assignment, r.soft_satisfied))
}
