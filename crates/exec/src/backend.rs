//! The [`Backend`] trait: one interface over the annealer, the
//! gate-model/QAOA device, Grover search, and the classical exact
//! solver — the paper's claim that a single NchooseK program runs
//! unchanged on D-Wave, IBM Q, and Z3, expressed as a trait.
//!
//! A backend receives the prepared (compiled-once) program from an
//! [`ExecutionPlan`](crate::ExecutionPlan) and returns raw candidate
//! assignments plus backend-specific metrics; the plan owns the shared
//! decode and classify stages.

use crate::error::ExecError;
use crate::journal::RunCtx;
use nck_compile::CompiledProgram;
use nck_core::Program;
use std::time::Duration;

/// The compiled-once inputs handed to every backend by a plan.
#[derive(Clone, Copy, Debug)]
pub struct Prepared<'a> {
    /// The source program.
    pub program: &'a Program,
    /// Its compiled QUBO form (shared across seeds and backends).
    pub compiled: &'a CompiledProgram,
}

/// Raw candidate assignments returned by a backend, in the space the
/// backend naturally produces them in.
#[derive(Clone, Debug)]
pub enum Candidates {
    /// Assignments over all QUBO variables (program variables followed
    /// by compiler ancillas); the plan projects them down.
    Qubo(Vec<Vec<bool>>),
    /// Assignments already over the program variables only.
    Program(Vec<Vec<bool>>),
    /// A single program-variable assignment *proven* soft-optimal by an
    /// exact solver. Lets the plan seed its optimality oracle without a
    /// second classical solve.
    Exact {
        /// The proven-optimal assignment.
        assignment: Vec<bool>,
        /// Its satisfied soft weight — by proof, the program maximum.
        soft_weight: u64,
    },
}

/// Backend-specific result metrics, alongside the shared
/// quality/timing reporting.
#[derive(Clone, Debug)]
pub enum BackendMetrics {
    /// Annealer job metrics (the Fig. 7 axes).
    Annealer {
        /// Physical qubits used by the embedding.
        physical_qubits: usize,
        /// Longest chain length.
        max_chain_length: usize,
        /// Fraction of (read × chain) events that broke.
        chain_break_fraction: f64,
        /// Modeled QPU access time for the job.
        qpu_access_time: Duration,
    },
    /// Gate-model QAOA metrics (the Fig. 8–11 axes).
    GateModel {
        /// Qubits used on the device.
        qubits_used: usize,
        /// Transpiled circuit depth.
        depth: usize,
        /// SWAPs inserted by routing.
        num_swaps: usize,
        /// Depolarizing fidelity of the transpiled circuit.
        fidelity: f64,
        /// Jobs submitted (optimizer iterations + final sampling).
        num_jobs: usize,
        /// Modeled total device + classical-optimizer time.
        estimated_time: Duration,
        /// The optimized noisy expectation ⟨H⟩.
        expectation: f64,
    },
    /// Grover search metrics.
    Grover {
        /// Measurements taken (one per BBHT iteration guess).
        measurements: usize,
        /// Total Grover iterations applied across guesses.
        total_iterations: usize,
        /// Success probability just before the final measurement.
        success_probability: f64,
    },
    /// Classical exact-solver metrics.
    Classical {
        /// Decision nodes explored.
        nodes: u64,
        /// Assignments forced by propagation.
        propagations: u64,
        /// True if the node limit truncated the search.
        truncated: bool,
    },
}

/// A solver capable of executing a prepared NchooseK program.
///
/// Implementations time their own stages into `ctx.stages` (`embed`
/// and `sample`; `compile`, `decode`, and `classify` belong to the
/// plan), journal noteworthy events (suppressed errors, fallbacks)
/// into `ctx.journal`, poll `ctx.cancel` inside long-running loops,
/// and report failures as [`ExecError`] values, never panics.
pub trait Backend {
    /// Short stable name ("annealer", "gate", "grover", "classical").
    fn name(&self) -> &'static str;

    /// Execute the prepared program once with the given seed.
    fn run(
        &self,
        prepared: &Prepared<'_>,
        seed: u64,
        ctx: &mut RunCtx,
    ) -> Result<(Candidates, BackendMetrics), ExecError>;
}
