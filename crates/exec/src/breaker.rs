//! Per-backend [`CircuitBreaker`]: stop burning budget on a rung that
//! keeps failing.
//!
//! Classic closed → open → half-open state machine over a sliding
//! failure-rate window. Closed admits every call and records outcomes;
//! once the window holds at least `min_calls` outcomes with a failure
//! rate at or above the threshold, the breaker opens. Open rejects
//! calls without invoking the backend until `cooldown` has elapsed,
//! then admits a single half-open probe: success closes the breaker
//! (window cleared), failure re-opens it and restarts the cooldown.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Breaker tuning.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BreakerConfig {
    /// Sliding window length (outcomes remembered).
    pub window: usize,
    /// Failure rate in `[0, 1]` at which the breaker opens.
    pub failure_rate: f64,
    /// Minimum outcomes in the window before the rate is evaluated
    /// (prevents one early failure from opening a fresh breaker).
    pub min_calls: usize,
    /// How long an open breaker rejects calls before admitting a
    /// half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 8,
            failure_rate: 0.5,
            min_calls: 3,
            cooldown: Duration::from_millis(50),
        }
    }
}

/// Breaker states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: all calls admitted, outcomes recorded.
    Closed,
    /// Tripped: calls rejected without invoking the backend.
    Open,
    /// Cooled down: one probe call admitted to test recovery.
    HalfOpen,
}

/// The outcome of asking the breaker to admit a call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Call admitted normally (breaker closed).
    Admitted,
    /// Call admitted as a half-open probe after the cooldown.
    Probe,
    /// Call rejected: the breaker is open and still cooling down.
    Rejected,
}

/// A per-backend circuit breaker.
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    outcomes: VecDeque<bool>,
    opened_at: Option<Instant>,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            outcomes: VecDeque::new(),
            opened_at: None,
        }
    }

    /// Current state, with the open → half-open transition applied if
    /// the cooldown has elapsed.
    pub fn state(&mut self) -> BreakerState {
        self.maybe_half_open();
        self.state
    }

    fn maybe_half_open(&mut self) {
        if self.state == BreakerState::Open {
            let cooled =
                self.opened_at.map(|t| t.elapsed() >= self.config.cooldown).unwrap_or(true);
            if cooled {
                self.state = BreakerState::HalfOpen;
            }
        }
    }

    /// Ask to admit one call. Open breakers reject; half-open admits a
    /// probe (a concurrent second ask while the probe is outstanding
    /// is also rejected — the supervisor is single-threaded per run,
    /// so in practice exactly one probe flies).
    pub fn admit(&mut self) -> Admission {
        self.maybe_half_open();
        match self.state {
            BreakerState::Closed => Admission::Admitted,
            BreakerState::HalfOpen => Admission::Probe,
            BreakerState::Open => Admission::Rejected,
        }
    }

    /// Record a successful call. A half-open probe success closes the
    /// breaker and clears the window.
    pub fn record_success(&mut self) {
        match self.state {
            BreakerState::HalfOpen => {
                self.state = BreakerState::Closed;
                self.outcomes.clear();
                self.opened_at = None;
            }
            _ => self.push(true),
        }
    }

    /// Record a failed call. Returns `true` if this failure *opened*
    /// the breaker (closed → open trip, or half-open probe failure).
    pub fn record_failure(&mut self) -> bool {
        match self.state {
            BreakerState::HalfOpen | BreakerState::Open => {
                // Probe failed (or a straggler failure landed while
                // open): (re-)open and restart the cooldown.
                let was_open = self.state == BreakerState::Open;
                self.state = BreakerState::Open;
                self.opened_at = Some(Instant::now());
                !was_open
            }
            BreakerState::Closed => {
                self.push(false);
                if self.should_open() {
                    self.state = BreakerState::Open;
                    self.opened_at = Some(Instant::now());
                    true
                } else {
                    false
                }
            }
        }
    }

    fn push(&mut self, ok: bool) {
        if self.outcomes.len() == self.config.window.max(1) {
            self.outcomes.pop_front();
        }
        self.outcomes.push_back(ok);
    }

    fn should_open(&self) -> bool {
        if self.outcomes.len() < self.config.min_calls.max(1) {
            return false;
        }
        let failures = self.outcomes.iter().filter(|&&ok| !ok).count();
        failures as f64 / self.outcomes.len() as f64 >= self.config.failure_rate
    }

    /// Failure rate over the current window (0.0 when empty).
    pub fn failure_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().filter(|&&ok| !ok).count() as f64 / self.outcomes.len() as f64
    }
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        CircuitBreaker::new(BreakerConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instant_cooldown() -> BreakerConfig {
        BreakerConfig { cooldown: Duration::ZERO, ..BreakerConfig::default() }
    }

    fn long_cooldown() -> BreakerConfig {
        BreakerConfig { cooldown: Duration::from_secs(3600), ..BreakerConfig::default() }
    }

    #[test]
    fn closed_until_failure_rate_threshold() {
        let mut b = CircuitBreaker::new(long_cooldown());
        assert_eq!(b.admit(), Admission::Admitted);
        // Two failures: below min_calls, still closed.
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        assert_eq!(b.state(), BreakerState::Closed);
        // Third failure: window = [f, f, f], rate 1.0 ≥ 0.5 → opens.
        assert!(b.record_failure());
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn successes_keep_the_rate_below_threshold() {
        let mut b = CircuitBreaker::new(long_cooldown());
        for _ in 0..5 {
            b.record_success();
        }
        // Window [ok×5, f, f]: rate 2/7 < 0.5 → stays closed.
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn open_breaker_short_circuits_without_invoking_the_backend() {
        let mut b = CircuitBreaker::new(long_cooldown());
        for _ in 0..3 {
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Open);
        // Long cooldown: every admit is rejected — the caller never
        // reaches the backend.
        assert_eq!(b.admit(), Admission::Rejected);
        assert_eq!(b.admit(), Admission::Rejected);
    }

    #[test]
    fn half_open_probe_success_closes() {
        let mut b = CircuitBreaker::new(instant_cooldown());
        for _ in 0..3 {
            b.record_failure();
        }
        // Cooldown is zero: next admit is the half-open probe.
        assert_eq!(b.admit(), Admission::Probe);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.failure_rate(), 0.0, "window cleared on recovery");
        assert_eq!(b.admit(), Admission::Admitted);
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let mut b = CircuitBreaker::new(instant_cooldown());
        for _ in 0..3 {
            b.record_failure();
        }
        assert_eq!(b.admit(), Admission::Probe);
        assert!(b.record_failure(), "probe failure must re-open");
        // Zero cooldown means it immediately offers another probe; with
        // a real cooldown it would reject.
        let mut slow = CircuitBreaker::new(long_cooldown());
        for _ in 0..3 {
            slow.record_failure();
        }
        assert_eq!(slow.state(), BreakerState::Open);
    }

    #[test]
    fn window_slides() {
        let cfg =
            BreakerConfig { window: 4, min_calls: 4, failure_rate: 0.75, cooldown: Duration::ZERO };
        let mut b = CircuitBreaker::new(cfg);
        b.record_failure();
        b.record_failure();
        b.record_failure();
        b.record_success();
        // Window [f,f,f,ok] → 0.75 ≥ 0.75 would open on the *next*
        // failure; an old failure slides out first.
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.record_failure(), "window [f,f,ok,f] slides to [f,f,ok,f] rate 0.75");
    }
}
