//! The resilient execution supervisor: deadlines, retries with
//! backoff, circuit breakers, and degradation ladders over any
//! [`Backend`] sequence.
//!
//! A [`Supervisor`] wraps [`ExecutionPlan::run`] in the policy loop
//! real substrates need:
//!
//! 1. a [`RunBudget`] bounds the whole run — wall-clock deadline,
//!    total attempts, total samples;
//! 2. a [`RetryPolicy`] retries *transient* failures
//!    ([`ExecError::transient`]) on the same rung with deterministic
//!    seeded backoff;
//! 3. the plan's per-backend [`CircuitBreaker`]s
//!    ([`ExecutionPlan::breaker`]) short-circuit rungs that keep
//!    failing;
//! 4. a **degradation ladder** — an ordered backend sequence such as
//!    `gate → annealer → classical` — moves to the next rung on a
//!    permanent error, an opened breaker, or rung-budget exhaustion.
//!
//! The wall-clock deadline is divided across the remaining rungs: rung
//! `i` of `k` remaining receives `remaining / (k − i)` as its
//! cancellation deadline, so a wedged rung (an injected sampler stall,
//! a runaway optimizer) cannot starve the rungs below it, and time a
//! rung does not use rolls over to the next. Every attempt, fault,
//! fallback, breaker transition, and ladder step is recorded in a
//! [`RunJournal`] with one shared timebase; the journal rides on the
//! [`ExecReport`] on success and on the [`SupervisedFailure`]
//! otherwise, so *why* a run took the path it took is never lost.
//!
//! [`CircuitBreaker`]: crate::CircuitBreaker

use crate::backend::Backend;
use crate::breaker::Admission;
use crate::budget::{RetryPolicy, RunBudget};
use crate::error::{ExecError, FailedAttempt};
use crate::journal::{JournalKind, RunCtx, RunJournal};
use crate::plan::{ExecReport, ExecutionPlan};
use crate::stage::StageOutcome;
use nck_cancel::CancelToken;
use std::fmt;
use std::time::Instant;

/// A supervised run that exhausted every rung of its ladder: the final
/// typed error with full provenance, plus the complete journal of
/// everything that was tried.
#[derive(Clone, Debug)]
pub struct SupervisedFailure {
    /// The last attempt's failure (backend, stage, attempt, error).
    pub error: FailedAttempt,
    /// The complete journal; its final event is always
    /// [`JournalKind::Failed`].
    pub journal: RunJournal,
}

impl fmt::Display for SupervisedFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "supervised run failed: {}", self.error)
    }
}

impl std::error::Error for SupervisedFailure {}

/// The policy bundle wrapping every supervised execution.
#[derive(Clone, Copy, Debug, Default)]
pub struct Supervisor {
    /// The cost envelope: deadline, attempts, samples.
    pub budget: RunBudget,
    /// Backoff spacing for transient-failure retries.
    pub retry: RetryPolicy,
}

impl Supervisor {
    /// A supervisor with the given budget and retry policy.
    pub fn new(budget: RunBudget, retry: RetryPolicy) -> Self {
        Supervisor { budget, retry }
    }

    /// Derive the seed for attempt `k` of a rung: attempt 0 uses the
    /// caller's seed unchanged (a fault-free supervised run reproduces
    /// the plain run bit-for-bit), retries decorrelate.
    fn attempt_seed(seed: u64, global_attempt: u32) -> u64 {
        seed ^ u64::from(global_attempt).wrapping_mul(0x9e3779b97f4a7c15)
    }

    /// Execute `plan` down the `ladder` under this supervisor's
    /// policies. Returns the first rung's successful report, or — when
    /// every rung fails or the budget runs out — a
    /// [`SupervisedFailure`] whose journal explains the whole run.
    pub fn run(
        &self,
        plan: &ExecutionPlan<'_>,
        ladder: &[&dyn Backend],
        seed: u64,
    ) -> Result<ExecReport, Box<SupervisedFailure>> {
        let started = Instant::now();
        let global = self.budget.token();
        let mut journal = RunJournal::default();
        let mut global_attempt: u32 = 0;
        let mut samples_used: u64 = 0;
        let mut last_error = FailedAttempt {
            backend: "supervisor",
            stage: "ladder",
            attempt: 0,
            error: ExecError::NoCandidates,
        };

        'rungs: for (ri, backend) in ladder.iter().enumerate() {
            let name = backend.name();
            // Slice the remaining global deadline across the remaining
            // rungs; the last rung inherits everything left.
            // With no deadline the rung shares the global token (an
            // Arc bump, and explicit cancellation still propagates);
            // with one, the rung gets its own sliced deadline.
            let rung_token = match global.remaining() {
                None => global.clone(),
                Some(rem) => {
                    if global.is_cancelled() {
                        last_error = FailedAttempt {
                            backend: name,
                            stage: "budget",
                            attempt: global_attempt,
                            error: ExecError::BudgetExhausted { what: "deadline" },
                        };
                        break 'rungs;
                    }
                    CancelToken::with_deadline(rem / (ladder.len() - ri) as u32)
                }
            };
            let mut rung_attempt: u32 = 0;
            loop {
                if global_attempt >= self.budget.max_attempts {
                    last_error = FailedAttempt {
                        backend: name,
                        stage: "budget",
                        attempt: global_attempt,
                        error: ExecError::BudgetExhausted { what: "attempts" },
                    };
                    journal.push(
                        started.elapsed(),
                        name,
                        rung_attempt,
                        JournalKind::RungExhausted { reason: "attempt budget spent".into() },
                    );
                    break 'rungs;
                }
                if let Some(max) = self.budget.max_samples {
                    if samples_used >= max {
                        last_error = FailedAttempt {
                            backend: name,
                            stage: "budget",
                            attempt: global_attempt,
                            error: ExecError::BudgetExhausted { what: "samples" },
                        };
                        journal.push(
                            started.elapsed(),
                            name,
                            rung_attempt,
                            JournalKind::RungExhausted { reason: "sample budget spent".into() },
                        );
                        break 'rungs;
                    }
                }
                // Breaker gate: an open breaker rejects the rung
                // without invoking the backend at all.
                match plan.breaker(name, |b| b.admit()) {
                    Admission::Rejected => {
                        journal.push(
                            started.elapsed(),
                            name,
                            rung_attempt,
                            JournalKind::BreakerShortCircuit,
                        );
                        last_error = FailedAttempt {
                            backend: name,
                            stage: "breaker",
                            attempt: rung_attempt,
                            error: ExecError::BreakerOpen { backend: name },
                        };
                        journal.push(
                            started.elapsed(),
                            name,
                            rung_attempt,
                            JournalKind::RungExhausted { reason: "circuit breaker open".into() },
                        );
                        break;
                    }
                    Admission::Probe => {
                        journal.push(
                            started.elapsed(),
                            name,
                            rung_attempt,
                            JournalKind::BreakerProbe,
                        );
                    }
                    Admission::Admitted => {}
                }

                journal.push(started.elapsed(), name, rung_attempt, JournalKind::AttemptStarted);
                let mut ctx = RunCtx::new(name, rung_token.clone(), rung_attempt, started);
                let attempt_seed = Self::attempt_seed(seed, global_attempt);
                global_attempt += 1;
                match plan.run_attempt(*backend, attempt_seed, &mut ctx) {
                    Ok(mut report) => {
                        plan.breaker(name, |b| b.record_success());
                        journal.events.append(&mut report.journal.events);
                        journal.push(started.elapsed(), name, rung_attempt, JournalKind::Succeeded);
                        if ri > 0 {
                            report.timings.outcome = StageOutcome::FellBack;
                        }
                        report.journal = journal;
                        return Ok(report);
                    }
                    Err(failed) => {
                        samples_used += ctx.stages.candidates as u64;
                        journal.events.append(&mut ctx.journal.events);
                        journal.push(
                            started.elapsed(),
                            name,
                            rung_attempt,
                            JournalKind::StageFailed {
                                stage: failed.stage,
                                error: failed.error.clone(),
                                suppressed: false,
                            },
                        );
                        let opened = plan.breaker(name, |b| b.record_failure());
                        if opened {
                            journal.push(
                                started.elapsed(),
                                name,
                                rung_attempt,
                                JournalKind::BreakerOpened,
                            );
                        }
                        let retryable = failed.error.transient()
                            && rung_attempt < self.retry.retries_per_rung
                            && !opened
                            && !rung_token.is_cancelled();
                        last_error = failed;
                        if retryable {
                            let mut backoff = self.retry.delay(rung_attempt);
                            if let Some(rem) = rung_token.remaining() {
                                backoff = backoff.min(rem);
                            }
                            journal.push(
                                started.elapsed(),
                                name,
                                rung_attempt,
                                JournalKind::Retry { backoff },
                            );
                            if !rung_token.sleep(backoff) {
                                journal.push(
                                    started.elapsed(),
                                    name,
                                    rung_attempt,
                                    JournalKind::RungExhausted {
                                        reason: "deadline fired during backoff".into(),
                                    },
                                );
                                break;
                            }
                            rung_attempt += 1;
                            continue;
                        }
                        let reason = if last_error.error.transient() {
                            if opened {
                                "circuit breaker opened".to_string()
                            } else if rung_token.is_cancelled() {
                                "rung deadline reached".to_string()
                            } else {
                                format!("retries exhausted ({} attempts)", rung_attempt + 1)
                            }
                        } else {
                            format!("permanent error: {}", last_error.error)
                        };
                        journal.push(
                            started.elapsed(),
                            name,
                            rung_attempt,
                            JournalKind::RungExhausted { reason },
                        );
                        break;
                    }
                }
            }
            if let Some(next) = ladder.get(ri + 1) {
                journal.push(
                    started.elapsed(),
                    name,
                    rung_attempt,
                    JournalKind::LadderStep { from: name, to: next.name() },
                );
            }
        }

        journal.push(
            started.elapsed(),
            last_error.backend,
            last_error.attempt,
            JournalKind::Failed { error: last_error.error.clone() },
        );
        Err(Box::new(SupervisedFailure { error: last_error, journal }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::{ClassicalBackend, GroverBackend};
    use crate::breaker::BreakerConfig;
    use crate::fault::FaultInjection;
    use crate::stage::StageOutcome;
    use nck_core::{Program, SolutionQuality};
    use std::time::Duration;

    /// Minimum vertex cover of the paper's Fig. 2 graph: hard edge
    /// covers plus soft "leave v out" preferences.
    fn vertex_cover() -> Program {
        let mut p = Program::new();
        let vs = p.new_vars("v", 5).unwrap();
        for (u, w) in [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)] {
            p.nck(vec![vs[u], vs[w]], [1, 2]).unwrap();
        }
        for &v in &vs {
            p.nck_soft(vec![v], [0]).unwrap();
        }
        p
    }

    /// A fast retry policy so the retry tests don't sleep for real.
    fn fast_retry() -> RetryPolicy {
        RetryPolicy {
            base: Duration::from_micros(100),
            cap: Duration::from_millis(1),
            ..RetryPolicy::default()
        }
    }

    #[test]
    fn fault_free_supervised_run_matches_plain_run() {
        let p = vertex_cover();
        let plan = ExecutionPlan::new(&p);
        let backend = ClassicalBackend::default();
        let plain = plan.run(&backend, 7).unwrap();
        let sup = Supervisor::default().run(&plan, &[&backend], 7).unwrap();
        assert_eq!(sup.assignment, plain.assignment);
        assert_eq!(sup.quality, plain.quality);
        assert_eq!(sup.timings.outcome, StageOutcome::Ok);
        assert_eq!(sup.journal.attempts(), 1);
        assert!(sup.journal.is_complete(), "{}", sup.journal.render());
    }

    #[test]
    fn transient_faults_are_retried_and_recovered() {
        let p = vertex_cover();
        let plan = ExecutionPlan::new(&p);
        let backend =
            ClassicalBackend::default().with_faults(FaultInjection::transient_failures(2));
        let sup = Supervisor { retry: fast_retry(), ..Supervisor::default() };
        let report = sup.run(&plan, &[&backend], 7).unwrap();
        assert_eq!(report.quality, SolutionQuality::Optimal);
        assert_eq!(report.timings.attempt, 2, "recovered on the third attempt");
        assert_eq!(report.timings.effective_outcome(), StageOutcome::Retried);
        assert_eq!(report.journal.attempts(), 3);
        let retries = report
            .journal
            .events
            .iter()
            .filter(|e| matches!(e.kind, JournalKind::Retry { .. }))
            .count();
        assert_eq!(retries, 2, "{}", report.journal.render());
    }

    #[test]
    fn permanent_error_degrades_down_the_ladder() {
        let p = vertex_cover(); // has soft constraints: Grover refuses
        let plan = ExecutionPlan::new(&p);
        let grover = GroverBackend::default();
        let classical = ClassicalBackend::default();
        let sup = Supervisor { retry: fast_retry(), ..Supervisor::default() };
        let report = sup.run(&plan, &[&grover, &classical], 7).unwrap();
        assert_eq!(report.quality, SolutionQuality::Optimal);
        assert_eq!(report.timings.outcome, StageOutcome::FellBack);
        let stepped =
            report.journal.events.iter().any(|e| {
                matches!(e.kind, JournalKind::LadderStep { from: "grover", to: "classical" })
            });
        assert!(stepped, "{}", report.journal.render());
        // Permanent errors are not retried: one attempt per rung.
        assert_eq!(report.journal.attempts(), 2);
    }

    #[test]
    fn exhausted_ladder_returns_typed_failure_with_complete_journal() {
        let p = vertex_cover();
        let plan = ExecutionPlan::new(&p);
        let grover = GroverBackend::default();
        let failure = Supervisor::default().run(&plan, &[&grover], 7).unwrap_err();
        assert!(
            matches!(failure.error.error, ExecError::SoftUnsupported { .. }),
            "{}",
            failure.error
        );
        assert_eq!(failure.error.backend, "grover");
        assert_eq!(failure.error.stage, "sample");
        assert!(failure.journal.is_complete(), "{}", failure.journal.render());
    }

    #[test]
    fn opened_breaker_stops_the_rung_and_short_circuits_the_next_run() {
        let p = vertex_cover();
        let plan = ExecutionPlan::new(&p).with_breaker_config(BreakerConfig {
            window: 4,
            failure_rate: 0.5,
            min_calls: 1,
            cooldown: Duration::from_secs(60),
        });
        let faulty =
            ClassicalBackend::default().with_faults(FaultInjection::transient_failures(100));
        let sup = Supervisor { retry: fast_retry(), ..Supervisor::default() };

        // First run: the very first failure opens the breaker, so the
        // rung stops after one attempt despite the retry budget.
        let failure = sup.run(&plan, &[&faulty], 7).unwrap_err();
        assert_eq!(failure.journal.attempts(), 1, "{}", failure.journal.render());
        let opened =
            failure.journal.events.iter().any(|e| matches!(e.kind, JournalKind::BreakerOpened));
        assert!(opened, "{}", failure.journal.render());

        // Second run on the same plan: the open breaker rejects the
        // rung without invoking the backend at all.
        let failure = sup.run(&plan, &[&faulty], 8).unwrap_err();
        assert_eq!(failure.journal.attempts(), 0, "{}", failure.journal.render());
        assert!(matches!(failure.error.error, ExecError::BreakerOpen { backend: "classical" }));
        let short = failure
            .journal
            .events
            .iter()
            .any(|e| matches!(e.kind, JournalKind::BreakerShortCircuit));
        assert!(short, "{}", failure.journal.render());
    }

    #[test]
    fn attempt_budget_bounds_the_whole_ladder() {
        let p = vertex_cover();
        // A breaker lenient enough that the attempt budget, not the
        // breaker, is what stops the run.
        let plan = ExecutionPlan::new(&p)
            .with_breaker_config(BreakerConfig { min_calls: 100, ..BreakerConfig::default() });
        let faulty =
            ClassicalBackend::default().with_faults(FaultInjection::transient_failures(100));
        let sup = Supervisor {
            budget: RunBudget { max_attempts: 3, ..RunBudget::default() },
            retry: RetryPolicy { retries_per_rung: 10, ..fast_retry() },
        };
        let failure = sup.run(&plan, &[&faulty], 7).unwrap_err();
        assert_eq!(failure.journal.attempts(), 3, "{}", failure.journal.render());
        assert!(matches!(failure.error.error, ExecError::BudgetExhausted { what: "attempts" }));
    }

    #[test]
    fn stalled_rung_is_rescued_by_the_next_rung_within_the_deadline() {
        let p = vertex_cover();
        let plan = ExecutionPlan::new(&p);
        // A rung that stalls far past the whole deadline...
        let stalled =
            ClassicalBackend::default().with_faults(FaultInjection::stall(Duration::from_secs(30)));
        // ...must not starve the healthy rung below it.
        let healthy = ClassicalBackend::default();
        let sup = Supervisor {
            budget: RunBudget::with_deadline(Duration::from_millis(400)),
            retry: fast_retry(),
        };
        let t = Instant::now();
        let report = sup.run(&plan, &[&stalled, &healthy], 7).unwrap();
        assert!(
            t.elapsed() < Duration::from_secs(2),
            "supervised run overran its deadline: {:?}",
            t.elapsed()
        );
        assert_eq!(report.quality, SolutionQuality::Optimal);
        assert_eq!(report.timings.outcome, StageOutcome::FellBack);
    }

    #[test]
    fn zero_deadline_fails_immediately_with_budget_error() {
        let p = vertex_cover();
        let plan = ExecutionPlan::new(&p);
        let backend = ClassicalBackend::default();
        let sup =
            Supervisor { budget: RunBudget::with_deadline(Duration::ZERO), retry: fast_retry() };
        let failure = sup.run(&plan, &[&backend], 7).unwrap_err();
        assert!(
            matches!(
                failure.error.error,
                ExecError::BudgetExhausted { what: "deadline" } | ExecError::Cancelled { .. }
            ),
            "{}",
            failure.error
        );
        assert!(failure.journal.is_complete());
    }

    #[test]
    fn retry_seeds_decorrelate_but_first_attempt_seed_is_the_callers() {
        assert_eq!(Supervisor::attempt_seed(42, 0), 42);
        assert_ne!(Supervisor::attempt_seed(42, 1), 42);
        assert_ne!(Supervisor::attempt_seed(42, 1), Supervisor::attempt_seed(42, 2));
    }
}
