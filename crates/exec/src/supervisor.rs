//! The resilient execution supervisor: deadlines, retries with
//! backoff, circuit breakers, and degradation ladders over any
//! [`Backend`] sequence.
//!
//! A [`Supervisor`] wraps [`ExecutionPlan::run`] in the policy loop
//! real substrates need:
//!
//! 1. a [`RunBudget`] bounds the whole run — wall-clock deadline,
//!    total attempts, total samples;
//! 2. a [`RetryPolicy`] retries *transient* failures
//!    ([`ExecError::transient`]) on the same rung with deterministic
//!    seeded backoff;
//! 3. the plan's per-backend [`CircuitBreaker`]s
//!    ([`ExecutionPlan::breaker`]) short-circuit rungs that keep
//!    failing;
//! 4. a **degradation ladder** — an ordered backend sequence such as
//!    `gate → annealer → classical` — moves to the next rung on a
//!    permanent error, an opened breaker, or rung-budget exhaustion.
//!
//! The wall-clock deadline is divided across the remaining rungs: rung
//! `i` of `k` remaining receives `remaining / (k − i)` as its
//! cancellation deadline, so a wedged rung (an injected sampler stall,
//! a runaway optimizer) cannot starve the rungs below it, and time a
//! rung does not use rolls over to the next. Every attempt, fault,
//! fallback, breaker transition, and ladder step is recorded in a
//! [`RunJournal`] with one shared timebase; the journal rides on the
//! [`ExecReport`] on success and on the [`SupervisedFailure`]
//! otherwise, so *why* a run took the path it took is never lost.
//!
//! **Durability.** The `*_durable` entry points persist the whole run
//! into a crash-safe [`RunStore`] as it executes: every journal event,
//! every budget step, every rung completion, and periodic mid-solve
//! checkpoints from the backend hot loops. A killed run is resumed
//! with [`resume_durable`](Supervisor::resume_durable): completed
//! rungs are never re-entered, the journal continues from its exact
//! persisted prefix on the same monotonic timebase, and the
//! interrupted attempt replays deterministically from its last
//! checkpoint (same derived seed, same read/iterate position).
//! Deadline budgets restart on resume — wall-clock spent before a
//! crash is not charged to the resumed process.
//!
//! [`CircuitBreaker`]: crate::CircuitBreaker

use crate::backend::Backend;
use crate::breaker::Admission;
use crate::budget::{RetryPolicy, RunBudget};
use crate::durable::{DurableRun, Record, RecoveredRun, DEFAULT_CHECKPOINT_INTERVAL};
use crate::error::{ExecError, FailedAttempt};
use crate::journal::{JournalEvent, JournalKind, RunCtx, RunJournal};
use crate::plan::{ExecReport, ExecutionPlan};
use crate::stage::StageOutcome;
use nck_cancel::{CancelToken, Checkpointer};
use nck_store::{Recovered, RunStore};
use std::fmt;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A supervised run that exhausted every rung of its ladder: the final
/// typed error with full provenance, plus the complete journal of
/// everything that was tried.
#[derive(Clone, Debug)]
pub struct SupervisedFailure {
    /// The last attempt's failure (backend, stage, attempt, error).
    pub error: FailedAttempt,
    /// The complete journal; its final event is always
    /// [`JournalKind::Failed`].
    pub journal: RunJournal,
}

impl fmt::Display for SupervisedFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "supervised run failed: {}", self.error)
    }
}

impl std::error::Error for SupervisedFailure {}

/// The policy bundle wrapping every supervised execution.
#[derive(Clone, Copy, Debug)]
pub struct Supervisor {
    /// The cost envelope: deadline, attempts, samples.
    pub budget: RunBudget,
    /// Backoff spacing for transient-failure retries.
    pub retry: RetryPolicy,
    /// Solver work units (annealer reads, optimizer iterations, Grover
    /// guesses) between mid-solve checkpoints in durable runs. `0`
    /// keeps journal and rung durability but disables mid-solve
    /// checkpoints. Ignored by non-durable runs.
    pub checkpoint_interval: u64,
}

impl Default for Supervisor {
    fn default() -> Self {
        Supervisor {
            budget: RunBudget::default(),
            retry: RetryPolicy::default(),
            checkpoint_interval: DEFAULT_CHECKPOINT_INTERVAL,
        }
    }
}

/// Where a (possibly resumed) supervised run starts from. The default
/// is a fresh run: rung 0, attempt 0, empty journal, zero elapsed.
#[derive(Debug, Default)]
struct ResumeInit {
    start_rung: usize,
    rung_attempt: u32,
    global_attempt: u32,
    samples_used: u64,
    journal: RunJournal,
    elapsed: Duration,
}

/// Journal an event and, when the run is durable, persist it in the
/// same breath — the journal on disk is always an exact prefix of the
/// journal in memory.
fn jot(
    journal: &mut RunJournal,
    sink: Option<&Arc<DurableRun>>,
    at: Duration,
    backend: &'static str,
    attempt: u32,
    kind: JournalKind,
) {
    let ev = JournalEvent { at, backend, attempt, kind };
    if let Some(s) = sink {
        s.record(&Record::Journal(ev.clone()));
    }
    journal.events.push(ev);
}

/// Move an attempt context's journal events into the run journal,
/// persisting each on the way.
fn drain(journal: &mut RunJournal, sink: Option<&Arc<DurableRun>>, events: &mut Vec<JournalEvent>) {
    if let Some(s) = sink {
        for ev in events.iter() {
            s.record(&Record::Journal(ev.clone()));
        }
    }
    journal.events.append(events);
}

impl Supervisor {
    /// A supervisor with the given budget and retry policy.
    pub fn new(budget: RunBudget, retry: RetryPolicy) -> Self {
        Supervisor { budget, retry, ..Supervisor::default() }
    }

    /// Derive the seed for attempt `k` of a rung: attempt 0 uses the
    /// caller's seed unchanged (a fault-free supervised run reproduces
    /// the plain run bit-for-bit), retries decorrelate.
    fn attempt_seed(seed: u64, global_attempt: u32) -> u64 {
        seed ^ u64::from(global_attempt).wrapping_mul(0x9e3779b97f4a7c15)
    }

    /// Execute `plan` down the `ladder` under this supervisor's
    /// policies. Returns the first rung's successful report, or — when
    /// every rung fails or the budget runs out — a
    /// [`SupervisedFailure`] whose journal explains the whole run.
    pub fn run(
        &self,
        plan: &ExecutionPlan<'_>,
        ladder: &[&dyn Backend],
        seed: u64,
    ) -> Result<ExecReport, Box<SupervisedFailure>> {
        self.run_inner(plan, ladder, seed, ResumeInit::default(), None)
    }

    /// Like [`run`](Supervisor::run), but persisted: open a fresh
    /// durable store in `dir` (rejecting a directory that already
    /// holds a run) and journal every step into it, so a crash at any
    /// point can be resumed with
    /// [`resume_durable`](Supervisor::resume_durable).
    pub fn run_durable(
        &self,
        plan: &ExecutionPlan<'_>,
        ladder: &[&dyn Backend],
        seed: u64,
        dir: &Path,
    ) -> Result<ExecReport, Box<SupervisedFailure>> {
        match RunStore::open_fresh(dir) {
            Ok(store) => self.run_with_store(plan, ladder, seed, store),
            Err(e) => Err(Self::store_failure(ExecError::Store(e))),
        }
    }

    /// [`run_durable`](Supervisor::run_durable) over a caller-supplied
    /// store — the entry point the kill-point harness uses to arm
    /// deterministic crashes before handing the store over.
    pub fn run_with_store(
        &self,
        plan: &ExecutionPlan<'_>,
        ladder: &[&dyn Backend],
        seed: u64,
        store: RunStore,
    ) -> Result<ExecReport, Box<SupervisedFailure>> {
        let sink = Arc::new(DurableRun::new(store).with_interval(self.checkpoint_interval));
        let result = self.run_inner(plan, ladder, seed, ResumeInit::default(), Some(&sink));
        Self::surface_store_death(result, &sink)
    }

    /// Resume a durable run from `dir`: recover the persisted journal,
    /// ladder position, budget counters, and mid-solve checkpoints,
    /// then continue execution. Completed rungs are never re-entered;
    /// the interrupted attempt replays deterministically from its last
    /// checkpoint. A run whose journal already ended in a terminal
    /// event yields [`ExecError::AlreadyFinished`].
    pub fn resume_durable(
        &self,
        plan: &ExecutionPlan<'_>,
        ladder: &[&dyn Backend],
        seed: u64,
        dir: &Path,
    ) -> Result<ExecReport, Box<SupervisedFailure>> {
        match RunStore::open_resume(dir) {
            Ok((store, recovered)) => self.resume_with_store(plan, ladder, seed, store, &recovered),
            Err(e) => Err(Self::store_failure(ExecError::Store(e))),
        }
    }

    /// [`resume_durable`](Supervisor::resume_durable) over a
    /// caller-supplied store and its recovery result — the kill-point
    /// harness entry point.
    pub fn resume_with_store(
        &self,
        plan: &ExecutionPlan<'_>,
        ladder: &[&dyn Backend],
        seed: u64,
        store: RunStore,
        recovered: &Recovered,
    ) -> Result<ExecReport, Box<SupervisedFailure>> {
        let mut run = match RecoveredRun::recover(recovered) {
            Ok(run) => run,
            Err(e) => return Err(Self::store_failure(ExecError::Store(e))),
        };
        if run.finished.is_some() {
            let dir = store.dir().display().to_string();
            return Err(Self::store_failure(ExecError::AlreadyFinished { dir }));
        }
        let init = ResumeInit {
            start_rung: run.completed_rungs as usize,
            rung_attempt: run.rung_attempt,
            global_attempt: run.global_attempt,
            samples_used: run.samples_used,
            journal: std::mem::take(&mut run.journal),
            elapsed: run.elapsed,
        };
        let sink = Arc::new(
            DurableRun::with_restored(store, std::mem::take(&mut run.checkpoints))
                .with_interval(self.checkpoint_interval),
        );
        let result = self.run_inner(plan, ladder, seed, init, Some(&sink));
        Self::surface_store_death(result, &sink)
    }

    /// A store failure wrapped in the supervised-failure shape, so the
    /// durable entry points keep one error channel.
    fn store_failure(error: ExecError) -> Box<SupervisedFailure> {
        let error = FailedAttempt { backend: "supervisor", stage: "store", attempt: 0, error };
        let mut journal = RunJournal::default();
        journal.push(
            Duration::ZERO,
            "supervisor",
            0,
            JournalKind::Failed { error: error.error.clone() },
        );
        Box::new(SupervisedFailure { error, journal })
    }

    /// If the store died mid-run (a kill-point or real I/O failure),
    /// the run's outcome is the *crash*, not whatever the in-memory
    /// run wound down to — mirror what a real process death leaves
    /// behind, and surface the typed store error. The in-memory
    /// journal is kept either way: it is the superset the persisted
    /// prefix is checked against.
    fn surface_store_death(
        result: Result<ExecReport, Box<SupervisedFailure>>,
        sink: &Arc<DurableRun>,
    ) -> Result<ExecReport, Box<SupervisedFailure>> {
        match sink.death() {
            None => result,
            Some(e) => {
                let error = FailedAttempt {
                    backend: "supervisor",
                    stage: "store",
                    attempt: 0,
                    error: ExecError::Store(e),
                };
                Err(match result {
                    Err(mut failure) => {
                        failure.error = error;
                        failure
                    }
                    Ok(report) => Box::new(SupervisedFailure { error, journal: report.journal }),
                })
            }
        }
    }

    fn run_inner(
        &self,
        plan: &ExecutionPlan<'_>,
        ladder: &[&dyn Backend],
        seed: u64,
        init: ResumeInit,
        sink: Option<&Arc<DurableRun>>,
    ) -> Result<ExecReport, Box<SupervisedFailure>> {
        // Resumed runs restore the journal's monotonic timebase: the
        // clock starts `elapsed` in the past, so offsets continue
        // exactly where the crashed run's persisted prefix stopped.
        let now = Instant::now();
        let started = now.checked_sub(init.elapsed).unwrap_or(now);
        let global = self.budget.token();
        if let Some(s) = sink {
            s.bind_cancel(global.clone());
        }
        let mut journal = init.journal;
        let mut global_attempt: u32 = init.global_attempt;
        let mut samples_used: u64 = init.samples_used;
        let mut last_error = FailedAttempt {
            backend: "supervisor",
            stage: "ladder",
            attempt: 0,
            error: ExecError::NoCandidates,
        };

        'rungs: for (ri, backend) in ladder.iter().enumerate().skip(init.start_rung) {
            let name = backend.name();
            // Slice the remaining global deadline across the remaining
            // rungs; the last rung inherits everything left.
            // With no deadline the rung shares the global token (an
            // Arc bump, and explicit cancellation still propagates);
            // with one, the rung gets its own sliced deadline.
            let rung_token = match global.remaining() {
                None => global.clone(),
                Some(rem) => {
                    if global.is_cancelled() {
                        last_error = FailedAttempt {
                            backend: name,
                            stage: "budget",
                            attempt: global_attempt,
                            error: ExecError::BudgetExhausted { what: "deadline" },
                        };
                        break 'rungs;
                    }
                    CancelToken::with_deadline(rem / (ladder.len() - ri) as u32)
                }
            };
            let mut rung_attempt: u32 = if ri == init.start_rung { init.rung_attempt } else { 0 };
            loop {
                if global_attempt >= self.budget.max_attempts {
                    last_error = FailedAttempt {
                        backend: name,
                        stage: "budget",
                        attempt: global_attempt,
                        error: ExecError::BudgetExhausted { what: "attempts" },
                    };
                    jot(
                        &mut journal,
                        sink,
                        started.elapsed(),
                        name,
                        rung_attempt,
                        JournalKind::RungExhausted { reason: "attempt budget spent".into() },
                    );
                    break 'rungs;
                }
                if let Some(max) = self.budget.max_samples {
                    if samples_used >= max {
                        last_error = FailedAttempt {
                            backend: name,
                            stage: "budget",
                            attempt: global_attempt,
                            error: ExecError::BudgetExhausted { what: "samples" },
                        };
                        jot(
                            &mut journal,
                            sink,
                            started.elapsed(),
                            name,
                            rung_attempt,
                            JournalKind::RungExhausted { reason: "sample budget spent".into() },
                        );
                        break 'rungs;
                    }
                }
                // Breaker gate: an open breaker rejects the rung
                // without invoking the backend at all.
                match plan.breaker(name, |b| b.admit()) {
                    Admission::Rejected => {
                        jot(
                            &mut journal,
                            sink,
                            started.elapsed(),
                            name,
                            rung_attempt,
                            JournalKind::BreakerShortCircuit,
                        );
                        last_error = FailedAttempt {
                            backend: name,
                            stage: "breaker",
                            attempt: rung_attempt,
                            error: ExecError::BreakerOpen { backend: name },
                        };
                        jot(
                            &mut journal,
                            sink,
                            started.elapsed(),
                            name,
                            rung_attempt,
                            JournalKind::RungExhausted { reason: "circuit breaker open".into() },
                        );
                        break;
                    }
                    Admission::Probe => {
                        jot(
                            &mut journal,
                            sink,
                            started.elapsed(),
                            name,
                            rung_attempt,
                            JournalKind::BreakerProbe,
                        );
                    }
                    Admission::Admitted => {}
                }

                // Persist the budget position *before* the attempt: a
                // crash mid-attempt resumes with the same counters,
                // hence the same derived seed, which is what makes the
                // attempt's mid-solve checkpoints replayable.
                if let Some(s) = sink {
                    s.record(&Record::Progress {
                        rung: ri as u32,
                        rung_attempt,
                        global_attempt,
                        samples_used,
                    });
                }
                jot(
                    &mut journal,
                    sink,
                    started.elapsed(),
                    name,
                    rung_attempt,
                    JournalKind::AttemptStarted,
                );
                let mut ctx = RunCtx::new(name, rung_token.clone(), rung_attempt, started);
                if let Some(s) = sink {
                    let ckpt: Arc<dyn Checkpointer> = Arc::clone(s) as Arc<dyn Checkpointer>;
                    ctx = ctx.with_checkpointer(ckpt);
                }
                let attempt_seed = Self::attempt_seed(seed, global_attempt);
                global_attempt += 1;
                match plan.run_attempt(*backend, attempt_seed, &mut ctx) {
                    Ok(mut report) => {
                        plan.breaker(name, |b| b.record_success());
                        drain(&mut journal, sink, &mut report.journal.events);
                        jot(
                            &mut journal,
                            sink,
                            started.elapsed(),
                            name,
                            rung_attempt,
                            JournalKind::Succeeded,
                        );
                        if ri > 0 {
                            report.timings.outcome = StageOutcome::FellBack;
                        }
                        if let Some(s) = sink {
                            s.record(&Record::Finished { success: true });
                            let snap = RecoveredRun {
                                journal: journal.clone(),
                                elapsed: started.elapsed(),
                                completed_rungs: ri as u32,
                                global_attempt,
                                samples_used,
                                finished: Some(true),
                                ..RecoveredRun::default()
                            };
                            s.snapshot(&snap.encode());
                        }
                        report.journal = journal;
                        return Ok(report);
                    }
                    Err(failed) => {
                        samples_used += ctx.stages.candidates as u64;
                        drain(&mut journal, sink, &mut ctx.journal.events);
                        jot(
                            &mut journal,
                            sink,
                            started.elapsed(),
                            name,
                            rung_attempt,
                            JournalKind::StageFailed {
                                stage: failed.stage,
                                error: failed.error.clone(),
                                suppressed: false,
                            },
                        );
                        let opened = plan.breaker(name, |b| b.record_failure());
                        if opened {
                            jot(
                                &mut journal,
                                sink,
                                started.elapsed(),
                                name,
                                rung_attempt,
                                JournalKind::BreakerOpened,
                            );
                        }
                        let retryable = failed.error.transient()
                            && rung_attempt < self.retry.retries_per_rung
                            && !opened
                            && !rung_token.is_cancelled();
                        last_error = failed;
                        if retryable {
                            let mut backoff = self.retry.delay(rung_attempt);
                            if let Some(rem) = rung_token.remaining() {
                                backoff = backoff.min(rem);
                            }
                            jot(
                                &mut journal,
                                sink,
                                started.elapsed(),
                                name,
                                rung_attempt,
                                JournalKind::Retry { backoff },
                            );
                            if !rung_token.sleep(backoff) {
                                jot(
                                    &mut journal,
                                    sink,
                                    started.elapsed(),
                                    name,
                                    rung_attempt,
                                    JournalKind::RungExhausted {
                                        reason: "deadline fired during backoff".into(),
                                    },
                                );
                                break;
                            }
                            rung_attempt += 1;
                            continue;
                        }
                        let reason = if last_error.error.transient() {
                            if opened {
                                "circuit breaker opened".to_string()
                            } else if rung_token.is_cancelled() {
                                "rung deadline reached".to_string()
                            } else {
                                format!("retries exhausted ({} attempts)", rung_attempt + 1)
                            }
                        } else {
                            format!("permanent error: {}", last_error.error)
                        };
                        jot(
                            &mut journal,
                            sink,
                            started.elapsed(),
                            name,
                            rung_attempt,
                            JournalKind::RungExhausted { reason },
                        );
                        break;
                    }
                }
            }
            if let Some(next) = ladder.get(ri + 1) {
                jot(
                    &mut journal,
                    sink,
                    started.elapsed(),
                    name,
                    rung_attempt,
                    JournalKind::LadderStep { from: name, to: next.name() },
                );
                // The rung is closed: record it (resume never re-enters
                // completed rungs) and collapse the WAL into a
                // snapshot — the rung's mid-solve checkpoints are dead
                // weight from here on.
                if let Some(s) = sink {
                    s.record(&Record::RungCompleted { rung: ri as u32 });
                    let snap = RecoveredRun {
                        journal: journal.clone(),
                        elapsed: started.elapsed(),
                        completed_rungs: (ri + 1) as u32,
                        global_attempt,
                        samples_used,
                        ..RecoveredRun::default()
                    };
                    s.snapshot(&snap.encode());
                }
            }
        }

        jot(
            &mut journal,
            sink,
            started.elapsed(),
            last_error.backend,
            last_error.attempt,
            JournalKind::Failed { error: last_error.error.clone() },
        );
        if let Some(s) = sink {
            s.record(&Record::Finished { success: false });
        }
        Err(Box::new(SupervisedFailure { error: last_error, journal }))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::backends::{ClassicalBackend, GroverBackend};
    use crate::breaker::BreakerConfig;
    use crate::fault::FaultInjection;
    use crate::stage::StageOutcome;
    use nck_core::{Program, SolutionQuality};
    use nck_store::{KillPoint, KillSpec, StoreError};
    use std::path::PathBuf;
    use std::time::Duration;

    /// A unique scratch directory for one durable-run test, removed on
    /// drop.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "nck-sup-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    /// Minimum vertex cover of the paper's Fig. 2 graph: hard edge
    /// covers plus soft "leave v out" preferences.
    fn vertex_cover() -> Program {
        let mut p = Program::new();
        let vs = p.new_vars("v", 5).unwrap();
        for (u, w) in [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)] {
            p.nck(vec![vs[u], vs[w]], [1, 2]).unwrap();
        }
        for &v in &vs {
            p.nck_soft(vec![v], [0]).unwrap();
        }
        p
    }

    /// A fast retry policy so the retry tests don't sleep for real.
    fn fast_retry() -> RetryPolicy {
        RetryPolicy {
            base: Duration::from_micros(100),
            cap: Duration::from_millis(1),
            ..RetryPolicy::default()
        }
    }

    #[test]
    fn fault_free_supervised_run_matches_plain_run() {
        let p = vertex_cover();
        let plan = ExecutionPlan::new(&p);
        let backend = ClassicalBackend::default();
        let plain = plan.run(&backend, 7).unwrap();
        let sup = Supervisor::default().run(&plan, &[&backend], 7).unwrap();
        assert_eq!(sup.assignment, plain.assignment);
        assert_eq!(sup.quality, plain.quality);
        assert_eq!(sup.timings.outcome, StageOutcome::Ok);
        assert_eq!(sup.journal.attempts(), 1);
        assert!(sup.journal.is_complete(), "{}", sup.journal.render());
    }

    #[test]
    fn transient_faults_are_retried_and_recovered() {
        let p = vertex_cover();
        let plan = ExecutionPlan::new(&p);
        let backend =
            ClassicalBackend::default().with_faults(FaultInjection::transient_failures(2));
        let sup = Supervisor { retry: fast_retry(), ..Supervisor::default() };
        let report = sup.run(&plan, &[&backend], 7).unwrap();
        assert_eq!(report.quality, SolutionQuality::Optimal);
        assert_eq!(report.timings.attempt, 2, "recovered on the third attempt");
        assert_eq!(report.timings.effective_outcome(), StageOutcome::Retried);
        assert_eq!(report.journal.attempts(), 3);
        let retries = report
            .journal
            .events
            .iter()
            .filter(|e| matches!(e.kind, JournalKind::Retry { .. }))
            .count();
        assert_eq!(retries, 2, "{}", report.journal.render());
    }

    #[test]
    fn permanent_error_degrades_down_the_ladder() {
        let p = vertex_cover(); // has soft constraints: Grover refuses
        let plan = ExecutionPlan::new(&p);
        let grover = GroverBackend::default();
        let classical = ClassicalBackend::default();
        let sup = Supervisor { retry: fast_retry(), ..Supervisor::default() };
        let report = sup.run(&plan, &[&grover, &classical], 7).unwrap();
        assert_eq!(report.quality, SolutionQuality::Optimal);
        assert_eq!(report.timings.outcome, StageOutcome::FellBack);
        let stepped =
            report.journal.events.iter().any(|e| {
                matches!(e.kind, JournalKind::LadderStep { from: "grover", to: "classical" })
            });
        assert!(stepped, "{}", report.journal.render());
        // Permanent errors are not retried: one attempt per rung.
        assert_eq!(report.journal.attempts(), 2);
    }

    #[test]
    fn exhausted_ladder_returns_typed_failure_with_complete_journal() {
        let p = vertex_cover();
        let plan = ExecutionPlan::new(&p);
        let grover = GroverBackend::default();
        let failure = Supervisor::default().run(&plan, &[&grover], 7).unwrap_err();
        assert!(
            matches!(failure.error.error, ExecError::SoftUnsupported { .. }),
            "{}",
            failure.error
        );
        assert_eq!(failure.error.backend, "grover");
        assert_eq!(failure.error.stage, "sample");
        assert!(failure.journal.is_complete(), "{}", failure.journal.render());
    }

    #[test]
    fn opened_breaker_stops_the_rung_and_short_circuits_the_next_run() {
        let p = vertex_cover();
        let plan = ExecutionPlan::new(&p).with_breaker_config(BreakerConfig {
            window: 4,
            failure_rate: 0.5,
            min_calls: 1,
            cooldown: Duration::from_secs(60),
        });
        let faulty =
            ClassicalBackend::default().with_faults(FaultInjection::transient_failures(100));
        let sup = Supervisor { retry: fast_retry(), ..Supervisor::default() };

        // First run: the very first failure opens the breaker, so the
        // rung stops after one attempt despite the retry budget.
        let failure = sup.run(&plan, &[&faulty], 7).unwrap_err();
        assert_eq!(failure.journal.attempts(), 1, "{}", failure.journal.render());
        let opened =
            failure.journal.events.iter().any(|e| matches!(e.kind, JournalKind::BreakerOpened));
        assert!(opened, "{}", failure.journal.render());

        // Second run on the same plan: the open breaker rejects the
        // rung without invoking the backend at all.
        let failure = sup.run(&plan, &[&faulty], 8).unwrap_err();
        assert_eq!(failure.journal.attempts(), 0, "{}", failure.journal.render());
        assert!(matches!(failure.error.error, ExecError::BreakerOpen { backend: "classical" }));
        let short = failure
            .journal
            .events
            .iter()
            .any(|e| matches!(e.kind, JournalKind::BreakerShortCircuit));
        assert!(short, "{}", failure.journal.render());
    }

    #[test]
    fn attempt_budget_bounds_the_whole_ladder() {
        let p = vertex_cover();
        // A breaker lenient enough that the attempt budget, not the
        // breaker, is what stops the run.
        let plan = ExecutionPlan::new(&p)
            .with_breaker_config(BreakerConfig { min_calls: 100, ..BreakerConfig::default() });
        let faulty =
            ClassicalBackend::default().with_faults(FaultInjection::transient_failures(100));
        let sup = Supervisor {
            budget: RunBudget { max_attempts: 3, ..RunBudget::default() },
            retry: RetryPolicy { retries_per_rung: 10, ..fast_retry() },
            ..Supervisor::default()
        };
        let failure = sup.run(&plan, &[&faulty], 7).unwrap_err();
        assert_eq!(failure.journal.attempts(), 3, "{}", failure.journal.render());
        assert!(matches!(failure.error.error, ExecError::BudgetExhausted { what: "attempts" }));
    }

    #[test]
    fn stalled_rung_is_rescued_by_the_next_rung_within_the_deadline() {
        let p = vertex_cover();
        let plan = ExecutionPlan::new(&p);
        // A rung that stalls far past the whole deadline...
        let stalled =
            ClassicalBackend::default().with_faults(FaultInjection::stall(Duration::from_secs(30)));
        // ...must not starve the healthy rung below it.
        let healthy = ClassicalBackend::default();
        let sup = Supervisor {
            budget: RunBudget::with_deadline(Duration::from_millis(400)),
            retry: fast_retry(),
            ..Supervisor::default()
        };
        let t = Instant::now();
        let report = sup.run(&plan, &[&stalled, &healthy], 7).unwrap();
        assert!(
            t.elapsed() < Duration::from_secs(2),
            "supervised run overran its deadline: {:?}",
            t.elapsed()
        );
        assert_eq!(report.quality, SolutionQuality::Optimal);
        assert_eq!(report.timings.outcome, StageOutcome::FellBack);
    }

    #[test]
    fn zero_deadline_fails_immediately_with_budget_error() {
        let p = vertex_cover();
        let plan = ExecutionPlan::new(&p);
        let backend = ClassicalBackend::default();
        let sup = Supervisor {
            budget: RunBudget::with_deadline(Duration::ZERO),
            retry: fast_retry(),
            ..Supervisor::default()
        };
        let failure = sup.run(&plan, &[&backend], 7).unwrap_err();
        assert!(
            matches!(
                failure.error.error,
                ExecError::BudgetExhausted { what: "deadline" } | ExecError::Cancelled { .. }
            ),
            "{}",
            failure.error
        );
        assert!(failure.journal.is_complete());
    }

    #[test]
    fn retry_seeds_decorrelate_but_first_attempt_seed_is_the_callers() {
        assert_eq!(Supervisor::attempt_seed(42, 0), 42);
        assert_ne!(Supervisor::attempt_seed(42, 1), 42);
        assert_ne!(Supervisor::attempt_seed(42, 1), Supervisor::attempt_seed(42, 2));
    }

    #[test]
    fn durable_run_matches_plain_run_and_persists_the_journal() {
        let p = vertex_cover();
        let plan = ExecutionPlan::new(&p);
        let backend = ClassicalBackend::default();
        let sup = Supervisor::default();
        let tmp = TempDir::new("plainmatch");

        let plain = sup.run(&plan, &[&backend], 7).unwrap();
        let durable = sup.run_durable(&plan, &[&backend], 7, &tmp.0).unwrap();
        assert_eq!(durable.assignment, plain.assignment);
        assert_eq!(durable.quality, plain.quality);
        assert_eq!(durable.soft_satisfied, plain.soft_satisfied);

        // The store holds the whole run: a snapshot marked finished
        // whose journal equals the in-memory one event-for-event
        // (timebase offsets round-trip bit-exactly).
        let (_store, recovered) = RunStore::open_resume(&tmp.0).unwrap();
        let run = RecoveredRun::recover(&recovered).unwrap();
        assert_eq!(run.finished, Some(true));
        assert_eq!(run.journal, durable.journal);
    }

    #[test]
    fn resuming_a_finished_run_is_a_typed_error() {
        let p = vertex_cover();
        let plan = ExecutionPlan::new(&p);
        let backend = ClassicalBackend::default();
        let sup = Supervisor::default();
        let tmp = TempDir::new("finished");
        sup.run_durable(&plan, &[&backend], 7, &tmp.0).unwrap();
        let failure = sup.resume_durable(&plan, &[&backend], 7, &tmp.0).unwrap_err();
        assert!(
            matches!(failure.error.error, ExecError::AlreadyFinished { .. }),
            "{}",
            failure.error
        );
    }

    #[test]
    fn durable_rejects_a_dir_that_already_holds_a_run_and_resume_rejects_an_empty_one() {
        let p = vertex_cover();
        let plan = ExecutionPlan::new(&p);
        let backend = ClassicalBackend::default();
        let sup = Supervisor::default();

        let tmp = TempDir::new("fresh");
        let failure = sup.resume_durable(&plan, &[&backend], 7, &tmp.0).unwrap_err();
        assert!(
            matches!(failure.error.error, ExecError::Store(StoreError::NoRun { .. })),
            "{}",
            failure.error
        );
        sup.run_durable(&plan, &[&backend], 7, &tmp.0).unwrap();
        let failure = sup.run_durable(&plan, &[&backend], 7, &tmp.0).unwrap_err();
        assert!(
            matches!(failure.error.error, ExecError::Store(StoreError::NotEmpty { .. })),
            "{}",
            failure.error
        );
    }

    #[test]
    fn killed_run_surfaces_the_kill_and_resume_converges_to_the_plain_report() {
        let p = vertex_cover();
        let plan = ExecutionPlan::new(&p);
        let backend = ClassicalBackend::default();
        let sup = Supervisor::default();
        let baseline = sup.run(&plan, &[&backend], 7).unwrap();

        let tmp = TempDir::new("killresume");
        let mut store = RunStore::open_fresh(&tmp.0).unwrap();
        store.arm_kill(KillSpec { point: KillPoint::CrashBeforeFsync, at_op: 2 });
        let failure = sup.run_with_store(&plan, &[&backend], 7, store).unwrap_err();
        assert!(
            matches!(
                failure.error.error,
                ExecError::Store(StoreError::Killed { point: "crash-before-fsync" })
            ),
            "{}",
            failure.error
        );

        let report = sup.resume_durable(&plan, &[&backend], 7, &tmp.0).unwrap();
        assert_eq!(report.assignment, baseline.assignment);
        assert_eq!(report.quality, baseline.quality);
        assert_eq!(report.soft_satisfied, baseline.soft_satisfied);
        // The resumed run's journal never repeats a completed attempt:
        // the persisted prefix plus the continuation, still complete.
        assert!(report.journal.is_complete(), "{}", report.journal.render());
    }
}
