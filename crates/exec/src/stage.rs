//! Per-stage wall-times and counters for one end-to-end execution —
//! the §VIII-C timing experiment as a first-class artifact instead of
//! ad-hoc `Instant::now()` pairs in each bench binary.
//!
//! The pipeline stages are `compile` → `embed` → `sample` → `decode` →
//! `classify`. Backends without a stage leave it at zero (the gate
//! model has no embedding; its optimize-and-sample loop is reported
//! under `sample`; the classical solver's search is likewise reported
//! under `sample`).

use std::time::Duration;

/// How an execution ended, for the CSV `outcome` column.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StageOutcome {
    /// Clean first-attempt success, no retries or fallbacks.
    #[default]
    Ok,
    /// Succeeded, but only after at least one retry (embedding reseed
    /// or a supervisor retry of the whole attempt).
    Retried,
    /// Succeeded, but only via a fallback policy (clique embedding,
    /// analytic p = 1 QAOA) or a degradation-ladder step.
    FellBack,
    /// The execution failed with a typed error.
    Failed,
}

impl StageOutcome {
    /// The CSV cell for this outcome.
    pub fn as_str(&self) -> &'static str {
        match self {
            StageOutcome::Ok => "ok",
            StageOutcome::Retried => "retried",
            StageOutcome::FellBack => "fell_back",
            StageOutcome::Failed => "failed",
        }
    }
}

/// Wall-times and counters for one execution through the pipeline.
#[derive(Clone, Debug, Default)]
pub struct StageTimings {
    /// Program → QUBO compilation (zero-cost on a plan cache hit).
    pub compile: Duration,
    /// Minor embedding onto the hardware graph (annealer only;
    /// zero-cost on a backend embedding-cache hit).
    pub embed: Duration,
    /// The backend's own work: annealing reads, the QAOA
    /// optimize-and-sample loop, Grover search, or the classical
    /// branch-and-bound.
    pub sample: Duration,
    /// Projecting raw backend assignments down to program variables.
    pub decode: Duration,
    /// Classification against the optimality oracle (includes the
    /// oracle's classical solve the first time a plan needs it).
    pub classify: Duration,
    /// The plan served the compiled program from its cache.
    pub compile_cache_hit: bool,
    /// The annealer backend reused a cached minor embedding.
    pub embed_cache_hit: bool,
    /// Embedding attempts that failed and were retried with a fresh
    /// rip-up seed.
    pub embed_retries: u32,
    /// Fallbacks taken (clique embedding after heuristic failure;
    /// analytic p=1 QAOA after state-vector overflow).
    pub fallbacks: u32,
    /// Candidate assignments the backend returned for classification.
    pub candidates: usize,
    /// Supervisor attempt index this timing belongs to (0 for plain
    /// unsupervised runs and first attempts).
    pub attempt: u32,
    /// How the execution ended (overridden by the supervisor when it
    /// retried or degraded across attempts).
    pub outcome: StageOutcome,
}

impl StageTimings {
    /// Header for the CSV emitted by [`StageTimings::csv_rows`].
    pub const CSV_HEADER: &'static str = "label,stage,ms,outcome,attempts";

    /// The five pipeline stages in order, with their wall-times.
    pub fn stages(&self) -> [(&'static str, Duration); 5] {
        [
            ("compile", self.compile),
            ("embed", self.embed),
            ("sample", self.sample),
            ("decode", self.decode),
            ("classify", self.classify),
        ]
    }

    /// Total wall-time across all stages.
    pub fn total(&self) -> Duration {
        self.stages().iter().map(|&(_, d)| d).sum()
    }

    /// The outcome for the CSV: an explicit `Failed`/`FellBack` marker
    /// wins; otherwise in-attempt counters decide (fallback taken →
    /// `fell_back`, any retry → `retried`, else `ok`).
    pub fn effective_outcome(&self) -> StageOutcome {
        match self.outcome {
            StageOutcome::Ok => {
                if self.fallbacks > 0 {
                    StageOutcome::FellBack
                } else if self.embed_retries > 0 || self.attempt > 0 {
                    StageOutcome::Retried
                } else {
                    StageOutcome::Ok
                }
            }
            explicit => explicit,
        }
    }

    /// Total attempts this execution consumed (the attempt index is
    /// 0-based).
    pub fn attempts(&self) -> u32 {
        self.attempt + 1
    }

    /// One CSV row per stage (`label,stage,ms,outcome,attempts`),
    /// newline-terminated.
    pub fn csv_rows(&self, label: &str) -> String {
        let outcome = self.effective_outcome().as_str();
        let attempts = self.attempts();
        let mut out = String::new();
        for (stage, d) in self.stages() {
            out.push_str(&format!(
                "{label},{stage},{:.3},{outcome},{attempts}\n",
                d.as_secs_f64() * 1e3
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_has_one_row_per_stage() {
        let t = StageTimings {
            compile: Duration::from_millis(2),
            sample: Duration::from_millis(30),
            ..Default::default()
        };
        let csv = t.csv_rows("vc");
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.starts_with("vc,compile,2.000,ok,1\n"), "{csv}");
        assert!(csv.contains("vc,sample,30.000,ok,1\n"));
        assert!(csv.contains("vc,decode,0.000,ok,1\n"));
    }

    #[test]
    fn total_sums_stages() {
        let t = StageTimings {
            embed: Duration::from_millis(5),
            classify: Duration::from_millis(7),
            ..Default::default()
        };
        assert_eq!(t.total(), Duration::from_millis(12));
    }

    #[test]
    fn outcome_column_reflects_retries_and_fallbacks() {
        let mut t = StageTimings::default();
        assert_eq!(t.effective_outcome(), StageOutcome::Ok);
        t.embed_retries = 2;
        assert_eq!(t.effective_outcome(), StageOutcome::Retried);
        t.fallbacks = 1;
        assert_eq!(t.effective_outcome(), StageOutcome::FellBack);
        t.outcome = StageOutcome::Failed;
        assert_eq!(t.effective_outcome(), StageOutcome::Failed);
        assert!(t.csv_rows("x").contains(",failed,1\n"));
    }

    #[test]
    fn supervised_retry_shows_in_attempts_column() {
        let t = StageTimings { attempt: 2, ..Default::default() };
        assert_eq!(t.effective_outcome(), StageOutcome::Retried);
        assert!(t.csv_rows("x").starts_with("x,compile,0.000,retried,3\n"));
    }
}
