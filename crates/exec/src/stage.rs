//! Per-stage wall-times and counters for one end-to-end execution —
//! the §VIII-C timing experiment as a first-class artifact instead of
//! ad-hoc `Instant::now()` pairs in each bench binary.
//!
//! The pipeline stages are `compile` → `embed` → `sample` → `decode` →
//! `classify`. Backends without a stage leave it at zero (the gate
//! model has no embedding; its optimize-and-sample loop is reported
//! under `sample`; the classical solver's search is likewise reported
//! under `sample`).

use std::time::Duration;

/// Wall-times and counters for one execution through the pipeline.
#[derive(Clone, Debug, Default)]
pub struct StageTimings {
    /// Program → QUBO compilation (zero-cost on a plan cache hit).
    pub compile: Duration,
    /// Minor embedding onto the hardware graph (annealer only;
    /// zero-cost on a backend embedding-cache hit).
    pub embed: Duration,
    /// The backend's own work: annealing reads, the QAOA
    /// optimize-and-sample loop, Grover search, or the classical
    /// branch-and-bound.
    pub sample: Duration,
    /// Projecting raw backend assignments down to program variables.
    pub decode: Duration,
    /// Classification against the optimality oracle (includes the
    /// oracle's classical solve the first time a plan needs it).
    pub classify: Duration,
    /// The plan served the compiled program from its cache.
    pub compile_cache_hit: bool,
    /// The annealer backend reused a cached minor embedding.
    pub embed_cache_hit: bool,
    /// Embedding attempts that failed and were retried with a fresh
    /// rip-up seed.
    pub embed_retries: u32,
    /// Fallbacks taken (clique embedding after heuristic failure;
    /// analytic p=1 QAOA after state-vector overflow).
    pub fallbacks: u32,
    /// Candidate assignments the backend returned for classification.
    pub candidates: usize,
}

impl StageTimings {
    /// Header for the CSV emitted by [`StageTimings::csv_rows`].
    pub const CSV_HEADER: &'static str = "label,stage,ms";

    /// The five pipeline stages in order, with their wall-times.
    pub fn stages(&self) -> [(&'static str, Duration); 5] {
        [
            ("compile", self.compile),
            ("embed", self.embed),
            ("sample", self.sample),
            ("decode", self.decode),
            ("classify", self.classify),
        ]
    }

    /// Total wall-time across all stages.
    pub fn total(&self) -> Duration {
        self.stages().iter().map(|&(_, d)| d).sum()
    }

    /// One CSV row per stage (`label,stage,ms`), newline-terminated.
    pub fn csv_rows(&self, label: &str) -> String {
        let mut out = String::new();
        for (stage, d) in self.stages() {
            out.push_str(&format!("{label},{stage},{:.3}\n", d.as_secs_f64() * 1e3));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_has_one_row_per_stage() {
        let t = StageTimings {
            compile: Duration::from_millis(2),
            sample: Duration::from_millis(30),
            ..Default::default()
        };
        let csv = t.csv_rows("vc");
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.starts_with("vc,compile,2.000\n"));
        assert!(csv.contains("vc,sample,30.000\n"));
        assert!(csv.contains("vc,decode,0.000\n"));
    }

    #[test]
    fn total_sums_stages() {
        let t = StageTimings {
            embed: Duration::from_millis(5),
            classify: Duration::from_millis(7),
            ..Default::default()
        };
        assert_eq!(t.total(), Duration::from_millis(12));
    }
}
