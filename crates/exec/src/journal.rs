//! [`RunJournal`]: a structured, append-only record of everything a
//! supervised execution did — every attempt, fault, fallback, breaker
//! transition, ladder step, and partial result.
//!
//! The journal answers the question a bare `Result` cannot: *why* did
//! this run succeed or fail, and what did it cost along the way? A
//! clique-fallback success still records why the heuristic embedder
//! failed; a ladder rescue records which rung burned how many attempts
//! before the next rung took over.

use crate::error::ExecError;
use crate::stage::StageTimings;
use nck_cancel::{CancelToken, Checkpointer, NoopCheckpointer};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One journaled event inside a (possibly supervised) execution.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalEvent {
    /// Wall-clock offset from the start of the run (the supervised
    /// run's start when supervised; the attempt's start otherwise).
    pub at: Duration,
    /// Backend the event belongs to.
    pub backend: &'static str,
    /// Attempt index on that backend (0-based).
    pub attempt: u32,
    /// What happened.
    pub kind: JournalKind,
}

/// The event vocabulary of a [`RunJournal`].
#[derive(Clone, Debug, PartialEq)]
pub enum JournalKind {
    /// An attempt on a backend began.
    AttemptStarted,
    /// A stage inside an attempt failed. `suppressed` is true when a
    /// fallback rescued the attempt (the error never escaped), so the
    /// journal keeps the provenance a successful report would lose.
    StageFailed {
        /// Pipeline stage that failed (`embed`, `sample`, …).
        stage: &'static str,
        /// The typed error, with full provenance.
        error: ExecError,
        /// True when a fallback rescued the attempt.
        suppressed: bool,
    },
    /// A fallback policy fired (clique embedding, analytic p = 1).
    FallbackTaken {
        /// Which fallback.
        what: &'static str,
    },
    /// An attempt failed and a retry was scheduled after a backoff.
    Retry {
        /// Backoff delay before the next attempt.
        backoff: Duration,
    },
    /// The backend's circuit breaker transitioned to open.
    BreakerOpened,
    /// An open breaker short-circuited the rung without invoking the
    /// backend.
    BreakerShortCircuit,
    /// A half-open breaker admitted a probe attempt.
    BreakerProbe,
    /// A rung gave up (attempts, budget, or a permanent error).
    RungExhausted {
        /// Why the rung stopped.
        reason: String,
    },
    /// The ladder degraded from one rung to the next.
    LadderStep {
        /// Rung that was abandoned.
        from: &'static str,
        /// Rung taking over.
        to: &'static str,
    },
    /// The run finished under cancellation with a usable partial
    /// result (e.g. half-annealed reads).
    PartialResult {
        /// Candidates salvaged.
        candidates: usize,
    },
    /// The run produced a report.
    Succeeded,
    /// The run failed; this is always the journal's final event.
    Failed {
        /// The terminal error.
        error: ExecError,
    },
}

impl fmt::Display for JournalEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>9.3}ms] {}#{} ", self.at.as_secs_f64() * 1e3, self.backend, self.attempt)?;
        match &self.kind {
            JournalKind::AttemptStarted => write!(f, "attempt started"),
            JournalKind::StageFailed { stage, error, suppressed } => {
                let tag = if *suppressed { " (suppressed by fallback)" } else { "" };
                write!(f, "stage {stage} failed{tag}: {error}")
            }
            JournalKind::FallbackTaken { what } => write!(f, "fallback: {what}"),
            JournalKind::Retry { backoff } => {
                write!(f, "retry after {:.3}ms backoff", backoff.as_secs_f64() * 1e3)
            }
            JournalKind::BreakerOpened => write!(f, "circuit breaker opened"),
            JournalKind::BreakerShortCircuit => {
                write!(f, "circuit breaker open: short-circuited without invoking backend")
            }
            JournalKind::BreakerProbe => write!(f, "circuit breaker half-open: probe admitted"),
            JournalKind::RungExhausted { reason } => write!(f, "rung exhausted: {reason}"),
            JournalKind::LadderStep { from, to } => write!(f, "ladder: {from} -> {to}"),
            JournalKind::PartialResult { candidates } => {
                write!(f, "partial result under cancellation: {candidates} candidate(s)")
            }
            JournalKind::Succeeded => write!(f, "succeeded"),
            JournalKind::Failed { error } => write!(f, "failed: {error}"),
        }
    }
}

/// The structured journal of one execution. Empty for unsupervised
/// fault-free runs (no allocation).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunJournal {
    /// Events in chronological order.
    pub events: Vec<JournalEvent>,
}

impl RunJournal {
    /// Append an event.
    pub fn push(&mut self, at: Duration, backend: &'static str, attempt: u32, kind: JournalKind) {
        self.events.push(JournalEvent { at, backend, attempt, kind });
    }

    /// Is the journal *complete*: non-empty and closed by a terminal
    /// [`Succeeded`](JournalKind::Succeeded) /
    /// [`Failed`](JournalKind::Failed) event?
    pub fn is_complete(&self) -> bool {
        matches!(
            self.events.last().map(|e| &e.kind),
            Some(JournalKind::Succeeded | JournalKind::Failed { .. })
        )
    }

    /// Every suppressed stage failure (errors a fallback rescued) —
    /// the provenance a successful report would otherwise lose.
    pub fn suppressed_errors(&self) -> impl Iterator<Item = &JournalEvent> {
        self.events
            .iter()
            .filter(|e| matches!(&e.kind, JournalKind::StageFailed { suppressed: true, .. }))
    }

    /// Attempts started, per the journal.
    pub fn attempts(&self) -> usize {
        self.events.iter().filter(|e| matches!(e.kind, JournalKind::AttemptStarted)).count()
    }

    /// Render the whole journal, one event per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!("{e}\n"));
        }
        out
    }
}

/// Per-attempt execution context handed to every [`Backend::run`]:
/// stage timings, the journal, the cooperative cancellation token, and
/// the attempt index (so fault scripts and backoff schedules can be
/// attempt-aware).
///
/// [`Backend::run`]: crate::Backend::run
pub struct RunCtx {
    /// Per-stage wall-times and counters for this attempt.
    pub stages: StageTimings,
    /// Journal events recorded during this attempt.
    pub journal: RunJournal,
    /// Cooperative cancellation token every hot loop polls.
    pub cancel: CancelToken,
    /// Mid-solve checkpoint sink. [`NoopCheckpointer`] (interval 0) for
    /// plain runs; the supervisor's durable sink for `--run-dir` runs.
    pub ckpt: Arc<dyn Checkpointer>,
    /// Attempt index on this backend (0 on the first try).
    pub attempt: u32,
    /// Name of the backend executing the attempt.
    pub backend: &'static str,
    /// Pipeline stage currently executing (for error provenance).
    pub stage: &'static str,
    started: Instant,
}

impl fmt::Debug for RunCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunCtx")
            .field("stages", &self.stages)
            .field("journal", &self.journal)
            .field("cancel", &self.cancel)
            .field("attempt", &self.attempt)
            .field("backend", &self.backend)
            .field("stage", &self.stage)
            .finish_non_exhaustive()
    }
}

impl RunCtx {
    /// A context for one attempt on `backend`.
    pub fn new(backend: &'static str, cancel: CancelToken, attempt: u32, started: Instant) -> Self {
        RunCtx {
            stages: StageTimings { attempt, ..StageTimings::default() },
            journal: RunJournal::default(),
            cancel,
            ckpt: Arc::new(NoopCheckpointer),
            attempt,
            backend,
            stage: "compile",
            started,
        }
    }

    /// The same context with a mid-solve checkpoint sink attached.
    pub fn with_checkpointer(mut self, ckpt: Arc<dyn Checkpointer>) -> Self {
        self.ckpt = ckpt;
        self
    }

    /// A plain context: never cancelled, first attempt, clock starting
    /// now.
    pub fn plain(backend: &'static str) -> Self {
        RunCtx::new(backend, CancelToken::never(), 0, Instant::now())
    }

    /// Mark the pipeline stage currently executing.
    pub fn enter_stage(&mut self, stage: &'static str) {
        self.stage = stage;
    }

    /// Journal an event at the current wall-clock offset.
    pub fn note(&mut self, kind: JournalKind) {
        self.journal.push(self.started.elapsed(), self.backend, self.attempt, kind);
    }

    /// Journal a stage failure that a fallback is about to rescue.
    pub fn note_suppressed(&mut self, error: ExecError) {
        let stage = self.stage;
        self.note(JournalKind::StageFailed { stage, error, suppressed: true });
    }

    /// Wall-clock offset since the run started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// When the run started (shared across supervised attempts so the
    /// journal has one timebase).
    pub fn started(&self) -> Instant {
        self.started
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_completeness() {
        let mut j = RunJournal::default();
        assert!(!j.is_complete());
        j.push(Duration::ZERO, "annealer", 0, JournalKind::AttemptStarted);
        assert!(!j.is_complete());
        j.push(Duration::from_millis(3), "annealer", 0, JournalKind::Succeeded);
        assert!(j.is_complete());
    }

    #[test]
    fn suppressed_errors_surface() {
        let mut ctx = RunCtx::plain("annealer");
        ctx.enter_stage("embed");
        ctx.note_suppressed(ExecError::NoCandidates);
        assert_eq!(ctx.journal.suppressed_errors().count(), 1);
        let rendered = ctx.journal.render();
        assert!(rendered.contains("suppressed by fallback"), "{rendered}");
        assert!(rendered.contains("embed"), "{rendered}");
    }

    #[test]
    fn render_is_one_line_per_event() {
        let mut j = RunJournal::default();
        j.push(Duration::ZERO, "gate", 0, JournalKind::AttemptStarted);
        j.push(
            Duration::from_millis(1),
            "gate",
            0,
            JournalKind::Retry { backoff: Duration::from_millis(4) },
        );
        j.push(Duration::from_millis(9), "gate", 1, JournalKind::Succeeded);
        assert_eq!(j.render().lines().count(), 3);
        assert_eq!(j.attempts(), 1);
    }
}
