//! The classical exact solver (the Z3-role baseline) behind the
//! [`Backend`] trait.

use crate::backend::{Backend, BackendMetrics, Candidates, Prepared};
use crate::durable::{decode_incumbent, encode_incumbent};
use crate::error::ExecError;
use crate::fault::FaultInjection;
use crate::journal::{JournalKind, RunCtx};
use nck_classical::{solve_cancellable, solve_resumable, Incumbent, SolveOutcome, SolverOptions};
use std::sync::Arc;
use std::time::Instant;

/// Exact branch and bound over the NchooseK constraints directly.
///
/// When the search completes (not truncated by the node limit or a
/// deadline) the result is proven soft-optimal, so the plan's
/// optimality oracle is seeded for free — a classical run also
/// establishes the yardstick every quantum backend is judged against.
#[derive(Clone, Debug, Default)]
pub struct ClassicalBackend {
    /// Solver options (node limit).
    pub options: SolverOptions,
    /// Deterministic fault injection for exercising the supervisor's
    /// retry policy in tests.
    pub faults: FaultInjection,
}

impl ClassicalBackend {
    /// The same backend with deterministic fault injection enabled.
    pub fn with_faults(mut self, faults: FaultInjection) -> Self {
        self.faults = faults;
        self
    }
}

impl Backend for ClassicalBackend {
    fn name(&self) -> &'static str {
        "classical"
    }

    fn run(
        &self,
        prepared: &Prepared<'_>,
        _seed: u64,
        ctx: &mut RunCtx,
    ) -> Result<(Candidates, BackendMetrics), ExecError> {
        ctx.enter_stage("sample");
        self.faults.apply_sample_faults(ctx)?;
        let t = Instant::now();
        let (outcome, stats) = if ctx.ckpt.interval() == 0 {
            solve_cancellable(prepared.program, &self.options, &ctx.cancel)
        } else {
            // Durable run: seed the search with the persisted incumbent
            // (the branch-and-bound prunes against it immediately) and
            // checkpoint every improvement.
            let restored = ctx.ckpt.load("classical").and_then(|buf| decode_incumbent(&buf));
            let sink = Arc::clone(&ctx.ckpt);
            solve_resumable(
                prepared.program,
                &self.options,
                &ctx.cancel,
                restored,
                &mut |inc: &Incumbent| sink.save("classical", &encode_incumbent(inc)),
            )
        };
        ctx.stages.sample = t.elapsed();
        let metrics = BackendMetrics::Classical {
            nodes: stats.nodes,
            propagations: stats.propagations,
            truncated: stats.truncated,
        };
        match outcome {
            SolveOutcome::Solved { assignment, soft_weight, .. } => {
                let candidates = if stats.truncated {
                    // A truncated search yields an incumbent, not a
                    // proven optimum — don't seed the oracle with it.
                    if ctx.cancel.is_cancelled() {
                        ctx.note(JournalKind::PartialResult { candidates: 1 });
                    }
                    Candidates::Program(vec![assignment])
                } else {
                    Candidates::Exact { assignment, soft_weight }
                };
                Ok((candidates, metrics))
            }
            // A truncated search that found no incumbent proves
            // nothing: claiming unsatisfiability here would be wrong
            // (the pre-supervisor code did exactly that).
            SolveOutcome::Unsatisfiable if stats.truncated => {
                if ctx.cancel.is_cancelled() {
                    Err(ExecError::Cancelled { backend: ctx.backend, stage: ctx.stage })
                } else {
                    Err(ExecError::BudgetExhausted { what: "nodes" })
                }
            }
            SolveOutcome::Unsatisfiable => Err(ExecError::Unsatisfiable),
        }
    }
}
