//! The classical exact solver (the Z3-role baseline) behind the
//! [`Backend`] trait.

use crate::backend::{Backend, BackendMetrics, Candidates, Prepared};
use crate::error::ExecError;
use crate::stage::StageTimings;
use nck_classical::{solve, SolveOutcome, SolverOptions};
use std::time::Instant;

/// Exact branch and bound over the NchooseK constraints directly.
///
/// When the search completes (not truncated by the node limit) the
/// result is proven soft-optimal, so the plan's optimality oracle is
/// seeded for free — a classical run also establishes the yardstick
/// every quantum backend is judged against.
#[derive(Clone, Debug, Default)]
pub struct ClassicalBackend {
    /// Solver options (node limit).
    pub options: SolverOptions,
}

impl Backend for ClassicalBackend {
    fn name(&self) -> &'static str {
        "classical"
    }

    fn run(
        &self,
        prepared: &Prepared<'_>,
        _seed: u64,
        stages: &mut StageTimings,
    ) -> Result<(Candidates, BackendMetrics), ExecError> {
        let t = Instant::now();
        let (outcome, stats) = solve(prepared.program, &self.options);
        stages.sample = t.elapsed();
        let metrics = BackendMetrics::Classical {
            nodes: stats.nodes,
            propagations: stats.propagations,
            truncated: stats.truncated,
        };
        match outcome {
            SolveOutcome::Solved { assignment, soft_weight, .. } => {
                let candidates = if stats.truncated {
                    // A truncated search yields an incumbent, not a
                    // proven optimum — don't seed the oracle with it.
                    Candidates::Program(vec![assignment])
                } else {
                    Candidates::Exact { assignment, soft_weight }
                };
                Ok((candidates, metrics))
            }
            SolveOutcome::Unsatisfiable => Err(ExecError::Unsatisfiable),
        }
    }
}
