//! The simulated D-Wave annealer behind the [`Backend`] trait, with an
//! embedding cache and a typed retry/fallback policy.

use crate::backend::{Backend, BackendMetrics, Candidates, Prepared};
use crate::durable::{decode_anneal_progress, encode_anneal_progress};
use crate::error::{ExecError, FaultKind};
use crate::fault::FaultInjection;
use crate::journal::{JournalKind, RunCtx};
use nck_anneal::{find_embedding, AnnealError, AnnealerDevice, Embedding, Topology};
use nck_qubo::Qubo;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::time::Instant;

/// One job of `num_reads` samples on a simulated annealer, best sample
/// reported (the paper's §VII protocol).
///
/// Embedding policy: the heuristic embedder is retried with a fresh
/// rip-up seed up to [`embed_reseed_tries`](Self::embed_reseed_tries)
/// times, then the device's precomputed clique embedding is tried, and
/// only then does the run fail with
/// [`AnnealError::EmbeddingFailed`]. Found embeddings are cached per
/// QUBO structure, so multi-seed sweeps embed once (the
/// `FixedEmbeddingComposite` pattern).
#[derive(Debug)]
pub struct AnnealerBackend {
    /// The device to sample on.
    pub device: AnnealerDevice,
    /// Samples per job.
    pub num_reads: usize,
    /// Extra embedding attempts with fresh rip-up seeds after the
    /// device's own per-seed tries are exhausted.
    pub embed_reseed_tries: u32,
    /// Deterministic fault injection for exercising the retry and
    /// fallback policies in tests.
    pub faults: FaultInjection,
    /// Last found embedding, keyed by QUBO structure fingerprint.
    embedding_cache: Mutex<Option<(u64, Embedding)>>,
}

impl AnnealerBackend {
    /// A backend on `device` sampling `num_reads` per job.
    pub fn new(device: AnnealerDevice, num_reads: usize) -> Self {
        AnnealerBackend {
            device,
            num_reads,
            embed_reseed_tries: 3,
            faults: FaultInjection::default(),
            embedding_cache: Mutex::new(None),
        }
    }

    /// The same backend with deterministic fault injection enabled.
    pub fn with_faults(mut self, faults: FaultInjection) -> Self {
        self.faults = faults;
        self
    }

    /// Structural fingerprint of a QUBO: embeddings depend only on the
    /// variable count and adjacency, not the coefficients.
    fn fingerprint(qubo: &Qubo) -> u64 {
        let mut h = DefaultHasher::new();
        qubo.num_vars().hash(&mut h);
        for neighbors in qubo.adjacency() {
            let mut ns = neighbors;
            ns.sort_unstable();
            ns.hash(&mut h);
        }
        h.finish()
    }

    /// Find (or reuse) an embedding for `qubo`, applying the retry and
    /// clique-fallback policy.
    fn embed(&self, qubo: &Qubo, seed: u64, ctx: &mut RunCtx) -> Result<Embedding, ExecError> {
        let fp = Self::fingerprint(qubo);
        let mut cached = self.embedding_cache.lock();
        if let Some((cached_fp, e)) = &*cached {
            if *cached_fp == fp {
                ctx.stages.embed_cache_hit = true;
                return Ok(e.clone());
            }
        }
        if ctx.cancel.is_cancelled() {
            return Err(ExecError::Cancelled { backend: ctx.backend, stage: ctx.stage });
        }
        let adj = qubo.adjacency();
        let mut found = None;
        for attempt in 0..=u64::from(self.embed_reseed_tries) {
            // Injected failure: discard this attempt as if the
            // heuristic embedder had failed, driving the rip-up retry
            // (and eventually the clique fallback) deterministically.
            if attempt < u64::from(self.faults.embed_failures) {
                ctx.stages.embed_retries += 1;
                continue;
            }
            let rip_up_seed = seed ^ attempt.wrapping_mul(0x9e3779b97f4a7c15);
            if let Some(e) =
                find_embedding(&adj, &self.device.topology, rip_up_seed, self.device.embed_tries)
            {
                found = Some(e);
                break;
            }
            ctx.stages.embed_retries += 1;
        }
        if found.is_none() {
            if let Some(m) = self.device.clique_fallback {
                found = Topology::pegasus_like_clique_embedding(m, qubo.num_vars());
                if found.is_some() {
                    // The heuristic embedder failed every attempt; the
                    // clique fallback rescued the run. Keep the
                    // suppressed error's provenance in the journal.
                    ctx.note_suppressed(ExecError::Anneal(AnnealError::EmbeddingFailed {
                        logical_vars: qubo.num_vars(),
                        device_qubits: self.device.topology.num_qubits(),
                    }));
                    ctx.note(JournalKind::FallbackTaken { what: "clique embedding" });
                    ctx.stages.fallbacks += 1;
                }
            }
        }
        let embedding = found.ok_or(ExecError::Anneal(AnnealError::EmbeddingFailed {
            logical_vars: qubo.num_vars(),
            device_qubits: self.device.topology.num_qubits(),
        }))?;
        *cached = Some((fp, embedding.clone()));
        Ok(embedding)
    }
}

impl Backend for AnnealerBackend {
    fn name(&self) -> &'static str {
        "annealer"
    }

    fn run(
        &self,
        prepared: &Prepared<'_>,
        seed: u64,
        ctx: &mut RunCtx,
    ) -> Result<(Candidates, BackendMetrics), ExecError> {
        let qubo = &prepared.compiled.qubo;
        ctx.enter_stage("embed");
        let t = Instant::now();
        let embedding = self.embed(qubo, seed, ctx)?;
        ctx.stages.embed = t.elapsed();

        ctx.enter_stage("sample");
        self.faults.apply_sample_faults(ctx)?;
        if ctx.attempt < self.faults.chain_break_storms {
            // The job "ran" but every read came back storm-broken —
            // unusable, and worth a retry with backoff.
            return Err(ExecError::Transient {
                backend: ctx.backend,
                stage: ctx.stage,
                kind: FaultKind::ChainBreakStorm,
                attempt: ctx.attempt,
            });
        }
        let t = Instant::now();
        let interval = ctx.ckpt.interval();
        let result = if interval == 0 {
            self.device.sample_qubo_embedded_cancellable(
                qubo,
                &embedding,
                self.num_reads,
                seed,
                &ctx.cancel,
            )?
        } else {
            // Durable run: restore the interrupted job's completed
            // reads (if any) and checkpoint every `interval` reads so
            // a crash loses at most one chunk of sampling work.
            let (skip, restored) = ctx
                .ckpt
                .load("annealer")
                .and_then(|buf| decode_anneal_progress(&buf))
                .unwrap_or_default();
            let skip = skip.min(self.num_reads);
            let ckpt = std::sync::Arc::clone(&ctx.ckpt);
            self.device.sample_qubo_embedded_resumable(
                qubo,
                &embedding,
                self.num_reads,
                seed,
                skip,
                restored,
                interval as usize,
                &ctx.cancel,
                &mut |done, samples| {
                    ckpt.save("annealer", &encode_anneal_progress(done, samples));
                },
            )?
        };
        ctx.stages.sample = t.elapsed();
        if ctx.cancel.is_cancelled() {
            if result.samples.is_empty() {
                // Cancelled before a single read completed: nothing to
                // salvage.
                return Err(ExecError::Cancelled { backend: ctx.backend, stage: ctx.stage });
            }
            ctx.note(JournalKind::PartialResult { candidates: result.samples.len() });
        }
        let metrics = BackendMetrics::Annealer {
            physical_qubits: result.physical_qubits,
            max_chain_length: result.max_chain_length,
            chain_break_fraction: result.chain_break_fraction,
            qpu_access_time: result.qpu_access_time,
        };
        let samples = result.samples.into_iter().map(|s| s.assignment).collect();
        Ok((Candidates::Qubo(samples), metrics))
    }
}
