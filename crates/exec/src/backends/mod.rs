//! The four [`Backend`](crate::Backend) implementations: annealer,
//! gate-model/QAOA, Grover, and classical.

pub mod annealer;
pub mod classical;
pub mod gate;
pub mod grover;

pub use annealer::AnnealerBackend;
pub use classical::ClassicalBackend;
pub use gate::{GateModelBackend, PACKED_SAMPLER_LIMIT};
pub use grover::{GroverBackend, BBHT_GROWTH};
