//! The simulated gate-model/QAOA device behind the [`Backend`] trait,
//! with the analytic-evaluator fallback policy.

use crate::backend::{Backend, BackendMetrics, Candidates, Prepared};
use crate::durable::{decode_nm_state, encode_nm_state};
use crate::error::ExecError;
use crate::fault::FaultInjection;
use crate::journal::{JournalKind, RunCtx};
use nck_cancel::{CancelToken, Checkpointer};
use nck_circuit::{GateModelDevice, NmState, QaoaError, QaoaRun};
use nck_qubo::Qubo;
use std::sync::Arc;
use std::time::Instant;

/// Largest register the packed final-sampling path can draw from.
pub const PACKED_SAMPLER_LIMIT: usize = 64;

/// One QAOA execution on a simulated gate-model device (single
/// returned result, as in §VIII-B).
///
/// Fallback policy: when the requested depth exceeds the exact
/// state-vector simulator ([`QaoaError::TooLargeToSimulate`]) and
/// [`analytic_fallback`](Self::analytic_fallback) is set, the run is
/// retried at p = 1 where the closed-form Ozaeta–van Dam–McMahon
/// evaluator applies — the policy the per-experiment code used to
/// carry implicitly.
#[derive(Clone, Debug)]
pub struct GateModelBackend {
    /// The device to run on.
    pub device: GateModelDevice,
    /// QAOA layers p.
    pub layers: usize,
    /// Shots in the final sampling job.
    pub shots: usize,
    /// Maximum optimizer iterations.
    pub max_iter: usize,
    /// Retry at p = 1 (analytic evaluator) when the instance exceeds
    /// the exact simulator at the requested depth.
    pub analytic_fallback: bool,
    /// Deterministic fault injection for exercising the fallback
    /// policy in tests.
    pub faults: FaultInjection,
}

impl GateModelBackend {
    /// A backend on `device` with the given QAOA parameters.
    pub fn new(device: GateModelDevice, layers: usize, shots: usize, max_iter: usize) -> Self {
        GateModelBackend {
            device,
            layers,
            shots,
            max_iter,
            analytic_fallback: true,
            faults: FaultInjection::default(),
        }
    }

    /// The same backend with deterministic fault injection enabled.
    pub fn with_faults(mut self, faults: FaultInjection) -> Self {
        self.faults = faults;
        self
    }

    /// Run QAOA at depth `layers`, checkpointing the optimizer iterate
    /// through `ckpt` when the run is durable (interval > 0). A
    /// restored state is only handed to the optimizer when its simplex
    /// matches this depth's parameter dimension — a checkpoint taken
    /// at p = 3 must not seed the p = 1 fallback.
    #[allow(clippy::too_many_arguments)]
    fn qaoa(
        &self,
        qubo: &Qubo,
        layers: usize,
        seed: u64,
        cancel: &CancelToken,
        ckpt: &Arc<dyn Checkpointer>,
        restored: Option<NmState>,
    ) -> Result<QaoaRun, QaoaError> {
        let interval = ckpt.interval();
        if interval == 0 {
            return self.device.run_qaoa_cancellable(
                qubo,
                layers,
                self.shots,
                self.max_iter,
                seed,
                cancel,
            );
        }
        let state = restored.filter(|s| s.simplex.len() == 2 * layers + 1);
        let sink = Arc::clone(ckpt);
        self.device.run_qaoa_resumable(
            qubo,
            layers,
            self.shots,
            self.max_iter,
            seed,
            cancel,
            state,
            &mut |s: &NmState| {
                if (s.iterations as u64).is_multiple_of(interval) {
                    sink.save("gate", &encode_nm_state(s));
                }
            },
        )
    }
}

impl Backend for GateModelBackend {
    fn name(&self) -> &'static str {
        "gate"
    }

    fn run(
        &self,
        prepared: &Prepared<'_>,
        seed: u64,
        ctx: &mut RunCtx,
    ) -> Result<(Candidates, BackendMetrics), ExecError> {
        let n = prepared.compiled.num_qubo_vars();
        ctx.enter_stage("sample");
        if n > PACKED_SAMPLER_LIMIT && n > self.device.sim_limit {
            return Err(ExecError::TooLarge { vars: n, limit: PACKED_SAMPLER_LIMIT });
        }
        self.faults.apply_sample_faults(ctx)?;
        let qubo = &prepared.compiled.qubo;
        let t = Instant::now();
        let restored = ctx.ckpt.load("gate").and_then(|buf| decode_nm_state(&buf));
        // Injected fault: report the first attempt as a state-vector
        // overflow so the fallback policy below runs deterministically.
        let first = if self.faults.qaoa_overflow {
            Err(QaoaError::TooLargeToSimulate { needed: n, sim_limit: 0 })
        } else {
            self.qaoa(qubo, self.layers, seed, &ctx.cancel, &ctx.ckpt, restored.clone())
        };
        let run = match first {
            Ok(r) => r,
            Err(e @ QaoaError::TooLargeToSimulate { .. })
                if self.analytic_fallback && self.layers > 1 =>
            {
                ctx.note_suppressed(e.into());
                ctx.note(JournalKind::FallbackTaken { what: "analytic p=1 QAOA" });
                ctx.stages.fallbacks += 1;
                self.qaoa(qubo, 1, seed, &ctx.cancel, &ctx.ckpt, restored)?
            }
            Err(e) => return Err(e.into()),
        };
        ctx.stages.sample = t.elapsed();
        if ctx.cancel.is_cancelled() {
            // The optimizer stopped early; the final sampling job ran
            // with best-so-far parameters. Still a usable result.
            ctx.note(JournalKind::PartialResult { candidates: 1 });
        }
        let metrics = BackendMetrics::GateModel {
            qubits_used: run.qubits_used,
            depth: run.depth,
            num_swaps: run.num_swaps,
            fidelity: run.fidelity,
            num_jobs: run.num_jobs,
            estimated_time: run.estimated_time,
            expectation: run.expectation,
        };
        Ok((Candidates::Qubo(vec![run.best_assignment]), metrics))
    }
}
