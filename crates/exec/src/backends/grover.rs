//! Grover search behind the [`Backend`] trait — the lineage of the
//! original NchooseK abstraction (§I cites its first use in a Grover
//! search).
//!
//! Limited to hard-only programs (Grover amplifies *satisfying*
//! assignments; it has no notion of soft-count optimality) and to
//! registers the state-vector oracle can hold. Both limits are typed
//! [`ExecError`] values, not panics.

use crate::backend::{Backend, BackendMetrics, Candidates, Prepared};
use crate::error::ExecError;
use crate::fault::FaultInjection;
use crate::journal::RunCtx;
use nck_circuit::grover_search;
use std::time::Instant;

/// BBHT growth factor for the unknown-solution-count schedule: the
/// iteration guess is m = ⌈BBHT_GROWTH^j⌉ for j = 0, 1, …. Boyer,
/// Brassard, Høyer & Tapp prove any factor in (1, 4/3) keeps the
/// expected total oracle cost at O(√(N/M)).
pub const BBHT_GROWTH: f64 = 1.3;

/// Grover search over the program's hard constraints, using the BBHT
/// schedule for an unknown solution count: exponentially growing
/// iteration guesses, each measured once and checked classically.
#[derive(Clone, Debug)]
pub struct GroverBackend {
    /// Largest program (in variables) the state-vector oracle accepts.
    pub max_vars: usize,
    /// Maximum BBHT iteration guesses before reporting unsatisfiable.
    pub max_guesses: u64,
    /// Deterministic fault injection for exercising the supervisor's
    /// retry policy in tests.
    pub faults: FaultInjection,
}

impl Default for GroverBackend {
    fn default() -> Self {
        GroverBackend { max_vars: 20, max_guesses: 64, faults: FaultInjection::default() }
    }
}

impl GroverBackend {
    /// The same backend with deterministic fault injection enabled.
    pub fn with_faults(mut self, faults: FaultInjection) -> Self {
        self.faults = faults;
        self
    }
}

impl Backend for GroverBackend {
    fn name(&self) -> &'static str {
        "grover"
    }

    fn run(
        &self,
        prepared: &Prepared<'_>,
        seed: u64,
        ctx: &mut RunCtx,
    ) -> Result<(Candidates, BackendMetrics), ExecError> {
        let program = prepared.program;
        ctx.enter_stage("sample");
        if program.num_soft() > 0 {
            return Err(ExecError::SoftUnsupported { num_soft: program.num_soft() });
        }
        let n = program.num_vars();
        if n > self.max_vars {
            return Err(ExecError::TooLarge { vars: n, limit: self.max_vars });
        }
        self.faults.apply_sample_faults(ctx)?;
        let predicate = |bits: u64| {
            let x: Vec<bool> = (0..n).map(|q| bits >> q & 1 == 1).collect();
            program.all_hard_satisfied(&x)
        };
        let t = Instant::now();
        // BBHT: try m = ⌈BBHT_GROWTH^j⌉ iterations, j = 0, 1, …;
        // measure once per guess. Expected O(√(N/M)) total oracle calls.
        let mut m = 1.0f64;
        let mut found: Option<Vec<bool>> = None;
        let mut measurements = 0usize;
        let mut total_iterations = 0usize;
        let mut success_probability = 0.0;
        for j in 0..self.max_guesses {
            // A measured-but-unsatisfying guess carries no partial
            // information worth salvaging, so cancellation simply stops
            // the schedule.
            if ctx.cancel.is_cancelled() {
                ctx.stages.sample = t.elapsed();
                return Err(ExecError::Cancelled { backend: ctx.backend, stage: ctx.stage });
            }
            let iters = m.ceil() as usize;
            let r = grover_search(n, predicate, iters, seed ^ j);
            measurements += 1;
            total_iterations += r.iterations;
            success_probability = r.success_probability;
            if r.satisfying {
                found = Some(r.assignment);
                break;
            }
            m = (m * BBHT_GROWTH).min((1u64 << n) as f64);
        }
        ctx.stages.sample = t.elapsed();
        let assignment = found.ok_or(ExecError::Unsatisfiable)?;
        let metrics =
            BackendMetrics::Grover { measurements, total_iterations, success_probability };
        Ok((Candidates::Program(vec![assignment]), metrics))
    }
}
