//! Grover search behind the [`Backend`] trait — the lineage of the
//! original NchooseK abstraction (§I cites its first use in a Grover
//! search).
//!
//! Limited to hard-only programs (Grover amplifies *satisfying*
//! assignments; it has no notion of soft-count optimality) and to
//! registers the state-vector oracle can hold. Both limits are typed
//! [`ExecError`] values, not panics.

use crate::backend::{Backend, BackendMetrics, Candidates, Prepared};
use crate::durable::{decode_grover_progress, encode_grover_progress, GroverProgress};
use crate::error::ExecError;
use crate::fault::FaultInjection;
use crate::journal::RunCtx;
use nck_circuit::grover_search;
use std::time::Instant;

/// BBHT growth factor for the unknown-solution-count schedule: the
/// iteration guess is m = ⌈BBHT_GROWTH^j⌉ for j = 0, 1, …. Boyer,
/// Brassard, Høyer & Tapp prove any factor in (1, 4/3) keeps the
/// expected total oracle cost at O(√(N/M)).
pub const BBHT_GROWTH: f64 = 1.3;

/// Grover search over the program's hard constraints, using the BBHT
/// schedule for an unknown solution count: exponentially growing
/// iteration guesses, each measured once and checked classically.
#[derive(Clone, Debug)]
pub struct GroverBackend {
    /// Largest program (in variables) the state-vector oracle accepts.
    pub max_vars: usize,
    /// Maximum BBHT iteration guesses before reporting unsatisfiable.
    pub max_guesses: u64,
    /// Deterministic fault injection for exercising the supervisor's
    /// retry policy in tests.
    pub faults: FaultInjection,
}

impl Default for GroverBackend {
    fn default() -> Self {
        GroverBackend { max_vars: 20, max_guesses: 64, faults: FaultInjection::default() }
    }
}

impl GroverBackend {
    /// The same backend with deterministic fault injection enabled.
    pub fn with_faults(mut self, faults: FaultInjection) -> Self {
        self.faults = faults;
        self
    }
}

impl Backend for GroverBackend {
    fn name(&self) -> &'static str {
        "grover"
    }

    fn run(
        &self,
        prepared: &Prepared<'_>,
        seed: u64,
        ctx: &mut RunCtx,
    ) -> Result<(Candidates, BackendMetrics), ExecError> {
        let program = prepared.program;
        ctx.enter_stage("sample");
        if program.num_soft() > 0 {
            return Err(ExecError::SoftUnsupported { num_soft: program.num_soft() });
        }
        let n = program.num_vars();
        if n > self.max_vars {
            return Err(ExecError::TooLarge { vars: n, limit: self.max_vars });
        }
        self.faults.apply_sample_faults(ctx)?;
        let predicate = |bits: u64| {
            let x: Vec<bool> = (0..n).map(|q| bits >> q & 1 == 1).collect();
            program.all_hard_satisfied(&x)
        };
        let t = Instant::now();
        // BBHT: try m = ⌈BBHT_GROWTH^j⌉ iterations, j = 0, 1, …;
        // measure once per guess. Expected O(√(N/M)) total oracle calls.
        // Durable runs checkpoint the schedule position after each
        // guess, so a resumed attempt re-enters the loop at the guess
        // the crash interrupted (each guess is seeded by `seed ^ j`,
        // so the continuation is the same search the crashed run was
        // in the middle of).
        let interval = ctx.ckpt.interval();
        let restored = if interval == 0 {
            None
        } else {
            ctx.ckpt.load("grover").and_then(|buf| decode_grover_progress(&buf))
        };
        let restored = restored.filter(|p| p.next_guess <= self.max_guesses);
        let start_guess = restored.as_ref().map_or(0, |p| p.next_guess);
        let mut m = restored.as_ref().map_or(1.0f64, |p| p.m);
        let mut found: Option<Vec<bool>> = None;
        let mut measurements = restored.as_ref().map_or(0usize, |p| p.measurements as usize);
        let mut total_iterations =
            restored.as_ref().map_or(0usize, |p| p.total_iterations as usize);
        let mut success_probability = restored.as_ref().map_or(0.0, |p| p.success_probability);
        for j in start_guess..self.max_guesses {
            // A measured-but-unsatisfying guess carries no partial
            // information worth salvaging, so cancellation simply stops
            // the schedule.
            if ctx.cancel.is_cancelled() {
                ctx.stages.sample = t.elapsed();
                return Err(ExecError::Cancelled { backend: ctx.backend, stage: ctx.stage });
            }
            let iters = m.ceil() as usize;
            let r = grover_search(n, predicate, iters, seed ^ j);
            measurements += 1;
            total_iterations += r.iterations;
            success_probability = r.success_probability;
            if r.satisfying {
                found = Some(r.assignment);
                break;
            }
            m = (m * BBHT_GROWTH).min((1u64 << n) as f64);
            if interval != 0 {
                ctx.ckpt.save(
                    "grover",
                    &encode_grover_progress(&GroverProgress {
                        next_guess: j + 1,
                        measurements: measurements as u64,
                        total_iterations: total_iterations as u64,
                        m,
                        success_probability,
                    }),
                );
            }
        }
        ctx.stages.sample = t.elapsed();
        let assignment = found.ok_or(ExecError::Unsatisfiable)?;
        let metrics =
            BackendMetrics::Grover { measurements, total_iterations, success_probability };
        Ok((Candidates::Program(vec![assignment]), metrics))
    }
}
