//! Grover search over NchooseK-style predicates.
//!
//! The original NchooseK abstraction was "first used for a Grover
//! search by Khemtawat et al." (§I of the paper) before the QAOA/QUBO
//! pipeline took over. This module restores that lineage: amplitude
//! amplification of the assignments satisfying a Boolean predicate,
//! with the textbook ⌈π/4·√(N/M)⌉ iteration schedule.
//!
//! The oracle is applied as a diagonal phase flip computed from the
//! predicate — standard practice for simulators, where building the
//! reversible oracle circuit would only change constant factors, not
//! the measured amplification behavior.

use crate::complex::Complex;
use crate::gates::Gate;
use crate::state::StateVector;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Result of a Grover run.
#[derive(Clone, Debug)]
pub struct GroverResult {
    /// The measured assignment (bit per variable).
    pub assignment: Vec<bool>,
    /// Whether it satisfies the predicate.
    pub satisfying: bool,
    /// Grover iterations applied.
    pub iterations: usize,
    /// Probability mass on satisfying states just before measurement.
    pub success_probability: f64,
}

/// Number of Grover iterations for `marked` solutions among `total`
/// states: ⌈(π/4)·√(total/marked)⌉ (0 when everything is marked).
pub fn optimal_iterations(total: u64, marked: u64) -> usize {
    assert!(marked > 0, "Grover needs at least one marked state");
    if marked >= total {
        return 0;
    }
    let angle = ((marked as f64 / total as f64).sqrt()).asin();
    ((std::f64::consts::FRAC_PI_4 / angle) - 0.5).round().max(0.0) as usize
}

/// Run Grover search for satisfying assignments of `predicate` over
/// `num_qubits` variables, with `iterations` rounds (pick via
/// [`optimal_iterations`] when the solution count is known).
pub fn grover_search(
    num_qubits: usize,
    predicate: impl Fn(u64) -> bool + Sync,
    iterations: usize,
    seed: u64,
) -> GroverResult {
    assert!(num_qubits <= 24, "Grover simulation limited to 24 qubits");
    let n = 1usize << num_qubits;
    let mut s = StateVector::zero(num_qubits);
    for q in 0..num_qubits {
        s.apply(Gate::H(q));
    }
    for _ in 0..iterations {
        // Oracle: phase-flip marked states.
        s.map_amplitudes(|i, a| if predicate(i as u64) { -a } else { a });
        // Diffusion: reflect about the uniform state, 2|ψ₀⟩⟨ψ₀| − I.
        s.reflect_about_mean();
    }
    let success_probability: f64 = (0..n).filter(|&i| predicate(i as u64)).map(|i| s.prob(i)).sum();
    let mut rng = StdRng::seed_from_u64(seed);
    let bits = s.sample(&mut rng);
    GroverResult {
        assignment: (0..num_qubits).map(|q| bits >> q & 1 == 1).collect(),
        satisfying: predicate(bits),
        iterations,
        success_probability,
    }
}

impl StateVector {
    /// Apply a diagonal amplitude map (used by the Grover oracle).
    pub fn map_amplitudes(&mut self, f: impl Fn(usize, Complex) -> Complex) {
        for i in 0..1usize << self.num_qubits() {
            let a = self.amp(i);
            self.set_amp(i, f(i, a));
        }
    }

    /// Grover diffusion: `a_i ← 2·mean − a_i`.
    pub fn reflect_about_mean(&mut self) {
        let n = 1usize << self.num_qubits();
        let mut mean = Complex::ZERO;
        for i in 0..n {
            mean += self.amp(i);
        }
        mean = mean.scale(1.0 / n as f64);
        for i in 0..n {
            let a = self.amp(i);
            self.set_amp(i, mean.scale(2.0) - a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_marked_state_amplifies() {
        // 8 qubits, one marked state: optimal schedule must exceed 99%.
        let target = 0b1011_0110u64;
        let iters = optimal_iterations(256, 1);
        assert_eq!(iters, 12); // ⌊π/4·16⌋ rounded
        let r = grover_search(8, |x| x == target, iters, 5);
        assert!(r.success_probability > 0.99, "p = {}", r.success_probability);
        assert!(r.satisfying);
    }

    #[test]
    fn iteration_schedule_quadratic() {
        // Doubling the search space grows iterations by √2.
        let a = optimal_iterations(1 << 10, 1);
        let b = optimal_iterations(1 << 12, 1);
        assert!((b as f64 / a as f64 - 2.0).abs() < 0.1, "{a} vs {b}");
    }

    #[test]
    fn multiple_solutions_need_fewer_iterations() {
        let iters = optimal_iterations(256, 16);
        assert!(iters < optimal_iterations(256, 1));
        let r = grover_search(8, |x| x % 16 == 3, iters, 7);
        assert!(r.success_probability > 0.95, "p = {}", r.success_probability);
    }

    #[test]
    fn all_marked_needs_zero_iterations() {
        assert_eq!(optimal_iterations(64, 64), 0);
        let r = grover_search(6, |_| true, 0, 1);
        assert!(r.satisfying);
        assert!((r.success_probability - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overshooting_degrades() {
        // Grover success is periodic: running ~2× the optimal count
        // rotates past the target.
        let opt = optimal_iterations(256, 1);
        let good = grover_search(8, |x| x == 99, opt, 3);
        let over = grover_search(8, |x| x == 99, 2 * opt + 1, 3);
        assert!(good.success_probability > 0.99);
        assert!(over.success_probability < 0.5, "p = {}", over.success_probability);
    }

    #[test]
    fn nchoosek_predicate_search() {
        // Search for assignments satisfying nck({a,b},{0,1}) ∧
        // nck({b,c},{1}) — the paper's intro example (3 solutions in 8).
        let pred = |x: u64| {
            let (a, b, c) = (x & 1, x >> 1 & 1, x >> 2 & 1);
            (a + b <= 1) && (b + c == 1)
        };
        let iters = optimal_iterations(8, 3);
        let r = grover_search(3, pred, iters, 11);
        // Tiny space: one rotation lands at sin²(3θ) ≈ 0.84, the best
        // achievable — clearly above the 3/8 uniform baseline.
        assert!(r.success_probability > 0.8, "p = {}", r.success_probability);
        assert!(r.satisfying);
    }
}
