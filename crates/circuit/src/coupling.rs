//! Device coupling maps (which physical qubit pairs support two-qubit
//! gates).
//!
//! The preset models the 65-qubit ibmq_brooklyn (Hummingbird r2) as a
//! heavy-hex-style lattice: five rows of transmons connected linearly,
//! with bridge qubits between rows — 65 qubits, maximum degree 3, the
//! sparse 2-D connectivity that forces the SWAP insertion discussed in
//! §VIII-B. (The exact brooklyn bridge positions are not reproduced;
//! degree, qubit count, and 2-D locality are, which is what determines
//! routing distance and therefore transpiled depth.)

/// An undirected coupling map over physical qubits.
#[derive(Clone, Debug)]
pub struct CouplingMap {
    name: String,
    num_qubits: usize,
    adj: Vec<Vec<usize>>,
}

impl CouplingMap {
    /// Build from an edge list.
    pub fn new(name: impl Into<String>, num_qubits: usize, edges: &[(usize, usize)]) -> Self {
        let mut adj = vec![Vec::new(); num_qubits];
        for &(a, b) in edges {
            assert!(a != b && a < num_qubits && b < num_qubits, "bad edge ({a},{b})");
            if !adj[a].contains(&b) {
                adj[a].push(b);
                adj[b].push(a);
            }
        }
        for l in &mut adj {
            l.sort_unstable();
        }
        CouplingMap { name: name.into(), num_qubits, adj }
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Neighbors of a physical qubit.
    pub fn neighbors(&self, q: usize) -> &[usize] {
        &self.adj[q]
    }

    /// True iff a two-qubit gate can act directly on `(a, b)`.
    pub fn connected(&self, a: usize, b: usize) -> bool {
        self.adj[a].binary_search(&b).is_ok()
    }

    /// All-pairs shortest-path distances (BFS per qubit).
    pub fn distances(&self) -> Vec<Vec<u32>> {
        (0..self.num_qubits).map(|s| self.bfs(s)).collect()
    }

    fn bfs(&self, source: usize) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.num_qubits];
        let mut queue = std::collections::VecDeque::new();
        dist[source] = 0;
        queue.push_back(source);
        while let Some(q) = queue.pop_front() {
            for &x in &self.adj[q] {
                if dist[x] == u32::MAX {
                    dist[x] = dist[q] + 1;
                    queue.push_back(x);
                }
            }
        }
        dist
    }

    /// Fully-connected map (ideal device; transpilation inserts no
    /// SWAPs).
    pub fn full(num_qubits: usize) -> Self {
        let edges: Vec<(usize, usize)> =
            (0..num_qubits).flat_map(|a| (a + 1..num_qubits).map(move |b| (a, b))).collect();
        CouplingMap::new(format!("full({num_qubits})"), num_qubits, &edges)
    }

    /// Linear chain.
    pub fn line(num_qubits: usize) -> Self {
        let edges: Vec<(usize, usize)> =
            (0..num_qubits.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        CouplingMap::new(format!("line({num_qubits})"), num_qubits, &edges)
    }

    /// Heavy-hex-style lattice: `rows` rows of `row_len` qubits in a
    /// line, with bridge qubits between consecutive rows. Bridge
    /// columns alternate between `even_cols` (gaps 0, 2, …) and
    /// `odd_cols` (gaps 1, 3, …); keeping the two sets disjoint keeps
    /// every qubit at degree ≤ 3, the heavy-hex property.
    pub fn heavy_hex(rows: usize, row_len: usize, even_cols: &[usize], odd_cols: &[usize]) -> Self {
        let mut edges = Vec::new();
        let mut row_start = Vec::with_capacity(rows);
        let mut next = 0usize;
        for r in 0..rows {
            row_start.push(next);
            for i in 0..row_len - 1 {
                edges.push((next + i, next + i + 1));
            }
            next += row_len;
            if r + 1 < rows {
                let cols = if r % 2 == 0 { even_cols } else { odd_cols };
                let next_row_base = next + cols.len();
                for (bi, &col) in cols.iter().enumerate() {
                    assert!(col < row_len, "bridge column {col} out of range");
                    let bridge = next + bi;
                    edges.push((row_start[r] + col, bridge));
                    edges.push((bridge, next_row_base + col));
                }
                next += cols.len();
            }
        }
        CouplingMap::new(format!("heavy_hex({rows}x{row_len})"), next, &edges)
    }

    /// The 65-qubit ibmq_brooklyn-scale preset: 5 rows of 11 qubits
    /// with bridges at columns {1,5,9} / {3,7} in alternating gaps —
    /// 5·11 + 2·3 + 2·2 = 65 qubits, degree ≤ 3.
    pub fn ibmq_brooklyn() -> Self {
        let mut m = Self::heavy_hex(5, 11, &[1, 5, 9], &[3, 7]);
        assert_eq!(m.num_qubits, 65);
        m.name = "ibmq_brooklyn(sim)".into();
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brooklyn_has_65_qubits_degree_le_3() {
        let m = CouplingMap::ibmq_brooklyn();
        assert_eq!(m.num_qubits(), 65);
        for q in 0..65 {
            assert!(m.degree_of(q) <= 3, "qubit {q} degree {}", m.degree_of(q));
        }
        // Connected device.
        let d = m.distances();
        assert!(d[0].iter().all(|&x| x != u32::MAX));
    }

    #[test]
    fn line_distances() {
        let m = CouplingMap::line(5);
        let d = m.distances();
        assert_eq!(d[0][4], 4);
        assert_eq!(d[2][3], 1);
        assert_eq!(d[1][1], 0);
    }

    #[test]
    fn full_map_all_connected() {
        let m = CouplingMap::full(6);
        for a in 0..6 {
            for b in 0..6 {
                if a != b {
                    assert!(m.connected(a, b));
                }
            }
        }
    }

    #[test]
    fn heavy_hex_bridges_link_rows() {
        let m = CouplingMap::heavy_hex(2, 4, &[1], &[3]);
        // 2 rows of 4 + 1 bridge = 9 qubits.
        assert_eq!(m.num_qubits(), 9);
        // Bridge qubit (id 4) connects row-0 col 1 (id 1) and row-1
        // col 1 (id 6).
        assert!(m.connected(1, 4));
        assert!(m.connected(4, 6));
    }

    impl CouplingMap {
        fn degree_of(&self, q: usize) -> usize {
            self.adj[q].len()
        }
    }
}
