//! QAOA on the simulated gate-model device — the Qiskit-QAOA role in
//! the paper's pipeline (§V: "for circuit-model devices, NchooseK
//! expresses the QUBO as a problem Hamiltonian suitable for use with
//! the QAOA algorithm").
//!
//! The driver optimizes the 2p circuit parameters with Nelder–Mead,
//! evaluating ⟨H⟩ either on the exact state vector (small registers) or
//! with the analytic p=1 formula (large registers), degraded by the
//! transpiled circuit's depolarizing fidelity. Final sampling draws
//! `shots` bitstrings and returns the lowest-energy one, as Qiskit's
//! QAOA does.

use crate::analytic::qaoa1_expectation;
use crate::coupling::CouplingMap;
use crate::gates::{Circuit, Gate};
use crate::noise::CircuitNoise;
use crate::optim::{nelder_mead_resumable, NmState};
use crate::state::StateVector;
use crate::transpile::{transpile, Transpiled};
use nck_cancel::CancelToken;
use nck_qubo::{Ising, Qubo};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::time::Duration;

/// Errors from the QAOA pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QaoaError {
    /// More problem variables than device qubits (§VIII-B: "no NchooseK
    /// problem with more than 65 variables can be mapped onto
    /// ibmq_brooklyn").
    TooManyQubits {
        /// Variables required.
        needed: usize,
        /// Qubits available.
        available: usize,
    },
    /// Instance exceeds the exact simulator and has no analytic path
    /// (p > 1).
    TooLargeToSimulate {
        /// Variables required.
        needed: usize,
        /// Exact-simulation limit.
        sim_limit: usize,
    },
}

impl fmt::Display for QaoaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QaoaError::TooManyQubits { needed, available } => {
                write!(f, "problem needs {needed} qubits, device has {available}")
            }
            QaoaError::TooLargeToSimulate { needed, sim_limit } => write!(
                f,
                "{needed} qubits exceeds the {sim_limit}-qubit exact simulator and p > 1 has no analytic evaluator"
            ),
        }
    }
}

impl std::error::Error for QaoaError {}

/// Build the logical QAOA circuit for `ising` with per-layer mixer
/// angles `betas` and phase angles `gammas`.
pub fn qaoa_circuit(ising: &Ising, betas: &[f64], gammas: &[f64]) -> Circuit {
    assert_eq!(betas.len(), gammas.len(), "one (β, γ) pair per layer");
    let n = ising.num_spins();
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push(Gate::H(q));
    }
    for (&beta, &gamma) in betas.iter().zip(gammas) {
        // Phase separator e^{−iγ H}: bit 1 ↦ spin +1 means Z = −s, so
        // fields enter with a negated angle.
        for (q, h) in ising.fields() {
            c.push(Gate::Rz(q, -2.0 * gamma * h));
        }
        for ((a, b), j) in ising.couplings() {
            c.push(Gate::Rzz(a, b, 2.0 * gamma * j));
        }
        // Mixer e^{−iβ Σ X}.
        for q in 0..n {
            c.push(Gate::Rx(q, 2.0 * beta));
        }
    }
    c
}

/// Exact ⟨H⟩ of the QAOA state by state-vector simulation (any p,
/// small registers).
pub fn qaoa_expectation_sim(ising: &Ising, betas: &[f64], gammas: &[f64]) -> f64 {
    let c = qaoa_circuit(ising, betas, gammas);
    let mut s = StateVector::zero(ising.num_spins());
    s.run(&c);
    s.expectation_diagonal(|bits| {
        let spins: Vec<bool> = (0..ising.num_spins()).map(|q| bits >> q & 1 == 1).collect();
        ising.energy(&spins)
    })
}

/// IBM-cloud timing model for Fig. 11 and §VIII-C: "each job comprised
/// 4000 shots, … took between 7 and 23 seconds. We were unable to
/// determine any correlation between problem size and time per job."
#[derive(Clone, Copy, Debug)]
pub struct QaoaTimingModel {
    /// Minimum per-job device time.
    pub job_min: Duration,
    /// Maximum per-job device time.
    pub job_max: Duration,
    /// Classical optimization per job ("two to three seconds").
    pub classical_per_job: Duration,
}

impl QaoaTimingModel {
    /// The paper's observed band.
    pub fn ibmq_default() -> Self {
        QaoaTimingModel {
            job_min: Duration::from_secs(7),
            job_max: Duration::from_secs(23),
            classical_per_job: Duration::from_millis(2500),
        }
    }

    /// Sample one job's device time (size-independent, per the paper).
    pub fn job_time(&self, rng: &mut StdRng) -> Duration {
        let span = (self.job_max - self.job_min).as_secs_f64();
        self.job_min + Duration::from_secs_f64(rng.random::<f64>() * span)
    }
}

/// Result of a full QAOA execution.
#[derive(Clone, Debug)]
pub struct QaoaRun {
    /// Lowest-energy sampled assignment (bit per problem variable).
    pub best_assignment: Vec<bool>,
    /// Its energy under the input QUBO.
    pub best_energy: f64,
    /// The optimized noisy expectation ⟨H⟩.
    pub expectation: f64,
    /// Optimized mixer angles.
    pub betas: Vec<f64>,
    /// Optimized phase angles.
    pub gammas: Vec<f64>,
    /// Qubits used on the device (= problem variables; the compiler's
    /// per-constraint ancillas are already part of the QUBO).
    pub qubits_used: usize,
    /// Transpiled circuit depth (Fig. 9's metric).
    pub depth: usize,
    /// SWAPs inserted by routing.
    pub num_swaps: usize,
    /// Depolarizing fidelity of one transpiled circuit.
    pub fidelity: f64,
    /// Jobs submitted (optimizer iterations + the final sampling job).
    pub num_jobs: usize,
    /// Modeled total device + classical-optimizer time.
    pub estimated_time: Duration,
}

/// A simulated gate-model device with a QAOA driver.
#[derive(Clone, Debug)]
pub struct GateModelDevice {
    /// Hardware coupling map.
    pub coupling: CouplingMap,
    /// Noise parameters.
    pub noise: CircuitNoise,
    /// Timing model.
    pub timing: QaoaTimingModel,
    /// Largest register simulated exactly.
    pub sim_limit: usize,
}

impl GateModelDevice {
    /// The 65-qubit ibmq_brooklyn-scale preset.
    pub fn ibmq_brooklyn() -> Self {
        GateModelDevice {
            coupling: CouplingMap::ibmq_brooklyn(),
            noise: CircuitNoise::ibmq_default(),
            timing: QaoaTimingModel::ibmq_default(),
            sim_limit: 20,
        }
    }

    /// An ideal all-to-all device for tests.
    pub fn ideal(num_qubits: usize) -> Self {
        GateModelDevice {
            coupling: CouplingMap::full(num_qubits),
            noise: CircuitNoise::ideal(),
            timing: QaoaTimingModel::ibmq_default(),
            sim_limit: 20,
        }
    }

    /// Run QAOA with `layers` p-layers, `shots` per job, and at most
    /// `max_iter` optimizer iterations.
    pub fn run_qaoa(
        &self,
        qubo: &Qubo,
        layers: usize,
        shots: usize,
        max_iter: usize,
        seed: u64,
    ) -> Result<QaoaRun, QaoaError> {
        self.run_qaoa_cancellable(qubo, layers, shots, max_iter, seed, &CancelToken::never())
    }

    /// [`run_qaoa`](Self::run_qaoa) under cooperative cancellation: the
    /// optimizer polls `cancel` between reflection cycles and, when it
    /// fires, the final sampling job runs with the best-so-far
    /// parameters — a deadline degrades parameter quality rather than
    /// discarding the run.
    pub fn run_qaoa_cancellable(
        &self,
        qubo: &Qubo,
        layers: usize,
        shots: usize,
        max_iter: usize,
        seed: u64,
        cancel: &CancelToken,
    ) -> Result<QaoaRun, QaoaError> {
        self.run_qaoa_resumable(qubo, layers, shots, max_iter, seed, cancel, None, &mut |_| {})
    }

    /// [`run_qaoa_cancellable`](Self::run_qaoa_cancellable) with
    /// checkpoint/resume of the classical optimizer loop. `on_iter`
    /// fires after every reflection cycle with the optimizer's full
    /// [`NmState`] (the paper's per-job unit), and passing a restored
    /// state continues the run exactly where it died: the optimizer is
    /// deterministic and the final sampling job reseeds from `seed`
    /// alone, so a resumed run's [`QaoaRun`] is bit-identical to an
    /// uninterrupted one.
    #[allow(clippy::too_many_arguments)]
    pub fn run_qaoa_resumable(
        &self,
        qubo: &Qubo,
        layers: usize,
        shots: usize,
        max_iter: usize,
        seed: u64,
        cancel: &CancelToken,
        state: Option<NmState>,
        on_iter: &mut dyn FnMut(&NmState),
    ) -> Result<QaoaRun, QaoaError> {
        assert!(layers >= 1, "need at least one QAOA layer");
        let n = qubo.num_vars();
        if n > self.coupling.num_qubits() {
            return Err(QaoaError::TooManyQubits {
                needed: n,
                available: self.coupling.num_qubits(),
            });
        }
        let exact = n <= self.sim_limit;
        if !exact && layers > 1 {
            return Err(QaoaError::TooLargeToSimulate { needed: n, sim_limit: self.sim_limit });
        }
        // Autoscale (argmin-preserving) so angles land in a consistent
        // range; energies are reported against the original QUBO.
        let mut scaled = qubo.clone();
        let m = scaled.max_abs_coeff();
        if m > 0.0 {
            scaled.scale(1.0 / m);
        }
        let ising = scaled.to_ising();
        // Structure metrics from one representative transpilation
        // ("these circuits differ by the parameters of the gates, not
        // the type or number of gates", §VIII-B).
        let probe = qaoa_circuit(&ising, &vec![0.1; layers], &vec![0.1; layers]);
        let transpiled: Transpiled =
            transpile(&probe, &self.coupling).expect("qubit count already checked");
        let fidelity = self.noise.fidelity(&transpiled.circuit);
        // Uniform-mixture mean energy of the scaled problem: all ⟨s⟩
        // and ⟨ss⟩ vanish, leaving the offset.
        let e_mixed = ising.offset();
        // Noisy expectation objective.
        let mut evaluate = |params: &[f64]| -> f64 {
            let (betas, gammas) = params.split_at(layers);
            let ideal = if exact {
                qaoa_expectation_sim(&ising, betas, gammas)
            } else {
                qaoa1_expectation(&ising, betas[0], gammas[0])
            };
            fidelity * ideal + (1.0 - fidelity) * e_mixed
        };
        let mut x0 = Vec::with_capacity(2 * layers);
        x0.extend((0..layers).map(|l| 0.4 + 0.05 * l as f64)); // betas
        x0.extend((0..layers).map(|l| -0.4 - 0.05 * l as f64)); // gammas
        let opt = nelder_mead_resumable(
            &mut evaluate,
            &x0,
            0.3,
            max_iter,
            1e-7,
            &|| cancel.is_cancelled(),
            state,
            on_iter,
        );
        let (betas, gammas) = opt.x.split_at(layers);
        // Final sampling job.
        let mut rng = StdRng::seed_from_u64(seed);
        let samples = self.sample(&ising, betas, gammas, fidelity, shots, &mut rng);
        let (mut best_bits, mut best_energy) = (0u64, f64::INFINITY);
        for bits in samples {
            let x: Vec<bool> = (0..n).map(|q| bits >> q & 1 == 1).collect();
            let e = qubo.energy(&x);
            if e < best_energy {
                best_energy = e;
                best_bits = bits;
            }
        }
        let num_jobs = opt.iterations + 1;
        let mut time = Duration::ZERO;
        for _ in 0..num_jobs {
            time += self.timing.job_time(&mut rng) + self.timing.classical_per_job;
        }
        Ok(QaoaRun {
            best_assignment: (0..n).map(|q| best_bits >> q & 1 == 1).collect(),
            best_energy,
            expectation: opt.fx,
            betas: betas.to_vec(),
            gammas: gammas.to_vec(),
            qubits_used: n,
            depth: transpiled.circuit.depth(),
            num_swaps: transpiled.num_swaps,
            fidelity,
            num_jobs,
            estimated_time: time,
        })
    }

    /// Draw `shots` bitstrings from the (noisy) QAOA output state.
    ///
    /// Small registers sample the exact state vector. Large registers
    /// cannot be sampled exactly; as documented in DESIGN.md, the
    /// substitute draws from a Metropolis sampler over the cost
    /// function whose quality tracks the analytic QAOA expectation —
    /// preserving "how good is the returned sample" while the depth,
    /// qubit, and fidelity metrics stay exact.
    fn sample(
        &self,
        ising: &Ising,
        betas: &[f64],
        gammas: &[f64],
        fidelity: f64,
        shots: usize,
        rng: &mut StdRng,
    ) -> Vec<u64> {
        let n = ising.num_spins();
        let exact = n <= self.sim_limit;
        let ideal_samples: Vec<u64> = if exact {
            let c = qaoa_circuit(ising, betas, gammas);
            let mut s = StateVector::zero(n);
            s.run(&c);
            s.sample_many(shots, rng)
        } else {
            // Metropolis chain at an inverse temperature chosen so the
            // chain's mean energy matches the analytic p=1 QAOA
            // expectation.
            let target = qaoa1_expectation(ising, betas[0], gammas[0]);
            metropolis_matched(ising, target, shots, rng)
        };
        ideal_samples
            .into_iter()
            .map(|bits| {
                let mut out = if rng.random::<f64>() < fidelity {
                    bits
                } else {
                    // Depolarized shot: uniform random bits.
                    rng.random::<u64>() & ((1u64 << n) - 1)
                };
                if self.noise.readout > 0.0 {
                    for q in 0..n {
                        if rng.random::<f64>() < self.noise.readout {
                            out ^= 1 << q;
                        }
                    }
                }
                out
            })
            .collect()
    }
}

/// Sample from a Metropolis chain whose temperature is tuned (by
/// bisection on a pilot chain) so the mean energy ≈ `target`.
fn metropolis_matched(ising: &Ising, target: f64, shots: usize, rng: &mut StdRng) -> Vec<u64> {
    let n = ising.num_spins();
    assert!(n <= 64, "packed sampling limited to 64 spins");
    let energy = |bits: u64| {
        let spins: Vec<bool> = (0..n).map(|q| bits >> q & 1 == 1).collect();
        ising.energy(&spins)
    };
    let chain_mean = |beta: f64, rng: &mut StdRng| -> f64 {
        let mut bits: u64 = rng.random::<u64>() & ((1u64 << n) - 1);
        let mut e = energy(bits);
        let mut acc = 0.0;
        let steps = 40 * n;
        for step in 0..steps {
            let q = rng.random_range(0..n);
            let cand = bits ^ (1 << q);
            let ce = energy(cand);
            if ce <= e || (-(beta * (ce - e))).exp() > rng.random::<f64>() {
                bits = cand;
                e = ce;
            }
            if step >= steps / 2 {
                acc += e;
            }
        }
        acc / (steps - steps / 2) as f64
    };
    // Bisection on β: higher β → lower mean energy.
    let (mut lo, mut hi) = (0.0f64, 8.0f64);
    for _ in 0..12 {
        let mid = (lo + hi) / 2.0;
        if chain_mean(mid, rng) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let beta = (lo + hi) / 2.0;
    // Production sampling: one chain, one sample per interval.
    let mut out = Vec::with_capacity(shots);
    let mut bits: u64 = rng.random::<u64>() & ((1u64 << n) - 1);
    let mut e = energy(bits);
    let burn = 20 * n;
    let stride = n.max(8);
    let mut step = 0usize;
    while out.len() < shots {
        let q = rng.random_range(0..n);
        let cand = bits ^ (1 << q);
        let ce = energy(cand);
        if ce <= e || (-(beta * (ce - e))).exp() > rng.random::<f64>() {
            bits = cand;
            e = ce;
        }
        step += 1;
        if step > burn && step.is_multiple_of(stride) {
            out.push(bits);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge_qubo() -> Qubo {
        let mut q = Qubo::new(2);
        q.add_quadratic(0, 1, 1.0);
        q.add_linear(0, -1.0);
        q.add_linear(1, -1.0);
        q
    }

    #[test]
    fn ideal_device_solves_edge_qubo() {
        let dev = GateModelDevice::ideal(4);
        let run = dev.run_qaoa(&edge_qubo(), 1, 512, 60, 7).unwrap();
        assert_eq!(run.best_energy, -1.0);
        assert!(run.fidelity == 1.0);
        assert!(run.qubits_used == 2);
    }

    #[test]
    fn two_layers_at_least_as_good() {
        let dev = GateModelDevice::ideal(4);
        let p1 = dev.run_qaoa(&edge_qubo(), 1, 256, 60, 3).unwrap();
        let p2 = dev.run_qaoa(&edge_qubo(), 2, 256, 80, 3).unwrap();
        assert!(p2.expectation <= p1.expectation + 1e-6);
    }

    #[test]
    fn resumable_qaoa_matches_uninterrupted() {
        let dev = GateModelDevice::ideal(4);
        let q = edge_qubo();
        let cancel = CancelToken::never();
        let full = dev.run_qaoa(&q, 2, 128, 40, 7).unwrap();
        for cut in [1usize, 3, 10] {
            // Capture the optimizer state a crash after `cut` jobs
            // would have persisted.
            let mut snap: Option<NmState> = None;
            dev.run_qaoa_resumable(&q, 2, 128, 40, 7, &cancel, None, &mut |st| {
                if st.iterations == cut {
                    snap = Some(st.clone());
                }
            })
            .unwrap();
            let Some(snap) = snap else { continue };
            let resumed = dev
                .run_qaoa_resumable(&q, 2, 128, 40, 7, &cancel, Some(snap), &mut |_| {})
                .unwrap();
            assert_eq!(resumed.best_assignment, full.best_assignment, "cut {cut}");
            assert_eq!(resumed.best_energy.to_bits(), full.best_energy.to_bits(), "cut {cut}");
            assert_eq!(resumed.expectation.to_bits(), full.expectation.to_bits(), "cut {cut}");
            assert_eq!(resumed.num_jobs, full.num_jobs, "cut {cut}");
            assert_eq!(resumed.estimated_time, full.estimated_time, "cut {cut}");
            for (a, b) in resumed.betas.iter().zip(&full.betas) {
                assert_eq!(a.to_bits(), b.to_bits(), "cut {cut}");
            }
            for (a, b) in resumed.gammas.iter().zip(&full.gammas) {
                assert_eq!(a.to_bits(), b.to_bits(), "cut {cut}");
            }
        }
    }

    #[test]
    fn too_many_qubits_rejected() {
        let mut q = Qubo::new(66);
        q.add_linear(65, 1.0);
        let dev = GateModelDevice::ibmq_brooklyn();
        match dev.run_qaoa(&q, 1, 10, 5, 1) {
            Err(QaoaError::TooManyQubits { needed: 66, available: 65 }) => {}
            other => panic!("expected TooManyQubits, got {other:?}"),
        }
    }

    #[test]
    fn large_instance_uses_analytic_path() {
        // 40 variables: beyond the exact simulator but fine at p = 1.
        let mut q = Qubo::new(40);
        for i in 0..39 {
            q.add_quadratic(i, i + 1, 1.0);
        }
        let dev = GateModelDevice::ibmq_brooklyn();
        let run = dev.run_qaoa(&q, 1, 64, 25, 5).unwrap();
        assert_eq!(run.qubits_used, 40);
        assert!(run.depth > 0);
        assert!(run.fidelity < 1.0);
        // p = 2 at this size must be rejected.
        match dev.run_qaoa(&q, 2, 64, 25, 5) {
            Err(QaoaError::TooLargeToSimulate { .. }) => {}
            other => panic!("expected TooLargeToSimulate, got {other:?}"),
        }
    }

    #[test]
    fn depth_and_swaps_grow_with_connectivity_mismatch() {
        // A dense 8-variable QUBO on brooklyn (degree ≤ 3) needs swaps.
        let mut q = Qubo::new(8);
        for i in 0..8 {
            for j in i + 1..8 {
                q.add_quadratic(i, j, 1.0);
            }
        }
        let dev = GateModelDevice::ibmq_brooklyn();
        let run = dev.run_qaoa(&q, 1, 32, 10, 2).unwrap();
        assert!(run.num_swaps > 0, "dense problem on heavy-hex needs swaps");
        let ideal = GateModelDevice::ideal(8).run_qaoa(&q, 1, 32, 10, 2).unwrap();
        assert!(run.depth > ideal.depth);
    }

    #[test]
    fn job_count_in_paper_band() {
        // §VIII-C: "approximately 25 to 35 jobs".
        let dev = GateModelDevice::ideal(4);
        let run = dev.run_qaoa(&edge_qubo(), 1, 128, 30, 11).unwrap();
        assert!(run.num_jobs <= 36, "jobs = {}", run.num_jobs);
        assert!(run.num_jobs >= 2);
        // Total time ≈ jobs × (7–23 s + ~2.5 s classical).
        let secs = run.estimated_time.as_secs_f64();
        assert!(secs >= run.num_jobs as f64 * 9.0);
        assert!(secs <= run.num_jobs as f64 * 25.5);
    }

    #[test]
    fn timing_model_band() {
        let t = QaoaTimingModel::ibmq_default();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let j = t.job_time(&mut rng);
            assert!(j >= Duration::from_secs(7) && j <= Duration::from_secs(23));
        }
    }

    #[test]
    fn metropolis_matches_target_energy() {
        let mut ising = Ising::new(10);
        for i in 0..9 {
            ising.add_coupling(i, i + 1, 1.0);
        }
        let mut rng = StdRng::seed_from_u64(8);
        let target = -3.0;
        let samples = metropolis_matched(&ising, target, 400, &mut rng);
        let mean: f64 = samples
            .iter()
            .map(|&b| {
                let s: Vec<bool> = (0..10).map(|q| b >> q & 1 == 1).collect();
                ising.energy(&s)
            })
            .sum::<f64>()
            / samples.len() as f64;
        assert!((mean - target).abs() < 1.5, "mean {mean} vs target {target}");
    }

    #[test]
    fn noisy_device_degrades_with_scale() {
        // The same ring problem at two sizes: the bigger transpiled
        // circuit must have lower fidelity.
        let dev = GateModelDevice::ibmq_brooklyn();
        let small = {
            let mut q = Qubo::new(6);
            for i in 0..6 {
                q.add_quadratic(i, (i + 1) % 6, 1.0);
            }
            dev.run_qaoa(&q, 1, 64, 10, 3).unwrap()
        };
        let large = {
            let mut q = Qubo::new(18);
            for i in 0..18 {
                q.add_quadratic(i, (i + 1) % 18, 1.0);
            }
            dev.run_qaoa(&q, 1, 64, 10, 3).unwrap()
        };
        assert!(large.fidelity < small.fidelity);
        assert!(large.depth >= small.depth);
    }
}
