//! Dense state-vector simulation.
//!
//! Exact simulation of the gate set in [`crate::gates`], with rayon
//! parallelism over amplitude chunks for registers large enough to
//! amortize the fork cost. Practical up to ~24 qubits (16M amplitudes);
//! larger QAOA instances use the analytic p=1 evaluator instead
//! ([`crate::analytic`]).

use crate::complex::Complex;
use crate::gates::{Circuit, Gate};
use rand::rngs::StdRng;
use rand::Rng;
use rayon::prelude::*;

/// Registers at or above this size use parallel gate application.
const PAR_THRESHOLD: usize = 1 << 14;

/// A pure quantum state over `n` qubits (amplitude `i` ↔ basis state
/// with bit `q` of `i` giving qubit `q`).
#[derive(Clone, Debug)]
pub struct StateVector {
    num_qubits: usize,
    amps: Vec<Complex>,
}

impl StateVector {
    /// |0…0⟩.
    pub fn zero(num_qubits: usize) -> Self {
        assert!(num_qubits <= 28, "state vector limited to 28 qubits");
        let mut amps = vec![Complex::ZERO; 1 << num_qubits];
        amps[0] = Complex::ONE;
        StateVector { num_qubits, amps }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Amplitude of basis state `i`.
    pub fn amp(&self, i: usize) -> Complex {
        self.amps[i]
    }

    /// Overwrite the amplitude of basis state `i` (used by the Grover
    /// oracle; the caller is responsible for keeping the state
    /// normalized).
    pub fn set_amp(&mut self, i: usize, a: Complex) {
        self.amps[i] = a;
    }

    /// Probability of basis state `i`.
    pub fn prob(&self, i: usize) -> f64 {
        self.amps[i].norm_sqr()
    }

    /// Σ|amp|² (should stay 1 within rounding).
    pub fn total_probability(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Apply a single gate.
    pub fn apply(&mut self, g: Gate) {
        match g {
            Gate::H(q) => {
                let s = std::f64::consts::FRAC_1_SQRT_2;
                self.single_qubit(
                    q,
                    [
                        [Complex::new(s, 0.0), Complex::new(s, 0.0)],
                        [Complex::new(s, 0.0), Complex::new(-s, 0.0)],
                    ],
                );
            }
            Gate::X(q) => {
                self.single_qubit(
                    q,
                    [[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]],
                );
            }
            Gate::Rx(q, t) => {
                let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
                self.single_qubit(
                    q,
                    [
                        [Complex::new(c, 0.0), Complex::new(0.0, -s)],
                        [Complex::new(0.0, -s), Complex::new(c, 0.0)],
                    ],
                );
            }
            Gate::Rz(q, t) => {
                // diag(e^{−iθ/2}, e^{+iθ/2})
                let neg = Complex::cis(-t / 2.0);
                let pos = Complex::cis(t / 2.0);
                self.phase(|i| if i >> q & 1 == 1 { pos } else { neg });
            }
            Gate::Rzz(a, b, t) => {
                // diag phase e^{−iθ/2·(±1)} by the parity of bits a, b.
                let even = Complex::cis(-t / 2.0);
                let odd = Complex::cis(t / 2.0);
                self.phase(|i| if (i >> a & 1) ^ (i >> b & 1) == 1 { odd } else { even });
            }
            Gate::Xy(a, b, t) => {
                // Rotate in the span of |…0a…1b…⟩ and |…1a…0b…⟩:
                // amplitudes with unequal bits a, b mix with
                // cos(θ/2) and −i·sin(θ/2).
                let (cth, sth) = ((t / 2.0).cos(), (t / 2.0).sin());
                let ma = 1usize << a;
                let mb = 1usize << b;
                for i in 0..self.amps.len() {
                    // Enumerate each unequal pair once via (a=1, b=0).
                    if i & ma != 0 && i & mb == 0 {
                        let j = (i & !ma) | mb;
                        let hi = self.amps[i];
                        let lo = self.amps[j];
                        let minus_i_s = Complex::new(0.0, -sth);
                        self.amps[i] = hi.scale(cth) + minus_i_s * lo;
                        self.amps[j] = lo.scale(cth) + minus_i_s * hi;
                    }
                }
            }
            Gate::Cx(c, t) => {
                let mask_c = 1usize << c;
                let mask_t = 1usize << t;
                // Swap amplitude pairs where the control is 1.
                let n = self.amps.len();
                let amps = &mut self.amps;
                for i in 0..n {
                    if i & mask_c != 0 && i & mask_t == 0 {
                        amps.swap(i, i | mask_t);
                    }
                }
            }
            Gate::Swap(a, b) => {
                let ma = 1usize << a;
                let mb = 1usize << b;
                let n = self.amps.len();
                for i in 0..n {
                    if i & ma != 0 && i & mb == 0 {
                        self.amps.swap(i, (i & !ma) | mb);
                    }
                }
            }
        }
    }

    /// Apply every gate of `circuit` in order.
    pub fn run(&mut self, circuit: &Circuit) {
        assert_eq!(circuit.num_qubits(), self.num_qubits, "register size mismatch");
        for &g in circuit.gates() {
            self.apply(g);
        }
    }

    fn single_qubit(&mut self, q: usize, m: [[Complex; 2]; 2]) {
        let mask = 1usize << q;
        let half = self.amps.len() / 2;
        let update = |amps: &mut [Complex], j: usize| {
            // j enumerates indices with bit q = 0.
            let low = ((j & !(mask - 1)) << 1) | (j & (mask - 1));
            let high = low | mask;
            let a0 = amps[low];
            let a1 = amps[high];
            amps[low] = m[0][0] * a0 + m[0][1] * a1;
            amps[high] = m[1][0] * a0 + m[1][1] * a1;
        };
        if self.amps.len() >= PAR_THRESHOLD {
            // Each j touches a disjoint (low, high) pair, so parallel
            // chunks over j are race-free; use unsafe-free split via
            // chunk ownership of the whole array per task is not
            // possible — instead process pair-blocks: indices sharing
            // the high bits form contiguous blocks of size 2·mask.
            let block = mask << 1;
            let amps = &mut self.amps;
            amps.par_chunks_mut(block).for_each(|chunk| {
                for off in 0..mask.min(chunk.len()) {
                    let a0 = chunk[off];
                    let a1 = chunk[off + mask];
                    chunk[off] = m[0][0] * a0 + m[0][1] * a1;
                    chunk[off + mask] = m[1][0] * a0 + m[1][1] * a1;
                }
            });
        } else {
            for j in 0..half {
                update(&mut self.amps, j);
            }
        }
    }

    fn phase(&mut self, f: impl Fn(usize) -> Complex + Sync) {
        if self.amps.len() >= PAR_THRESHOLD {
            self.amps.par_iter_mut().enumerate().for_each(|(i, a)| *a = *a * f(i));
        } else {
            for (i, a) in self.amps.iter_mut().enumerate() {
                *a = *a * f(i);
            }
        }
    }

    /// Expectation of a diagonal observable `E(i)` (e.g. a QUBO/Ising
    /// energy over basis states).
    pub fn expectation_diagonal(&self, energy: impl Fn(u64) -> f64 + Sync) -> f64 {
        if self.amps.len() >= PAR_THRESHOLD {
            self.amps.par_iter().enumerate().map(|(i, a)| a.norm_sqr() * energy(i as u64)).sum()
        } else {
            self.amps.iter().enumerate().map(|(i, a)| a.norm_sqr() * energy(i as u64)).sum()
        }
    }

    /// Sample one basis state from |amp|².
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let mut r: f64 = rng.random();
        for (i, a) in self.amps.iter().enumerate() {
            r -= a.norm_sqr();
            if r <= 0.0 {
                return i as u64;
            }
        }
        (self.amps.len() - 1) as u64
    }

    /// Sample `shots` basis states.
    pub fn sample_many(&self, shots: usize, rng: &mut StdRng) -> Vec<u64> {
        // Cumulative distribution + binary search: O((N + s) log N).
        let mut cdf = Vec::with_capacity(self.amps.len());
        let mut acc = 0.0;
        for a in &self.amps {
            acc += a.norm_sqr();
            cdf.push(acc);
        }
        (0..shots)
            .map(|_| {
                let r: f64 = rng.random::<f64>() * acc;
                cdf.partition_point(|&c| c < r).min(self.amps.len() - 1) as u64
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-10
    }

    #[test]
    fn hadamard_uniform_superposition() {
        let mut s = StateVector::zero(3);
        for q in 0..3 {
            s.apply(Gate::H(q));
        }
        for i in 0..8 {
            assert!(close(s.prob(i), 0.125), "p({i}) = {}", s.prob(i));
        }
        assert!(close(s.total_probability(), 1.0));
    }

    #[test]
    fn x_flips() {
        let mut s = StateVector::zero(2);
        s.apply(Gate::X(1));
        assert!(close(s.prob(0b10), 1.0));
    }

    #[test]
    fn cx_entangles_bell_pair() {
        let mut s = StateVector::zero(2);
        s.apply(Gate::H(0));
        s.apply(Gate::Cx(0, 1));
        assert!(close(s.prob(0b00), 0.5));
        assert!(close(s.prob(0b11), 0.5));
        assert!(close(s.prob(0b01), 0.0));
        assert!(close(s.prob(0b10), 0.0));
    }

    #[test]
    fn rx_pi_is_x_up_to_phase() {
        let mut s = StateVector::zero(1);
        s.apply(Gate::Rx(0, std::f64::consts::PI));
        assert!(close(s.prob(1), 1.0));
    }

    #[test]
    fn rz_phases_do_not_change_probabilities() {
        let mut s = StateVector::zero(1);
        s.apply(Gate::H(0));
        s.apply(Gate::Rz(0, 1.234));
        assert!(close(s.prob(0), 0.5));
        assert!(close(s.prob(1), 0.5));
    }

    #[test]
    fn rzz_equals_cx_rz_cx() {
        // rzz(θ) = cx; rz(θ) on target; cx — the basis decomposition
        // used by the transpiler. Verify on a random-ish state.
        let theta = 0.731;
        let prep = |s: &mut StateVector| {
            s.apply(Gate::H(0));
            s.apply(Gate::Rx(1, 0.3));
            s.apply(Gate::H(2));
            s.apply(Gate::Cx(2, 1));
        };
        let mut a = StateVector::zero(3);
        prep(&mut a);
        a.apply(Gate::Rzz(0, 1, theta));
        let mut b = StateVector::zero(3);
        prep(&mut b);
        b.apply(Gate::Cx(0, 1));
        b.apply(Gate::Rz(1, theta));
        b.apply(Gate::Cx(0, 1));
        for i in 0..8 {
            let d = a.amp(i) - b.amp(i);
            assert!(d.norm() < 1e-10, "amp {i} differs by {}", d.norm());
        }
    }

    #[test]
    fn swap_exchanges_qubits() {
        let mut s = StateVector::zero(3);
        s.apply(Gate::X(0));
        s.apply(Gate::Swap(0, 2));
        assert!(close(s.prob(0b100), 1.0));
    }

    #[test]
    fn expectation_of_diagonal() {
        // Bell state: E(00) = 0, E(11) = 2 → expectation 1.
        let mut s = StateVector::zero(2);
        s.apply(Gate::H(0));
        s.apply(Gate::Cx(0, 1));
        let e = s.expectation_diagonal(|bits| bits.count_ones() as f64);
        assert!(close(e, 1.0));
    }

    #[test]
    fn sampling_matches_distribution() {
        let mut s = StateVector::zero(2);
        s.apply(Gate::H(0)); // 50/50 on qubit 0 only
        let mut rng = StdRng::seed_from_u64(17);
        let samples = s.sample_many(4000, &mut rng);
        let ones = samples.iter().filter(|&&x| x & 1 == 1).count();
        assert!((1700..2300).contains(&ones), "got {ones} ones");
        assert!(samples.iter().all(|&x| x & 0b10 == 0));
    }

    #[test]
    fn parallel_path_matches_serial() {
        // 15 qubits crosses PAR_THRESHOLD; compare against 10-qubit
        // construction embedded in the larger register.
        let mut big = StateVector::zero(15);
        big.apply(Gate::H(14));
        big.apply(Gate::Rx(13, 0.7));
        big.apply(Gate::Cx(14, 13));
        big.apply(Gate::Rzz(13, 14, 0.3));
        let mut small = StateVector::zero(2);
        small.apply(Gate::H(1));
        small.apply(Gate::Rx(0, 0.7));
        small.apply(Gate::Cx(1, 0));
        small.apply(Gate::Rzz(0, 1, 0.3));
        // Compare marginals on the top two qubits.
        for pat in 0..4usize {
            let p_big: f64 = (0..1usize << 13).map(|low| big.prob((pat << 13) | low)).sum();
            assert!(close(p_big, small.prob(pat)), "pattern {pat}");
        }
    }

    #[test]
    fn normalization_preserved_by_long_circuit() {
        let mut s = StateVector::zero(6);
        let mut c = Circuit::new(6);
        for q in 0..6 {
            c.push(Gate::H(q));
        }
        for i in 0..5 {
            c.push(Gate::Rzz(i, i + 1, 0.4 + i as f64 * 0.1));
            c.push(Gate::Cx(i, i + 1));
            c.push(Gate::Rx(i, 0.2));
        }
        s.run(&c);
        assert!(close(s.total_probability(), 1.0));
    }
}
