//! Gate-model noise: a global depolarizing channel plus readout error.
//!
//! Each gate adds "a small amount of probabilistic error (noise) to a
//! circuit" (§VIII-B). We model the aggregate as a global depolarizing
//! channel: with probability `F = (1−p₁)^{n₁} (1−p₂)^{n₂}` the circuit
//! behaves ideally, otherwise the output is fully mixed (a uniform
//! random bitstring). This coarse model preserves exactly the trend the
//! paper measures — deeper/wider transpiled circuits have lower
//! fidelity, producing the optimal → suboptimal → incorrect progression
//! with scale — while keeping 65-qubit instances tractable.

use crate::gates::Circuit;

/// Noise parameters of a gate-model device.
#[derive(Clone, Copy, Debug)]
pub struct CircuitNoise {
    /// Depolarizing probability per single-qubit gate.
    pub p1: f64,
    /// Depolarizing probability per two-qubit gate.
    pub p2: f64,
    /// Per-bit readout flip probability.
    pub readout: f64,
}

impl CircuitNoise {
    /// A noiseless device.
    pub fn ideal() -> Self {
        CircuitNoise { p1: 0.0, p2: 0.0, readout: 0.0 }
    }

    /// Error rates in the ballpark of 2021-era IBM Hummingbird
    /// processors (per-gate depolarizing; CNOT ≈ 1%, 1q ≈ 0.04%,
    /// readout ≈ 2%).
    pub fn ibmq_default() -> Self {
        CircuitNoise { p1: 0.0004, p2: 0.01, readout: 0.02 }
    }

    /// Probability that the whole circuit executes without a
    /// depolarizing event.
    pub fn fidelity(&self, circuit: &Circuit) -> f64 {
        let n2 = circuit.num_two_qubit_gates();
        let n1 = circuit.num_gates() - n2;
        (1.0 - self.p1).powi(n1 as i32) * (1.0 - self.p2).powi(n2 as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates::Gate;

    #[test]
    fn ideal_fidelity_is_one() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Cx(0, 1));
        assert_eq!(CircuitNoise::ideal().fidelity(&c), 1.0);
    }

    #[test]
    fn fidelity_decreases_with_gates() {
        let noise = CircuitNoise::ibmq_default();
        let mut shallow = Circuit::new(2);
        shallow.push(Gate::Cx(0, 1));
        let mut deep = Circuit::new(2);
        for _ in 0..50 {
            deep.push(Gate::Cx(0, 1));
        }
        assert!(noise.fidelity(&deep) < noise.fidelity(&shallow));
        assert!(noise.fidelity(&deep) > 0.0);
    }

    #[test]
    fn two_qubit_gates_dominate() {
        let noise = CircuitNoise::ibmq_default();
        let mut ones = Circuit::new(2);
        let mut twos = Circuit::new(2);
        for _ in 0..10 {
            ones.push(Gate::Rx(0, 0.1));
            twos.push(Gate::Cx(0, 1));
        }
        assert!(noise.fidelity(&twos) < noise.fidelity(&ones));
    }

    #[test]
    fn empty_circuit_perfect() {
        assert_eq!(CircuitNoise::ibmq_default().fidelity(&Circuit::new(3)), 1.0);
    }
}
