//! Quantum Alternating Operator Ansatz mixers — the paper's §IX future
//! work: "The custom mixers used in this version of QAOA seem
//! especially appropriate to NchooseK problems with both hard and soft
//! constraints."
//!
//! The standard QAOA transverse-field mixer explores the full
//! `2ⁿ`-dimensional space, wasting amplitude on assignments that
//! violate structural hard constraints (e.g. one-hot groups in map
//! coloring). An **XY ring mixer** over a variable group commutes with
//! the group's Hamming weight, so if the initial state has exactly one
//! TRUE variable per group, the *entire evolution* stays inside the
//! feasible one-hot subspace — those hard constraints can then be
//! dropped from the cost Hamiltonian altogether.

use crate::gates::{Circuit, Gate};
use nck_qubo::Ising;

/// Mixer choice for one QAOA run.
#[derive(Clone, Debug, PartialEq)]
pub enum Mixer {
    /// The standard transverse-field mixer `Σ Xᵢ` with `|+⟩^n` init.
    TransverseField,
    /// XY ring mixers over the given one-hot groups (each group is a
    /// set of variables of which exactly one must be TRUE); variables
    /// outside every group get the transverse-field mixer. The initial
    /// state sets the first variable of each group TRUE.
    XyRings {
        /// Disjoint one-hot variable groups.
        groups: Vec<Vec<usize>>,
    },
}

impl Mixer {
    /// Validate groups: disjoint, in-range, each of size ≥ 2.
    fn check(&self, n: usize) {
        if let Mixer::XyRings { groups } = self {
            let mut seen = vec![false; n];
            for g in groups {
                assert!(g.len() >= 2, "one-hot group needs at least 2 variables");
                for &v in g {
                    assert!(v < n, "group variable {v} out of range");
                    assert!(!seen[v], "variable {v} appears in two groups");
                    seen[v] = true;
                }
            }
        }
    }

    /// Append the state-preparation layer.
    #[allow(clippy::needless_range_loop)] // `grouped` is indexed by qubit id
    fn prepare(&self, c: &mut Circuit) {
        let n = c.num_qubits();
        match self {
            Mixer::TransverseField => {
                for q in 0..n {
                    c.push(Gate::H(q));
                }
            }
            Mixer::XyRings { groups } => {
                let mut grouped = vec![false; n];
                for g in groups {
                    // |100…0⟩ within the group: a feasible one-hot
                    // basis state.
                    c.push(Gate::X(g[0]));
                    for &v in g {
                        grouped[v] = true;
                    }
                }
                for q in 0..n {
                    if !grouped[q] {
                        c.push(Gate::H(q));
                    }
                }
            }
        }
    }

    /// Append one mixing layer with angle `beta`.
    #[allow(clippy::needless_range_loop)] // `grouped` is indexed by qubit id
    fn mix(&self, c: &mut Circuit, beta: f64) {
        let n = c.num_qubits();
        match self {
            Mixer::TransverseField => {
                for q in 0..n {
                    c.push(Gate::Rx(q, 2.0 * beta));
                }
            }
            Mixer::XyRings { groups } => {
                let mut grouped = vec![false; n];
                for g in groups {
                    // Ring of XY interactions around the group.
                    for i in 0..g.len() {
                        let a = g[i];
                        let b = g[(i + 1) % g.len()];
                        if g.len() == 2 && i == 1 {
                            break; // a 2-ring is a single pair
                        }
                        c.push(Gate::Xy(a, b, 2.0 * beta));
                    }
                    for &v in g {
                        grouped[v] = true;
                    }
                }
                for q in 0..n {
                    if !grouped[q] {
                        c.push(Gate::Rx(q, 2.0 * beta));
                    }
                }
            }
        }
    }
}

/// Build a QAOA circuit for `ising` with the given mixer.
///
/// With [`Mixer::TransverseField`] this reduces exactly to
/// [`crate::qaoa::qaoa_circuit`].
pub fn qaoa_circuit_with_mixer(
    ising: &Ising,
    betas: &[f64],
    gammas: &[f64],
    mixer: &Mixer,
) -> Circuit {
    assert_eq!(betas.len(), gammas.len(), "one (β, γ) pair per layer");
    let n = ising.num_spins();
    mixer.check(n);
    let mut c = Circuit::new(n);
    mixer.prepare(&mut c);
    for (&beta, &gamma) in betas.iter().zip(gammas) {
        for (q, h) in ising.fields() {
            c.push(Gate::Rz(q, -2.0 * gamma * h));
        }
        for ((a, b), j) in ising.couplings() {
            c.push(Gate::Rzz(a, b, 2.0 * gamma * j));
        }
        mixer.mix(&mut c, beta);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qaoa::qaoa_circuit;
    use crate::state::StateVector;

    fn ring_ising(n: usize) -> Ising {
        let mut ising = Ising::new(n);
        for i in 0..n {
            ising.add_coupling(i, (i + 1) % n, 1.0);
        }
        ising
    }

    #[test]
    fn transverse_field_matches_standard_qaoa() {
        let ising = ring_ising(4);
        let a = qaoa_circuit(&ising, &[0.4], &[0.7]);
        let b = qaoa_circuit_with_mixer(&ising, &[0.4], &[0.7], &Mixer::TransverseField);
        assert_eq!(a, b);
    }

    /// The headline property: with XY mixers the state never leaves the
    /// one-hot subspace, for any angles and any cost Hamiltonian.
    #[test]
    fn xy_mixer_preserves_one_hot_subspace() {
        let n = 6;
        let mut ising = Ising::new(n);
        for i in 0..n {
            ising.add_field(i, 0.3 * i as f64 - 0.7);
            ising.add_coupling(i, (i + 2) % n, 0.8);
        }
        let mixer = Mixer::XyRings { groups: vec![vec![0, 1, 2], vec![3, 4, 5]] };
        let c = qaoa_circuit_with_mixer(&ising, &[0.37, 0.91], &[0.53, -0.44], &mixer);
        let mut s = StateVector::zero(n);
        s.run(&c);
        let mut feasible_mass = 0.0;
        for bits in 0..1usize << n {
            let g1 = (bits & 0b111).count_ones();
            let g2 = (bits >> 3 & 0b111).count_ones();
            if g1 == 1 && g2 == 1 {
                feasible_mass += s.prob(bits);
            } else {
                assert!(
                    s.prob(bits) < 1e-12,
                    "leaked probability {} to infeasible state {bits:06b}",
                    s.prob(bits)
                );
            }
        }
        assert!((feasible_mass - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pair_group_swaps_amplitude() {
        // A 2-ring reduces to one XY pair; starting at |10⟩ the state
        // oscillates between |10⟩ and |01⟩.
        let ising = Ising::new(2); // zero cost: pure mixing
        let mixer = Mixer::XyRings { groups: vec![vec![0, 1]] };
        // β = π/2 → full transfer for the pair ring.
        let c = qaoa_circuit_with_mixer(&ising, &[std::f64::consts::FRAC_PI_2], &[0.0], &mixer);
        let mut s = StateVector::zero(2);
        s.run(&c);
        assert!(s.prob(0b10) > 0.999, "p = {}", s.prob(0b10));
    }

    #[test]
    fn ungrouped_variables_get_transverse_mixer() {
        // Group {0,1}, variable 2 free: after one pure-mixing layer,
        // qubit 2 is in superposition while the group stays one-hot.
        let ising = Ising::new(3);
        let mixer = Mixer::XyRings { groups: vec![vec![0, 1]] };
        let c = qaoa_circuit_with_mixer(&ising, &[0.6], &[0.0], &mixer);
        let mut s = StateVector::zero(3);
        s.run(&c);
        let p_q2_one: f64 = (0..8).filter(|i| i >> 2 & 1 == 1).map(|i| s.prob(i)).sum();
        assert!(p_q2_one > 0.05 && p_q2_one < 0.95, "q2 should mix: {p_q2_one}");
        for bits in 0..8usize {
            let g = (bits & 0b11).count_ones();
            if g != 1 {
                assert!(s.prob(bits) < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "appears in two groups")]
    fn overlapping_groups_rejected() {
        let ising = Ising::new(3);
        let mixer = Mixer::XyRings { groups: vec![vec![0, 1], vec![1, 2]] };
        let _ = qaoa_circuit_with_mixer(&ising, &[0.1], &[0.1], &mixer);
    }

    /// End-to-end value demonstration: on a one-hot-constrained
    /// problem, the XY-mixer ansatz concentrates all probability on
    /// feasible states, while the standard mixer leaks most of it.
    #[test]
    fn xy_mixer_beats_transverse_on_one_hot_problem() {
        // Cost: prefer variable 2 within group {0,1,2} (field pushes
        // s₂ down). One-hot feasibility is structural.
        let mut ising = Ising::new(3);
        ising.add_field(2, -1.0);
        let groups = vec![vec![0, 1, 2]];
        let feasible_mass = |c: &Circuit| -> f64 {
            let mut s = StateVector::zero(3);
            s.run(c);
            [0b001usize, 0b010, 0b100].iter().map(|&i| s.prob(i)).sum()
        };
        let xy = qaoa_circuit_with_mixer(&ising, &[0.5], &[0.6], &Mixer::XyRings { groups });
        let tf = qaoa_circuit_with_mixer(&ising, &[0.5], &[0.6], &Mixer::TransverseField);
        assert!((feasible_mass(&xy) - 1.0).abs() < 1e-9);
        assert!(feasible_mass(&tf) < 0.9, "transverse mixer should leak");
    }
}
