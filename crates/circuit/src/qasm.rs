//! OpenQASM 2.0 export.
//!
//! Lets circuits built here (QAOA ansätze, transpiled outputs) be
//! loaded into Qiskit or any other OpenQASM consumer — the
//! interoperability escape hatch a real NchooseK port would need to
//! run on actual IBM hardware.

use crate::gates::{Circuit, Gate};
use std::fmt::Write;

/// Render `circuit` as an OpenQASM 2.0 program with measurement of all
/// qubits into a classical register.
pub fn to_qasm(circuit: &Circuit) -> String {
    let n = circuit.num_qubits();
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");
    // qelib1 lacks an XY (XX+YY) gate; define it once if needed.
    if circuit.gates().iter().any(|g| matches!(g, Gate::Xy(..))) {
        out.push_str(concat!(
            "gate xy(theta) a, b {\n",
            "  h a; h b; cx a, b; rz(theta/2) b; cx a, b; h a; h b;\n",
            "  rx(pi/2) a; rx(pi/2) b; cx a, b; rz(theta/2) b; cx a, b;\n",
            "  rx(-pi/2) a; rx(-pi/2) b;\n",
            "}\n",
        ));
    }
    let _ = writeln!(out, "qreg q[{n}];");
    let _ = writeln!(out, "creg c[{n}];");
    for g in circuit.gates() {
        let line = match *g {
            Gate::H(q) => format!("h q[{q}];"),
            Gate::X(q) => format!("x q[{q}];"),
            Gate::Rx(q, t) => format!("rx({t}) q[{q}];"),
            Gate::Rz(q, t) => format!("rz({t}) q[{q}];"),
            Gate::Cx(a, b) => format!("cx q[{a}], q[{b}];"),
            Gate::Rzz(a, b, t) => format!("rzz({t}) q[{a}], q[{b}];"),
            Gate::Xy(a, b, t) => format!("xy({t}) q[{a}], q[{b}];"),
            Gate::Swap(a, b) => format!("swap q[{a}], q[{b}];"),
        };
        out.push_str(&line);
        out.push('\n');
    }
    let _ = writeln!(out, "measure q -> c;");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_registers() {
        let c = Circuit::new(3);
        let q = to_qasm(&c);
        assert!(q.starts_with("OPENQASM 2.0;\n"));
        assert!(q.contains("include \"qelib1.inc\";"));
        assert!(q.contains("qreg q[3];"));
        assert!(q.contains("creg c[3];"));
        assert!(q.ends_with("measure q -> c;\n"));
    }

    #[test]
    fn gates_render() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Rzz(0, 1, 0.5));
        c.push(Gate::Rx(1, -0.25));
        c.push(Gate::Cx(1, 0));
        c.push(Gate::Swap(0, 1));
        let q = to_qasm(&c);
        assert!(q.contains("h q[0];"));
        assert!(q.contains("rzz(0.5) q[0], q[1];"));
        assert!(q.contains("rx(-0.25) q[1];"));
        assert!(q.contains("cx q[1], q[0];"));
        assert!(q.contains("swap q[0], q[1];"));
        // No custom gate needed without XY.
        assert!(!q.contains("gate xy"));
    }

    #[test]
    fn xy_gets_custom_definition() {
        let mut c = Circuit::new(2);
        c.push(Gate::Xy(0, 1, 0.7));
        let q = to_qasm(&c);
        assert!(q.contains("gate xy(theta) a, b {"));
        assert!(q.contains("xy(0.7) q[0], q[1];"));
        // The definition must appear before use.
        assert!(q.find("gate xy").unwrap() < q.find("xy(0.7)").unwrap());
    }

    #[test]
    fn qaoa_circuit_exports() {
        use nck_qubo::Ising;
        let mut ising = Ising::new(3);
        ising.add_coupling(0, 1, 1.0);
        ising.add_field(2, -0.5);
        let c = crate::qaoa::qaoa_circuit(&ising, &[0.3], &[0.6]);
        let q = to_qasm(&c);
        assert!(q.lines().count() > 8);
        assert!(q.contains("rzz"));
    }
}
