//! Transpilation: layout, SWAP routing, and basis decomposition.
//!
//! Circuit-model hardware "cannot directly perform two-qubit operations
//! on arbitrary pairs of qubits. Hence, they must frequently swap the
//! state of adjacent qubits in sequence to move pairwise interactions
//! to physical neighbors" (§VIII-B). The transpiler:
//!
//! 1. chooses an initial layout placing strongly-interacting logical
//!    qubits on adjacent physical qubits,
//! 2. routes each two-qubit gate by inserting SWAPs along a shortest
//!    hardware path, and
//! 3. decomposes everything into the `{rz, rx, x, cx}` basis.
//!
//! The resulting depth is the paper's Fig. 9/10 metric.

use crate::coupling::CouplingMap;
use crate::gates::{Circuit, Gate};
use std::fmt;

/// Transpiler errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TranspileError {
    /// The circuit needs more qubits than the device provides.
    TooManyQubits {
        /// Logical qubits required.
        needed: usize,
        /// Physical qubits available.
        available: usize,
    },
}

impl fmt::Display for TranspileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranspileError::TooManyQubits { needed, available } => {
                write!(f, "circuit needs {needed} qubits, device has {available}")
            }
        }
    }
}

impl std::error::Error for TranspileError {}

/// A transpiled circuit plus bookkeeping.
#[derive(Clone, Debug)]
pub struct Transpiled {
    /// The physical circuit in the `{rz, rx, x, cx}` basis.
    pub circuit: Circuit,
    /// Initial layout: `layout[logical] = physical`.
    pub initial_layout: Vec<usize>,
    /// Final layout after routing (measurement decode).
    pub final_layout: Vec<usize>,
    /// SWAPs inserted by the router.
    pub num_swaps: usize,
}

impl Transpiled {
    /// Decode a physical measurement (bit per physical qubit) into
    /// logical bits using the final layout.
    pub fn decode(&self, physical_bits: u64) -> u64 {
        let mut out = 0u64;
        for (logical, &phys) in self.final_layout.iter().enumerate() {
            if physical_bits >> phys & 1 == 1 {
                out |= 1 << logical;
            }
        }
        out
    }
}

/// Transpile `logical` onto `map`.
pub fn transpile(logical: &Circuit, map: &CouplingMap) -> Result<Transpiled, TranspileError> {
    let n = logical.num_qubits();
    if n > map.num_qubits() {
        return Err(TranspileError::TooManyQubits { needed: n, available: map.num_qubits() });
    }
    let dist = map.distances();
    let initial_layout = choose_layout(logical, map, &dist);
    // log2phys / phys2log under routing.
    let mut l2p = initial_layout.clone();
    let mut p2l = vec![usize::MAX; map.num_qubits()];
    for (l, &p) in l2p.iter().enumerate() {
        p2l[p] = l;
    }
    let mut out = Circuit::new(map.num_qubits());
    let mut num_swaps = 0usize;
    let emit_basis = |out: &mut Circuit, g: Gate| match g {
        // Basis decomposition at emission time.
        Gate::H(q) => {
            let half_pi = std::f64::consts::FRAC_PI_2;
            out.push(Gate::Rz(q, half_pi));
            out.push(Gate::Rx(q, half_pi));
            out.push(Gate::Rz(q, half_pi));
        }
        Gate::Rzz(a, b, t) => {
            out.push(Gate::Cx(a, b));
            out.push(Gate::Rz(b, t));
            out.push(Gate::Cx(a, b));
        }
        Gate::Xy(a, b, t) => {
            // exp(−iθ/2·(XX+YY)/2) = RXX(θ/2)·RYY(θ/2) (commuting
            // halves), each via basis rotation around RZZ.
            let half_pi = std::f64::consts::FRAC_PI_2;
            // RXX(θ/2): H on both, RZZ, H on both — H itself is
            // emitted in the basis below, so expand inline.
            for q in [a, b] {
                out.push(Gate::Rz(q, half_pi));
                out.push(Gate::Rx(q, half_pi));
                out.push(Gate::Rz(q, half_pi));
            }
            out.push(Gate::Cx(a, b));
            out.push(Gate::Rz(b, t / 2.0));
            out.push(Gate::Cx(a, b));
            for q in [a, b] {
                out.push(Gate::Rz(q, half_pi));
                out.push(Gate::Rx(q, half_pi));
                out.push(Gate::Rz(q, half_pi));
            }
            // RYY(θ/2): RX(π/2) basis change.
            for q in [a, b] {
                out.push(Gate::Rx(q, half_pi));
            }
            out.push(Gate::Cx(a, b));
            out.push(Gate::Rz(b, t / 2.0));
            out.push(Gate::Cx(a, b));
            for q in [a, b] {
                out.push(Gate::Rx(q, -half_pi));
            }
        }
        Gate::Swap(a, b) => {
            out.push(Gate::Cx(a, b));
            out.push(Gate::Cx(b, a));
            out.push(Gate::Cx(a, b));
        }
        other => out.push(other),
    };
    for &g in logical.gates() {
        match g.qubits() {
            (a, None) => emit_basis(&mut out, g.remap(|_| l2p[a])),
            (a, Some(b)) => {
                // Route: walk phys(a) toward phys(b) by SWAPs until
                // adjacent.
                while !map.connected(l2p[a], l2p[b]) {
                    let pa = l2p[a];
                    let pb = l2p[b];
                    // First hop of a shortest path pa → pb.
                    let next = *map
                        .neighbors(pa)
                        .iter()
                        .min_by_key(|&&x| dist[x][pb])
                        .expect("connected device");
                    emit_basis(&mut out, Gate::Swap(pa, next));
                    num_swaps += 1;
                    // Update layouts: whatever logical qubit sat at
                    // `next` moves to `pa`.
                    let other = p2l[next];
                    p2l[pa] = other;
                    p2l[next] = a;
                    l2p[a] = next;
                    if other != usize::MAX {
                        l2p[other] = pa;
                    }
                }
                emit_basis(&mut out, g.remap(|q| if q == a { l2p[a] } else { l2p[b] }));
            }
        }
    }
    let final_layout = l2p;
    Ok(Transpiled { circuit: out, initial_layout, final_layout, num_swaps })
}

/// Greedy interaction-aware layout: place the busiest logical qubit on
/// the best-connected physical qubit, then place each subsequent
/// logical qubit as close as possible to its placed interaction
/// partners.
fn choose_layout(logical: &Circuit, map: &CouplingMap, dist: &[Vec<u32>]) -> Vec<usize> {
    let n = logical.num_qubits();
    // Interaction weights between logical qubits.
    let mut weight = vec![vec![0u32; n]; n];
    for g in logical.gates() {
        if let (a, Some(b)) = g.qubits() {
            weight[a][b] += 1;
            weight[b][a] += 1;
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&q| std::cmp::Reverse(weight[q].iter().sum::<u32>()));
    let mut layout = vec![usize::MAX; n];
    let mut used = vec![false; map.num_qubits()];
    for &l in &order {
        let placed: Vec<(usize, u32)> = (0..n)
            .filter(|&m| layout[m] != usize::MAX && weight[l][m] > 0)
            .map(|m| (layout[m], weight[l][m]))
            .collect();
        let phys = if placed.is_empty() {
            // Most-connected free qubit.
            (0..map.num_qubits())
                .filter(|&p| !used[p])
                .max_by_key(|&p| map.neighbors(p).len())
                .expect("enough qubits")
        } else {
            (0..map.num_qubits())
                .filter(|&p| !used[p])
                .min_by_key(|&p| {
                    placed.iter().map(|&(pp, w)| dist[p][pp] as u64 * w as u64).sum::<u64>()
                })
                .expect("enough qubits")
        };
        layout[l] = phys;
        used[phys] = true;
    }
    layout
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateVector;

    #[test]
    fn full_connectivity_inserts_no_swaps() {
        let mut c = Circuit::new(4);
        for q in 0..4 {
            c.push(Gate::H(q));
        }
        for a in 0..4 {
            for b in a + 1..4 {
                c.push(Gate::Rzz(a, b, 0.3));
            }
        }
        let t = transpile(&c, &CouplingMap::full(4)).unwrap();
        assert_eq!(t.num_swaps, 0);
    }

    #[test]
    fn line_routing_inserts_swaps() {
        // rzz(0, 3) on a line of 4 needs movement.
        let mut c = Circuit::new(4);
        c.push(Gate::Rzz(0, 3, 0.5));
        c.push(Gate::Rzz(0, 1, 0.5));
        c.push(Gate::Rzz(1, 2, 0.5));
        let t = transpile(&c, &CouplingMap::line(4)).unwrap();
        // Layout may reorder, but the full interaction set of this
        // circuit is a star plus path, not embeddable distance-free on
        // a line without at least one swap... verify routing executed
        // and all cx gates are between connected qubits.
        let map = CouplingMap::line(4);
        for g in t.circuit.gates() {
            if let (a, Some(b)) = g.qubits() {
                assert!(map.connected(a, b), "{g} not executable");
            }
        }
    }

    #[test]
    fn too_many_qubits_rejected() {
        let c = Circuit::new(70);
        match transpile(&c, &CouplingMap::ibmq_brooklyn()) {
            Err(TranspileError::TooManyQubits { needed: 70, available: 65 }) => {}
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn basis_contains_only_allowed_gates() {
        let mut c = Circuit::new(3);
        c.push(Gate::H(0));
        c.push(Gate::Swap(0, 2));
        c.push(Gate::Rzz(0, 1, 0.7));
        let t = transpile(&c, &CouplingMap::line(3)).unwrap();
        for g in t.circuit.gates() {
            assert!(
                matches!(g, Gate::Rz(..) | Gate::Rx(..) | Gate::X(..) | Gate::Cx(..)),
                "non-basis gate {g} in output"
            );
        }
    }

    /// End-to-end semantic check: the transpiled circuit computes the
    /// same distribution as the logical circuit (after decode).
    #[test]
    fn transpiled_circuit_preserves_semantics() {
        let mut logical = Circuit::new(4);
        for q in 0..4 {
            logical.push(Gate::H(q));
        }
        logical.push(Gate::Rzz(0, 3, 0.9));
        logical.push(Gate::Rzz(1, 2, 0.4));
        logical.push(Gate::Rzz(0, 2, -0.6));
        for q in 0..4 {
            logical.push(Gate::Rx(q, 0.8));
        }
        let map = CouplingMap::line(4);
        let t = transpile(&logical, &map).unwrap();
        let mut ideal = StateVector::zero(4);
        ideal.run(&logical);
        let mut routed = StateVector::zero(4);
        routed.run(&t.circuit);
        // Compare probability distributions after decode.
        for phys in 0..16u64 {
            let log = t.decode(phys);
            let p_routed = routed.prob(phys as usize);
            let p_ideal = ideal.prob(log as usize);
            assert!(
                (p_routed - p_ideal).abs() < 1e-9,
                "phys {phys:04b} → log {log:04b}: {p_routed} vs {p_ideal}"
            );
        }
    }

    #[test]
    fn depth_grows_on_sparser_devices() {
        // The same QAOA-ish circuit is deeper on a line than on a full
        // graph (§VIII-B: swap overhead).
        let mut c = Circuit::new(6);
        for q in 0..6 {
            c.push(Gate::H(q));
        }
        for a in 0..6 {
            for b in a + 1..6 {
                c.push(Gate::Rzz(a, b, 0.2));
            }
        }
        let on_full = transpile(&c, &CouplingMap::full(6)).unwrap();
        let on_line = transpile(&c, &CouplingMap::line(6)).unwrap();
        assert!(on_line.circuit.depth() > on_full.circuit.depth());
        assert!(on_line.num_swaps > 0);
    }

    #[test]
    fn decode_tracks_final_layout() {
        let mut c = Circuit::new(2);
        c.push(Gate::X(0));
        c.push(Gate::Rzz(0, 1, 0.1));
        let t = transpile(&c, &CouplingMap::line(3)).unwrap();
        // Wherever logical 0 ended up, decode must bring the X back to
        // logical bit 0.
        let mut s = StateVector::zero(3);
        s.run(&t.circuit);
        let mut best = 0;
        let mut best_p = 0.0;
        for i in 0..8 {
            if s.prob(i) > best_p {
                best_p = s.prob(i);
                best = i;
            }
        }
        assert_eq!(t.decode(best as u64) & 0b11, 0b01);
    }
}
