//! Nelder–Mead simplex optimizer — the classical outer loop of QAOA
//! (Qiskit's default COBYLA plays this role in the paper; both are
//! derivative-free direct-search methods).

/// Result of an optimization run.
#[derive(Clone, Debug)]
pub struct OptimResult {
    /// Best parameter vector found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub fx: f64,
    /// Objective evaluations consumed.
    pub evaluations: usize,
    /// Optimizer iterations (one reflection cycle each) — the paper's
    /// "jobs" unit: each iteration submits circuits to the device.
    pub iterations: usize,
}

/// Minimize `f` starting from `x0` with Nelder–Mead.
///
/// `max_iter` bounds the reflection cycles; `tol` stops early when the
/// simplex's objective spread falls below it.
pub fn nelder_mead(
    f: &mut dyn FnMut(&[f64]) -> f64,
    x0: &[f64],
    step: f64,
    max_iter: usize,
    tol: f64,
) -> OptimResult {
    nelder_mead_with_stop(f, x0, step, max_iter, tol, &|| false)
}

/// [`nelder_mead`] with a cooperative stop callback, polled once per
/// reflection cycle: when `stop` returns true the optimizer returns the
/// best simplex vertex found so far (best-so-far parameters, not a
/// failure). The initial simplex is always built, so the result is
/// usable even when `stop` is already true on entry.
pub fn nelder_mead_with_stop(
    f: &mut dyn FnMut(&[f64]) -> f64,
    x0: &[f64],
    step: f64,
    max_iter: usize,
    tol: f64,
    stop: &dyn Fn() -> bool,
) -> OptimResult {
    nelder_mead_resumable(f, x0, step, max_iter, tol, stop, None, &mut |_| {})
}

/// The optimizer's full mid-run state: the current simplex plus the
/// work counters. Capturing it after any reflection cycle and feeding
/// it back into [`nelder_mead_resumable`] continues the run exactly
/// where it left off — the optimizer is deterministic (no RNG), so a
/// resumed run replays the same evaluation sequence an uninterrupted
/// one would have produced.
#[derive(Clone, Debug, PartialEq)]
pub struct NmState {
    /// The simplex vertices with their objective values.
    pub simplex: Vec<(Vec<f64>, f64)>,
    /// Objective evaluations consumed so far.
    pub evaluations: usize,
    /// Reflection cycles completed so far (counts toward `max_iter`).
    pub iterations: usize,
}

/// [`nelder_mead_with_stop`] with checkpoint/resume. When `state` is
/// `Some`, the initial simplex construction is skipped and iteration
/// continues from the restored counters (`max_iter` bounds the *total*
/// iterations across all resumes). `on_iter` fires after every
/// completed reflection cycle with the current state, for persistence.
#[allow(clippy::too_many_arguments)]
pub fn nelder_mead_resumable(
    f: &mut dyn FnMut(&[f64]) -> f64,
    x0: &[f64],
    step: f64,
    max_iter: usize,
    tol: f64,
    stop: &dyn Fn() -> bool,
    state: Option<NmState>,
    on_iter: &mut dyn FnMut(&NmState),
) -> OptimResult {
    let n = x0.len();
    assert!(n >= 1, "need at least one parameter");
    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);
    let mut st = match state {
        Some(st) => {
            assert_eq!(st.simplex.len(), n + 1, "restored simplex dimension mismatch");
            st
        }
        None => {
            // Initial simplex: x0 plus a step along each axis.
            let mut evals = 0usize;
            let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
            evals += 1;
            let fx0 = f(x0);
            simplex.push((x0.to_vec(), fx0));
            for i in 0..n {
                let mut x = x0.to_vec();
                x[i] += step;
                evals += 1;
                let fx = f(&x);
                simplex.push((x, fx));
            }
            NmState { simplex, evaluations: evals, iterations: 0 }
        }
    };
    let mut eval = |x: &[f64], evals: &mut usize| {
        *evals += 1;
        f(x)
    };
    while st.iterations < max_iter {
        if stop() {
            break;
        }
        st.iterations += 1;
        st.simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let spread = st.simplex[n].1 - st.simplex[0].1;
        if spread.abs() < tol {
            break;
        }
        // Centroid of all but the worst.
        let mut centroid = vec![0.0; n];
        for (x, _) in &st.simplex[..n] {
            for (c, v) in centroid.iter_mut().zip(x) {
                *c += v / n as f64;
            }
        }
        let worst = st.simplex[n].clone();
        let reflect: Vec<f64> =
            centroid.iter().zip(&worst.0).map(|(c, w)| c + alpha * (c - w)).collect();
        let fr = eval(&reflect, &mut st.evaluations);
        if fr < st.simplex[0].1 {
            // Try expanding.
            let expand: Vec<f64> =
                centroid.iter().zip(&reflect).map(|(c, r)| c + gamma * (r - c)).collect();
            let fe = eval(&expand, &mut st.evaluations);
            st.simplex[n] = if fe < fr { (expand, fe) } else { (reflect, fr) };
        } else if fr < st.simplex[n - 1].1 {
            st.simplex[n] = (reflect, fr);
        } else {
            // Contract toward the centroid.
            let contract: Vec<f64> =
                centroid.iter().zip(&worst.0).map(|(c, w)| c + rho * (w - c)).collect();
            let fc = eval(&contract, &mut st.evaluations);
            if fc < worst.1 {
                st.simplex[n] = (contract, fc);
            } else {
                // Shrink toward the best point.
                let best = st.simplex[0].0.clone();
                for entry in &mut st.simplex[1..] {
                    let x: Vec<f64> =
                        best.iter().zip(&entry.0).map(|(b, v)| b + sigma * (v - b)).collect();
                    let fx = eval(&x, &mut st.evaluations);
                    *entry = (x, fx);
                }
            }
        }
        on_iter(&st);
    }
    st.simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    let (x, fx) = st.simplex.swap_remove(0);
    OptimResult { x, fx, evaluations: st.evaluations, iterations: st.iterations }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let mut f = |x: &[f64]| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2);
        let r = nelder_mead(&mut f, &[0.0, 0.0], 0.5, 200, 1e-12);
        assert!((r.x[0] - 3.0).abs() < 1e-4, "x0 = {}", r.x[0]);
        assert!((r.x[1] + 1.0).abs() < 1e-4, "x1 = {}", r.x[1]);
        assert!(r.fx < 1e-7);
    }

    #[test]
    fn minimizes_rosenbrock() {
        let mut f = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let r = nelder_mead(&mut f, &[-1.2, 1.0], 0.5, 2000, 1e-14);
        assert!((r.x[0] - 1.0).abs() < 1e-3, "x = {:?}", r.x);
        assert!((r.x[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn one_dimensional() {
        let mut f = |x: &[f64]| (x[0].sin() - 1.0).powi(2);
        let r = nelder_mead(&mut f, &[0.1], 0.3, 300, 1e-12);
        assert!(r.fx < 1e-6);
    }

    #[test]
    fn respects_iteration_budget() {
        let mut count = 0usize;
        let mut f = |x: &[f64]| {
            count += 1;
            x[0] * x[0]
        };
        let r = nelder_mead(&mut f, &[5.0], 1.0, 10, 0.0);
        assert!(r.iterations <= 10);
        assert_eq!(r.evaluations, count);
    }

    #[test]
    fn tolerance_stops_early() {
        let mut f = |_: &[f64]| 1.0; // flat objective
        let r = nelder_mead(&mut f, &[0.0, 0.0], 1.0, 1000, 1e-9);
        assert!(r.iterations <= 2, "flat function should converge immediately");
    }

    #[test]
    fn resumable_matches_uninterrupted_bitwise() {
        fn rosenbrock(x: &[f64]) -> f64 {
            (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2)
        }
        let x0 = [-1.2, 1.0];
        let full = nelder_mead(&mut |x| rosenbrock(x), &x0, 0.5, 300, 1e-14);
        for cut in [1usize, 7, 50, 150, 300] {
            // Capture the optimizer state after `cut` cycles, as a
            // checkpoint written right before a crash would hold it.
            let mut snap: Option<NmState> = None;
            nelder_mead_resumable(
                &mut |x| rosenbrock(x),
                &x0,
                0.5,
                cut,
                1e-14,
                &|| false,
                None,
                &mut |st| {
                    if st.iterations == cut {
                        snap = Some(st.clone());
                    }
                },
            );
            let Some(snap) = snap else {
                // Converged before `cut` cycles: nothing left to resume.
                continue;
            };
            let resumed = nelder_mead_resumable(
                &mut |x| rosenbrock(x),
                &x0,
                0.5,
                300,
                1e-14,
                &|| false,
                Some(snap),
                &mut |_| {},
            );
            assert_eq!(resumed.iterations, full.iterations, "cut {cut}");
            assert_eq!(resumed.evaluations, full.evaluations, "cut {cut}");
            assert_eq!(resumed.fx.to_bits(), full.fx.to_bits(), "cut {cut}");
            for (a, b) in resumed.x.iter().zip(&full.x) {
                assert_eq!(a.to_bits(), b.to_bits(), "cut {cut}");
            }
        }
    }

    #[test]
    fn stop_callback_returns_best_so_far() {
        use std::cell::Cell;
        let mut f = |x: &[f64]| (x[0] - 3.0).powi(2);
        let budget = Cell::new(5usize);
        let stop = || {
            if budget.get() == 0 {
                true
            } else {
                budget.set(budget.get() - 1);
                false
            }
        };
        let r = nelder_mead_with_stop(&mut f, &[0.0], 0.5, 1000, 0.0, &stop);
        assert!(r.iterations <= 5, "stopped run did {} iterations", r.iterations);
        // Stopped immediately: still returns a usable vertex.
        let r0 = nelder_mead_with_stop(&mut f, &[0.0], 0.5, 1000, 0.0, &|| true);
        assert_eq!(r0.iterations, 0);
        assert!(r0.fx.is_finite());
    }
}
