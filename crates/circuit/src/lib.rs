//! # nck-circuit
//!
//! A gate-model quantum-computing substrate standing in for the
//! 65-qubit IBM Q system (ibmq_brooklyn) of the paper's evaluation:
//!
//! * [`complex`] / [`state`] — dense state-vector simulation of the
//!   `{h, x, rx, rz, cx, rzz, swap}` gate set, rayon-parallel on large
//!   registers (exact up to ~24 qubits).
//! * [`gates`] — circuit IR with the §VIII-B depth metric.
//! * [`coupling`] / [`transpile`](mod@transpile) — heavy-hex-style coupling maps and a
//!   layout + SWAP-routing + basis-decomposition transpiler; routed
//!   depth is the Fig. 9/10 quantity.
//! * [`noise`] — global depolarizing + readout error.
//! * [`optim`] — Nelder–Mead, the classical QAOA outer loop.
//! * [`analytic`] — exact closed-form p=1 QAOA expectations (Ozaeta–van
//!   Dam–McMahon), enabling 65-qubit instances.
//! * [`qaoa`] — the assembled [`GateModelDevice`] with the
//!   `ibmq_brooklyn()` preset.
//! * [`mixer`] — Quantum Alternating Operator Ansatz mixers (XY rings
//!   for one-hot constraints), the paper's §IX future work.
//!
//! ```
//! use nck_circuit::GateModelDevice;
//! use nck_qubo::Qubo;
//!
//! // f(a, b) = ab − a − b.
//! let mut q = Qubo::new(2);
//! q.add_quadratic(0, 1, 1.0);
//! q.add_linear(0, -1.0);
//! q.add_linear(1, -1.0);
//!
//! let device = GateModelDevice::ideal(2);
//! let run = device.run_qaoa(&q, 1, 256, 40, 1).unwrap();
//! assert_eq!(run.best_energy, -1.0);
//! ```

#![warn(missing_docs)]

pub mod analytic;
pub mod complex;
pub mod coupling;
pub mod gates;
pub mod grover;
pub mod mixer;
pub mod noise;
pub mod optim;
pub mod qaoa;
pub mod qasm;
pub mod state;
pub mod transpile;

pub use analytic::qaoa1_expectation;
pub use complex::Complex;
pub use coupling::CouplingMap;
pub use gates::{Circuit, Gate};
pub use grover::{grover_search, optimal_iterations, GroverResult};
pub use mixer::{qaoa_circuit_with_mixer, Mixer};
pub use noise::CircuitNoise;
pub use optim::{nelder_mead, nelder_mead_resumable, nelder_mead_with_stop, NmState, OptimResult};
pub use qaoa::{
    qaoa_circuit, qaoa_expectation_sim, GateModelDevice, QaoaError, QaoaRun, QaoaTimingModel,
};
pub use qasm::to_qasm;
pub use state::StateVector;
pub use transpile::{transpile, TranspileError, Transpiled};
