//! Closed-form p=1 QAOA expectation values.
//!
//! For a single QAOA layer on an Ising cost function, ⟨C⟩ has an exact
//! classical formula computable in `O(|V|·deg + |E|·deg)` time [Ozaeta,
//! van Dam, McMahon, *Quantum Sci. Technol.* 2022]. This is what lets
//! the simulated backend "run" 65-qubit QAOA instances (Figs. 8–10's
//! upper range) that no state vector can hold: parameter optimization
//! uses this evaluator, and only the final sampling step needs a
//! substitute (see `qaoa::GateModelDevice`).
//!
//! Convention note: our measurement decode maps bit 1 ↦ spin +1, so the
//! Pauli operator is `Z = −s`; the formulas below are applied with
//! negated fields to compensate (validated against the state-vector
//! simulator in the tests).

use nck_qubo::Ising;

/// Exact ⟨H⟩ for the p=1 QAOA state `e^{−iβB} e^{−iγC} |+⟩^n` built by
/// [`crate::qaoa::qaoa_circuit`] with these `beta`, `gamma`.
pub fn qaoa1_expectation(ising: &Ising, beta: f64, gamma: f64) -> f64 {
    let n = ising.num_spins();
    // Z-convention coefficients: H = Σ h'_j Z_j + Σ J_jk Z_j Z_k with
    // h' = −h (bit 1 ↦ s = +1 ↦ Z eigenvalue −1).
    let mut h = vec![0.0f64; n];
    for (i, f) in ising.fields() {
        h[i] = -f;
    }
    let mut j = vec![Vec::<(usize, f64)>::new(); n];
    for ((a, b), c) in ising.couplings() {
        j[a].push((b, c));
        j[b].push((a, c));
    }
    let coupling = |a: usize, b: usize| -> f64 {
        j[a].iter().find(|&&(k, _)| k == b).map(|&(_, c)| c).unwrap_or(0.0)
    };
    let s2b = (2.0 * beta).sin();
    let s4b = (4.0 * beta).sin();
    let s2b_sq = s2b * s2b;
    // ⟨Z_j⟩ = sin2β · sin(2γ h_j) · Π_k cos(2γ J_jk)
    let z1 = |q: usize| -> f64 {
        let mut prod = 1.0;
        for &(_, c) in &j[q] {
            prod *= (2.0 * gamma * c).cos();
        }
        s2b * (2.0 * gamma * h[q]).sin() * prod
    };
    // ⟨Z_a Z_b⟩ per Ozaeta–van Dam–McMahon.
    let z2 = |a: usize, b: usize, jab: f64| -> f64 {
        let prod_excl = |q: usize, excl: usize| -> f64 {
            let mut p = 1.0;
            for &(k, c) in &j[q] {
                if k != excl {
                    p *= (2.0 * gamma * c).cos();
                }
            }
            p
        };
        let term1 = 0.5
            * s4b
            * (2.0 * gamma * jab).sin()
            * ((2.0 * gamma * h[a]).cos() * prod_excl(a, b)
                + (2.0 * gamma * h[b]).cos() * prod_excl(b, a));
        // Products over every third spin l ≠ a, b of cos(2γ(J_al ± J_bl)).
        let mut prod_plus = 1.0;
        let mut prod_minus = 1.0;
        for l in 0..n {
            if l == a || l == b {
                continue;
            }
            let jal = coupling(a, l);
            let jbl = coupling(b, l);
            if jal == 0.0 && jbl == 0.0 {
                continue;
            }
            prod_plus *= (2.0 * gamma * (jal + jbl)).cos();
            prod_minus *= (2.0 * gamma * (jal - jbl)).cos();
        }
        let term2 = 0.5
            * s2b_sq
            * ((2.0 * gamma * (h[a] + h[b])).cos() * prod_plus
                - (2.0 * gamma * (h[a] - h[b])).cos() * prod_minus);
        term1 - term2
    };
    let mut e = ising.offset();
    for (q, _) in ising.fields() {
        e += h[q] * z1(q);
    }
    for ((a, b), c) in ising.couplings() {
        e += c * z2(a, b, c);
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qaoa::{qaoa_circuit, qaoa_expectation_sim};

    fn assert_matches_sim(ising: &Ising, beta: f64, gamma: f64) {
        let analytic = qaoa1_expectation(ising, beta, gamma);
        let sim = qaoa_expectation_sim(ising, &[beta], &[gamma]);
        assert!(
            (analytic - sim).abs() < 1e-9,
            "analytic {analytic} vs simulated {sim} at β={beta}, γ={gamma}"
        );
    }

    #[test]
    fn single_spin_field() {
        let mut ising = Ising::new(1);
        ising.add_field(0, 0.7);
        for (b, g) in [(0.3, 0.5), (0.9, -0.4), (1.2, 1.7)] {
            assert_matches_sim(&ising, b, g);
        }
    }

    #[test]
    fn afm_pair_no_fields() {
        let mut ising = Ising::new(2);
        ising.add_coupling(0, 1, 1.0);
        for (b, g) in [(0.4, 0.3), (0.25, 0.8), (1.0, 0.2)] {
            assert_matches_sim(&ising, b, g);
        }
    }

    #[test]
    fn pair_with_fields() {
        let mut ising = Ising::new(2);
        ising.add_coupling(0, 1, 0.6);
        ising.add_field(0, -0.5);
        ising.add_field(1, 0.8);
        ising.add_offset(2.5);
        for (b, g) in [(0.37, 0.51), (0.12, -0.9)] {
            assert_matches_sim(&ising, b, g);
        }
    }

    #[test]
    fn triangle_with_mixed_couplings() {
        let mut ising = Ising::new(3);
        ising.add_coupling(0, 1, 1.0);
        ising.add_coupling(1, 2, -0.7);
        ising.add_coupling(0, 2, 0.3);
        ising.add_field(1, 0.4);
        for (b, g) in [(0.5, 0.35), (0.8, -0.6)] {
            assert_matches_sim(&ising, b, g);
        }
    }

    #[test]
    fn random_instances_match_simulator() {
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2001) as f64 / 1000.0 - 1.0
        };
        for n in [4usize, 6, 8] {
            let mut ising = Ising::new(n);
            for i in 0..n {
                if next() > 0.0 {
                    ising.add_field(i, next());
                }
                for j in i + 1..n {
                    if next() > 0.3 {
                        ising.add_coupling(i, j, next());
                    }
                }
            }
            for _ in 0..3 {
                let beta = next() * 1.5;
                let gamma = next() * 1.5;
                assert_matches_sim(&ising, beta, gamma);
            }
        }
    }

    #[test]
    fn zero_parameters_give_uniform_expectation() {
        // β = γ = 0 leaves |+⟩^n: every ⟨Z⟩ and ⟨ZZ⟩ vanish.
        let mut ising = Ising::new(3);
        ising.add_coupling(0, 1, 1.0);
        ising.add_field(2, 0.5);
        ising.add_offset(1.25);
        assert!((qaoa1_expectation(&ising, 0.0, 0.0) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn scales_to_large_instances() {
        // 500-spin ring: far beyond any state vector; just confirm it
        // evaluates and is finite.
        let mut ising = Ising::new(500);
        for i in 0..500 {
            ising.add_coupling(i, (i + 1) % 500, 1.0);
        }
        // Antiferromagnetic ring: the best point on a small angle grid
        // is below zero (p=1 QAOA beats the uniform state).
        let mut best = f64::INFINITY;
        for bi in 1..8 {
            for gi in 1..8 {
                let e = qaoa1_expectation(&ising, bi as f64 * 0.2, gi as f64 * 0.2);
                assert!(e.is_finite());
                best = best.min(e);
            }
        }
        assert!(best < 0.0, "best grid point {best}");
    }

    #[test]
    fn doctest_circuit_and_formula_agree_with_multiple_layers_rejected() {
        // qaoa_expectation_sim with p=2 differs from the p=1 formula in
        // general — sanity-check they are *not* accidentally equal.
        let mut ising = Ising::new(2);
        ising.add_coupling(0, 1, 1.0);
        ising.add_field(0, 0.3);
        let p1 = qaoa1_expectation(&ising, 0.4, 0.6);
        let p2 = qaoa_expectation_sim(&ising, &[0.4, 0.2], &[0.6, 0.3]);
        assert!((p1 - p2).abs() > 1e-6);
        let _ = qaoa_circuit(&ising, &[0.4], &[0.6]);
    }
}
