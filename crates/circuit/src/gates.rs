//! Circuit IR: the gate set used by the QAOA pipeline.

use std::fmt;

/// A quantum gate acting on one or two qubits.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Gate {
    /// Hadamard.
    H(usize),
    /// Pauli-X.
    X(usize),
    /// Rotation about X by `theta`.
    Rx(usize, f64),
    /// Rotation about Z by `theta` (diagonal phase).
    Rz(usize, f64),
    /// Controlled-NOT (control, target).
    Cx(usize, usize),
    /// Two-qubit ZZ interaction `exp(−i θ/2 · Z⊗Z)` — the QAOA phase
    /// separator's native coupling gate.
    Rzz(usize, usize, f64),
    /// Two-qubit XY interaction `exp(−i θ/2 · (X⊗X + Y⊗Y)/2)`: swaps
    /// amplitude between |01⟩ and |10⟩, preserving Hamming weight —
    /// the building block of the Quantum Alternating Operator Ansatz
    /// mixers (§IX of the paper).
    Xy(usize, usize, f64),
    /// SWAP, inserted by the router for non-adjacent interactions.
    Swap(usize, usize),
}

impl Gate {
    /// The qubits the gate touches (one or two).
    pub fn qubits(&self) -> (usize, Option<usize>) {
        match *self {
            Gate::H(q) | Gate::X(q) | Gate::Rx(q, _) | Gate::Rz(q, _) => (q, None),
            Gate::Cx(a, b) | Gate::Rzz(a, b, _) | Gate::Xy(a, b, _) | Gate::Swap(a, b) => {
                (a, Some(b))
            }
        }
    }

    /// True for two-qubit gates.
    pub fn is_two_qubit(&self) -> bool {
        self.qubits().1.is_some()
    }

    /// Remap qubit indices through `f` (used by the router).
    pub fn remap(&self, f: impl Fn(usize) -> usize) -> Gate {
        match *self {
            Gate::H(q) => Gate::H(f(q)),
            Gate::X(q) => Gate::X(f(q)),
            Gate::Rx(q, t) => Gate::Rx(f(q), t),
            Gate::Rz(q, t) => Gate::Rz(f(q), t),
            Gate::Cx(a, b) => Gate::Cx(f(a), f(b)),
            Gate::Rzz(a, b, t) => Gate::Rzz(f(a), f(b), t),
            Gate::Xy(a, b, t) => Gate::Xy(f(a), f(b), t),
            Gate::Swap(a, b) => Gate::Swap(f(a), f(b)),
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Gate::H(q) => write!(f, "h q{q}"),
            Gate::X(q) => write!(f, "x q{q}"),
            Gate::Rx(q, t) => write!(f, "rx({t:.4}) q{q}"),
            Gate::Rz(q, t) => write!(f, "rz({t:.4}) q{q}"),
            Gate::Cx(a, b) => write!(f, "cx q{a}, q{b}"),
            Gate::Rzz(a, b, t) => write!(f, "rzz({t:.4}) q{a}, q{b}"),
            Gate::Xy(a, b, t) => write!(f, "xy({t:.4}) q{a}, q{b}"),
            Gate::Swap(a, b) => write!(f, "swap q{a}, q{b}"),
        }
    }
}

/// A quantum circuit: an ordered gate list over `num_qubits` qubits.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Circuit {
    num_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// An empty circuit.
    pub fn new(num_qubits: usize) -> Self {
        Circuit { num_qubits, gates: Vec::new() }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Append a gate.
    pub fn push(&mut self, g: Gate) {
        let (a, b) = g.qubits();
        assert!(a < self.num_qubits, "gate qubit {a} out of range");
        if let Some(b) = b {
            assert!(b < self.num_qubits, "gate qubit {b} out of range");
            assert_ne!(a, b, "two-qubit gate with identical operands");
        }
        self.gates.push(g);
    }

    /// The gate sequence.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Total gate count.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Two-qubit gate count (the dominant noise source on hardware).
    pub fn num_two_qubit_gates(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Circuit depth: "the number of gates in the longest path" (§VIII-B)
    /// — computed by leveling, where each gate sits one level above the
    /// deepest qubit it touches.
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits];
        for g in &self.gates {
            let (a, b) = g.qubits();
            let l = match b {
                Some(b) => level[a].max(level[b]) + 1,
                None => level[a] + 1,
            };
            level[a] = l;
            if let Some(b) = b {
                level[b] = l;
            }
        }
        level.into_iter().max().unwrap_or(0)
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "qreg q[{}]", self.num_qubits)?;
        for g in &self.gates {
            writeln!(f, "{g}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_parallel_vs_serial() {
        // Two gates on different qubits: depth 1. Chained: depth grows.
        let mut c = Circuit::new(3);
        c.push(Gate::H(0));
        c.push(Gate::H(1));
        assert_eq!(c.depth(), 1);
        c.push(Gate::Cx(0, 1));
        assert_eq!(c.depth(), 2);
        c.push(Gate::Cx(1, 2));
        assert_eq!(c.depth(), 3);
        c.push(Gate::H(0)); // parallel with the cx(1,2) level
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn counts() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Rzz(0, 1, 0.3));
        c.push(Gate::Rx(1, 0.5));
        assert_eq!(c.num_gates(), 3);
        assert_eq!(c.num_two_qubit_gates(), 1);
    }

    #[test]
    #[should_panic(expected = "identical operands")]
    fn rejects_degenerate_two_qubit_gate() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx(1, 1));
    }

    #[test]
    fn remap() {
        let g = Gate::Rzz(0, 1, 0.7);
        assert_eq!(g.remap(|q| q + 2), Gate::Rzz(2, 3, 0.7));
    }

    #[test]
    fn empty_circuit_depth_zero() {
        assert_eq!(Circuit::new(4).depth(), 0);
    }
}
