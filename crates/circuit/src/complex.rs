//! Minimal complex-number type for the state-vector simulator.
//!
//! Only what the simulator needs — kept local rather than pulling in a
//! numerics crate (see DESIGN.md §6).

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number in Cartesian form.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// 0 + 0i.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// 1 + 0i.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// 0 + 1i.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Construct from parts.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{iθ} = cos θ + i sin θ`.
    pub fn cis(theta: f64) -> Self {
        Complex { re: theta.cos(), im: theta.sin() }
    }

    /// Squared magnitude `|z|²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex { re: self.re, im: -self.im }
    }

    /// Scale by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Complex { re: self.re * k, im: self.im * k }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, o: Complex) -> Complex {
        Complex { re: self.re + o.re, im: self.im + o.im }
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, o: Complex) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, o: Complex) -> Complex {
        Complex { re: self.re - o.re, im: self.im - o.im }
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, o: Complex) -> Complex {
        Complex { re: self.re * o.re - self.im * o.im, im: self.re * o.im + self.im * o.re }
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex { re: -self.re, im: -self.im }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a.re - b.re).abs() < 1e-12 && (a.im - b.im).abs() < 1e-12
    }

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert!(close(a + b, Complex::new(4.0, 1.0)));
        assert!(close(a - b, Complex::new(-2.0, 3.0)));
        assert!(close(a * b, Complex::new(5.0, 5.0))); // (1+2i)(3-i)
        assert!(close(-a, Complex::new(-1.0, -2.0)));
    }

    #[test]
    fn cis_and_norm() {
        let z = Complex::cis(std::f64::consts::FRAC_PI_2);
        assert!(close(z, Complex::I));
        assert!((z.norm() - 1.0).abs() < 1e-12);
        assert!((Complex::new(3.0, 4.0).norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn conjugate_multiplication_gives_norm() {
        let z = Complex::new(2.0, -3.0);
        let p = z * z.conj();
        assert!((p.re - z.norm_sqr()).abs() < 1e-12);
        assert!(p.im.abs() < 1e-12);
    }
}
