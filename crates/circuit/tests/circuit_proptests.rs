//! Property tests for the gate-model substrate: unitarity, transpile
//! semantic preservation, and QAOA invariants on random inputs.

use nck_circuit::{
    qaoa1_expectation, qaoa_circuit, qaoa_expectation_sim, transpile, Circuit, CouplingMap, Gate,
    StateVector,
};
use nck_qubo::Ising;
use proptest::prelude::*;

/// Strategy: a random circuit over `n` qubits from the full gate set.
fn circuit_strategy(n: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    let gate =
        (0usize..7, 0usize..n, 0usize..n, -3.0f64..3.0).prop_map(move |(kind, a, b, theta)| {
            let b = if a == b { (b + 1) % n } else { b };
            match kind {
                0 => Gate::H(a),
                1 => Gate::X(a),
                2 => Gate::Rx(a, theta),
                3 => Gate::Rz(a, theta),
                4 => Gate::Cx(a, b),
                5 => Gate::Rzz(a, b, theta),
                _ => Gate::Xy(a, b, theta),
            }
        });
    prop::collection::vec(gate, 1..max_gates).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(g);
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every gate is unitary: total probability stays 1.
    #[test]
    fn circuits_preserve_normalization(c in circuit_strategy(4, 24)) {
        let mut s = StateVector::zero(4);
        s.run(&c);
        prop_assert!((s.total_probability() - 1.0).abs() < 1e-9);
    }

    /// Transpiling onto a line preserves the output distribution after
    /// decode, for arbitrary circuits.
    #[test]
    fn transpile_preserves_distribution(c in circuit_strategy(4, 16)) {
        let map = CouplingMap::line(4);
        let t = transpile(&c, &map).unwrap();
        let mut ideal = StateVector::zero(4);
        ideal.run(&c);
        let mut routed = StateVector::zero(4);
        routed.run(&t.circuit);
        for phys in 0..16u64 {
            let log = t.decode(phys);
            prop_assert!(
                (routed.prob(phys as usize) - ideal.prob(log as usize)).abs() < 1e-9,
                "phys {phys:04b} → log {log:04b}"
            );
        }
    }

    /// The analytic p=1 QAOA expectation matches the simulator for
    /// random Ising instances and angles.
    #[test]
    fn analytic_matches_simulator(
        fields in prop::collection::vec(-1.0f64..1.0, 5),
        couplings in prop::collection::vec((0usize..5, 0usize..5, -1.0f64..1.0), 0..8),
        beta in -1.5f64..1.5,
        gamma in -1.5f64..1.5,
    ) {
        let mut ising = Ising::new(5);
        for (i, &h) in fields.iter().enumerate() {
            ising.add_field(i, h);
        }
        for &(a, b, j) in &couplings {
            if a != b {
                ising.add_coupling(a, b, j);
            }
        }
        let analytic = qaoa1_expectation(&ising, beta, gamma);
        let sim = qaoa_expectation_sim(&ising, &[beta], &[gamma]);
        prop_assert!((analytic - sim).abs() < 1e-8, "{analytic} vs {sim}");
    }

    /// QAOA expectation is bounded by the spectrum of the Hamiltonian.
    #[test]
    fn qaoa_expectation_within_spectrum(
        couplings in prop::collection::vec((0usize..6, 0usize..6, -1.0f64..1.0), 1..10),
        beta in -1.0f64..1.0,
        gamma in -1.0f64..1.0,
    ) {
        let mut ising = Ising::new(6);
        for &(a, b, j) in &couplings {
            if a != b {
                ising.add_coupling(a, b, j);
            }
        }
        let e = qaoa_expectation_sim(&ising, &[beta], &[gamma]);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for bits in 0..1u64 << 6 {
            let s: Vec<bool> = (0..6).map(|q| bits >> q & 1 == 1).collect();
            let v = ising.energy(&s);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        prop_assert!(e >= lo - 1e-9 && e <= hi + 1e-9, "{e} outside [{lo}, {hi}]");
    }

    /// The QAOA circuit for any Ising is measurement-normalized and its
    /// depth grows with layers.
    #[test]
    fn qaoa_layers_deepen(
        couplings in prop::collection::vec((0usize..4, 0usize..4, -1.0f64..1.0), 1..5),
    ) {
        let mut ising = Ising::new(4);
        for &(a, b, j) in &couplings {
            if a != b {
                ising.add_coupling(a, b, j);
            }
        }
        let c1 = qaoa_circuit(&ising, &[0.3], &[0.5]);
        let c2 = qaoa_circuit(&ising, &[0.3, 0.2], &[0.5, 0.4]);
        prop_assert!(c2.depth() > c1.depth());
        prop_assert_eq!(c2.num_gates(), 2 * c1.num_gates() - 4); // H layer shared
    }
}
