//! Solution quality classification (Definition 8 of the paper).

use std::fmt;

/// Quality of a returned assignment relative to an NchooseK program
/// (Definition 8).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SolutionQuality {
    /// Fewer than all hard constraints are satisfied.
    Incorrect,
    /// All hard constraints, but fewer than the maximum possible soft
    /// constraints, are satisfied.
    Suboptimal,
    /// All hard constraints and the maximum possible number of soft
    /// constraints are satisfied.
    Optimal,
}

impl SolutionQuality {
    /// True for [`Optimal`](SolutionQuality::Optimal) and
    /// [`Suboptimal`](SolutionQuality::Suboptimal) — the paper's
    /// "correct" umbrella (all hard constraints honored).
    pub fn is_correct(self) -> bool {
        self != SolutionQuality::Incorrect
    }
}

impl fmt::Display for SolutionQuality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SolutionQuality::Optimal => "optimal",
            SolutionQuality::Suboptimal => "suboptimal",
            SolutionQuality::Incorrect => "incorrect",
        };
        write!(f, "{s}")
    }
}

/// An evaluated solution: the assignment plus satisfaction counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Evaluation {
    /// Number of satisfied hard constraints.
    pub hard_satisfied: usize,
    /// Total number of hard constraints.
    pub hard_total: usize,
    /// Number of satisfied soft constraints.
    pub soft_satisfied: usize,
    /// Total number of soft constraints.
    pub soft_total: usize,
    /// Total *weight* of satisfied soft constraints (equals
    /// `soft_satisfied` when every weight is 1).
    pub soft_weight_satisfied: u64,
    /// Total weight of all soft constraints.
    pub soft_weight_total: u64,
}

impl Evaluation {
    /// Classify per Definition 8 given the maximum achievable satisfied
    /// soft *weight* (computed by a classical solver). With unit
    /// weights this is the paper's satisfied-count criterion exactly.
    pub fn classify(&self, max_soft_weight: u64) -> SolutionQuality {
        if self.hard_satisfied < self.hard_total {
            SolutionQuality::Incorrect
        } else if self.soft_weight_satisfied < max_soft_weight {
            SolutionQuality::Suboptimal
        } else {
            SolutionQuality::Optimal
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matrix() {
        let ev = |hs, ht, ss: usize| Evaluation {
            hard_satisfied: hs,
            hard_total: ht,
            soft_satisfied: ss,
            soft_total: 5,
            soft_weight_satisfied: ss as u64,
            soft_weight_total: 5,
        };
        assert_eq!(ev(3, 4, 5).classify(5), SolutionQuality::Incorrect);
        assert_eq!(ev(4, 4, 4).classify(5), SolutionQuality::Suboptimal);
        assert_eq!(ev(4, 4, 5).classify(5), SolutionQuality::Optimal);
        // Hard-only program: optimal iff all hard satisfied.
        assert_eq!(ev(4, 4, 0).classify(0), SolutionQuality::Optimal);
        assert_eq!(ev(3, 4, 0).classify(0), SolutionQuality::Incorrect);
    }

    #[test]
    fn correctness_umbrella() {
        assert!(SolutionQuality::Optimal.is_correct());
        assert!(SolutionQuality::Suboptimal.is_correct());
        assert!(!SolutionQuality::Incorrect.is_correct());
    }

    #[test]
    fn ordering_ranks_quality() {
        assert!(SolutionQuality::Incorrect < SolutionQuality::Suboptimal);
        assert!(SolutionQuality::Suboptimal < SolutionQuality::Optimal);
    }
}
