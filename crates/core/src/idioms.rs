//! Convenience constraint idioms.
//!
//! Every NchooseK constraint is ultimately `nck(N, K)`, but common
//! Boolean relationships have canonical selection sets that are easy
//! to get subtly wrong by hand (the paper's §II walks through several).
//! These helpers construct them.

use crate::error::NckError;
use crate::program::Program;
use crate::var::Var;

impl Program {
    /// Exactly `k` of `vars` must be TRUE: `nck(vars, {k})`.
    pub fn exactly_k(&mut self, vars: impl Into<Vec<Var>>, k: u32) -> Result<(), NckError> {
        self.nck(vars, [k])
    }

    /// At most `k` of `vars` TRUE: `nck(vars, {0..=k})`.
    pub fn at_most_k(&mut self, vars: impl Into<Vec<Var>>, k: u32) -> Result<(), NckError> {
        self.nck(vars, 0..=k)
    }

    /// At least `k` of `vars` TRUE: `nck(vars, {k..=n})`.
    pub fn at_least_k(&mut self, vars: impl Into<Vec<Var>>, k: u32) -> Result<(), NckError> {
        let vars: Vec<Var> = vars.into();
        let n = vars.len() as u32;
        self.nck(vars, k..=n)
    }

    /// All of `vars` equal (all TRUE or all FALSE): `nck(vars, {0, n})`.
    pub fn all_equal(&mut self, vars: impl Into<Vec<Var>>) -> Result<(), NckError> {
        let vars: Vec<Var> = vars.into();
        let n = vars.len() as u32;
        self.nck(vars, [0, n])
    }

    /// Force a variable's value: `nck({v}, {value})`.
    pub fn assign(&mut self, v: Var, value: bool) -> Result<(), NckError> {
        self.nck(vec![v], [u32::from(value)])
    }

    /// `a ≠ b` (exactly one TRUE): `nck({a, b}, {1})`.
    pub fn differ(&mut self, a: Var, b: Var) -> Result<(), NckError> {
        self.nck(vec![a, b], [1])
    }

    /// `a → b`: forbidden only when `a` is TRUE and `b` FALSE. Encoded
    /// as `nck({a, b, b}, {0, 2, 3})` — the doubled `b` separates the
    /// forbidden count (1) from the allowed ones (`a` alone would also
    /// count 1 otherwise).
    pub fn implies(&mut self, a: Var, b: Var) -> Result<(), NckError> {
        self.nck(vec![a, b, b], [0, 2, 3])
    }

    /// `c = a XOR b`: `nck({a, b, c}, {0, 2})` — the paper's §VI-C
    /// example, readable straight off the truth table.
    pub fn xor_equals(&mut self, a: Var, b: Var, c: Var) -> Result<(), NckError> {
        self.nck(vec![a, b, c], [0, 2])
    }

    /// `c = a AND b`: forbidden rows of the truth table are excluded by
    /// weighting `c` triple: counts are `a + b + 3c`; allowed rows
    /// {00→0, 01→1, 10→1, 11→5} and forbidden {00·c, 01·c, 10·c → 3,4;
    /// 11·¬c → 2}, so `nck({a, b, c, c, c}, {0, 1, 5})`.
    pub fn and_equals(&mut self, a: Var, b: Var, c: Var) -> Result<(), NckError> {
        self.nck(vec![a, b, c, c, c], [0, 1, 5])
    }

    /// `c = a OR b`: with the same weighting, allowed rows are
    /// {00→0, 01→4, 10→4, 11→5}: `nck({a, b, c, c, c}, {0, 4, 5})`.
    pub fn or_equals(&mut self, a: Var, b: Var, c: Var) -> Result<(), NckError> {
        self.nck(vec![a, b, c, c, c], [0, 4, 5])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Enumerate the satisfying assignments of a program.
    fn solutions(p: &Program) -> Vec<u64> {
        let n = p.num_vars();
        (0..1u64 << n)
            .filter(|&bits| {
                let x: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
                p.all_hard_satisfied(&x)
            })
            .collect()
    }

    #[test]
    fn cardinality_idioms() {
        let mut p = Program::new();
        let vs = p.new_vars("v", 3).unwrap();
        p.at_most_k(vs.clone(), 1).unwrap();
        assert_eq!(solutions(&p), vec![0b000, 0b001, 0b010, 0b100]);

        let mut p = Program::new();
        let vs = p.new_vars("v", 3).unwrap();
        p.at_least_k(vs.clone(), 2).unwrap();
        assert_eq!(solutions(&p), vec![0b011, 0b101, 0b110, 0b111]);

        let mut p = Program::new();
        let vs = p.new_vars("v", 3).unwrap();
        p.exactly_k(vs, 3).unwrap();
        assert_eq!(solutions(&p), vec![0b111]);
    }

    #[test]
    fn equality_and_difference() {
        let mut p = Program::new();
        let vs = p.new_vars("v", 3).unwrap();
        p.all_equal(vs.clone()).unwrap();
        assert_eq!(solutions(&p), vec![0b000, 0b111]);

        let mut p = Program::new();
        let a = p.new_var("a").unwrap();
        let b = p.new_var("b").unwrap();
        p.differ(a, b).unwrap();
        assert_eq!(solutions(&p), vec![0b01, 0b10]);
    }

    #[test]
    fn assign_pins_values() {
        let mut p = Program::new();
        let a = p.new_var("a").unwrap();
        let b = p.new_var("b").unwrap();
        p.assign(a, true).unwrap();
        p.assign(b, false).unwrap();
        assert_eq!(solutions(&p), vec![0b01]);
    }

    #[test]
    fn implication_truth_table() {
        let mut p = Program::new();
        let a = p.new_var("a").unwrap();
        let b = p.new_var("b").unwrap();
        p.implies(a, b).unwrap();
        // Allowed: 00, 01 (b only), 11. Forbidden: a=1, b=0.
        assert_eq!(solutions(&p), vec![0b00, 0b10, 0b11]);
    }

    #[test]
    fn gate_equalities_match_truth_tables() {
        for (op, f) in [
            ("xor", (|a, b| a ^ b) as fn(bool, bool) -> bool),
            ("and", |a, b| a & b),
            ("or", |a, b| a | b),
        ] {
            let mut p = Program::new();
            let a = p.new_var("a").unwrap();
            let b = p.new_var("b").unwrap();
            let c = p.new_var("c").unwrap();
            match op {
                "xor" => p.xor_equals(a, b, c).unwrap(),
                "and" => p.and_equals(a, b, c).unwrap(),
                _ => p.or_equals(a, b, c).unwrap(),
            }
            let expect: Vec<u64> = (0..8u64)
                .filter(|&bits| {
                    let (va, vb, vc) = (bits & 1 == 1, bits >> 1 & 1 == 1, bits >> 2 & 1 == 1);
                    vc == f(va, vb)
                })
                .collect();
            assert_eq!(solutions(&p), expect, "{op} gate truth table");
        }
    }
}
