//! # nck-core
//!
//! The NchooseK constraint-satisfaction DSL, generalized with soft
//! constraints as in the SC22 paper *"Combining Hard and Soft
//! Constraints in Quantum Constraint-Satisfaction Systems"*.
//!
//! An NchooseK constraint `nck(N, K)` holds iff the number of TRUE
//! variables in the collection `N` (repetitions allowed) is an element
//! of the selection set `K`. A program is a conjunction of hard
//! constraints (must hold) and soft constraints (as many as possible
//! must hold).
//!
//! ```
//! use nck_core::{Program, SolutionQuality};
//!
//! // The paper's intro example: nck({a,b},{0,1}) ∧ nck({b,c},{1})
//! let mut p = Program::new();
//! let a = p.new_var("a").unwrap();
//! let b = p.new_var("b").unwrap();
//! let c = p.new_var("c").unwrap();
//! p.nck(vec![a, b], [0, 1]).unwrap();
//! p.nck(vec![b, c], [1]).unwrap();
//!
//! assert!(p.all_hard_satisfied(&[false, true, false]));
//! assert!(!p.all_hard_satisfied(&[true, true, false]));
//! ```
//!
//! This crate is backend-agnostic: compilation to QUBO lives in
//! `nck-compile`, classical solving in `nck-classical`, and the quantum
//! backends in `nck-anneal` / `nck-circuit`.

#![warn(missing_docs)]

pub mod constraint;
pub mod error;
pub mod idioms;
pub mod program;
pub mod solution;
pub mod symmetry;
pub mod var;

pub use constraint::{Constraint, Hardness};
pub use error::NckError;
pub use program::Program;
pub use solution::{Evaluation, SolutionQuality};
pub use symmetry::{count_nonsymmetric, CompileKey, SymmetryKey};
pub use var::Var;
