//! NchooseK constraints (Definitions 1–5 of the paper).

use crate::error::NckError;
use crate::var::Var;
use std::collections::BTreeSet;
use std::fmt;

/// Whether a constraint must hold or is merely preferred.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Hardness {
    /// The constraint must be satisfied (Definition 3).
    Hard,
    /// The constraint is desired but not required (Definition 5);
    /// executions maximize the number of satisfied soft constraints.
    Soft,
}

/// An NchooseK constraint `nck(N, K)`: of the variable collection `N`
/// (repetition allowed, order irrelevant — Definition 1), the number of
/// TRUE members must be an element of the selection set `K`
/// (Definition 2).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Constraint {
    collection: Vec<Var>,
    selection: BTreeSet<u32>,
    hardness: Hardness,
    /// Importance of a soft constraint (always 1 for hard ones): the
    /// executor maximizes the total *weight* of satisfied soft
    /// constraints. The paper notes the soft scaling factor "could be
    /// chosen differently, e.g., by multiplying by a common positive,
    /// real-valued factor" (§V); integer weights keep the compiler's
    /// exact-arithmetic guarantees.
    weight: u32,
}

impl Constraint {
    /// Build a constraint, validating Definition 2: every selection
    /// value must be at most the collection cardinality, the collection
    /// must be non-empty, and the selection set non-empty.
    pub fn new(
        collection: impl Into<Vec<Var>>,
        selection: impl IntoIterator<Item = u32>,
        hardness: Hardness,
    ) -> Result<Self, NckError> {
        Self::with_weight(collection, selection, hardness, 1)
    }

    /// [`Constraint::new`] with an explicit soft weight (≥ 1). Hard
    /// constraints ignore the weight (it is normalized to 1).
    pub fn with_weight(
        collection: impl Into<Vec<Var>>,
        selection: impl IntoIterator<Item = u32>,
        hardness: Hardness,
        weight: u32,
    ) -> Result<Self, NckError> {
        assert!(weight >= 1, "constraint weight must be at least 1");
        let mut collection: Vec<Var> = collection.into();
        if collection.is_empty() {
            return Err(NckError::EmptyCollection);
        }
        // Order does not matter (Definition 1); canonicalize so equal
        // constraints compare and hash equal.
        collection.sort_unstable();
        let selection: BTreeSet<u32> = selection.into_iter().collect();
        if selection.is_empty() {
            return Err(NckError::EmptySelection);
        }
        let cardinality = collection.len() as u32;
        if let Some(&max) = selection.iter().next_back() {
            if max > cardinality {
                return Err(NckError::SelectionOutOfRange { value: max, cardinality });
            }
        }
        let weight = if hardness == Hardness::Hard { 1 } else { weight };
        Ok(Constraint { collection, selection, hardness, weight })
    }

    /// Soft weight (1 for hard constraints and default soft ones).
    pub fn weight(&self) -> u32 {
        self.weight
    }

    /// The variable collection, sorted (repetitions preserved).
    pub fn collection(&self) -> &[Var] {
        &self.collection
    }

    /// The selection set.
    pub fn selection(&self) -> &BTreeSet<u32> {
        &self.selection
    }

    /// Hard or soft.
    pub fn hardness(&self) -> Hardness {
        self.hardness
    }

    /// True iff this is a hard constraint.
    pub fn is_hard(&self) -> bool {
        self.hardness == Hardness::Hard
    }

    /// Cardinality of the variable collection (counting repetitions).
    pub fn cardinality(&self) -> u32 {
        self.collection.len() as u32
    }

    /// Distinct variables with their multiplicities, in variable order.
    pub fn multiplicities(&self) -> Vec<(Var, u32)> {
        let mut out: Vec<(Var, u32)> = Vec::new();
        for &v in &self.collection {
            match out.last_mut() {
                Some((last, m)) if *last == v => *m += 1,
                _ => out.push((v, 1)),
            }
        }
        out
    }

    /// Distinct variables in the collection, in order.
    pub fn distinct_vars(&self) -> Vec<Var> {
        self.multiplicities().into_iter().map(|(v, _)| v).collect()
    }

    /// True iff the constraint holds under `assignment` (indexed by
    /// variable id): the multiplicity-weighted count of TRUE variables
    /// is in the selection set.
    pub fn is_satisfied(&self, assignment: &[bool]) -> bool {
        let count: u32 = self.collection.iter().map(|v| u32::from(assignment[v.index()])).sum();
        self.selection.contains(&count)
    }

    /// The achievable TRUE-counts given that repeated variables always
    /// contribute their full multiplicity or nothing. A selection value
    /// that no sub-multiset of multiplicities can sum to is dead weight
    /// (the constraint can never be satisfied *through* it).
    pub fn achievable_counts(&self) -> BTreeSet<u32> {
        let mults = self.multiplicities();
        let mut sums: BTreeSet<u32> = BTreeSet::new();
        sums.insert(0);
        for (_, m) in mults {
            let prev: Vec<u32> = sums.iter().copied().collect();
            for s in prev {
                sums.insert(s + m);
            }
        }
        sums
    }

    /// True iff *some* assignment satisfies this constraint in
    /// isolation.
    pub fn is_satisfiable_alone(&self) -> bool {
        self.achievable_counts().intersection(&self.selection).next().is_some()
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nck({{")?;
        for (i, v) in self.collection.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}, {{")?;
        for (i, k) in self.selection.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}")?;
        }
        write!(f, "}}")?;
        if self.hardness == Hardness::Soft {
            if self.weight == 1 {
                write!(f, ", soft")?;
            } else {
                write!(f, ", soft*{}", self.weight)?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Var {
        Var::new(i)
    }

    #[test]
    fn validates_selection_range() {
        let err = Constraint::new(vec![v(0), v(1)], [3], Hardness::Hard).unwrap_err();
        assert_eq!(err, NckError::SelectionOutOfRange { value: 3, cardinality: 2 });
        assert!(Constraint::new(vec![v(0), v(1)], [2], Hardness::Hard).is_ok());
    }

    #[test]
    fn rejects_empty_collection_and_selection() {
        assert_eq!(
            Constraint::new(Vec::<Var>::new(), [0], Hardness::Hard).unwrap_err(),
            NckError::EmptyCollection
        );
        assert_eq!(
            Constraint::new(vec![v(0)], [], Hardness::Hard).unwrap_err(),
            NckError::EmptySelection
        );
    }

    #[test]
    fn collection_order_is_canonical() {
        let a = Constraint::new(vec![v(2), v(0)], [1], Hardness::Hard).unwrap();
        let b = Constraint::new(vec![v(0), v(2)], [1], Hardness::Hard).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn satisfaction_counts_multiplicity() {
        // nck({x, y, z, z}, {0, 1, 2, 4, 5}) — the paper's encoding of
        // the 3-SAT clause (x ∨ y ∨ ¬z) via a doubled variable... here
        // just check counting: z twice.
        let c =
            Constraint::new(vec![v(0), v(1), v(2), v(2)], [0, 1, 2, 4], Hardness::Hard).unwrap();
        assert!(c.is_satisfied(&[false, false, false])); // count 0
        assert!(c.is_satisfied(&[true, false, false])); // count 1
        assert!(c.is_satisfied(&[false, false, true])); // count 2
        assert!(!c.is_satisfied(&[true, false, true])); // count 3
        assert!(c.is_satisfied(&[true, true, true])); // count 4
    }

    #[test]
    fn multiplicities_grouped() {
        let c = Constraint::new(vec![v(3), v(1), v(3), v(3)], [1], Hardness::Hard).unwrap();
        assert_eq!(c.multiplicities(), vec![(v(1), 1), (v(3), 3)]);
        assert_eq!(c.distinct_vars(), vec![v(1), v(3)]);
        assert_eq!(c.cardinality(), 4);
    }

    #[test]
    fn achievable_counts_respect_multiplicity() {
        // {a, a, b}: achievable TRUE-counts are 0, 1 (b), 2 (a), 3 (a+b)
        let c = Constraint::new(vec![v(0), v(0), v(1)], [1], Hardness::Hard).unwrap();
        let counts: Vec<u32> = c.achievable_counts().into_iter().collect();
        assert_eq!(counts, vec![0, 1, 2, 3]);
        // {a, a}: only 0 and 2 achievable; selection {1} unsatisfiable
        let c2 = Constraint::new(vec![v(0), v(0)], [1], Hardness::Hard).unwrap();
        assert!(!c2.is_satisfiable_alone());
        let c3 = Constraint::new(vec![v(0), v(0)], [0, 2], Hardness::Hard).unwrap();
        assert!(c3.is_satisfiable_alone());
    }

    #[test]
    fn weights_default_and_explicit() {
        let c = Constraint::new(vec![v(0)], [0], Hardness::Soft).unwrap();
        assert_eq!(c.weight(), 1);
        let w = Constraint::with_weight(vec![v(0)], [0], Hardness::Soft, 5).unwrap();
        assert_eq!(w.weight(), 5);
        assert_eq!(w.to_string(), "nck({v0}, {0}, soft*5)");
        // Hard constraints normalize the weight away.
        let h = Constraint::with_weight(vec![v(0)], [1], Hardness::Hard, 9).unwrap();
        assert_eq!(h.weight(), 1);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_weight_rejected() {
        let _ = Constraint::with_weight(vec![v(0)], [0], Hardness::Soft, 0);
    }

    #[test]
    fn display_forms() {
        let c = Constraint::new(vec![v(0), v(1)], [0, 1], Hardness::Hard).unwrap();
        assert_eq!(c.to_string(), "nck({v0, v1}, {0, 1})");
        let s = Constraint::new(vec![v(2)], [0], Hardness::Soft).unwrap();
        assert_eq!(s.to_string(), "nck({v2}, {0}, soft)");
    }
}
