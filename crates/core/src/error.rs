//! Error type for NchooseK program construction.

use std::fmt;

/// Errors raised while building or validating an NchooseK program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NckError {
    /// A constraint's variable collection was empty.
    EmptyCollection,
    /// A selection-set element exceeded the collection cardinality
    /// (violates Definition 2 of the paper).
    SelectionOutOfRange {
        /// The offending selection value.
        value: u32,
        /// Cardinality of the variable collection.
        cardinality: u32,
    },
    /// The selection set was empty, making the constraint unsatisfiable
    /// by construction.
    EmptySelection,
    /// A constraint referenced a variable not registered in the
    /// program's environment.
    UnknownVariable(u32),
    /// A variable name was registered twice.
    DuplicateName(String),
}

impl fmt::Display for NckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NckError::EmptyCollection => {
                write!(f, "constraint has an empty variable collection")
            }
            NckError::SelectionOutOfRange { value, cardinality } => {
                write!(f, "selection value {value} exceeds collection cardinality {cardinality}")
            }
            NckError::EmptySelection => {
                write!(f, "constraint has an empty selection set (unsatisfiable)")
            }
            NckError::UnknownVariable(v) => {
                write!(f, "variable v{v} is not registered in this environment")
            }
            NckError::DuplicateName(name) => {
                write!(f, "variable name {name:?} registered twice")
            }
        }
    }
}

impl std::error::Error for NckError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            NckError::SelectionOutOfRange { value: 3, cardinality: 2 }.to_string(),
            "selection value 3 exceeds collection cardinality 2"
        );
        assert!(NckError::EmptyCollection.to_string().contains("empty variable collection"));
        assert!(NckError::UnknownVariable(7).to_string().contains("v7"));
    }
}
