//! Boolean variables of an NchooseK program.

use std::fmt;

/// A Boolean variable, identified by a dense index within its
/// [`Program`](crate::program::Program)'s environment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Construct a variable with the given id. Normally variables come
    /// from [`Program::new_var`](crate::program::Program::new_var); this
    /// constructor exists for tests and generators that manage ids
    /// themselves.
    pub fn new(id: u32) -> Self {
        Var(id)
    }

    /// The numeric id.
    pub fn id(self) -> u32 {
        self.0
    }

    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        let v = Var::new(42);
        assert_eq!(v.id(), 42);
        assert_eq!(v.index(), 42);
        assert_eq!(v.to_string(), "v42");
    }

    #[test]
    fn ordering_by_id() {
        assert!(Var::new(1) < Var::new(2));
        assert_eq!(Var::new(7), Var::new(7));
    }
}
