//! NchooseK programs (Definitions 4 and 6 of the paper).

use crate::constraint::{Constraint, Hardness};
use crate::error::NckError;
use crate::solution::Evaluation;
use crate::symmetry::count_nonsymmetric;
use crate::var::Var;
use std::collections::HashMap;
use std::fmt;

/// A generalized NchooseK program: a variable environment plus a
/// conjunction of hard and soft constraints (Definition 6). Executing a
/// program means finding an assignment that honors all hard constraints
/// while maximizing the number of satisfied soft constraints.
#[derive(Clone, Debug, Default)]
pub struct Program {
    names: Vec<String>,
    name_index: HashMap<String, Var>,
    constraints: Vec<Constraint>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Register a fresh named variable.
    pub fn new_var(&mut self, name: impl Into<String>) -> Result<Var, NckError> {
        let name = name.into();
        if self.name_index.contains_key(&name) {
            return Err(NckError::DuplicateName(name));
        }
        let v = Var::new(self.names.len() as u32);
        self.name_index.insert(name.clone(), v);
        self.names.push(name);
        Ok(v)
    }

    /// Register `n` fresh variables named `prefix0 … prefix(n−1)`.
    pub fn new_vars(&mut self, prefix: &str, n: usize) -> Result<Vec<Var>, NckError> {
        (0..n).map(|i| self.new_var(format!("{prefix}{i}"))).collect()
    }

    /// Look up a variable by name.
    pub fn var(&self, name: &str) -> Option<Var> {
        self.name_index.get(name).copied()
    }

    /// The name of a variable.
    pub fn name(&self, v: Var) -> &str {
        &self.names[v.index()]
    }

    /// Number of registered variables.
    pub fn num_vars(&self) -> usize {
        self.names.len()
    }

    fn add(
        &mut self,
        collection: impl Into<Vec<Var>>,
        selection: impl IntoIterator<Item = u32>,
        hardness: Hardness,
    ) -> Result<(), NckError> {
        let c = Constraint::new(collection, selection, hardness)?;
        for v in c.collection() {
            if v.index() >= self.names.len() {
                return Err(NckError::UnknownVariable(v.id()));
            }
        }
        self.constraints.push(c);
        Ok(())
    }

    /// Add a hard constraint `nck(collection, selection)`.
    pub fn nck(
        &mut self,
        collection: impl Into<Vec<Var>>,
        selection: impl IntoIterator<Item = u32>,
    ) -> Result<(), NckError> {
        self.add(collection, selection, Hardness::Hard)
    }

    /// Add a soft constraint `nck(collection, selection, soft)`.
    pub fn nck_soft(
        &mut self,
        collection: impl Into<Vec<Var>>,
        selection: impl IntoIterator<Item = u32>,
    ) -> Result<(), NckError> {
        self.add(collection, selection, Hardness::Soft)
    }

    /// Add a soft constraint with an integer importance weight ≥ 1:
    /// executions maximize the total weight of satisfied soft
    /// constraints (a weight-w constraint counts like w unit ones).
    pub fn nck_soft_weighted(
        &mut self,
        collection: impl Into<Vec<Var>>,
        selection: impl IntoIterator<Item = u32>,
        weight: u32,
    ) -> Result<(), NckError> {
        let c = Constraint::with_weight(collection, selection, Hardness::Soft, weight)?;
        for v in c.collection() {
            if v.index() >= self.names.len() {
                return Err(NckError::UnknownVariable(v.id()));
            }
        }
        self.constraints.push(c);
        Ok(())
    }

    /// Total weight of all soft constraints.
    pub fn total_soft_weight(&self) -> u64 {
        self.soft_constraints().map(|c| c.weight() as u64).sum()
    }

    /// All constraints, in insertion order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The hard constraints.
    pub fn hard_constraints(&self) -> impl Iterator<Item = &Constraint> {
        self.constraints.iter().filter(|c| c.is_hard())
    }

    /// The soft constraints.
    pub fn soft_constraints(&self) -> impl Iterator<Item = &Constraint> {
        self.constraints.iter().filter(|c| !c.is_hard())
    }

    /// Number of hard constraints.
    pub fn num_hard(&self) -> usize {
        self.hard_constraints().count()
    }

    /// Number of soft constraints.
    pub fn num_soft(&self) -> usize {
        self.soft_constraints().count()
    }

    /// Number of mutually non-symmetric constraints (Definition 7;
    /// Table I column 3).
    pub fn num_nonsymmetric(&self) -> usize {
        count_nonsymmetric(&self.constraints)
    }

    /// Count satisfied hard and soft constraints under `assignment`
    /// (indexed by variable id; must cover all variables).
    pub fn evaluate(&self, assignment: &[bool]) -> Evaluation {
        assert!(
            assignment.len() >= self.num_vars(),
            "assignment covers {} of {} variables",
            assignment.len(),
            self.num_vars()
        );
        let mut ev = Evaluation {
            hard_satisfied: 0,
            hard_total: 0,
            soft_satisfied: 0,
            soft_total: 0,
            soft_weight_satisfied: 0,
            soft_weight_total: 0,
        };
        for c in &self.constraints {
            let sat = c.is_satisfied(assignment);
            if c.is_hard() {
                ev.hard_total += 1;
                ev.hard_satisfied += usize::from(sat);
            } else {
                ev.soft_total += 1;
                ev.soft_satisfied += usize::from(sat);
                ev.soft_weight_total += c.weight() as u64;
                if sat {
                    ev.soft_weight_satisfied += c.weight() as u64;
                }
            }
        }
        ev
    }

    /// True iff every hard constraint holds under `assignment`.
    pub fn all_hard_satisfied(&self, assignment: &[bool]) -> bool {
        self.hard_constraints().all(|c| c.is_satisfied(assignment))
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.constraints.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{c}")?;
        }
        if self.constraints.is_empty() {
            write!(f, "⊤")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's introductory example:
    /// nck({a,b},{0,1}) ∧ nck({b,c},{1}).
    fn intro_program() -> (Program, Var, Var, Var) {
        let mut p = Program::new();
        let a = p.new_var("a").unwrap();
        let b = p.new_var("b").unwrap();
        let c = p.new_var("c").unwrap();
        p.nck(vec![a, b], [0, 1]).unwrap();
        p.nck(vec![b, c], [1]).unwrap();
        (p, a, b, c)
    }

    #[test]
    fn intro_example_semantics() {
        let (p, _, _, _) = intro_program();
        // "Neither or exactly one of a and b TRUE, and exactly one of
        // b and c TRUE."
        let sat = |a, b, c| p.all_hard_satisfied(&[a, b, c]);
        assert!(sat(false, false, true));
        assert!(sat(true, false, true));
        assert!(sat(false, true, false));
        assert!(!sat(true, true, false)); // a and b both TRUE violates first
        assert!(!sat(false, false, false)); // b=c=0 violates second
        assert!(!sat(false, true, true)); // b=c=1 violates second
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut p = Program::new();
        p.new_var("x").unwrap();
        assert_eq!(p.new_var("x").unwrap_err(), NckError::DuplicateName("x".to_string()));
    }

    #[test]
    fn unknown_variable_rejected() {
        let mut p = Program::new();
        let _a = p.new_var("a").unwrap();
        let ghost = Var::new(7);
        assert_eq!(p.nck(vec![ghost], [1]).unwrap_err(), NckError::UnknownVariable(7));
    }

    #[test]
    fn name_lookup() {
        let (p, a, b, _) = intro_program();
        assert_eq!(p.var("a"), Some(a));
        assert_eq!(p.var("b"), Some(b));
        assert_eq!(p.var("zzz"), None);
        assert_eq!(p.name(a), "a");
    }

    #[test]
    fn new_vars_bulk() {
        let mut p = Program::new();
        let vs = p.new_vars("q", 3).unwrap();
        assert_eq!(vs.len(), 3);
        assert_eq!(p.name(vs[2]), "q2");
        assert_eq!(p.num_vars(), 3);
    }

    #[test]
    fn min_vertex_cover_program_counts() {
        // The running example from §IV: 5 vertices, 5 edges.
        let mut p = Program::new();
        let vs = p.new_vars("v", 5).unwrap();
        for (u, w) in [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)] {
            p.nck(vec![vs[u], vs[w]], [1, 2]).unwrap();
        }
        for &v in &vs {
            p.nck_soft(vec![v], [0]).unwrap();
        }
        assert_eq!(p.num_hard(), 5);
        assert_eq!(p.num_soft(), 5);
        assert_eq!(p.num_nonsymmetric(), 2);
        // {b, c, d} is a minimum vertex cover of this graph (the
        // triangle a-b-c needs two vertices, edge d-e needs one more):
        // all hard constraints hold and 2 of 5 soft constraints do.
        let x = [false, true, true, true, false];
        let ev = p.evaluate(&x);
        assert_eq!(ev.hard_satisfied, 5);
        assert_eq!(ev.soft_satisfied, 2);
        // A full cover satisfies all hard but 0 soft.
        let full = [true; 5];
        let ev = p.evaluate(&full);
        assert_eq!(ev.hard_satisfied, 5);
        assert_eq!(ev.soft_satisfied, 0);
    }

    #[test]
    fn evaluate_separates_hard_and_soft() {
        let mut p = Program::new();
        let a = p.new_var("a").unwrap();
        p.nck(vec![a], [1]).unwrap();
        p.nck_soft(vec![a], [0]).unwrap();
        let ev = p.evaluate(&[true]);
        assert_eq!((ev.hard_satisfied, ev.soft_satisfied), (1, 0));
        let ev = p.evaluate(&[false]);
        assert_eq!((ev.hard_satisfied, ev.soft_satisfied), (0, 1));
    }

    #[test]
    fn display_conjunction() {
        let (p, _, _, _) = intro_program();
        assert_eq!(p.to_string(), "nck({v0, v1}, {0, 1}) ∧ nck({v1, v2}, {1})");
        assert_eq!(Program::new().to_string(), "⊤");
    }
}
