//! Constraint symmetry (Definition 7 of the paper).
//!
//! Two constraints are *symmetric* iff they have the same selection set
//! and their variable collections have the same cardinality. The number
//! of mutually non-symmetric constraints is the paper's measure of how
//! many distinct constraint *shapes* a programmer must design (Table I,
//! column 3) — min vertex cover needs only 2, max cut only 1.
//!
//! The compiler uses a finer key: two constraints compile to the same
//! QUBO (up to variable renaming) iff they also share the multiset of
//! variable multiplicities, so the cache in `nck-compile` keys on
//! [`CompileKey`].

use crate::constraint::Constraint;
use std::collections::{BTreeSet, HashSet};

/// Symmetry class per Definition 7: selection set + collection
/// cardinality.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SymmetryKey {
    /// Cardinality of the variable collection (with repetitions).
    pub cardinality: u32,
    /// The selection set.
    pub selection: BTreeSet<u32>,
}

/// Cache key for compiled QUBOs: the sorted multiset of variable
/// multiplicities plus the selection set. Constraints with equal
/// [`CompileKey`]s have identical QUBOs up to variable renaming.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CompileKey {
    /// Sorted multiplicities of the distinct variables.
    pub multiplicities: Vec<u32>,
    /// The selection set.
    pub selection: BTreeSet<u32>,
}

impl Constraint {
    /// This constraint's symmetry class (Definition 7).
    pub fn symmetry_key(&self) -> SymmetryKey {
        SymmetryKey { cardinality: self.cardinality(), selection: self.selection().clone() }
    }

    /// This constraint's compile-cache key.
    pub fn compile_key(&self) -> CompileKey {
        let mut multiplicities: Vec<u32> =
            self.multiplicities().into_iter().map(|(_, m)| m).collect();
        multiplicities.sort_unstable();
        CompileKey { multiplicities, selection: self.selection().clone() }
    }
}

/// Count the number of mutually non-symmetric constraints — the number
/// of distinct [`SymmetryKey`]s (Table I, column 3).
pub fn count_nonsymmetric<'a>(constraints: impl IntoIterator<Item = &'a Constraint>) -> usize {
    constraints.into_iter().map(Constraint::symmetry_key).collect::<HashSet<_>>().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Hardness;
    use crate::var::Var;

    fn c(vars: &[u32], sel: &[u32]) -> Constraint {
        Constraint::new(
            vars.iter().map(|&i| Var::new(i)).collect::<Vec<_>>(),
            sel.iter().copied(),
            Hardness::Hard,
        )
        .unwrap()
    }

    #[test]
    fn paper_symmetry_examples() {
        // From the text below Definition 7:
        // nck({a,b,c},{0,2}) and nck({b,c,d},{0,2}) are symmetric
        let a = c(&[0, 1, 2], &[0, 2]);
        let b = c(&[1, 2, 3], &[0, 2]);
        assert_eq!(a.symmetry_key(), b.symmetry_key());
        // nck({a,b,c},{0,2}) and nck({b,c,d},{1,2}) are non-symmetric
        let d = c(&[1, 2, 3], &[1, 2]);
        assert_ne!(a.symmetry_key(), d.symmetry_key());
        // nck({a,b,c},{0,2}) and nck({b,c},{1,2}) are non-symmetric
        let e = c(&[1, 2], &[1, 2]);
        assert_ne!(a.symmetry_key(), e.symmetry_key());
    }

    #[test]
    fn repetition_counts_toward_cardinality() {
        // {a, a} has cardinality 2, so it is symmetric with {b, c}
        // under Definition 7 — but their compile keys differ.
        let rep = c(&[0, 0], &[0, 2]);
        let pair = c(&[1, 2], &[0, 2]);
        assert_eq!(rep.symmetry_key(), pair.symmetry_key());
        assert_ne!(rep.compile_key(), pair.compile_key());
    }

    #[test]
    fn compile_key_sorts_multiplicities() {
        // {a, b, b} and {c, c, d} have the same multiplicity profile.
        let x = c(&[0, 1, 1], &[1]);
        let y = c(&[2, 2, 3], &[1]);
        assert_eq!(x.compile_key(), y.compile_key());
    }

    #[test]
    fn count_nonsymmetric_min_vertex_cover() {
        // Paper: min vertex cover has exactly 2 non-symmetric
        // constraint shapes — nck({u,v},{1,2}) per edge and
        // nck({v},{0},soft) per vertex.
        let mut constraints = Vec::new();
        for (u, v) in [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)] {
            constraints.push(c(&[u, v], &[1, 2]));
        }
        for v in 0..5 {
            constraints.push(Constraint::new(vec![Var::new(v)], [0], Hardness::Soft).unwrap());
        }
        assert_eq!(count_nonsymmetric(&constraints), 2);
    }

    #[test]
    fn count_nonsymmetric_empty() {
        assert_eq!(count_nonsymmetric(&[]), 0);
    }
}
