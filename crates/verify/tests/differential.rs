//! The full differential sweep: ≥50 generated programs over all seven
//! families, each through all four backends at two seeds, with every
//! metamorphic invariant checked along the way.

use nck_verify::{corpus, gen::ALL_FAMILIES, run_differential, HarnessConfig};

#[test]
fn differential_sweep_over_all_families_and_backends() {
    let programs = corpus(8, 100);
    assert!(programs.len() >= 50, "corpus too small: {}", programs.len());
    assert!(ALL_FAMILIES.len() >= 5);

    let outcome = run_differential(&programs, &[41, 97], &HarnessConfig::default());

    assert_eq!(outcome.programs, programs.len());
    // Classical + annealer (×2 for the determinism re-run) at minimum,
    // per program per seed.
    assert!(
        outcome.runs >= programs.len() * 2 * 3,
        "only {} backend runs across {} programs",
        outcome.runs,
        outcome.programs
    );
    assert!(
        outcome.discrepancies.is_empty(),
        "{} discrepancies:\n{}",
        outcome.discrepancies.len(),
        outcome.report()
    );
}

#[test]
fn satisfiability_mix_is_nontrivial() {
    // The corpus must exercise both the satisfiable and the
    // unsatisfiable paths, or the unsat-agreement checks test nothing.
    let programs = corpus(8, 100);
    let unsat = programs
        .iter()
        .filter(|g| nck_verify::invariants::brute_optima_bits(&g.program).is_none())
        .count();
    assert!(unsat > 0, "no unsatisfiable instance in the corpus");
    assert!(unsat < programs.len(), "every instance is unsatisfiable");
}

#[test]
fn soft_and_hard_only_programs_both_present() {
    let programs = corpus(8, 100);
    let soft = programs.iter().filter(|g| g.program.num_soft() > 0).count();
    let hard_only = programs.len() - soft;
    assert!(soft > 0, "no program with soft constraints");
    assert!(hard_only > 0, "no hard-only program (Grover path untested)");
}
