//! The crash-recovery sweep: every durable run killed at every
//! reachable store operation for every kill point, then resumed and
//! checked against the durability contract. This is the CI
//! `crash-recovery` job's entry point.

use nck_exec::{RunStore, StoreError};
use nck_verify::{run_crash_recovery, CrashConfig, CRASH_LADDERS};
use std::path::PathBuf;

const SEEDS: [u64; 1] = [11];

/// A unique scratch directory for one test, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "nck-crash-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn crash_kill_point_sweep_resumes_to_the_uninterrupted_result() {
    let tmp = TempDir::new("sweep");
    let outcome = run_crash_recovery(&SEEDS, &CrashConfig::default(), &tmp.0);
    assert!(outcome.discrepancies.is_empty(), "{}", outcome.report());
    // The sweep must actually have crashed runs at every kill point ×
    // ladder — a sweep that never kills is vacuous.
    let min_kills = CRASH_LADDERS.len() * 3;
    assert!(
        outcome.kills >= min_kills,
        "only {} kills across the sweep (expected at least {min_kills})",
        outcome.kills
    );
    // Every kill was resumed to completion.
    assert_eq!(outcome.resumes, outcome.kills, "{}", outcome.report());
}

#[test]
fn crash_recovery_sweep_is_deterministic() {
    let cfg = CrashConfig::default();
    let ta = TempDir::new("det-a");
    let tb = TempDir::new("det-b");
    let a = run_crash_recovery(&[29], &cfg, &ta.0);
    let b = run_crash_recovery(&[29], &cfg, &tb.0);
    assert!(a.discrepancies.is_empty(), "{}", a.report());
    assert_eq!(a.runs, b.runs);
    assert_eq!(a.kills, b.kills);
    assert_eq!(a.resumes, b.resumes);
}

/// Corrupting a run store on disk — torn tails, flipped bits,
/// truncations — must yield recovery or a typed error, never a panic.
#[test]
fn crash_corrupted_stores_recover_or_fail_typed_never_panic() {
    use nck_exec::{ClassicalBackend, ExecutionPlan, Supervisor};
    use nck_verify::gen::Family;

    let gp = Family::VertexCover.generate(7);
    let plan = ExecutionPlan::new(&gp.program);
    let backend = ClassicalBackend::default();
    let tmp = TempDir::new("corrupt");
    let pristine = tmp.0.join("pristine");
    Supervisor::default()
        .run_durable(&plan, &[&backend], 7, &pristine)
        .expect("fault-free durable run succeeds");

    let wal = std::fs::read(pristine.join("wal.log")).expect("read wal");
    let snap = std::fs::read(pristine.join("snapshot.bin")).expect("read snapshot");

    let mut case = 0usize;
    let mut verdicts = (0usize, 0usize); // (recovered, rejected)
    let mut check = |wal_bytes: &[u8], snap_bytes: Option<&[u8]>| {
        case += 1;
        let dir = tmp.0.join(format!("case-{case}"));
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("wal.log"), wal_bytes).expect("write wal");
        if let Some(s) = snap_bytes {
            std::fs::write(dir.join("snapshot.bin"), s).expect("write snapshot");
        }
        // Must not panic; every outcome is either a recovery (possibly
        // with a truncated tail) or a typed store error.
        match RunStore::open(&dir) {
            Ok(_) => verdicts.0 += 1,
            Err(StoreError::Corrupt { .. } | StoreError::Io { .. }) => verdicts.1 += 1,
            Err(e) => panic!("corrupt store surfaced non-corruption error {e}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    };

    // Truncate the WAL at every prefix length (torn tails).
    for cut in 0..wal.len() {
        check(&wal[..cut], Some(&snap));
    }
    // Flip one bit at every byte of the WAL.
    for i in 0..wal.len() {
        let mut bad = wal.clone();
        bad[i] ^= 0x40;
        check(&bad, Some(&snap));
    }
    // Truncate and bit-flip the snapshot.
    for cut in 0..snap.len() {
        check(&wal, Some(&snap[..cut]));
    }
    for i in 0..snap.len() {
        let mut bad = snap.clone();
        bad[i] ^= 0x40;
        check(&wal, Some(&bad));
    }
    assert!(verdicts.0 + verdicts.1 == case, "every case must resolve");
}
