//! Pinned reproductions of defects this PR fixes, plus negative
//! controls proving the invariant checks can actually fail (a green
//! differential sweep is only evidence if the checks have teeth).

use nck_anneal::{sample_ising, NoiseModel, SaParams};
use nck_compile::{compile, CompilerOptions};
use nck_problems::{Graph, MapColoring};
use nck_qubo::Ising;
use nck_verify::gen::{Family, GeneratedProgram};
use nck_verify::invariants::hard_weight_soundness;
use nck_verify::{run_differential, HarnessConfig};

const PHI: u64 = 0x9e3779b97f4a7c15;

/// A ring whose near-zero-beta 1-sweep samples expose the underlying
/// RNG stream: acceptance is essentially a coin flip per spin, so the
/// sample is a direct function of the stream, not of the energy.
fn ring(n: usize) -> Ising {
    let mut ising = Ising::new(n);
    for i in 0..n {
        ising.add_coupling(i, (i + 1) % n, 1.0);
    }
    ising
}

fn stream_probe() -> SaParams {
    SaParams { num_sweeps: 1, beta_min: 0.01, beta_max: 0.01 }
}

/// Regression for the weak per-read seed mixing (`seed ^ read·φ`):
/// under the old scheme read `r` of the job seeded `s` used the same
/// RNG stream as read `r − k` of the job seeded `s ^ k·φ`, so related
/// jobs shared samples verbatim. The SplitMix64-finalized mixing must
/// give every (seed, read) pair its own stream.
#[test]
fn per_read_streams_do_not_collide_across_related_seeds() {
    let ising = ring(16);
    let params = stream_probe();
    let noise = NoiseModel::ideal();
    // Old scheme: job_a[1] == job_b[0] exactly (both streams = 0 ^ φ).
    let job_a = sample_ising(&ising, &params, &noise, 2, 0);
    let job_b = sample_ising(&ising, &params, &noise, 1, PHI);
    assert_ne!(job_a[1], job_b[0], "read streams collide across seeds 0 and φ");

    // More broadly: a grid of φ-related seeds × reads must be pairwise
    // distinct — the old scheme aliased entire diagonals of this grid.
    let mut samples = Vec::new();
    for k in 0..4u64 {
        samples.extend(sample_ising(&ising, &params, &noise, 4, k.wrapping_mul(PHI)));
    }
    for i in 0..samples.len() {
        for j in i + 1..samples.len() {
            assert_ne!(samples[i], samples[j], "streams {i} and {j} collide");
        }
    }
}

/// Negative control: the hard-weight soundness check must *fail* when
/// compilation is forced to use an unsound (too small) hard weight —
/// otherwise the green differential sweep proves nothing about the
/// `W = 1 + Σ soft penalties` scaling.
#[test]
fn soundness_check_detects_an_unsound_hard_weight() {
    let gp = Family::VertexCover.generate(2);
    let sound = compile(&gp.program, &CompilerOptions::default()).unwrap();
    let brute = nck_classical::solve_brute(&gp.program);
    assert!(
        hard_weight_soundness(&gp, &sound, brute.as_ref()).is_empty(),
        "sound compilation must pass"
    );

    let unsound = compile(
        &gp.program,
        &CompilerOptions { hard_weight: Some(0.25), ..CompilerOptions::default() },
    )
    .unwrap();
    let found = hard_weight_soundness(&gp, &unsound, brute.as_ref());
    assert!(
        !found.is_empty(),
        "a 0.25 hard weight cannot dominate the unit soft constraints, yet no \
         discrepancy was reported"
    );
}

/// Pin the corpus's designed unsatisfiable instance — an odd cycle with
/// two colors — through the full harness: every backend must agree it
/// is unsatisfiable, and the harness must report zero discrepancies.
#[test]
fn odd_cycle_two_coloring_is_unsatisfiable_on_every_backend() {
    let program = MapColoring::new(Graph::cycle(3), 2).program();
    assert!(nck_classical::solve_brute(&program).is_none(), "triangle is not 2-colorable");
    let gp = GeneratedProgram {
        name: "map-coloring#pinned-odd-cycle".into(),
        family: Family::MapColoring,
        seed: 0,
        program,
    };
    let outcome = run_differential(std::slice::from_ref(&gp), &[41], &HarnessConfig::default());
    assert!(outcome.runs >= 3, "expected classical, annealer, and gate runs");
    assert!(outcome.discrepancies.is_empty(), "{}", outcome.report());
}
