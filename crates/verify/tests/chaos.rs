//! The chaos sweep: every fault script through every degradation
//! ladder at multiple seeds, under a wall-clock budget. This is the CI
//! `chaos` job's entry point.

use nck_verify::chaos::LADDERS;
use nck_verify::{chaos_scripts, run_chaos, ChaosConfig, Expectation};

const SEEDS: [u64; 2] = [11, 29];

#[test]
fn chaos_sweep_terminates_recovers_and_journals() {
    let scripts = chaos_scripts();
    assert!(scripts.len() >= 20, "chaos corpus shrank to {} scripts", scripts.len());
    assert!(LADDERS.len() >= 2);

    let outcome = run_chaos(&scripts, &SEEDS, &ChaosConfig::default());
    assert_eq!(outcome.runs, scripts.len() * LADDERS.len() * SEEDS.len());
    assert!(outcome.discrepancies.is_empty(), "{}", outcome.report());

    // Every recoverable script recovered on every ladder and seed, and
    // every unrecoverable one failed typed — so the totals partition.
    let recoverable = scripts.iter().filter(|s| s.expect == Expectation::Recovers).count();
    assert_eq!(outcome.recovered, recoverable * LADDERS.len() * SEEDS.len());
    assert_eq!(outcome.recovered + outcome.failed, outcome.runs);
}

#[test]
fn chaos_sweep_is_deterministic_per_seed() {
    // A transient-heavy script twice at the same seed: identical
    // recovery, identical journal shape (event kinds in order).
    let scripts: Vec<_> = chaos_scripts().into_iter().filter(|s| s.name == "transient-2").collect();
    let a = run_chaos(&scripts, &[11], &ChaosConfig::default());
    let b = run_chaos(&scripts, &[11], &ChaosConfig::default());
    assert!(a.discrepancies.is_empty(), "{}", a.report());
    assert_eq!(a.recovered, b.recovered);
    assert_eq!(a.failed, b.failed);
}
