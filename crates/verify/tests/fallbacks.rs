//! Fallback-path coverage driven by deterministic fault injection:
//! every branch of the PR's retry/fallback policies exercised on small,
//! fast instances instead of waiting for a real instance to defeat the
//! embedder or overflow the simulator.

use nck_anneal::{AnnealError, AnnealerDevice};
use nck_circuit::{GateModelDevice, QaoaError};
use nck_core::{Program, SolutionQuality};
use nck_exec::{
    AnnealerBackend, ExecError, ExecutionPlan, FaultInjection, GateModelBackend, GroverBackend,
};

/// The paper's Fig. 2 minimum-vertex-cover program.
fn vertex_cover() -> Program {
    let mut p = Program::new();
    let vs = p.new_vars("v", 5).unwrap();
    for (u, w) in [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)] {
        p.nck(vec![vs[u], vs[w]], [1, 2]).unwrap();
    }
    for &v in &vs {
        p.nck_soft(vec![v], [0]).unwrap();
    }
    p
}

#[test]
fn injected_embed_failures_drive_the_reseed_retry() {
    let p = vertex_cover();
    let plan = ExecutionPlan::new(&p);
    let backend = AnnealerBackend::new(AnnealerDevice::ideal(16), 64)
        .with_faults(FaultInjection::embed_failures(2));
    let report = plan.run(&backend, 7).unwrap();
    assert_eq!(report.timings.embed_retries, 2);
    assert_eq!(report.timings.fallbacks, 0);
    assert_eq!(report.quality, SolutionQuality::Optimal);
}

#[test]
fn exhausted_retries_without_fallback_are_a_typed_error() {
    let p = vertex_cover();
    let plan = ExecutionPlan::new(&p);
    let device = AnnealerDevice::ideal(16);
    assert!(device.clique_fallback.is_none());
    let tries = 3;
    let backend =
        AnnealerBackend::new(device, 64).with_faults(FaultInjection::embed_failures(tries + 1));
    match plan.run(&backend, 7) {
        Err(ExecError::Anneal(AnnealError::EmbeddingFailed { logical_vars, .. })) => {
            assert!(logical_vars >= 5);
        }
        other => panic!("expected EmbeddingFailed, got {other:?}"),
    }
}

#[test]
fn exhausted_retries_fall_back_to_the_clique_embedding() {
    let p = vertex_cover();
    let plan = ExecutionPlan::new(&p);
    let device = AnnealerDevice::advantage_4_1();
    assert!(device.clique_fallback.is_some());
    let backend = AnnealerBackend::new(device, 64).with_faults(FaultInjection::embed_failures(16));
    let report = plan.run(&backend, 7).unwrap();
    assert_eq!(report.timings.fallbacks, 1, "clique fallback must have fired");
    assert!(report.timings.embed_retries >= 4, "every heuristic attempt was consumed");
    assert!(report.quality.is_correct());
}

#[test]
fn embedding_cache_bypasses_fault_injection_on_the_second_run() {
    let p = vertex_cover();
    let plan = ExecutionPlan::new(&p);
    let backend = AnnealerBackend::new(AnnealerDevice::ideal(16), 64)
        .with_faults(FaultInjection::embed_failures(2));
    let first = plan.run(&backend, 7).unwrap();
    assert!(!first.timings.embed_cache_hit);
    let second = plan.run(&backend, 8).unwrap();
    assert!(second.timings.embed_cache_hit, "second run must reuse the cached embedding");
    assert_eq!(second.timings.embed_retries, 0);
}

#[test]
fn injected_overflow_forces_the_analytic_p1_fallback() {
    let p = vertex_cover();
    let plan = ExecutionPlan::new(&p);
    let backend = GateModelBackend::new(GateModelDevice::ideal(16), 2, 512, 10)
        .with_faults(FaultInjection::qaoa_overflow());
    let report = plan.run(&backend, 7).unwrap();
    assert_eq!(report.timings.fallbacks, 1, "analytic p=1 fallback must have fired");
    assert!(report.quality.is_correct());
}

#[test]
fn overflow_without_fallback_is_a_typed_error() {
    let p = vertex_cover();
    let plan = ExecutionPlan::new(&p);
    let mut backend = GateModelBackend::new(GateModelDevice::ideal(16), 2, 512, 10)
        .with_faults(FaultInjection::qaoa_overflow());
    backend.analytic_fallback = false;
    match plan.run(&backend, 7) {
        Err(ExecError::Qaoa(QaoaError::TooLargeToSimulate { .. })) => {}
        other => panic!("expected TooLargeToSimulate, got {other:?}"),
    }
}

#[test]
fn overflow_at_p1_cannot_fall_back_further() {
    // The fallback retries at p = 1; if the first attempt already ran
    // at p = 1 the policy must not loop — the error propagates.
    let p = vertex_cover();
    let plan = ExecutionPlan::new(&p);
    let backend = GateModelBackend::new(GateModelDevice::ideal(16), 1, 512, 10)
        .with_faults(FaultInjection::qaoa_overflow());
    match plan.run(&backend, 7) {
        Err(ExecError::Qaoa(QaoaError::TooLargeToSimulate { .. })) => {}
        other => panic!("expected TooLargeToSimulate, got {other:?}"),
    }
}

#[test]
fn grover_rejects_soft_and_oversized_programs_with_typed_errors() {
    let soft = vertex_cover();
    let plan = ExecutionPlan::new(&soft);
    match plan.run(&GroverBackend::default(), 7) {
        Err(ExecError::SoftUnsupported { num_soft: 5 }) => {}
        other => panic!("expected SoftUnsupported, got {other:?}"),
    }

    let mut big = Program::new();
    let vs = big.new_vars("v", 21).unwrap();
    for &v in &vs {
        big.nck(vec![v], [1]).unwrap();
    }
    let plan = ExecutionPlan::new(&big);
    match plan.run(&GroverBackend::default(), 7) {
        Err(ExecError::TooLarge { vars: 21, limit: 20 }) => {}
        other => panic!("expected TooLarge, got {other:?}"),
    }
}

#[test]
fn no_faults_means_no_retries_and_no_fallbacks() {
    let p = vertex_cover();
    let plan = ExecutionPlan::new(&p);
    let backend = AnnealerBackend::new(AnnealerDevice::ideal(16), 64);
    assert_eq!(backend.faults, FaultInjection::none());
    let report = plan.run(&backend, 7).unwrap();
    assert_eq!(report.timings.embed_retries, 0);
    assert_eq!(report.timings.fallbacks, 0);
    assert_eq!(report.quality, SolutionQuality::Optimal);
}
