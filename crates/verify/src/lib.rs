//! # nck-verify
//!
//! Cross-backend differential and metamorphic verification for
//! NchooseK: generate random constraint programs (hard + weighted-soft
//! mixes over the paper's problem families), push every one through
//! all four [`Backend`](nck_exec::Backend) implementations via an
//! [`ExecutionPlan`](nck_exec::ExecutionPlan), and cross-check the
//! results against the brute-force oracle and each other.
//!
//! The harness checks *relations* that must hold by construction, not
//! golden outputs:
//!
//! * **QUBO ↔ Ising round-trip** — `Q → I → Q` preserves the energy of
//!   every assignment ([`invariants::qubo_ising_roundtrip`]);
//! * **gauge invariance** — spin-reversal transforms change the
//!   Hamiltonian but not decoded sample energies
//!   ([`invariants::gauge_invariance`]);
//! * **variable-permutation symmetry** — relabeling variables permutes
//!   the optima and nothing else ([`invariants::permutation_symmetry`]);
//! * **hard-weight soundness** — under the compiler's
//!   `W = 1 + Σ soft penalties` scaling, no hard-violating assignment
//!   ever has lower effective energy than a hard-satisfying one
//!   ([`invariants::hard_weight_soundness`]);
//! * **chain-break repair** — majority-vote unembedding reproduces
//!   clean logical samples and survives minority chain corruption
//!   ([`invariants::chain_break_repair`]);
//! * **cross-backend agreement** — every backend's report agrees with
//!   the brute-force oracle on `max_soft`, never *beats* it, classifies
//!   its own best assignment consistently, and tallies every candidate
//!   ([`harness::run_differential`]).
//!
//! Any violated relation surfaces as a [`Discrepancy`]; the
//! [`minimize`] module shrinks the offending program to a minimal
//! reproduction for a regression test.
//!
//! The [`chaos`] module extends the sweep to the resilience
//! supervisor: scripted faults (latency, stalls, transient failures,
//! chain-break storms) across degradation ladders and seeds, asserting
//! termination within budget, recovery of every recoverable script,
//! and complete journals on typed failures.
//!
//! The [`crash`] module extends it again to durability: every durable
//! run is killed at every reachable store operation (pre-fsync,
//! mid-frame, between snapshot and truncate) and resumed, asserting
//! typed death, exact journal prefixes, no repeated completed rungs,
//! and convergence to the uninterrupted run's solution.

#![warn(missing_docs)]

pub mod chaos;
pub mod crash;
pub mod gen;
pub mod harness;
pub mod invariants;
pub mod minimize;

pub use chaos::{chaos_scripts, run_chaos, ChaosConfig, ChaosOutcome, Expectation, FaultScript};
pub use crash::{run_crash_recovery, CrashConfig, CrashOutcome, CRASH_LADDERS};
pub use gen::{corpus, Family, GeneratedProgram};
pub use harness::{run_differential, HarnessConfig, HarnessOutcome};
pub use minimize::minimize_program;

use std::fmt;

/// One violated invariant: which program, which check, and what was
/// observed.
#[derive(Clone, Debug)]
pub struct Discrepancy {
    /// Name of the generated program (family + generator seed).
    pub program: String,
    /// The invariant that failed.
    pub check: &'static str,
    /// Human-readable description of the observed violation.
    pub detail: String,
}

impl Discrepancy {
    /// Build a discrepancy record.
    pub fn new(program: impl Into<String>, check: &'static str, detail: impl Into<String>) -> Self {
        Discrepancy { program: program.into(), check, detail: detail.into() }
    }
}

impl fmt::Display for Discrepancy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.program, self.check, self.detail)
    }
}

/// Decode a packed bit pattern (bit `i` = variable `i`) into a boolean
/// assignment of length `n`.
pub fn bits_to_assignment(bits: u64, n: usize) -> Vec<bool> {
    (0..n).map(|i| bits >> i & 1 == 1).collect()
}

/// Pack a boolean assignment into a bit pattern (bit `i` = variable
/// `i`).
pub fn assignment_to_bits(assignment: &[bool]) -> u64 {
    assignment.iter().enumerate().fold(0u64, |acc, (i, &b)| acc | (u64::from(b)) << i)
}
