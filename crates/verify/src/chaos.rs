//! The chaos suite: scripted fault sweeps through the resilience
//! supervisor, across degradation ladders and seeds.
//!
//! Every run takes a small generated program, arms one
//! [`FaultScript`] (a named [`FaultInjection`] plus where it applies
//! and what must happen), and executes a supervised degradation ladder
//! under a wall-clock deadline. The suite asserts the supervisor's
//! contract, not golden outputs:
//!
//! * **termination** — every run returns within its deadline plus a
//!   small cooperative-cancellation slack, stalls and all;
//! * **recovery** — scripts marked [`Expectation::Recovers`] must end
//!   in a report that passes the differential harness's consistency
//!   checks against the brute oracle;
//! * **typed failure** — scripts marked [`Expectation::FailsTyped`]
//!   must end in a [`SupervisedFailure`] carrying a typed
//!   [`ExecError`] with backend/stage provenance;
//! * **journal completeness** — success or failure, the journal is
//!   closed by a terminal event and records at least the attempts the
//!   script forced.

use crate::gen::Family;
use crate::harness::check_report;
use crate::Discrepancy;
use nck_anneal::AnnealerDevice;
use nck_circuit::GateModelDevice;
use nck_classical::solve_brute;
use nck_exec::{
    AnnealerBackend, Backend, ClassicalBackend, ExecutionPlan, FaultInjection, GateModelBackend,
    RetryPolicy, RunBudget, Supervisor,
};
use std::time::{Duration, Instant};

/// What a fault script must do to a supervised run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expectation {
    /// The supervisor must recover: retries, fallbacks, or the ladder
    /// absorb the faults and the run ends in a consistent report.
    Recovers,
    /// The faults are beyond recovery: the run must end in a typed
    /// [`SupervisedFailure`](nck_exec::SupervisedFailure) — never a
    /// hang, never a panic.
    FailsTyped,
}

/// One named chaos scenario.
#[derive(Clone, Copy, Debug)]
pub struct FaultScript {
    /// Script name (appears in discrepancy reports).
    pub name: &'static str,
    /// The faults to inject.
    pub faults: FaultInjection,
    /// Inject into every ladder rung (`true`) or only the first rung
    /// (`false`, the "one bad substrate, healthy fallbacks" shape).
    pub every_rung: bool,
    /// Wall-clock deadline override for this script (else
    /// [`ChaosConfig::deadline`]).
    pub deadline: Option<Duration>,
    /// What must happen.
    pub expect: Expectation,
}

impl FaultScript {
    const fn recovers(name: &'static str, faults: FaultInjection, every_rung: bool) -> Self {
        FaultScript { name, faults, every_rung, deadline: None, expect: Expectation::Recovers }
    }

    const fn fails(name: &'static str, faults: FaultInjection, every_rung: bool) -> Self {
        FaultScript { name, faults, every_rung, deadline: None, expect: Expectation::FailsTyped }
    }
}

/// The standard chaos corpus: ≥20 distinct fault scripts spanning the
/// whole fault plane — latency, stalls, transient-then-ok failures,
/// chain-break storms, embedding failures, simulator overflows, their
/// combinations, and pathological budgets.
pub fn chaos_scripts() -> Vec<FaultScript> {
    let ms = Duration::from_millis;
    let mut scripts = vec![
        FaultScript::recovers("baseline", FaultInjection::none(), false),
        FaultScript::recovers("latency-20ms", FaultInjection::latency(ms(20)), false),
        FaultScript::recovers("latency-150ms", FaultInjection::latency(ms(150)), false),
        FaultScript::recovers("latency-everywhere-30ms", FaultInjection::latency(ms(30)), true),
        // A first rung that would hang forever: the rung deadline must
        // cut it loose and the ladder must rescue the run.
        FaultScript::recovers("stall-first-rung", FaultInjection::stall(ms(10_000)), false),
        // Every rung wedged: nothing can rescue this, but the run must
        // still end, in budget, with a typed error.
        FaultScript::fails("stall-everywhere", FaultInjection::stall(ms(10_000)), true),
        FaultScript::recovers("transient-1", FaultInjection::transient_failures(1), false),
        FaultScript::recovers("transient-2", FaultInjection::transient_failures(2), false),
        // More transient failures than the retry budget: the rung
        // exhausts (or its breaker opens) and the ladder rescues.
        FaultScript::recovers(
            "transient-5-first-rung",
            FaultInjection::transient_failures(5),
            false,
        ),
        FaultScript::recovers(
            "transient-1-everywhere",
            FaultInjection::transient_failures(1),
            true,
        ),
        FaultScript::fails("transient-5-everywhere", FaultInjection::transient_failures(5), true),
        // Breaker territory: enough failures to trip the default
        // breaker on the first rung; the rungs below rescue.
        FaultScript::recovers(
            "breaker-trip-first-rung",
            FaultInjection::transient_failures(10),
            false,
        ),
        FaultScript::recovers("storm-1", FaultInjection::chain_break_storms(1), false),
        FaultScript::recovers("storm-3", FaultInjection::chain_break_storms(3), false),
        FaultScript::recovers("storm-everywhere-1", FaultInjection::chain_break_storms(1), true),
        FaultScript::recovers("embed-retry", FaultInjection::embed_failures(1), false),
        FaultScript::recovers("embed-clique-fallback", FaultInjection::embed_failures(4), false),
        FaultScript::recovers("qaoa-overflow", FaultInjection::qaoa_overflow(), false),
        FaultScript::recovers("qaoa-overflow-everywhere", FaultInjection::qaoa_overflow(), true),
        FaultScript::recovers(
            "latency+transient",
            FaultInjection { latency: ms(20), transient_failures: 1, ..FaultInjection::none() },
            false,
        ),
        FaultScript::recovers(
            "storm+embed-fallback",
            FaultInjection { chain_break_storms: 1, embed_failures: 4, ..FaultInjection::none() },
            false,
        ),
        FaultScript::recovers(
            "transient+overflow",
            FaultInjection { transient_failures: 1, qaoa_overflow: true, ..FaultInjection::none() },
            true,
        ),
    ];
    scripts.push(FaultScript {
        name: "zero-deadline",
        faults: FaultInjection::none(),
        every_rung: false,
        deadline: Some(Duration::ZERO),
        expect: Expectation::FailsTyped,
    });
    scripts.push(FaultScript {
        name: "tiny-deadline-stalled",
        faults: FaultInjection::stall(ms(10_000)),
        every_rung: true,
        deadline: Some(ms(5)),
        expect: Expectation::FailsTyped,
    });
    scripts
}

/// Knobs bounding a chaos sweep.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Default wall-clock deadline per supervised run.
    pub deadline: Duration,
    /// Slack allowed past the deadline: cooperative cancellation is
    /// polled, not preemptive, and debug-build stages are slow.
    pub slack: Duration,
    /// Annealer reads per job.
    pub reads: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            deadline: Duration::from_millis(1500),
            slack: Duration::from_millis(1000),
            reads: 16,
        }
    }
}

/// The standard ladder shapes the sweep exercises: the full
/// quantum-first degradation ladder and the annealer-first production
/// shape. (Grover is absent by design — the generated programs carry
/// soft constraints it cannot express.)
pub const LADDERS: [&[&str]; 2] = [&["gate", "annealer", "classical"], &["annealer", "classical"]];

/// Aggregate result of a chaos sweep.
#[derive(Clone, Debug, Default)]
pub struct ChaosOutcome {
    /// Supervised runs executed (scripts × ladders × seeds).
    pub runs: usize,
    /// Runs that ended in a report.
    pub recovered: usize,
    /// Runs that ended in a typed failure.
    pub failed: usize,
    /// Every violated expectation.
    pub discrepancies: Vec<Discrepancy>,
}

impl ChaosOutcome {
    /// Render all discrepancies, one per line (for assertion messages).
    pub fn report(&self) -> String {
        self.discrepancies.iter().map(|d| format!("{d}\n")).collect()
    }
}

/// Build one rung by name, arming it with `faults`.
fn build_rung(
    name: &str,
    qubo_vars: usize,
    faults: FaultInjection,
    cfg: &ChaosConfig,
) -> Box<dyn Backend> {
    let n = qubo_vars.max(2);
    match name {
        // p = 2 keeps the analytic p = 1 fallback path live for the
        // overflow scripts.
        "gate" => Box::new(
            GateModelBackend::new(GateModelDevice::ideal(n), 2, 128, 8).with_faults(faults),
        ),
        "annealer" => {
            Box::new(AnnealerBackend::new(AnnealerDevice::ideal(n), cfg.reads).with_faults(faults))
        }
        "classical" => Box::new(ClassicalBackend::default().with_faults(faults)),
        other => panic!("unknown ladder rung {other:?}"),
    }
}

/// Run the full chaos sweep: every script × every ladder × every seed,
/// asserting termination, recovery/typed-failure expectations, and
/// journal completeness.
pub fn run_chaos(scripts: &[FaultScript], seeds: &[u64], cfg: &ChaosConfig) -> ChaosOutcome {
    let mut outcome = ChaosOutcome::default();
    for script in scripts {
        for ladder_names in LADDERS {
            for &seed in seeds {
                outcome.runs += 1;
                let gp = Family::VertexCover.generate(seed);
                let brute = solve_brute(&gp.program)
                    .expect("generated vertex-cover instances are satisfiable");
                let plan = ExecutionPlan::new(&gp.program);
                let qubo_vars = plan.compiled().expect("chaos instances compile").qubo.num_vars();
                let rungs: Vec<Box<dyn Backend>> = ladder_names
                    .iter()
                    .enumerate()
                    .map(|(i, name)| {
                        let armed = if script.every_rung || i == 0 {
                            script.faults
                        } else {
                            FaultInjection::none()
                        };
                        build_rung(name, qubo_vars, armed, cfg)
                    })
                    .collect();
                let ladder: Vec<&dyn Backend> = rungs.iter().map(|b| b.as_ref()).collect();

                let deadline = script.deadline.unwrap_or(cfg.deadline);
                let sup = Supervisor {
                    budget: RunBudget::with_deadline(deadline),
                    retry: RetryPolicy {
                        base: Duration::from_millis(1),
                        cap: Duration::from_millis(10),
                        seed,
                        ..RetryPolicy::default()
                    },
                    ..Supervisor::default()
                };
                let tag = format!("chaos/{}/{}/seed{}", script.name, ladder_names.join(">"), seed);
                let t = Instant::now();
                let result = sup.run(&plan, &ladder, seed);
                let elapsed = t.elapsed();

                // Termination: deadline + cooperative slack, always.
                if elapsed > deadline + cfg.slack {
                    outcome.discrepancies.push(Discrepancy::new(
                        &tag,
                        "termination",
                        format!("ran {elapsed:?}, deadline {deadline:?} + slack {:?}", cfg.slack),
                    ));
                }
                match result {
                    Ok(report) => {
                        outcome.recovered += 1;
                        if script.expect == Expectation::FailsTyped {
                            outcome.discrepancies.push(Discrepancy::new(
                                &tag,
                                "expected-failure",
                                format!(
                                    "script must fail but produced a {} report",
                                    report.quality
                                ),
                            ));
                        }
                        if !report.journal.is_complete() {
                            outcome.discrepancies.push(Discrepancy::new(
                                &tag,
                                "journal-complete",
                                "successful run's journal lacks a terminal event".to_string(),
                            ));
                        }
                        check_report(&gp, &brute, &report, &mut outcome.discrepancies);
                    }
                    Err(failure) => {
                        outcome.failed += 1;
                        if script.expect == Expectation::Recovers {
                            outcome.discrepancies.push(Discrepancy::new(
                                &tag,
                                "expected-recovery",
                                format!(
                                    "recoverable script failed: {}\n{}",
                                    failure.error,
                                    failure.journal.render()
                                ),
                            ));
                        }
                        if !failure.journal.is_complete() {
                            outcome.discrepancies.push(Discrepancy::new(
                                &tag,
                                "journal-complete",
                                "failed run's journal lacks a terminal event".to_string(),
                            ));
                        }
                        if failure.error.backend.is_empty() || failure.error.stage.is_empty() {
                            outcome.discrepancies.push(Discrepancy::new(
                                &tag,
                                "error-provenance",
                                format!(
                                    "failure lacks backend/stage provenance: {}",
                                    failure.error
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
    outcome
}
