//! Shrink a discrepancy-triggering program to a minimal reproduction.
//!
//! Greedy delta debugging over the constraint list: repeatedly drop
//! any constraint whose removal keeps the failure predicate true. The
//! result is 1-minimal — removing any single remaining constraint
//! makes the failure disappear — which is what a regression test wants
//! to pin.

use nck_core::Program;

/// Rebuild `program` keeping only the constraints at the given indices
/// (variables are all kept so indices stay stable).
fn with_constraints(program: &Program, keep: &[usize]) -> Program {
    let mut p = Program::new();
    let vars = p.new_vars("x", program.num_vars()).expect("fresh names");
    for &i in keep {
        let c = &program.constraints()[i];
        let collection: Vec<_> = c.collection().iter().map(|v| vars[v.index()]).collect();
        let selection = c.selection().iter().copied();
        if c.is_hard() {
            p.nck(collection, selection).expect("kept hard constraint");
        } else {
            p.nck_soft_weighted(collection, selection, c.weight()).expect("kept soft constraint");
        }
    }
    p
}

/// Minimize `program` against `fails`: returns the smallest
/// constraint-subset program (1-minimal) on which `fails` still
/// returns `true`. `fails(program)` must be `true` on entry.
pub fn minimize_program(program: &Program, fails: impl Fn(&Program) -> bool) -> Program {
    assert!(fails(program), "minimize_program needs a failing program to start from");
    let mut keep: Vec<usize> = (0..program.constraints().len()).collect();
    let mut shrunk = true;
    while shrunk {
        shrunk = false;
        let mut i = 0;
        while i < keep.len() {
            let mut candidate = keep.clone();
            candidate.remove(i);
            let smaller = with_constraints(program, &candidate);
            if fails(&smaller) {
                keep = candidate;
                shrunk = true;
            } else {
                i += 1;
            }
        }
    }
    with_constraints(program, &keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nck_classical::solve_brute;

    /// Plant an unsatisfiable pair among satisfiable noise; the
    /// minimizer must strip the program down to exactly that pair.
    #[test]
    fn minimizes_to_the_unsat_core() {
        let mut p = Program::new();
        let vs = p.new_vars("x", 4).unwrap();
        p.nck(vec![vs[0], vs[1]], [1]).unwrap();
        p.nck(vec![vs[2]], [0]).unwrap(); // noise
        p.nck(vec![vs[3]], [1]).unwrap(); // noise
        p.nck(vec![vs[0], vs[1]], [0, 2]).unwrap(); // conflicts with the first
        p.nck_soft(vec![vs[2], vs[3]], [2]).unwrap(); // noise
        assert!(solve_brute(&p).is_none());

        let min = minimize_program(&p, |q| solve_brute(q).is_none());
        assert_eq!(min.constraints().len(), 2);
        assert!(solve_brute(&min).is_none());
        // 1-minimality: dropping either remaining constraint satisfies.
        for i in 0..2 {
            let keep: Vec<usize> = (0..2).filter(|&j| j != i).collect();
            assert!(solve_brute(&with_constraints(&min, &keep)).is_some());
        }
    }

    #[test]
    #[should_panic(expected = "needs a failing program")]
    fn rejects_a_passing_program() {
        let mut p = Program::new();
        let a = p.new_var("a").unwrap();
        p.nck(vec![a], [1]).unwrap();
        minimize_program(&p, |q| solve_brute(q).is_none());
    }
}
