//! The crash-recovery chaos suite: deterministic kill-point sweeps
//! through durable supervised runs.
//!
//! Where [`chaos`](crate::chaos) injects *substrate* faults (latency,
//! stalls, transient failures), this module injects *process death*:
//! every run executes against a [`RunStore`] armed to crash at the
//! `k`-th store operation, for every reachable `k` and every
//! [`KillPoint`] — before the WAL fsync, mid-frame (a torn write), and
//! between a snapshot and the WAL truncate. After each simulated
//! crash the run is resumed from disk and the durability contract is
//! asserted, not golden outputs:
//!
//! * **typed death** — a killed run surfaces
//!   [`StoreError::Killed`] with the kill point's name, never a panic
//!   and never a silent success;
//! * **journal prefix** — the journal recovered from disk is an exact
//!   prefix of the killed run's in-memory journal: no journaled
//!   attempt is ever lost, no phantom event is ever invented;
//! * **no rung repetition** — a ladder rung completed before the
//!   crash is never re-entered after resume;
//! * **convergence** — the resumed run ends in the same solution
//!   (assignment, quality, soft counts, tally) as an uninterrupted
//!   run of the same seed.

use crate::gen::Family;
use crate::Discrepancy;
use nck_anneal::AnnealerDevice;
use nck_exec::{
    AnnealerBackend, Backend, ClassicalBackend, ExecError, ExecReport, ExecutionPlan,
    GroverBackend, JournalKind, KillPoint, KillSpec, RecoveredRun, RetryPolicy, RunStore,
    StoreError, Supervisor,
};
use std::collections::HashSet;
use std::path::Path;
use std::time::Duration;

/// Knobs bounding a crash-recovery sweep.
#[derive(Clone, Copy, Debug)]
pub struct CrashConfig {
    /// Annealer reads per job (small, so kill positions land inside
    /// the sampling loop's checkpoint cadence).
    pub reads: usize,
    /// Solver work units between mid-solve checkpoints.
    pub checkpoint_interval: u64,
    /// Upper bound on the kill-position sweep; the sweep stops at the
    /// first position the run outlives, so this is a safety net, not a
    /// tuning knob.
    pub max_kill_ops: u64,
}

impl Default for CrashConfig {
    fn default() -> Self {
        CrashConfig { reads: 16, checkpoint_interval: 4, max_kill_ops: 200 }
    }
}

/// The ladder shapes the sweep exercises: a rung that checkpoints
/// mid-solve (annealer reads), and a rung that *completes* before the
/// run ends (Grover rejects soft constraints permanently), so both
/// mid-attempt resume and completed-rung skipping are hit.
pub const CRASH_LADDERS: [&[&str]; 2] = [&["annealer", "classical"], &["grover", "classical"]];

/// Aggregate result of a crash-recovery sweep.
#[derive(Clone, Debug, Default)]
pub struct CrashOutcome {
    /// Durable runs executed (baselines + armed runs + resumes).
    pub runs: usize,
    /// Runs the armed kill actually crashed.
    pub kills: usize,
    /// Crashed runs successfully resumed to completion.
    pub resumes: usize,
    /// Every violated invariant.
    pub discrepancies: Vec<Discrepancy>,
}

impl CrashOutcome {
    /// Render all discrepancies, one per line (for assertion messages).
    pub fn report(&self) -> String {
        self.discrepancies.iter().map(|d| format!("{d}\n")).collect()
    }
}

/// Build one rung by name.
fn build_rung(name: &str, qubo_vars: usize, cfg: &CrashConfig) -> Box<dyn Backend> {
    let n = qubo_vars.max(2);
    match name {
        "annealer" => Box::new(AnnealerBackend::new(AnnealerDevice::ideal(n), cfg.reads)),
        "grover" => Box::new(GroverBackend::default()),
        "classical" => Box::new(ClassicalBackend::default()),
        other => panic!("unknown ladder rung {other:?}"),
    }
}

/// Compare two reports on the solution fields a resumed run must
/// reproduce. Timings and journals legitimately differ across
/// processes; the *answer* must not.
fn check_same_solution(
    tag: &str,
    what: &'static str,
    got: &ExecReport,
    want: &ExecReport,
    discrepancies: &mut Vec<Discrepancy>,
) {
    if got.assignment != want.assignment
        || got.quality != want.quality
        || got.soft_satisfied != want.soft_satisfied
        || got.soft_weight != want.soft_weight
        || got.max_soft != want.max_soft
    {
        discrepancies.push(Discrepancy::new(
            tag,
            what,
            format!(
                "solution diverged: got {:?}/{}/{} want {:?}/{}/{}",
                got.quality,
                got.soft_satisfied,
                got.soft_weight,
                want.quality,
                want.soft_satisfied,
                want.soft_weight
            ),
        ));
    }
}

/// Check every durability invariant for one killed-then-resumed run.
/// The resume runs on a *fresh* [`ExecutionPlan`] — a resumed process
/// starts with cold caches and closed breakers, exactly like the real
/// restart it models.
#[allow(clippy::too_many_arguments)]
fn check_killed_run(
    tag: &str,
    sup: &Supervisor,
    program: &nck_core::Program,
    ladder: &[&dyn Backend],
    seed: u64,
    dir: &Path,
    point: KillPoint,
    killed: &nck_exec::SupervisedFailure,
    baseline: &ExecReport,
    outcome: &mut CrashOutcome,
) {
    let plan = ExecutionPlan::new(program);
    // Typed death: the surfaced error names the kill point.
    let typed = matches!(
        &killed.error.error,
        ExecError::Store(StoreError::Killed { point: p }) if *p == point.name()
    );
    if !typed {
        outcome.discrepancies.push(Discrepancy::new(
            tag,
            "typed-kill",
            format!("killed run surfaced {} instead of Killed({})", killed.error, point.name()),
        ));
    }

    // Recovery must never panic and never reject what the WAL holds.
    let (store, recovered) = match RunStore::open_resume(dir) {
        Ok(pair) => pair,
        Err(e) => {
            outcome.discrepancies.push(Discrepancy::new(
                tag,
                "recover",
                format!("store left by a crash failed to open: {e}"),
            ));
            return;
        }
    };
    let rec = match RecoveredRun::recover(&recovered) {
        Ok(rec) => rec,
        Err(e) => {
            outcome.discrepancies.push(Discrepancy::new(
                tag,
                "recover",
                format!("recovered records failed to decode: {e}"),
            ));
            return;
        }
    };

    // Journal prefix: everything on disk is exactly what the killed
    // run journaled, in order — no lost attempt, no phantom event.
    let n = rec.journal.events.len();
    if killed.journal.events.len() < n || killed.journal.events[..n] != rec.journal.events[..] {
        outcome.discrepancies.push(Discrepancy::new(
            tag,
            "journal-prefix",
            format!(
                "recovered journal ({n} events) is not a prefix of the killed run's \
                 ({} events)",
                killed.journal.events.len()
            ),
        ));
    }

    // A kill between the *final* snapshot and the WAL truncate lands
    // after the run's result is already durable: the store is
    // complete, and resume's job is to say so (typed, not silently
    // re-running). The recovered journal must then be the killed
    // run's entire journal, terminal event included.
    if rec.finished.is_some() {
        outcome.runs += 1;
        match sup.resume_with_store(&plan, ladder, seed, store, &recovered) {
            Err(failure) if matches!(failure.error.error, ExecError::AlreadyFinished { .. }) => {
                outcome.resumes += 1;
                if !rec.journal.is_complete() || rec.journal != killed.journal {
                    outcome.discrepancies.push(Discrepancy::new(
                        tag,
                        "finished-journal",
                        "durably-finished store does not hold the complete journal".to_string(),
                    ));
                }
            }
            Ok(_) => outcome.discrepancies.push(Discrepancy::new(
                tag,
                "finished-rerun",
                "resume silently re-ran a durably-finished run".to_string(),
            )),
            Err(failure) => outcome.discrepancies.push(Discrepancy::new(
                tag,
                "finished-typed",
                format!("resume of a finished store surfaced {}", failure.error),
            )),
        }
        return;
    }

    // Rungs whose completion is *durable* (a persisted RungCompleted
    // record) must not run again. A crash after the LadderStep journal
    // event but before the RungCompleted record legitimately re-runs
    // the rung — the completion never reached disk.
    let completed: HashSet<&str> =
        ladder.iter().take(rec.completed_rungs as usize).map(|b| b.name()).collect();

    outcome.runs += 1;
    match sup.resume_with_store(&plan, ladder, seed, store, &recovered) {
        Ok(report) => {
            outcome.resumes += 1;
            check_same_solution(
                tag,
                "resume-convergence",
                &report,
                baseline,
                &mut outcome.discrepancies,
            );
            if !report.journal.is_complete() {
                outcome.discrepancies.push(Discrepancy::new(
                    tag,
                    "journal-complete",
                    "resumed run's journal lacks a terminal event".to_string(),
                ));
            }
            if report.journal.events[..n] != rec.journal.events[..] {
                outcome.discrepancies.push(Discrepancy::new(
                    tag,
                    "journal-continuation",
                    "resumed journal does not continue from the recovered prefix".to_string(),
                ));
            }
            for ev in &report.journal.events[n..] {
                if matches!(ev.kind, JournalKind::AttemptStarted) && completed.contains(ev.backend)
                {
                    outcome.discrepancies.push(Discrepancy::new(
                        tag,
                        "rung-repeat",
                        format!("resume re-entered completed rung {}", ev.backend),
                    ));
                }
            }
        }
        Err(failure) => {
            outcome.discrepancies.push(Discrepancy::new(
                tag,
                "resume",
                format!(
                    "resume of a killed run failed: {}\n{}",
                    failure.error,
                    failure.journal.render()
                ),
            ));
        }
    }
}

/// Run the full crash-recovery sweep: for every seed × ladder × kill
/// point, kill the run at every reachable store operation, resume it,
/// and assert the durability contract. `scratch` is a directory the
/// sweep may fill with run stores (each is removed after its check).
pub fn run_crash_recovery(seeds: &[u64], cfg: &CrashConfig, scratch: &Path) -> CrashOutcome {
    let mut outcome = CrashOutcome::default();
    for &seed in seeds {
        let gp = Family::VertexCover.generate(seed);
        let qubo_vars = ExecutionPlan::new(&gp.program)
            .compiled()
            .expect("crash instances compile")
            .qubo
            .num_vars();
        for ladder_names in CRASH_LADDERS {
            let rungs: Vec<Box<dyn Backend>> =
                ladder_names.iter().map(|name| build_rung(name, qubo_vars, cfg)).collect();
            let ladder: Vec<&dyn Backend> = rungs.iter().map(|b| b.as_ref()).collect();
            // Crash-equality demands a deadline-free budget: wall-clock
            // deadlines make the pre- and post-crash processes race the
            // clock differently.
            let sup = Supervisor {
                retry: RetryPolicy {
                    base: Duration::from_millis(1),
                    cap: Duration::from_millis(5),
                    seed,
                    ..RetryPolicy::default()
                },
                checkpoint_interval: cfg.checkpoint_interval,
                ..Supervisor::default()
            };

            let slug = format!("s{seed}-{}", ladder_names.join("-"));
            let base_dir = scratch.join(format!("base-{slug}"));
            outcome.runs += 1;
            // Every run (baseline, armed, resume) gets its own plan:
            // breaker state and caches are per-process in reality, and
            // shared breakers with wall-clock cooldowns would make the
            // sweep's operation counts nondeterministic.
            let base_plan = ExecutionPlan::new(&gp.program);
            let baseline = match sup.run_durable(&base_plan, &ladder, seed, &base_dir) {
                Ok(report) => report,
                Err(failure) => {
                    outcome.discrepancies.push(Discrepancy::new(
                        format!("crash/{slug}"),
                        "baseline",
                        format!("fault-free durable run failed: {}", failure.error),
                    ));
                    let _ = std::fs::remove_dir_all(&base_dir);
                    continue;
                }
            };
            let _ = std::fs::remove_dir_all(&base_dir);

            for point in KillPoint::all() {
                let mut outlived = false;
                for at_op in 1..=cfg.max_kill_ops {
                    let tag = format!("crash/{slug}/{}@{at_op}", point.name());
                    let dir = scratch.join(format!("kill-{slug}-{}-{at_op}", point.name()));
                    let mut store = match RunStore::open_fresh(&dir) {
                        Ok(store) => store,
                        Err(e) => {
                            outcome.discrepancies.push(Discrepancy::new(
                                &tag,
                                "open-fresh",
                                format!("{e}"),
                            ));
                            break;
                        }
                    };
                    store.arm_kill(KillSpec { point, at_op });
                    outcome.runs += 1;
                    let plan = ExecutionPlan::new(&gp.program);
                    match sup.run_with_store(&plan, &ladder, seed, store) {
                        Ok(report) => {
                            // The kill position is beyond the run's
                            // total operations: the sweep has covered
                            // every reachable crash site.
                            check_same_solution(
                                &tag,
                                "unkilled-run",
                                &report,
                                &baseline,
                                &mut outcome.discrepancies,
                            );
                            let _ = std::fs::remove_dir_all(&dir);
                            outlived = true;
                            break;
                        }
                        Err(failure) => {
                            outcome.kills += 1;
                            check_killed_run(
                                &tag,
                                &sup,
                                &gp.program,
                                &ladder,
                                seed,
                                &dir,
                                point,
                                &failure,
                                &baseline,
                                &mut outcome,
                            );
                            let _ = std::fs::remove_dir_all(&dir);
                        }
                    }
                }
                if !outlived {
                    outcome.discrepancies.push(Discrepancy::new(
                        format!("crash/{slug}/{}", point.name()),
                        "sweep-bound",
                        format!("run never outlived a kill within {} operations", cfg.max_kill_ops),
                    ));
                }
            }
        }
    }
    outcome
}
