//! Metamorphic invariants: relations that must hold by construction,
//! checked exhaustively on small instances.

use crate::gen::GeneratedProgram;
use crate::{bits_to_assignment, Discrepancy};
use nck_anneal::{find_embedding, sample_ising, Gauge, NoiseModel, SaParams, Topology};
use nck_classical::{solve_brute, BruteResult};
use nck_compile::{compile, CompiledProgram, CompilerOptions};
use nck_core::Program;
use nck_qubo::Qubo;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Largest QUBO (in variables) the exhaustive checks will enumerate.
pub const EXHAUSTIVE_LIMIT: usize = 16;

/// Absolute tolerance for energy identities, scaled to the
/// Hamiltonian's magnitude: exact conversions only reassociate sums,
/// so anything beyond accumulated rounding is a real defect.
fn energy_tolerance(max_abs_coeff: f64, num_terms: usize) -> f64 {
    1e-9 * (1.0 + max_abs_coeff) * (1.0 + num_terms as f64)
}

/// **QUBO ↔ Ising round-trip.** Converting to the Ising form
/// (`x = (1+s)/2`) and back must preserve the energy of every
/// assignment, and the Ising energy of the corresponding spin vector
/// must equal the QUBO energy of the binary vector.
pub fn qubo_ising_roundtrip(name: &str, qubo: &Qubo) -> Vec<Discrepancy> {
    let n = qubo.num_vars();
    if n > EXHAUSTIVE_LIMIT {
        return Vec::new();
    }
    let ising = qubo.to_ising();
    let back = ising.to_qubo();
    let tol = energy_tolerance(qubo.max_abs_coeff(), qubo.num_terms());
    let mut out = Vec::new();
    for bits in 0..1u64 << n {
        let e_q = qubo.energy_bits(bits);
        let e_rt = back.energy_bits(bits);
        if (e_q - e_rt).abs() > tol {
            out.push(Discrepancy::new(
                name,
                "qubo-ising-roundtrip",
                format!("assignment {bits:#b}: QUBO energy {e_q}, round-trip energy {e_rt}"),
            ));
            break;
        }
        let spins = bits_to_assignment(bits, n);
        let e_i = ising.energy(&spins);
        if (e_q - e_i).abs() > tol {
            out.push(Discrepancy::new(
                name,
                "qubo-ising-energy",
                format!("assignment {bits:#b}: QUBO energy {e_q}, Ising energy {e_i}"),
            ));
            break;
        }
    }
    out
}

/// **Gauge invariance.** A spin-reversal transform changes the
/// Hamiltonian's coefficients but not its spectrum: for every sample
/// `t` drawn from the gauged Ising, `E_gauged(t) = E(decode(t))`. Runs
/// the real simulated-annealing sampler on the gauged Hamiltonian and
/// checks every returned sample.
pub fn gauge_invariance(name: &str, qubo: &Qubo, seed: u64) -> Vec<Discrepancy> {
    let ising = qubo.to_ising();
    let n = ising.num_spins();
    if n == 0 {
        return Vec::new();
    }
    let gauge = Gauge::random(n, seed);
    let gauged = gauge.apply(&ising);
    let tol = energy_tolerance(ising.max_abs_coeff(), ising.num_terms());
    let mut out = Vec::new();
    // Exact spectrum identity on random spin vectors.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5851_f42d_4c95_7f2d);
    for _ in 0..64 {
        let t: Vec<bool> = (0..n).map(|_| rng.random()).collect();
        let decoded = gauge.decode(&t);
        let e_g = gauged.energy(&t);
        let e = ising.energy(&decoded);
        if (e_g - e).abs() > tol {
            out.push(Discrepancy::new(
                name,
                "gauge-energy-identity",
                format!("gauged energy {e_g} != decoded original energy {e}"),
            ));
            return out;
        }
    }
    // The same identity over actual sampler output.
    let params = SaParams { num_sweeps: 64, ..SaParams::default() };
    for t in sample_ising(&gauged, &params, &NoiseModel::ideal(), 16, seed) {
        let decoded = gauge.decode(&t);
        let e_g = gauged.energy(&t);
        let e = ising.energy(&decoded);
        if (e_g - e).abs() > tol {
            out.push(Discrepancy::new(
                name,
                "gauge-sample-identity",
                format!("sampled gauged energy {e_g} != decoded original energy {e}"),
            ));
            return out;
        }
    }
    out
}

/// Rebuild `program` with its variables relabeled through `perm`
/// (original variable `i` becomes variable `perm[i]`).
pub fn permute_program(program: &Program, perm: &[usize]) -> Program {
    let n = program.num_vars();
    assert_eq!(perm.len(), n);
    let mut p = Program::new();
    let vars = p.new_vars("x", n).expect("fresh names");
    for c in program.constraints() {
        let collection: Vec<_> = c.collection().iter().map(|v| vars[perm[v.index()]]).collect();
        let selection = c.selection().iter().copied();
        if c.is_hard() {
            p.nck(collection, selection).expect("permuted hard constraint");
        } else {
            p.nck_soft_weighted(collection, selection, c.weight())
                .expect("permuted soft constraint");
        }
    }
    p
}

/// **Variable-permutation symmetry.** Relabeling variables must
/// permute the optima and change nothing else: the soft optimum is
/// identical, the permuted optima map bijectively back onto the
/// originals, and compilation produces the same ancilla count and hard
/// weight (the per-constraint QUBOs depend only on constraint shape).
pub fn permutation_symmetry(gp: &GeneratedProgram, seed: u64) -> Vec<Discrepancy> {
    let n = gp.program.num_vars();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    for i in (1..n).rev() {
        perm.swap(i, rng.random_range(0..i + 1));
    }
    let permuted = permute_program(&gp.program, &perm);
    let mut out = Vec::new();

    match (solve_brute(&gp.program), solve_brute(&permuted)) {
        (None, None) => {}
        (Some(orig), Some(perm_res)) => {
            if orig.max_soft != perm_res.max_soft {
                out.push(Discrepancy::new(
                    &gp.name,
                    "permutation-max-soft",
                    format!(
                        "max_soft {} became {} under relabeling",
                        orig.max_soft, perm_res.max_soft
                    ),
                ));
            }
            let mut mapped_back: Vec<u64> = perm_res
                .optima
                .iter()
                .map(|&bits| (0..n).fold(0u64, |acc, i| acc | (bits >> perm[i] & 1) << i))
                .collect();
            mapped_back.sort_unstable();
            if mapped_back != orig.optima {
                out.push(Discrepancy::new(
                    &gp.name,
                    "permutation-optima",
                    format!(
                        "optima {:?} != relabeled optima mapped back {:?}",
                        orig.optima, mapped_back
                    ),
                ));
            }
        }
        (orig, perm_res) => {
            out.push(Discrepancy::new(
                &gp.name,
                "permutation-satisfiability",
                format!(
                    "original satisfiable: {}, permuted satisfiable: {}",
                    orig.is_some(),
                    perm_res.is_some()
                ),
            ));
        }
    }

    let opts = CompilerOptions::default();
    match (compile(&gp.program, &opts), compile(&permuted, &opts)) {
        (Ok(a), Ok(b)) => {
            if a.num_ancillas != b.num_ancillas {
                out.push(Discrepancy::new(
                    &gp.name,
                    "permutation-ancillas",
                    format!(
                        "{} ancillas became {} under relabeling",
                        a.num_ancillas, b.num_ancillas
                    ),
                ));
            }
            if (a.hard_weight - b.hard_weight).abs() > 1e-9 {
                out.push(Discrepancy::new(
                    &gp.name,
                    "permutation-hard-weight",
                    format!("hard weight {} became {}", a.hard_weight, b.hard_weight),
                ));
            }
        }
        (Err(e), _) | (_, Err(e)) => {
            out.push(Discrepancy::new(
                &gp.name,
                "permutation-compile",
                format!("compilation failed under relabeling: {e}"),
            ));
        }
    }
    out
}

/// The effective energy of each program assignment: the QUBO minimum
/// over all ancilla completions.
fn effective_energies(compiled: &CompiledProgram) -> Vec<f64> {
    let np = compiled.num_program_vars;
    let na = compiled.num_ancillas;
    (0..1u64 << np)
        .map(|xbits| {
            (0..1u64 << na)
                .map(|abits| compiled.qubo.energy_bits(xbits | abits << np))
                .fold(f64::INFINITY, f64::min)
        })
        .collect()
}

/// **Hard-weight soundness.** With the compiler's sound scaling
/// `W = 1 + Σ soft penalties`, *every* hard-satisfying assignment has
/// strictly lower effective energy than *every* hard-violating one —
/// sampling noise can cost soft optimality but never a hard
/// constraint. Additionally, the effective-energy minimizers must be
/// exactly the brute-force optima.
pub fn hard_weight_soundness(
    gp: &GeneratedProgram,
    compiled: &CompiledProgram,
    brute: Option<&BruteResult>,
) -> Vec<Discrepancy> {
    let np = compiled.num_program_vars;
    if np + compiled.num_ancillas > EXHAUSTIVE_LIMIT {
        return Vec::new();
    }
    let eff = effective_energies(compiled);
    let tol = energy_tolerance(compiled.qubo.max_abs_coeff(), compiled.qubo.num_terms());
    let mut max_sat = f64::NEG_INFINITY;
    let mut min_viol = f64::INFINITY;
    let mut min_energy = f64::INFINITY;
    let mut sat = vec![false; eff.len()];
    for (xbits, &e) in eff.iter().enumerate() {
        let x = bits_to_assignment(xbits as u64, np);
        if gp.program.all_hard_satisfied(&x) {
            sat[xbits] = true;
            max_sat = max_sat.max(e);
        } else {
            min_viol = min_viol.min(e);
        }
        min_energy = min_energy.min(e);
    }
    let mut out = Vec::new();
    if max_sat > f64::NEG_INFINITY && min_viol < f64::INFINITY && max_sat >= min_viol - tol {
        out.push(Discrepancy::new(
            &gp.name,
            "hard-weight-separation",
            format!(
                "worst hard-satisfying effective energy {max_sat} does not lie strictly below \
                 best hard-violating effective energy {min_viol}"
            ),
        ));
    }
    match brute {
        Some(b) => {
            let minimizers: Vec<u64> = eff
                .iter()
                .enumerate()
                .filter(|&(_, &e)| e <= min_energy + tol)
                .map(|(bits, _)| bits as u64)
                .collect();
            if minimizers != b.optima {
                out.push(Discrepancy::new(
                    &gp.name,
                    "qubo-minimizers-vs-brute",
                    format!(
                        "QUBO effective-energy minimizers {minimizers:?} != brute-force optima {:?}",
                        b.optima
                    ),
                ));
            }
        }
        None => {
            if sat.iter().any(|&s| s) {
                out.push(Discrepancy::new(
                    &gp.name,
                    "brute-vs-evaluate",
                    "brute force says unsatisfiable but a hard-satisfying assignment exists",
                ));
            }
        }
    }
    out
}

/// **Chain-break repair.** Embed the compiled QUBO into a sparse
/// (Chimera) topology: cleanly chain-extended logical samples must
/// round-trip through majority-vote unembedding with zero broken
/// chains, and corrupting a strict minority of a long chain must be
/// repaired to the same logical value while being counted as broken.
pub fn chain_break_repair(name: &str, qubo: &Qubo, seed: u64) -> Vec<Discrepancy> {
    let n = qubo.num_vars();
    if n == 0 || n > 12 {
        return Vec::new();
    }
    let topo = Topology::chimera(3, 3, 4);
    let Some(embedding) = find_embedding(&qubo.adjacency(), &topo, seed, 5) else {
        return Vec::new(); // nothing to check on this instance
    };
    let mut out = Vec::new();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x2545_f491_4f6c_dd1d);
    let logical = nck_qubo::Ising::new(n);
    let embedded = nck_anneal::embed_ising(&logical, &embedding, &topo, 1.0);
    for _ in 0..16 {
        let sample: Vec<bool> = (0..n).map(|_| rng.random()).collect();
        let mut physical = vec![false; topo.num_qubits()];
        for (v, &value) in sample.iter().enumerate() {
            for &q in embedding.chain(v) {
                physical[q] = value;
            }
        }
        let (decoded, broken) = embedded.unembed(&physical);
        if decoded != sample || broken != 0 {
            out.push(Discrepancy::new(
                name,
                "chain-clean-roundtrip",
                format!("clean sample {sample:?} decoded to {decoded:?} with {broken} broken"),
            ));
            return out;
        }
        // Corrupt a strict minority of the longest chain.
        let Some((v, chain)) = (0..n)
            .map(|v| (v, embedding.chain(v)))
            .max_by_key(|(_, c)| c.len())
            .filter(|(_, c)| c.len() >= 3)
        else {
            continue;
        };
        let flip = (chain.len() - 1) / 2;
        for &q in &chain[..flip] {
            physical[q] = !physical[q];
        }
        let (repaired, broken) = embedded.unembed(&physical);
        if broken != 1 {
            out.push(Discrepancy::new(
                name,
                "chain-break-count",
                format!("one corrupted chain counted as {broken} broken"),
            ));
            return out;
        }
        if repaired != sample {
            out.push(Discrepancy::new(
                name,
                "chain-minority-repair",
                format!(
                    "minority corruption of chain {v} changed the decoded value: \
                     {sample:?} -> {repaired:?}"
                ),
            ));
            return out;
        }
        for &q in &chain[..flip] {
            physical[q] = !physical[q];
        }
    }
    out
}

/// Convenience: compile with default options, or report the failure as
/// a discrepancy (generated programs must always compile).
pub fn compile_or_report(gp: &GeneratedProgram) -> Result<CompiledProgram, Discrepancy> {
    compile(&gp.program, &CompilerOptions::default())
        .map_err(|e| Discrepancy::new(&gp.name, "compile", format!("compilation failed: {e}")))
}

/// Pack the brute-force optima of `program` as a sorted bit-pattern
/// set, if satisfiable.
pub fn brute_optima_bits(program: &Program) -> Option<Vec<u64>> {
    solve_brute(program).map(|b| b.optima)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment_to_bits;
    use crate::gen::Family;

    #[test]
    fn permute_program_identity_is_noop() {
        let gp = Family::VertexCover.generate(3);
        let n = gp.program.num_vars();
        let perm: Vec<usize> = (0..n).collect();
        let same = permute_program(&gp.program, &perm);
        assert_eq!(solve_brute(&gp.program), solve_brute(&same));
    }

    #[test]
    fn effective_energy_matches_plain_energy_without_ancillas() {
        let gp = Family::WeightedMaxCut.generate(1);
        let compiled = compile_or_report(&gp).unwrap();
        if compiled.num_ancillas == 0 {
            let eff = effective_energies(&compiled);
            for (bits, &e) in eff.iter().enumerate() {
                assert_eq!(e, compiled.qubo.energy_bits(bits as u64));
            }
        }
    }

    #[test]
    fn assignment_bits_roundtrip() {
        let a = vec![true, false, true, true];
        assert_eq!(bits_to_assignment(assignment_to_bits(&a), 4), a);
    }
}
