//! Seeded random NchooseK program generation over the paper's problem
//! families, for differential testing.
//!
//! Instances are deliberately small: the harness exhaustively
//! enumerates QUBO spaces and brute-forces every program, so programs
//! stay under ~10 variables and their compiled QUBOs under
//! [`invariants::EXHAUSTIVE_LIMIT`](crate::invariants::EXHAUSTIVE_LIMIT)
//! variables where possible. Unsatisfiable instances are generated on
//! purpose — agreeing that a program is unsatisfiable is itself a
//! differential check.

use nck_core::Program;
use nck_problems::{CliqueCover, ExactCover, Graph, KSat, MapColoring, MaxCut, MinVertexCover};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// The problem families the generator draws from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Family {
    /// Minimum vertex cover: hard edge constraints + unit soft
    /// exclusion preferences (the paper's Fig. 2 shape).
    VertexCover,
    /// Edge-weighted max cut: soft-only, weighted constraints.
    WeightedMaxCut,
    /// Exact cover: hard-only, guaranteed satisfiable by a planted
    /// partition.
    ExactCover,
    /// Map coloring: hard-only one-hot + edge constraints; odd cycles
    /// with two colors are unsatisfiable by design.
    MapColoring,
    /// Random 3-SAT via the repeated-variable encoding: hard-only,
    /// satisfiability unknown a priori.
    KSat,
    /// Clique cover with two cliques: hard-only, sparse graphs are
    /// often uncoverable.
    CliqueCover,
    /// Planted-assignment mix: hard constraints consistent with a
    /// hidden assignment (guaranteed satisfiable) plus random weighted
    /// soft constraints that pull against each other.
    WeightedMix,
}

/// Every family, in generation order.
pub const ALL_FAMILIES: [Family; 7] = [
    Family::VertexCover,
    Family::WeightedMaxCut,
    Family::ExactCover,
    Family::MapColoring,
    Family::KSat,
    Family::CliqueCover,
    Family::WeightedMix,
];

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Family::VertexCover => "vertex-cover",
            Family::WeightedMaxCut => "weighted-max-cut",
            Family::ExactCover => "exact-cover",
            Family::MapColoring => "map-coloring",
            Family::KSat => "3sat",
            Family::CliqueCover => "clique-cover",
            Family::WeightedMix => "weighted-mix",
        };
        write!(f, "{s}")
    }
}

/// A generated program plus its provenance.
#[derive(Clone, Debug)]
pub struct GeneratedProgram {
    /// `"<family>#<seed>"`, used in discrepancy reports.
    pub name: String,
    /// The family this instance was drawn from.
    pub family: Family,
    /// The generator seed that reproduces it.
    pub seed: u64,
    /// The program itself.
    pub program: Program,
}

fn random_graph(rng: &mut StdRng, n: usize, extra_edges: usize, seed: u64) -> Graph {
    let max_edges = n * (n - 1) / 2;
    let m = rng.random_range(n - 1..=(n - 1 + extra_edges).min(max_edges));
    Graph::random_gnm(n, m, seed)
}

impl Family {
    /// Deterministically generate one instance of this family.
    pub fn generate(self, seed: u64) -> GeneratedProgram {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xa076_1d64_78bd_642f);
        let program = match self {
            Family::VertexCover => {
                let n = rng.random_range(4..=6);
                MinVertexCover::new(random_graph(&mut rng, n, 3, seed)).program()
            }
            Family::WeightedMaxCut => {
                let n = rng.random_range(4..=6);
                let g = random_graph(&mut rng, n, 2, seed);
                let weights = (0..g.num_edges()).map(|_| rng.random_range(1..=5)).collect();
                MaxCut::with_weights(g, weights).program()
            }
            Family::ExactCover => {
                let elements = rng.random_range(3..=5);
                let extra = rng.random_range(1..=2);
                ExactCover::random(elements, extra, seed).program()
            }
            Family::MapColoring => {
                let n = rng.random_range(3..=5);
                let colors = rng.random_range(2..=3);
                MapColoring::new(Graph::cycle(n), colors).program()
            }
            Family::KSat => {
                let vars = rng.random_range(4..=5);
                let clauses = rng.random_range(3..=5);
                KSat::random_3sat(vars, clauses, seed).program_repeated()
            }
            Family::CliqueCover => {
                let n = rng.random_range(4..=5);
                CliqueCover::new(random_graph(&mut rng, n, 3, seed), 2).program()
            }
            Family::WeightedMix => planted_mix(&mut rng),
        };
        GeneratedProgram { name: format!("{self}#{seed}"), family: self, seed, program }
    }
}

/// A random program whose hard constraints are all consistent with a
/// hidden planted assignment (so the hard part is satisfiable by
/// construction), plus weighted soft constraints chosen freely.
fn planted_mix(rng: &mut StdRng) -> Program {
    let n = rng.random_range(4..=6);
    let mut p = Program::new();
    let vars = p.new_vars("x", n).expect("fresh names");
    let planted: Vec<bool> = (0..n).map(|_| rng.random()).collect();
    let num_hard = rng.random_range(2..=3);
    for _ in 0..num_hard {
        let k = rng.random_range(2..=3);
        let picked = pick_distinct(rng, n, k);
        let count = picked.iter().filter(|&&v| planted[v]).count() as u32;
        // The planted count always selects; one extra value widens the
        // solution set without breaking satisfiability.
        let mut selection = vec![count];
        let extra = rng.random_range(0..=k as u32);
        if extra != count {
            selection.push(extra);
        }
        p.nck(picked.iter().map(|&v| vars[v]).collect::<Vec<_>>(), selection)
            .expect("planted hard constraint");
    }
    let num_soft = rng.random_range(2..=4);
    for _ in 0..num_soft {
        let k = rng.random_range(1..=3);
        let picked = pick_distinct(rng, n, k);
        let selection = [rng.random_range(0..=k as u32)];
        let weight = rng.random_range(1..=5);
        p.nck_soft_weighted(picked.iter().map(|&v| vars[v]).collect::<Vec<_>>(), selection, weight)
            .expect("soft constraint");
    }
    p
}

fn pick_distinct(rng: &mut StdRng, n: usize, k: usize) -> Vec<usize> {
    let mut picked = Vec::with_capacity(k);
    while picked.len() < k {
        let v = rng.random_range(0..n);
        if !picked.contains(&v) {
            picked.push(v);
        }
    }
    picked
}

/// Generate `per_family` instances of every family, seeds
/// `base_seed..base_seed + per_family`.
pub fn corpus(per_family: usize, base_seed: u64) -> Vec<GeneratedProgram> {
    ALL_FAMILIES
        .iter()
        .flat_map(|&f| (0..per_family as u64).map(move |i| f.generate(base_seed + i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for &f in &ALL_FAMILIES {
            let a = f.generate(7);
            let b = f.generate(7);
            assert_eq!(a.program.num_vars(), b.program.num_vars());
            assert_eq!(a.program.constraints().len(), b.program.constraints().len());
            assert_eq!(a.name, b.name);
        }
    }

    #[test]
    fn corpus_covers_every_family() {
        let c = corpus(3, 11);
        assert_eq!(c.len(), 3 * ALL_FAMILIES.len());
        for &f in &ALL_FAMILIES {
            assert_eq!(c.iter().filter(|g| g.family == f).count(), 3);
        }
    }

    #[test]
    fn programs_stay_brute_forceable() {
        for g in corpus(4, 3) {
            assert!(g.program.num_vars() <= 30, "{} has {} vars", g.name, g.program.num_vars());
            assert!(g.program.num_vars() >= 2);
        }
    }
}
