//! The differential harness: every generated program through every
//! backend, cross-checked against the brute-force oracle and each
//! other.

use crate::gen::GeneratedProgram;
use crate::invariants::{
    chain_break_repair, compile_or_report, gauge_invariance, hard_weight_soundness,
    permutation_symmetry, qubo_ising_roundtrip, EXHAUSTIVE_LIMIT,
};
use crate::{assignment_to_bits, Discrepancy};
use nck_anneal::AnnealerDevice;
use nck_circuit::GateModelDevice;
use nck_classical::{solve_brute, BruteResult};
use nck_exec::{
    AnnealerBackend, Backend, ClassicalBackend, ExecError, ExecReport, ExecutionPlan,
    GateModelBackend, GroverBackend,
};

/// Knobs bounding the harness's per-instance cost (everything runs in
/// debug builds under `cargo test`).
#[derive(Clone, Copy, Debug)]
pub struct HarnessConfig {
    /// Annealer reads per job.
    pub reads: usize,
    /// Largest compiled QUBO (in variables) sent to the QAOA
    /// state-vector simulator.
    pub gate_max_qubo_vars: usize,
    /// Largest hard-only program (in variables) sent to Grover search.
    pub grover_max_vars: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig { reads: 32, gate_max_qubo_vars: 12, grover_max_vars: 8 }
    }
}

/// Aggregate result of a differential sweep.
#[derive(Clone, Debug, Default)]
pub struct HarnessOutcome {
    /// Programs examined.
    pub programs: usize,
    /// Individual backend executions performed.
    pub runs: usize,
    /// Checks skipped for size reasons, as `"program: what"` notes —
    /// surfaced so bounded coverage is never silent.
    pub skips: Vec<String>,
    /// Every violated invariant.
    pub discrepancies: Vec<Discrepancy>,
}

impl HarnessOutcome {
    /// Render all discrepancies, one per line (for assertion messages).
    pub fn report(&self) -> String {
        self.discrepancies.iter().map(|d| format!("{d}\n")).collect()
    }
}

/// Consistency checks every successful [`ExecReport`] must pass,
/// regardless of backend: agreement with the brute oracle on the
/// optimum, internally consistent classification, and a tally that
/// accounts for every candidate.
pub(crate) fn check_report(
    gp: &GeneratedProgram,
    brute: &BruteResult,
    report: &ExecReport,
    out: &mut Vec<Discrepancy>,
) {
    let name = &gp.name;
    let backend = report.backend;
    if report.max_soft != brute.max_soft {
        out.push(Discrepancy::new(
            name,
            "oracle-max-soft",
            format!("{backend}: report max_soft {} != brute {}", report.max_soft, brute.max_soft),
        ));
    }
    if report.assignment.len() != gp.program.num_vars() {
        out.push(Discrepancy::new(
            name,
            "assignment-arity",
            format!(
                "{backend}: assignment has {} vars, program has {}",
                report.assignment.len(),
                gp.program.num_vars()
            ),
        ));
        return;
    }
    let ev = gp.program.evaluate(&report.assignment);
    if ev.soft_weight_satisfied != report.soft_weight || ev.soft_satisfied != report.soft_satisfied
    {
        out.push(Discrepancy::new(
            name,
            "report-evaluation",
            format!(
                "{backend}: report says soft {}/{}, re-evaluation says {}/{}",
                report.soft_satisfied,
                report.soft_weight,
                ev.soft_satisfied,
                ev.soft_weight_satisfied
            ),
        ));
    }
    if report.quality != ev.classify(brute.max_soft) {
        out.push(Discrepancy::new(
            name,
            "report-classification",
            format!(
                "{backend}: reported quality {} but re-classification gives {}",
                report.quality,
                ev.classify(brute.max_soft)
            ),
        ));
    }
    // No backend may *beat* the exhaustive oracle.
    if ev.hard_satisfied == ev.hard_total && ev.soft_weight_satisfied > brute.max_soft {
        out.push(Discrepancy::new(
            name,
            "beats-oracle",
            format!(
                "{backend}: hard-satisfying assignment with soft weight {} exceeds proven \
                 optimum {}",
                ev.soft_weight_satisfied, brute.max_soft
            ),
        ));
    }
    // Optimality must coincide with membership in the brute optima set.
    let bits = assignment_to_bits(&report.assignment);
    let in_optima = brute.optima.binary_search(&bits).is_ok();
    let optimal = report.quality == nck_core::SolutionQuality::Optimal;
    if optimal != in_optima {
        out.push(Discrepancy::new(
            name,
            "optima-membership",
            format!(
                "{backend}: quality {} but assignment {:#b} in brute optima: {}",
                report.quality, bits, in_optima
            ),
        ));
    }
    if report.tally.total() != report.timings.candidates {
        out.push(Discrepancy::new(
            name,
            "tally-consistency",
            format!(
                "{backend}: tally accounts for {} of {} candidates",
                report.tally.total(),
                report.timings.candidates
            ),
        ));
    }
}

/// One backend execution with satisfiability-aware expectations: a
/// satisfiable program must yield a report, an unsatisfiable one must
/// yield [`ExecError::Unsatisfiable`].
fn run_backend(
    gp: &GeneratedProgram,
    plan: &ExecutionPlan<'_>,
    backend: &dyn Backend,
    seed: u64,
    brute: Option<&BruteResult>,
    out: &mut Vec<Discrepancy>,
) -> Option<ExecReport> {
    let name = &gp.name;
    match (plan.run(backend, seed), brute) {
        (Ok(report), Some(b)) => {
            check_report(gp, b, &report, out);
            Some(report)
        }
        (Ok(report), None) => {
            out.push(Discrepancy::new(
                name,
                "unsat-agreement",
                format!(
                    "{}: produced a {} report for an unsatisfiable program",
                    report.backend, report.quality
                ),
            ));
            None
        }
        (Err(ExecError::Unsatisfiable), None) => None,
        (Err(e), None) => {
            out.push(Discrepancy::new(
                name,
                "unsat-agreement",
                format!("{}: expected Unsatisfiable, got {e}", backend.name()),
            ));
            None
        }
        (Err(e), Some(_)) => {
            out.push(Discrepancy::new(
                name,
                "sat-agreement",
                format!("{}: failed on a satisfiable program: {e}", backend.name()),
            ));
            None
        }
    }
}

/// Run the full differential + metamorphic suite over `programs`, with
/// every backend executed at every seed in `seeds`.
pub fn run_differential(
    programs: &[GeneratedProgram],
    seeds: &[u64],
    cfg: &HarnessConfig,
) -> HarnessOutcome {
    let mut outcome = HarnessOutcome { programs: programs.len(), ..HarnessOutcome::default() };
    for gp in programs {
        let out = &mut outcome.discrepancies;
        let compiled = match compile_or_report(gp) {
            Ok(c) => c,
            Err(d) => {
                out.push(d);
                continue;
            }
        };
        let brute = solve_brute(&gp.program);

        // Metamorphic invariants on the compiled artifact.
        if compiled.qubo.num_vars() <= EXHAUSTIVE_LIMIT {
            out.extend(qubo_ising_roundtrip(&gp.name, &compiled.qubo));
            out.extend(hard_weight_soundness(gp, &compiled, brute.as_ref()));
        } else {
            outcome.skips.push(format!(
                "{}: exhaustive checks skipped ({} QUBO vars > {EXHAUSTIVE_LIMIT})",
                gp.name,
                compiled.qubo.num_vars()
            ));
        }
        out.extend(gauge_invariance(&gp.name, &compiled.qubo, gp.seed));
        out.extend(permutation_symmetry(gp, gp.seed));
        out.extend(chain_break_repair(&gp.name, &compiled.qubo, gp.seed));

        // Differential sweep across all four backends.
        let plan = ExecutionPlan::new(&gp.program);
        let qubo_vars = compiled.qubo.num_vars();
        let annealer = AnnealerBackend::new(AnnealerDevice::ideal(qubo_vars.max(2)), cfg.reads);
        let gate = GateModelBackend::new(GateModelDevice::ideal(qubo_vars.max(2)), 1, 256, 8);
        let classical = ClassicalBackend::default();
        let grover = GroverBackend::default();
        for &seed in seeds {
            run_backend(gp, &plan, &classical, seed, brute.as_ref(), out);
            outcome.runs += 1;
            let first = run_backend(gp, &plan, &annealer, seed, brute.as_ref(), out);
            outcome.runs += 1;
            // Determinism: an identical (backend, seed) run must
            // reproduce the identical report.
            if let (Some(a), Some(b)) =
                (first, run_backend(gp, &plan, &annealer, seed, brute.as_ref(), out))
            {
                if a.assignment != b.assignment || a.tally != b.tally {
                    out.push(Discrepancy::new(
                        &gp.name,
                        "determinism",
                        format!("annealer seed {seed} gave two different reports"),
                    ));
                }
            }
            if qubo_vars <= cfg.gate_max_qubo_vars {
                run_backend(gp, &plan, &gate, seed, brute.as_ref(), out);
                outcome.runs += 1;
            } else {
                outcome
                    .skips
                    .push(format!("{}: gate backend skipped ({qubo_vars} QUBO vars)", gp.name));
            }
            if gp.program.num_soft() == 0 {
                if gp.program.num_vars() <= cfg.grover_max_vars {
                    run_backend(gp, &plan, &grover, seed, brute.as_ref(), out);
                    outcome.runs += 1;
                } else {
                    outcome.skips.push(format!(
                        "{}: grover skipped ({} vars)",
                        gp.name,
                        gp.program.num_vars()
                    ));
                }
            } else {
                // Differential check in its own right: Grover must
                // reject soft programs with the typed error.
                match plan.run(&grover, seed) {
                    Err(ExecError::SoftUnsupported { num_soft })
                        if num_soft == gp.program.num_soft() => {}
                    other => out.push(Discrepancy::new(
                        &gp.name,
                        "grover-soft-rejection",
                        format!(
                            "expected SoftUnsupported {{ num_soft: {} }}, got {:?}",
                            gp.program.num_soft(),
                            other.map(|r| r.quality)
                        ),
                    )),
                }
                outcome.runs += 1;
            }
        }
        // The plan must have compiled exactly once for the whole fan-out.
        let stats = plan.stats();
        if stats.compiles != 1 {
            out.push(Discrepancy::new(
                &gp.name,
                "compile-once",
                format!("{} compiles across one plan's fan-out", stats.compiles),
            ));
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Family;

    #[test]
    fn harness_is_quiet_on_a_known_good_instance() {
        let gp = Family::VertexCover.generate(5);
        let outcome = run_differential(&[gp], &[11], &HarnessConfig::default());
        assert_eq!(outcome.programs, 1);
        assert!(outcome.runs >= 3);
        assert!(outcome.discrepancies.is_empty(), "{}", outcome.report());
    }

    #[test]
    fn unsatisfiable_instances_reach_agreement() {
        // An odd cycle is not 2-colorable: every backend must agree.
        let gp = Family::MapColoring.generate(0);
        let unsat = crate::invariants::brute_optima_bits(&gp.program).is_none();
        let outcome = run_differential(&[gp], &[3], &HarnessConfig::default());
        assert!(outcome.discrepancies.is_empty(), "{}", outcome.report());
        // Whichever instance seed 0 generates, the harness held; the
        // odd-cycle/2-color case is pinned in the integration suite.
        let _ = unsat;
    }
}
