//! Criterion benchmarks for the NchooseK→QUBO compiler, including the
//! §VIII-C cache ablation (the paper's unoptimized compiler recompiles
//! symmetric constraints redundantly).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nck_compile::{compile, compile_constraint, CompilerOptions};
use nck_core::{Constraint, Hardness, Var};
use nck_problems::{Graph, MinVertexCover};
use std::hint::black_box;
use std::time::Duration;

/// Short measurement windows: the harness runs dozens of benchmarks
/// and the defaults (3 s warm-up + 5 s measurement each) would take
/// tens of minutes.
fn fast_criterion() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(10)
}

fn bench_single_constraint(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile_constraint");
    let opts = CompilerOptions::default();
    let no_closed = CompilerOptions { use_closed_forms: false, ..Default::default() };
    // Closed-form path: nck over 6 vars, selection {3}.
    let vars: Vec<Var> = (0..6).map(Var::new).collect();
    let exact3 = Constraint::new(vars.clone(), [3], Hardness::Hard).unwrap();
    g.bench_function("exactly_3_of_6/closed_form", |b| {
        b.iter(|| compile_constraint(black_box(&exact3), &opts).unwrap())
    });
    g.bench_function("exactly_3_of_6/smt_search", |b| {
        b.iter(|| compile_constraint(black_box(&exact3), &no_closed).unwrap())
    });
    // Ancilla-requiring shape: XOR (needs the full DPLL search).
    let xor = Constraint::new(vec![Var::new(0), Var::new(1), Var::new(2)], [0, 2], Hardness::Hard)
        .unwrap();
    g.bench_function("xor_with_ancilla/smt_search", |b| {
        b.iter(|| compile_constraint(black_box(&xor), &opts).unwrap())
    });
    // Soft constraint (flat-gap mode).
    let soft = Constraint::new(vec![Var::new(0), Var::new(1)], [1], Hardness::Soft).unwrap();
    g.bench_function("soft_cut_edge/flat_gap", |b| {
        b.iter(|| compile_constraint(black_box(&soft), &opts).unwrap())
    });
    g.finish();
}

fn bench_program_cache_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile_program");
    for n in [16usize, 64, 256] {
        let program = MinVertexCover::new(Graph::circulant(n, 4)).program();
        g.bench_with_input(BenchmarkId::new("cache_on", n), &program, |b, p| {
            b.iter(|| compile(black_box(p), &CompilerOptions::default()).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("cache_off", n), &program, |b, p| {
            b.iter(|| {
                compile(
                    black_box(p),
                    &CompilerOptions {
                        use_cache: false,
                        use_closed_forms: false,
                        ..Default::default()
                    },
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_single_constraint, bench_program_cache_ablation
}
criterion_main!(benches);
