//! Criterion benchmarks for the gate-model backend: state-vector
//! simulation, analytic p=1 evaluation at device scale, transpilation,
//! and the QAOA depth ablation (p = 1 vs 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nck_circuit::{
    qaoa1_expectation, qaoa_circuit, qaoa_expectation_sim, transpile, CouplingMap, GateModelDevice,
};
use nck_qubo::Qubo;
use std::hint::black_box;
use std::time::Duration;

/// Short measurement windows: the harness runs dozens of benchmarks
/// and the defaults (3 s warm-up + 5 s measurement each) would take
/// tens of minutes.
fn fast_criterion() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(10)
}

fn ring_qubo(n: usize) -> Qubo {
    let mut q = Qubo::new(n);
    for i in 0..n {
        q.add_quadratic(i, (i + 1) % n, 1.0);
        q.add_linear(i, if i % 2 == 0 { 0.5 } else { -0.5 });
    }
    q
}

fn bench_expectation(c: &mut Criterion) {
    let mut g = c.benchmark_group("qaoa_expectation");
    for n in [8usize, 12, 16] {
        let ising = ring_qubo(n).to_ising();
        g.bench_with_input(BenchmarkId::new("statevector", n), &ising, |b, ising| {
            b.iter(|| qaoa_expectation_sim(black_box(ising), &[0.4], &[0.6]))
        });
        g.bench_with_input(BenchmarkId::new("analytic_p1", n), &ising, |b, ising| {
            b.iter(|| qaoa1_expectation(black_box(ising), 0.4, 0.6))
        });
    }
    // Device scale: only the analytic path exists.
    let big = ring_qubo(65).to_ising();
    g.bench_function("analytic_p1/65", |b| b.iter(|| qaoa1_expectation(black_box(&big), 0.4, 0.6)));
    g.finish();
}

fn bench_transpile(c: &mut Criterion) {
    let mut g = c.benchmark_group("transpile_brooklyn");
    g.sample_size(10);
    let map = CouplingMap::ibmq_brooklyn();
    for n in [12usize, 24, 48] {
        let circuit = qaoa_circuit(&ring_qubo(n).to_ising(), &[0.4], &[0.6]);
        g.bench_with_input(BenchmarkId::new("ring", n), &circuit, |b, circuit| {
            b.iter(|| transpile(black_box(circuit), &map).unwrap())
        });
    }
    g.finish();
}

fn bench_qaoa_depth_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("qaoa_layers");
    g.sample_size(10);
    let qubo = ring_qubo(10);
    let device = GateModelDevice::ideal(10);
    for p in [1usize, 2] {
        g.bench_with_input(BenchmarkId::new("p", p), &p, |b, &p| {
            b.iter(|| device.run_qaoa(black_box(&qubo), p, 256, 25, 1).unwrap())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_expectation, bench_transpile, bench_qaoa_depth_ablation
}
criterion_main!(benches);
