//! Criterion benchmarks for the annealing backend: minor embedding,
//! sampling throughput, and the chain-strength ablation called out in
//! DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nck_anneal::{find_embedding, sample_ising, AnnealerDevice, NoiseModel, SaParams, Topology};
use nck_compile::{compile, CompilerOptions};
use nck_problems::{Graph, MinVertexCover};
use std::hint::black_box;
use std::time::Duration;

/// Short measurement windows: the harness runs dozens of benchmarks
/// and the defaults (3 s warm-up + 5 s measurement each) would take
/// tens of minutes.
fn fast_criterion() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(10)
}

fn bench_embedding(c: &mut Criterion) {
    let mut g = c.benchmark_group("minor_embedding");
    g.sample_size(10);
    let topo = Topology::advantage_4_1();
    for n in [12usize, 24, 48] {
        let program = MinVertexCover::new(Graph::clique_chain(n / 3)).program();
        let compiled = compile(&program, &CompilerOptions::default()).unwrap();
        let adj = compiled.qubo.adjacency();
        g.bench_with_input(BenchmarkId::new("pegasus_like_16", n), &adj, |b, adj| {
            b.iter(|| find_embedding(black_box(adj), &topo, 1, 5).expect("embeds"))
        });
    }
    g.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut g = c.benchmark_group("sa_sampling");
    g.sample_size(10);
    let program = MinVertexCover::new(Graph::clique_chain(8)).program();
    let compiled = compile(&program, &CompilerOptions::default()).unwrap();
    let ising = compiled.qubo.to_ising();
    for reads in [10usize, 100] {
        g.bench_with_input(BenchmarkId::new("reads", reads), &reads, |b, &reads| {
            b.iter(|| {
                sample_ising(
                    black_box(&ising),
                    &SaParams::default(),
                    &NoiseModel::dwave_default(),
                    reads,
                    7,
                )
            })
        });
    }
    g.finish();
}

fn bench_chain_strength_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("chain_strength");
    g.sample_size(10);
    let program = MinVertexCover::new(Graph::clique_chain(5)).program();
    let compiled = compile(&program, &CompilerOptions::default()).unwrap();
    for scale in [0.5f64, 1.0, 2.0] {
        let mut device = AnnealerDevice::advantage_4_1();
        device.chain_strength_scale = scale;
        g.bench_with_input(BenchmarkId::new("scale", format!("{scale}")), &device, |b, device| {
            b.iter(|| device.sample_qubo(black_box(&compiled.qubo), 20, 3).unwrap())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_embedding, bench_sampling, bench_chain_strength_ablation
}
criterion_main!(benches);
