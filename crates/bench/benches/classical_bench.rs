//! Criterion benchmarks for the classical solvers: the Fig. 12 direct
//! solve, the QUBO branch-and-bound comparator, and brute force.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nck_classical::{minimize, solve, solve_brute, QuboBbOptions, SolverOptions};
use nck_compile::{compile, CompilerOptions};
use nck_problems::{Graph, KSat, MaxCut, MinVertexCover};
use std::hint::black_box;
use std::time::Duration;

/// Short measurement windows: the harness runs dozens of benchmarks
/// and the defaults (3 s warm-up + 5 s measurement each) would take
/// tens of minutes.
fn fast_criterion() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(10)
}

fn bench_direct_solve(c: &mut Criterion) {
    let mut g = c.benchmark_group("direct_solve_mvc_circulant");
    for n in [16usize, 32, 64] {
        let program = MinVertexCover::new(Graph::circulant(n, 4)).program();
        g.bench_with_input(BenchmarkId::from_parameter(n), &program, |b, p| {
            b.iter(|| solve(black_box(p), &SolverOptions::default()))
        });
    }
    g.finish();
}

fn bench_qubo_bb(c: &mut Criterion) {
    let mut g = c.benchmark_group("qubo_branch_and_bound");
    g.sample_size(10);
    for n in [8usize, 12, 16] {
        let program = MinVertexCover::new(Graph::circulant(n, 4)).program();
        let compiled = compile(&program, &CompilerOptions::default()).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(n), &compiled.qubo, |b, q| {
            b.iter(|| minimize(black_box(q), &QuboBbOptions::default()))
        });
    }
    g.finish();
}

fn bench_brute_force(c: &mut Criterion) {
    let mut g = c.benchmark_group("brute_force");
    g.sample_size(10);
    let mc = MaxCut::new(Graph::random_gnm(18, 36, 5)).program();
    g.bench_function("max_cut_18", |b| b.iter(|| solve_brute(black_box(&mc)).unwrap()));
    let sat = KSat::random_3sat(16, 40, 6).program_repeated();
    g.bench_function("3sat_16", |b| b.iter(|| solve_brute(black_box(&sat)).unwrap()));
    g.finish();
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_direct_solve, bench_qubo_bb, bench_brute_force
}
criterion_main!(benches);
