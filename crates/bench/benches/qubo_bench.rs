//! Criterion benchmarks for the QUBO substrate: energy evaluation,
//! composition, conversion, and the parallel exhaustive solver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nck_qubo::{solve_exhaustive, Qubo};
use std::hint::black_box;
use std::time::Duration;

/// Short measurement windows: the harness runs dozens of benchmarks
/// and the defaults (3 s warm-up + 5 s measurement each) would take
/// tens of minutes.
fn fast_criterion() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(10)
}

fn dense_qubo(n: usize) -> Qubo {
    let mut q = Qubo::new(n);
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 19) as f64 - 9.0
    };
    for i in 0..n {
        q.add_linear(i, next());
        for j in i + 1..n {
            q.add_quadratic(i, j, next());
        }
    }
    q
}

fn bench_energy(c: &mut Criterion) {
    let mut g = c.benchmark_group("energy_eval");
    for n in [16usize, 32, 64] {
        let q = dense_qubo(n);
        let x: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        g.bench_with_input(BenchmarkId::new("dense", n), &q, |b, q| {
            b.iter(|| q.energy(black_box(&x)))
        });
    }
    g.finish();
}

fn bench_compose(c: &mut Criterion) {
    let parts: Vec<Qubo> = (0..64).map(|_| dense_qubo(12)).collect();
    c.bench_function("compose_64_parts", |b| {
        b.iter(|| {
            let mut total = Qubo::new(12);
            for p in black_box(&parts) {
                total += p;
            }
            total
        })
    });
}

fn bench_ising_conversion(c: &mut Criterion) {
    let q = dense_qubo(48);
    c.bench_function("qubo_to_ising_48", |b| b.iter(|| black_box(&q).to_ising()));
}

fn bench_exhaustive(c: &mut Criterion) {
    let mut g = c.benchmark_group("exhaustive_solve");
    g.sample_size(10);
    for n in [16usize, 20] {
        let q = dense_qubo(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &q, |b, q| {
            b.iter(|| solve_exhaustive(black_box(q)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_energy, bench_compose, bench_ising_conversion, bench_exhaustive
}
criterion_main!(benches);
