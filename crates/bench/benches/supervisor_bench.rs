//! Criterion benchmarks for the resilience supervisor's fault-free
//! overhead: a supervised single-rung run versus the plain
//! `ExecutionPlan::run`, on both the annealer and classical paths.
//!
//! The acceptance bar is ≤ 2 % overhead — the supervisor adds one
//! breaker admission, one `RunCtx` allocation, and a handful of
//! journal pushes per run, all of which must vanish next to the
//! backend's own work. The vendored criterion crate is a
//! type-check-only stub, so this bench smoke-runs the arms; the real
//! wall-clock measurement is `cargo run --release -p nck-bench --bin
//! overhead`.

use criterion::{criterion_group, criterion_main, Criterion};
use nck_anneal::AnnealerDevice;
use nck_exec::{AnnealerBackend, Backend, ClassicalBackend, ExecutionPlan, Supervisor};
use nck_problems::{Graph, MinVertexCover};
use std::hint::black_box;
use std::time::Duration;

fn fast_criterion() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(10)
}

fn bench_supervised_vs_plain(c: &mut Criterion) {
    let program = MinVertexCover::new(Graph::circulant(12, 4)).program();
    let plan = ExecutionPlan::new(&program);
    let annealer = AnnealerBackend::new(AnnealerDevice::ideal(64), 64);
    let classical = ClassicalBackend::default();
    let sup = Supervisor::default();
    // Warm the compile and oracle caches so both arms measure only the
    // backend run.
    plan.run(&classical, 0).unwrap();

    let mut g = c.benchmark_group("supervisor_overhead");
    g.bench_function("annealer_plain", |b| b.iter(|| plan.run(black_box(&annealer), 7).unwrap()));
    g.bench_function("annealer_supervised", |b| {
        b.iter(|| sup.run(&plan, &[black_box(&annealer) as &dyn Backend], 7).unwrap())
    });
    g.bench_function("classical_plain", |b| b.iter(|| plan.run(black_box(&classical), 7).unwrap()));
    g.bench_function("classical_supervised", |b| {
        b.iter(|| sup.run(&plan, &[black_box(&classical) as &dyn Backend], 7).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_supervised_vs_plain
}
criterion_main!(benches);
