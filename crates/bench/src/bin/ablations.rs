//! Ablations for the design choices DESIGN.md calls out:
//!
//! 1. **Hard/soft weight ratio** — the paper attributes the
//!    mixed-problem degradation (Fig. 7) to the small soft energy gap
//!    under a large hard weight `W`; sweeping `W` exposes the
//!    trade-off directly (too small: hard violations become optimal
//!    QUBO states; too large: soft distinctions drown in noise).
//! 2. **Chain strength** — weak chains break; overly strong chains eat
//!    the device's dynamic range.
//! 3. **QAOA depth p** — deeper ansatz improves the ideal expectation
//!    but adds gates (and noise) on hardware.
//! 4. **SAT encodings** — dual-rail vs repeated-variable (§VI-A-f).
//!
//! Run with: `cargo run --release -p nck-bench --bin ablations`

use nck_anneal::AnnealerDevice;
use nck_bench::{fmt_f, print_table};
use nck_classical::OptimalityOracle;
use nck_compile::{compile, CompilerOptions};
use nck_core::SolutionQuality;
use nck_problems::{Graph, KSat, MinVertexCover};

const READS: usize = 100;

fn main() {
    let device = AnnealerDevice::advantage_4_1();

    // ----- 1. hard/soft weight ratio ------------------------------
    println!("Ablation 1 — hard-constraint weight W (min vertex cover, 15 vertices)");
    println!("sound W for this program is 1 + #soft = 16; below that, hard");
    println!("violations can win; far above, the soft gap shrinks relative to");
    println!("the noise scale (the paper's mixed-problem effect):\n");
    let g = Graph::clique_chain(5);
    let problem = MinVertexCover::new(g);
    let program = problem.program();
    let oracle = OptimalityOracle::build(&program);
    let mut rows = Vec::new();
    for w in [1.0f64, 4.0, 16.0, 64.0, 256.0] {
        let compiled =
            compile(&program, &CompilerOptions { hard_weight: Some(w), ..Default::default() })
                .unwrap();
        let result = device.sample_qubo(&compiled.qubo, READS, 17).unwrap();
        let (mut opt, mut sub, mut inc) = (0, 0, 0);
        for s in &result.samples {
            match oracle.classify(&program, compiled.program_assignment(&s.assignment)) {
                SolutionQuality::Optimal => opt += 1,
                SolutionQuality::Suboptimal => sub += 1,
                SolutionQuality::Incorrect => inc += 1,
            }
        }
        rows.push(vec![format!("{w}"), format!("{opt}%"), format!("{sub}%"), format!("{inc}%")]);
    }
    print_table(&["W", "optimal", "suboptimal", "incorrect"], &rows);

    // ----- 2. chain strength --------------------------------------
    println!("\nAblation 2 — chain strength multiplier (same problem):\n");
    let compiled = compile(&program, &CompilerOptions::default()).unwrap();
    let mut rows = Vec::new();
    for scale in [0.25f64, 0.5, 1.0, 2.0, 4.0] {
        let mut dev = AnnealerDevice::advantage_4_1();
        dev.chain_strength_scale = scale;
        let result = dev.sample_qubo(&compiled.qubo, READS, 19).unwrap();
        let (mut opt, mut sub, mut inc) = (0, 0, 0);
        for s in &result.samples {
            match oracle.classify(&program, compiled.program_assignment(&s.assignment)) {
                SolutionQuality::Optimal => opt += 1,
                SolutionQuality::Suboptimal => sub += 1,
                SolutionQuality::Incorrect => inc += 1,
            }
        }
        rows.push(vec![
            format!("{scale}"),
            fmt_f(result.chain_break_fraction * 100.0, 1) + "%",
            format!("{opt}%"),
            format!("{sub}%"),
            format!("{inc}%"),
        ]);
    }
    print_table(&["strength x", "chain breaks", "optimal", "suboptimal", "incorrect"], &rows);

    // ----- 2b. sample post-processing ------------------------------
    println!("\nAblation 2b — steepest-descent sample polish (same problem,");
    println!("deliberately under-annealed to expose the effect):\n");
    let mut rows = Vec::new();
    for post in [false, true] {
        let mut dev = AnnealerDevice::advantage_4_1();
        dev.sa = nck_anneal::SaParams { num_sweeps: 8, beta_min: 0.1, beta_max: 2.0 };
        dev.postprocess = post;
        let result = dev.sample_qubo(&compiled.qubo, READS, 21).unwrap();
        let (mut opt, mut sub, mut inc) = (0, 0, 0);
        for s in &result.samples {
            match oracle.classify(&program, compiled.program_assignment(&s.assignment)) {
                SolutionQuality::Optimal => opt += 1,
                SolutionQuality::Suboptimal => sub += 1,
                SolutionQuality::Incorrect => inc += 1,
            }
        }
        rows.push(vec![
            if post { "on" } else { "off" }.to_string(),
            fmt_f(result.best().energy, 2),
            format!("{opt}%"),
            format!("{sub}%"),
            format!("{inc}%"),
        ]);
    }
    print_table(&["polish", "best energy", "optimal", "suboptimal", "incorrect"], &rows);

    // ----- 3. QAOA depth ------------------------------------------
    println!("\nAblation 3 — QAOA layers p (ideal device, 10-vertex max cut ring):\n");
    let ring = nck_problems::MaxCut::new(Graph::cycle(10));
    let mc_program = ring.program();
    let mc_compiled = compile(&mc_program, &CompilerOptions::default()).unwrap();
    let ideal = nck_circuit::GateModelDevice::ideal(10);
    let mut rows = Vec::new();
    for p in [1usize, 2, 3] {
        let run = ideal.run_qaoa(&mc_compiled.qubo, p, 1024, 60 + 20 * p, 23).unwrap();
        let cut = ring.cut_size(&run.best_assignment);
        rows.push(vec![
            p.to_string(),
            fmt_f(run.expectation, 3),
            run.depth.to_string(),
            format!("{cut}/10"),
        ]);
    }
    print_table(&["p", "<H> optimized", "logical depth", "best cut"], &rows);

    // ----- 4. SAT encodings ---------------------------------------
    println!("\nAblation 4 — 3-SAT encodings (n=10 vars, m=20 clauses):\n");
    let sat = KSat::random_3sat(10, 20, 5);
    let mut rows = Vec::new();
    for (name, program) in
        [("dual-rail", sat.program_dual_rail()), ("repeated-variable", sat.program_repeated())]
    {
        let compiled = compile(&program, &CompilerOptions::default()).unwrap();
        let oracle = OptimalityOracle::build(&program);
        let result = device.sample_qubo(&compiled.qubo, READS, 29).unwrap();
        let best = result
            .samples
            .iter()
            .map(|s| oracle.classify(&program, compiled.program_assignment(&s.assignment)))
            .max()
            .unwrap();
        rows.push(vec![
            name.to_string(),
            program.constraints().len().to_string(),
            program.num_nonsymmetric().to_string(),
            compiled.num_qubo_vars().to_string(),
            compiled.num_ancillas.to_string(),
            best.to_string(),
        ]);
    }
    print_table(
        &["encoding", "constraints", "shapes", "qubo vars", "ancillas", "best of 100"],
        &rows,
    );
}
