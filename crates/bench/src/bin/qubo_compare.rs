//! §VI-B: generated versus manually produced QUBOs.
//!
//! For each problem, compiles the NchooseK program and compares the
//! generated QUBO with the handcrafted one: variable counts (ancilla
//! overhead), term counts, and — on instances small enough to
//! enumerate — whether the two have identical ground-state sets over
//! the shared variables.
//!
//! Run with: `cargo run --release -p nck-bench --bin qubo_compare`

use nck_bench::print_table;
use nck_compile::{compile, CompilerOptions};
use nck_core::Program;
use nck_problems::{
    CliqueCover, ExactCover, Graph, KSat, MapColoring, MaxCut, MinSetCover, MinVertexCover,
};
use nck_qubo::{solve_exhaustive, Qubo};
use std::collections::HashSet;

fn compare(
    name: &str,
    program: &Program,
    hand: &Qubo,
    comparable: bool,
    rows: &mut Vec<Vec<String>>,
) {
    let compiled = compile(program, &CompilerOptions::default()).expect("compiles");
    let gen = &compiled.qubo;
    let n = program.num_vars();
    let ground_match = if !comparable {
        // The hand formulation uses a different variable space (e.g.
        // the SAT→MIS reduction's literal-occurrence nodes), so
        // minimizer sets are not directly comparable.
        "n/a (diff. vars)".to_string()
    } else if compiled.num_qubo_vars() <= 22 && hand.num_vars() <= 22 {
        let mask = (1u64 << n) - 1;
        let a: HashSet<u64> = solve_exhaustive(gen).minimizers.iter().map(|&b| b & mask).collect();
        let b: HashSet<u64> = solve_exhaustive(hand).minimizers.iter().map(|&b| b & mask).collect();
        if a == b {
            "yes".to_string()
        } else {
            "NO".to_string()
        }
    } else {
        "(too large)".to_string()
    };
    rows.push(vec![
        name.to_string(),
        n.to_string(),
        format!("{} (+{} anc)", compiled.num_qubo_vars(), compiled.num_ancillas),
        format!("{} (+{} anc)", hand.num_vars(), hand.num_vars().saturating_sub(n)),
        gen.num_terms().to_string(),
        hand.num_terms().to_string(),
        ground_match,
    ]);
}

fn main() {
    let mut rows = Vec::new();
    let mvc = MinVertexCover::new(Graph::new(5, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)]));
    compare("Min. Vertex Cover", &mvc.program(), &mvc.handcrafted_qubo(), true, &mut rows);
    let mc = MaxCut::new(Graph::cycle(6));
    compare("Max Cut", &mc.program(), &mc.handcrafted_qubo(), true, &mut rows);
    let ec = ExactCover::new(4, vec![vec![0, 1], vec![2, 3], vec![1, 2], vec![0, 1, 2], vec![3]]);
    compare("Exact Cover", &ec.program(), &ec.handcrafted_qubo(), true, &mut rows);
    let msc = MinSetCover::new(4, vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]]);
    compare("Min. Set Cover", &msc.program(), &msc.handcrafted_qubo(), true, &mut rows);
    let map = MapColoring::new(Graph::path(3), 2);
    compare("Map Coloring", &map.program(), &map.handcrafted_qubo(), true, &mut rows);
    let cc = CliqueCover::new(Graph::new(4, [(0, 1), (2, 3)]), 2);
    compare("Clique Cover", &cc.program(), &cc.handcrafted_qubo(), true, &mut rows);
    let sat = KSat::random_3sat(4, 4, 7);
    compare(
        "3-SAT (dual rail)",
        &sat.program_dual_rail(),
        &sat.handcrafted_qubo(),
        false,
        &mut rows,
    );

    println!("§VI-B — generated vs handcrafted QUBOs");
    println!("(the paper: identical except SAT and min set cover, where the two");
    println!(" sides introduce different ancillas; 'ground match' compares the");
    println!(" minimizer sets projected onto the shared problem variables)\n");
    print_table(
        &[
            "problem",
            "nck vars",
            "generated vars",
            "handcrafted vars",
            "gen terms",
            "hand terms",
            "ground match",
        ],
        &rows,
    );
    println!();
    println!("XOR example (§VI-C): nck({{a,b,c}}, {{0,2}}) compiles to:");
    let mut p = Program::new();
    let vs = p.new_vars("v", 3).unwrap();
    p.nck(vs, [0, 2]).unwrap();
    let compiled = compile(&p, &CompilerOptions::default()).unwrap();
    println!(
        "  {} — {} ancilla(s), vs the paper's hand-derived",
        compiled.qubo, compiled.num_ancillas
    );
    println!("  f(a,b,c,k) = a + b + c + 4k - 2ab - 2ac - 4ak - 2bc - 4bk + 4ck");
}
