//! Figure 11: QAOA job run time versus number of variables (box plot).
//!
//! §VIII-C: each QAOA execution submits ~25–35 jobs of 4000 shots;
//! jobs "took between 7 and 23 seconds. We were unable to determine any
//! correlation between problem size and time per job." This binary
//! collects the modeled per-job device times across problem sizes and
//! prints box-plot statistics per variable count — the expected shape
//! is a flat band across sizes.
//!
//! Run with: `cargo run --release -p nck-bench --bin fig11`

use nck_bench::{box_stats, fmt_f, print_table};
use nck_circuit::QaoaTimingModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("Figure 11 — QAOA per-job run time vs problem size (box plot stats)\n");
    let model = QaoaTimingModel::ibmq_default();
    let mut rows = Vec::new();
    let mut all_means = Vec::new();
    for (i, vars) in [3usize, 9, 15, 21, 27, 33, 45, 63].into_iter().enumerate() {
        // ~30 jobs per QAOA execution (§VIII-C), one execution modeled
        // per size with a size-dependent seed.
        let mut rng = StdRng::seed_from_u64(11_000 + i as u64);
        let times: Vec<f64> = (0..30).map(|_| model.job_time(&mut rng).as_secs_f64()).collect();
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        all_means.push((vars as f64, mean));
        let (min, q1, med, q3, max) = box_stats(times);
        rows.push(vec![
            vars.to_string(),
            fmt_f(min, 1),
            fmt_f(q1, 1),
            fmt_f(med, 1),
            fmt_f(q3, 1),
            fmt_f(max, 1),
        ]);
    }
    print_table(&["variables", "min (s)", "q1", "median", "q3", "max"], &rows);

    // Size ↔ time correlation should be negligible.
    let n = all_means.len() as f64;
    let mx = all_means.iter().map(|p| p.0).sum::<f64>() / n;
    let my = all_means.iter().map(|p| p.1).sum::<f64>() / n;
    let cov: f64 = all_means.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    let vx: f64 = all_means.iter().map(|p| (p.0 - mx).powi(2)).sum();
    let vy: f64 = all_means.iter().map(|p| (p.1 - my).powi(2)).sum();
    let corr = if vx == 0.0 || vy == 0.0 { 0.0 } else { cov / (vx * vy).sqrt() };
    println!("\nmean-job-time vs variables correlation: {corr:.3} (paper: none discernible)");
    println!("whole-execution budget: ~30 jobs x (7-23 s device + 2-3 s classical) ≈ 300-780 s");
    println!("(paper: \"roughly 500 seconds on IBM's servers, not counting queue time\")");
}
