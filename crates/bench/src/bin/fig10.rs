//! Figure 10: number of NchooseK constraints versus transpiled circuit
//! depth, per problem type.
//!
//! §VIII-B: "The general trend shows increasing depth as more variables
//! and constraints are added during problem scaling, albeit at
//! different rates per problem, i.e., in a problem-specific manner."
//! This binary prints the (constraints, depth) series per problem so
//! the per-family slopes are visible, and reports a simple per-problem
//! correlation.
//!
//! Run with: `cargo run --release -p nck-bench --bin fig10`

use nck_bench::{fmt_f, print_table, run_gate_study};
use std::collections::BTreeMap;

/// Pearson correlation of (x, y) pairs (0 when degenerate).
fn pearson(pts: &[(f64, f64)]) -> f64 {
    let n = pts.len() as f64;
    if pts.len() < 2 {
        return 0.0;
    }
    let mx = pts.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pts.iter().map(|p| p.1).sum::<f64>() / n;
    let cov: f64 = pts.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    let vx: f64 = pts.iter().map(|p| (p.0 - mx).powi(2)).sum();
    let vy: f64 = pts.iter().map(|p| (p.1 - my).powi(2)).sum();
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx * vy).sqrt()
    }
}

fn main() {
    println!("Figure 10 — constraints vs transpiled circuit depth, per problem\n");
    let outcomes = run_gate_study(4000, 30);
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .filter(|o| o.quality != "unmappable")
        .map(|o| {
            vec![
                o.problem.clone(),
                o.label.clone(),
                o.constraints.to_string(),
                o.depth.to_string(),
                o.quality.clone(),
            ]
        })
        .collect();
    print_table(&["problem", "instance", "constraints", "depth", "result"], &rows);

    // Per-problem constraint↔depth correlation (the paper's "general
    // trend ... albeit at different rates per problem").
    let mut series: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    for o in outcomes.iter().filter(|o| o.quality != "unmappable") {
        series.entry(o.problem.clone()).or_default().push((o.constraints as f64, o.depth as f64));
    }
    println!("\nper-problem Pearson correlation (constraints vs depth):");
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|(name, pts)| {
            let slope = if pts.len() >= 2 {
                let dx = pts.last().unwrap().0 - pts[0].0;
                let dy = pts.last().unwrap().1 - pts[0].1;
                if dx != 0.0 {
                    dy / dx
                } else {
                    0.0
                }
            } else {
                0.0
            };
            vec![name.clone(), pts.len().to_string(), fmt_f(pearson(pts), 3), fmt_f(slope, 2)]
        })
        .collect();
    print_table(&["problem", "points", "correlation", "depth/constraint"], &rows);
}
