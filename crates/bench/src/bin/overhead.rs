//! Fault-free supervisor overhead: a supervised single-rung run versus
//! the plain `ExecutionPlan::run`, on both the annealer and classical
//! paths.
//!
//! The resilience supervisor adds one circuit-breaker admission, one
//! `RunCtx` allocation, a deadline-sliced `CancelToken`, and a handful
//! of journal pushes per run. The acceptance bar is ≤ 2 % overhead on a
//! fault-free run; this harness measures it with wall-clock medians
//! (the vendored criterion crate is a type-check-only stub, so the
//! `supervisor_bench` criterion bench smoke-runs the same arms without
//! timing them).
//!
//! Run with: `cargo run --release -p nck-bench --bin overhead`

use nck_anneal::AnnealerDevice;
use nck_bench::{fmt_f, print_table};
use nck_exec::{AnnealerBackend, Backend, ClassicalBackend, ExecutionPlan, Supervisor};
use nck_problems::{Graph, MinVertexCover};
use std::hint::black_box;
use std::time::Instant;

const BATCHES: usize = 21;

/// Wall time (µs per iteration) of `iters` calls to `f`.
fn time_us(iters: usize, base_seed: u64, mut f: impl FnMut(u64)) -> f64 {
    let t0 = Instant::now();
    for i in 0..iters {
        f(base_seed + i as u64);
    }
    t0.elapsed().as_secs_f64() * 1e6 / iters as f64
}

/// Interleaved A/B measurement: each batch times both arms
/// back-to-back on the same seeds (order alternating per batch), then
/// the minimum over batches estimates each arm — scheduler noise and
/// machine-load spikes only ever add time, so the fastest batch is the
/// closest to the true cost. Returns (plain µs, supervised µs).
fn interleaved(
    iters: usize,
    mut plain: impl FnMut(u64),
    mut supervised: impl FnMut(u64),
) -> (f64, f64) {
    let mut best_p = f64::INFINITY;
    let mut best_s = f64::INFINITY;
    for b in 0..BATCHES {
        let base = (b * iters) as u64;
        let (p, s) = if b % 2 == 0 {
            let p = time_us(iters, base, &mut plain);
            let s = time_us(iters, base, &mut supervised);
            (p, s)
        } else {
            let s = time_us(iters, base, &mut supervised);
            let p = time_us(iters, base, &mut plain);
            (p, s)
        };
        best_p = best_p.min(p);
        best_s = best_s.min(s);
    }
    (best_p, best_s)
}

fn main() {
    // Min vertex cover on a 12-vertex circulant graph: small enough to
    // iterate thousands of times, large enough that both backends do
    // real work. One shared plan so every arm measures only the
    // backend run (compile and embed caches warmed below).
    let program = MinVertexCover::new(Graph::circulant(12, 4)).program();
    let plan = ExecutionPlan::new(&program);
    let annealer = AnnealerBackend::new(AnnealerDevice::ideal(64), 64);
    let classical = ClassicalBackend::default();
    let sup = Supervisor::default();
    plan.run(&annealer, 0).unwrap();
    plan.run(&classical, 0).unwrap();

    println!("Fault-free supervisor overhead (supervised single-rung ladder vs");
    println!("plain plan.run; best of {BATCHES} interleaved A/B batches per arm):\n");
    let mut rows = Vec::new();
    let mut worst: f64 = 0.0;
    for (name, iters, backend) in [
        ("annealer", 60usize, &annealer as &dyn Backend),
        ("classical", 3000, &classical as &dyn Backend),
    ] {
        let (plain, supervised) = interleaved(
            iters,
            |seed| {
                black_box(plan.run(black_box(backend), seed).unwrap());
            },
            |seed| {
                black_box(sup.run(&plan, &[black_box(backend)], seed).unwrap());
            },
        );
        let overhead = (supervised / plain - 1.0) * 100.0;
        worst = worst.max(overhead);
        rows.push(vec![
            name.to_string(),
            fmt_f(plain, 2),
            fmt_f(supervised, 2),
            format!("{overhead:+.2}%"),
        ]);
    }
    print_table(&["backend", "plain (us/run)", "supervised (us/run)", "overhead"], &rows);
    println!("\nworst-case overhead: {worst:+.2}% (acceptance bar: <= 2%)");
}
