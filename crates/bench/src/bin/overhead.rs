//! Fault-free supervisor and durability overhead: a supervised
//! single-rung run versus the plain `ExecutionPlan::run`, and a durable
//! (WAL-journaled, checkpointed) run versus plain, on both the annealer
//! and classical paths.
//!
//! The resilience supervisor adds one circuit-breaker admission, one
//! `RunCtx` allocation, a deadline-sliced `CancelToken`, and a handful
//! of journal pushes per run. The acceptance bar is ≤ 2 % overhead on a
//! fault-free run; this harness measures it with wall-clock medians
//! (the vendored criterion crate is a type-check-only stub, so the
//! `supervisor_bench` criterion bench smoke-runs the same arms without
//! timing them).
//!
//! The durable arms add the full `nck-store` pipeline — an fsynced WAL
//! append per journal event, periodic mid-solve checkpoints, and a
//! final atomic snapshot — against workloads sized like the runs one
//! would actually checkpoint (tens of milliseconds per solve; an fsync
//! on ext4 costs ~100–200 µs, so journaling a microsecond-scale solve
//! is dominated by the disk, not the solver). The acceptance bar is
//! ≤ 5 % fault-free durability overhead, and the measured numbers are
//! emitted to `BENCH_durability.json` for CI trend tracking.
//!
//! Run with: `cargo run --release -p nck-bench --bin overhead`

use nck_anneal::AnnealerDevice;
use nck_bench::{fmt_f, print_table};
use nck_exec::{AnnealerBackend, Backend, ClassicalBackend, ExecutionPlan, Supervisor};
use nck_problems::{Graph, MinVertexCover};
use std::hint::black_box;
use std::time::Instant;

const BATCHES: usize = 21;
/// Durable runs take tens of milliseconds each (they are sized so the
/// solve dominates the fsyncs), so the durability section uses fewer,
/// heavier batches.
const DURABLE_BATCHES: usize = 9;
/// Checkpoint cadence for the durable arms: coarse enough that a
/// 2048-read anneal persists a handful of checkpoints, not dozens.
const DURABLE_CHECKPOINT_INTERVAL: u64 = 512;

/// Wall time (µs per iteration) of `iters` calls to `f`.
fn time_us(iters: usize, base_seed: u64, mut f: impl FnMut(u64)) -> f64 {
    let t0 = Instant::now();
    for i in 0..iters {
        f(base_seed + i as u64);
    }
    t0.elapsed().as_secs_f64() * 1e6 / iters as f64
}

/// Interleaved A/B measurement: each batch times both arms
/// back-to-back on the same seeds (order alternating per batch), then
/// the minimum over batches estimates each arm — scheduler noise and
/// machine-load spikes only ever add time, so the fastest batch is the
/// closest to the true cost. Returns (A µs, B µs).
fn interleaved(
    batches: usize,
    iters: usize,
    mut a: impl FnMut(u64),
    mut b: impl FnMut(u64),
) -> (f64, f64) {
    let mut best_a = f64::INFINITY;
    let mut best_b = f64::INFINITY;
    for batch in 0..batches {
        let base = (batch * iters) as u64;
        let (ta, tb) = if batch % 2 == 0 {
            let ta = time_us(iters, base, &mut a);
            let tb = time_us(iters, base, &mut b);
            (ta, tb)
        } else {
            let tb = time_us(iters, base, &mut b);
            let ta = time_us(iters, base, &mut a);
            (ta, tb)
        };
        best_a = best_a.min(ta);
        best_b = best_b.min(tb);
    }
    (best_a, best_b)
}

/// One measured durability arm, for the table and the JSON report.
struct DurableArm {
    backend: &'static str,
    workload: String,
    plain_us: f64,
    durable_us: f64,
}

impl DurableArm {
    fn overhead_pct(&self) -> f64 {
        (self.durable_us / self.plain_us - 1.0) * 100.0
    }
}

fn supervised_section() -> f64 {
    // Min vertex cover on a 12-vertex circulant graph: small enough to
    // iterate thousands of times, large enough that both backends do
    // real work. One shared plan so every arm measures only the
    // backend run (compile and embed caches warmed below).
    let program = MinVertexCover::new(Graph::circulant(12, 4)).program();
    let plan = ExecutionPlan::new(&program);
    let annealer = AnnealerBackend::new(AnnealerDevice::ideal(64), 64);
    let classical = ClassicalBackend::default();
    let sup = Supervisor::default();
    plan.run(&annealer, 0).unwrap();
    plan.run(&classical, 0).unwrap();

    println!("Fault-free supervisor overhead (supervised single-rung ladder vs");
    println!("plain plan.run; best of {BATCHES} interleaved A/B batches per arm):\n");
    let mut rows = Vec::new();
    let mut worst: f64 = 0.0;
    for (name, iters, backend) in [
        ("annealer", 60usize, &annealer as &dyn Backend),
        ("classical", 3000, &classical as &dyn Backend),
    ] {
        let (plain, supervised) = interleaved(
            BATCHES,
            iters,
            |seed| {
                black_box(plan.run(black_box(backend), seed).unwrap());
            },
            |seed| {
                black_box(sup.run(&plan, &[black_box(backend)], seed).unwrap());
            },
        );
        let overhead = (supervised / plain - 1.0) * 100.0;
        worst = worst.max(overhead);
        rows.push(vec![
            name.to_string(),
            fmt_f(plain, 2),
            fmt_f(supervised, 2),
            format!("{overhead:+.2}%"),
        ]);
    }
    print_table(&["backend", "plain (us/run)", "supervised (us/run)", "overhead"], &rows);
    println!("\nworst-case overhead: {worst:+.2}% (acceptance bar: <= 2%)");
    worst
}

/// Time one durable arm: plain `plan.run` versus
/// `Supervisor::run_durable` into a fresh store directory per run
/// (create + journal + checkpoints + snapshot + teardown all counted —
/// that is the whole price of durability, not just the solver delta).
fn durable_arm(
    backend_name: &'static str,
    workload: String,
    iters: usize,
    plan: &ExecutionPlan,
    backend: &dyn Backend,
) -> DurableArm {
    let sup =
        Supervisor { checkpoint_interval: DURABLE_CHECKPOINT_INTERVAL, ..Supervisor::default() };
    let scratch = std::env::temp_dir().join(format!("nck-overhead-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&scratch);
    let (plain_us, durable_us) = interleaved(
        DURABLE_BATCHES,
        iters,
        |seed| {
            black_box(plan.run(black_box(backend), seed).unwrap());
        },
        |seed| {
            let dir = scratch.join(format!("{backend_name}-{seed}"));
            black_box(sup.run_durable(plan, &[black_box(backend)], seed, &dir).unwrap());
            std::fs::remove_dir_all(&dir).unwrap();
        },
    );
    let _ = std::fs::remove_dir_all(&scratch);
    DurableArm { backend: backend_name, workload, plain_us, durable_us }
}

fn durable_section() -> Vec<DurableArm> {
    // The durability arms run workloads sized like runs one would
    // actually checkpoint: a 2048-read anneal (~140 ms) persisting a
    // checkpoint every 512 reads, and an exact branch-and-bound solve
    // (~100 ms) persisting each incumbent improvement. Both journal
    // every supervisor event through the fsynced WAL and finish with
    // an atomic snapshot.
    println!("\nFault-free durability overhead (run_durable vs plain plan.run;");
    println!("best of {DURABLE_BATCHES} interleaved A/B batches per arm):\n");

    let ann_program = MinVertexCover::new(Graph::circulant(12, 4)).program();
    let ann_plan = ExecutionPlan::new(&ann_program);
    let annealer = AnnealerBackend::new(AnnealerDevice::ideal(64), 2048);
    ann_plan.run(&annealer, 0).unwrap();

    let cls_program = MinVertexCover::new(Graph::circulant(56, 16)).program();
    let cls_plan = ExecutionPlan::new(&cls_program);
    let classical = ClassicalBackend::default();
    cls_plan.run(&classical, 0).unwrap();

    let arms = vec![
        durable_arm(
            "annealer",
            "circulant(12,4), 2048 reads, checkpoint every 512".to_string(),
            2,
            &ann_plan,
            &annealer,
        ),
        durable_arm(
            "classical",
            "circulant(56,16), checkpoint per incumbent".to_string(),
            2,
            &cls_plan,
            &classical,
        ),
    ];

    let rows: Vec<Vec<String>> = arms
        .iter()
        .map(|a| {
            vec![
                a.backend.to_string(),
                fmt_f(a.plain_us / 1e3, 2),
                fmt_f(a.durable_us / 1e3, 2),
                format!("{:+.2}%", a.overhead_pct()),
            ]
        })
        .collect();
    print_table(&["backend", "plain (ms/run)", "durable (ms/run)", "overhead"], &rows);
    arms
}

/// Hand-rolled JSON (no serde in the dependency closure): the measured
/// durability arms plus the acceptance verdict, one object per arm.
fn durability_json(arms: &[DurableArm], worst: f64, bar: f64) -> String {
    let mut out = String::from("{\n  \"bench\": \"durability-overhead\",\n  \"arms\": [\n");
    for (i, a) in arms.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"backend\": \"{}\", \"workload\": \"{}\", \"plain_us\": {:.1}, \
             \"durable_us\": {:.1}, \"overhead_pct\": {:.2}}}{}\n",
            a.backend,
            a.workload,
            a.plain_us,
            a.durable_us,
            a.overhead_pct(),
            if i + 1 < arms.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"worst_overhead_pct\": {:.2},\n  \"bar_pct\": {:.1},\n  \"pass\": {}\n}}\n",
        worst,
        bar,
        worst <= bar
    ));
    out
}

fn main() {
    supervised_section();
    let arms = durable_section();

    let worst = arms.iter().map(DurableArm::overhead_pct).fold(0.0f64, f64::max);
    let bar = 5.0;
    println!("\nworst-case durability overhead: {worst:+.2}% (acceptance bar: <= {bar}%)");

    let json = durability_json(&arms, worst, bar);
    let path = "BENCH_durability.json";
    std::fs::write(path, &json).unwrap();
    println!("wrote {path}");
}
