//! Figure 9: transpiled circuit depth per problem on the (simulated)
//! ibmq_brooklyn, with result-quality markers.
//!
//! Depth is "the number of gates in the longest path of a single QAOA
//! circuit" (§VIII-B) after layout, SWAP routing, and basis
//! decomposition — each QAOA execution runs ~30 structurally identical
//! circuits differing only in gate parameters, so one transpilation
//! represents them all. Deeper circuits accumulate more depolarizing
//! error and decoherence exposure, driving the correctness trend; the
//! paper also notes the relation is not strict (a deeper circuit
//! occasionally succeeds where a shallower one failed).
//!
//! Run with: `cargo run --release -p nck-bench --bin fig9`

use nck_bench::{fmt_f, print_table, run_gate_study};

fn main() {
    println!("Figure 9 — simulated ibmq_brooklyn, QAOA p=1, 4000 shots");
    println!("transpiled circuit depth per problem, with result-quality markers\n");
    let outcomes = run_gate_study(4000, 30);
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .filter(|o| o.quality != "unmappable")
        .map(|o| {
            vec![
                o.problem.clone(),
                o.label.clone(),
                o.depth.to_string(),
                o.num_swaps.to_string(),
                fmt_f(o.fidelity, 4),
                o.quality.clone(),
            ]
        })
        .collect();
    print_table(&["problem", "instance", "depth", "swaps", "fidelity", "result"], &rows);
}
