//! Figure 12: classical solve time of minimum vertex cover on
//! circulant graphs, 30 runs per size — plus the §VIII-C observation
//! that solving the *translated QUBO* classically is dramatically
//! slower than solving the constraints directly.
//!
//! The paper: Z3 solves every benchmark directly in under three
//! seconds and scales "very close to a polynomial", but given the QUBO
//! form, "10 vertices of degree 3 takes less than a second while 20
//! vertices takes a minute and a half, and 30 vertices takes multiple
//! hours". We reproduce the *shape* with our exact solvers: direct
//! branch-and-bound over constraints vs branch-and-bound over the
//! compiled QUBO (node-capped so the binary terminates).
//!
//! Run with: `cargo run --release -p nck-bench --bin fig12`

use nck_bench::{fmt_f, print_table};
use nck_classical::{minimize, solve, QuboBbOptions, SolverOptions};
use nck_compile::{compile, CompilerOptions};
use nck_exec::{BackendMetrics, ClassicalBackend, ExecutionPlan};
use nck_problems::{Graph, MinVertexCover};
use std::time::Instant;

fn main() {
    println!("Figure 12 — direct classical solve time, min vertex cover on");
    println!("circulant graphs of degree 4, 30 runs per size\n");
    let backend = ClassicalBackend::default();
    let mut rows = Vec::new();
    let mut series: Vec<(f64, f64)> = Vec::new();
    for n in [8usize, 16, 24, 32, 48, 64] {
        let g = Graph::circulant(n, 4);
        let program = MinVertexCover::new(g).program();
        let plan = ExecutionPlan::new(&program);
        let mut times = Vec::new();
        let mut cover_size = 0usize;
        for run in 0..30u64 {
            // The solve wall-time is the pipeline's sample stage; the
            // one-time QUBO compile is cached and not counted.
            let report = plan.run(&backend, run).unwrap();
            times.push(report.timings.sample.as_secs_f64() * 1e3);
            if let BackendMetrics::Classical { truncated, .. } = report.metrics {
                assert!(!truncated);
            }
            cover_size = report.assignment.iter().filter(|&&b| b).count();
        }
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let sd =
            (times.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / times.len() as f64).sqrt();
        series.push((n as f64, mean));
        rows.push(vec![n.to_string(), cover_size.to_string(), fmt_f(mean, 2), fmt_f(sd, 2)]);
    }
    print_table(&["vertices", "min cover", "mean (ms)", "sd (ms)"], &rows);

    // Log-log slope ≈ polynomial order of growth.
    let k = series.len();
    let (x0, y0) = (series[1].0.ln(), series[1].1.max(1e-3).ln());
    let (x1, y1) = (series[k - 1].0.ln(), series[k - 1].1.max(1e-3).ln());
    println!(
        "\nlog-log growth exponent ≈ {:.2} (paper: fits 'very close to a polynomial')",
        (y1 - y0) / (x1 - x0)
    );

    // §VIII-C companion: the same problems through the QUBO translation.
    println!("\nClassical solve of the *translated QUBO* (branch and bound, capped");
    println!("at 10M nodes) — the paper's observed blow-up:");
    let mut rows = Vec::new();
    for n in [8usize, 12, 16, 20] {
        let g = Graph::circulant(n, 4);
        let problem = MinVertexCover::new(g);
        let direct_t = Instant::now();
        let (_, _) = solve(&problem.program(), &SolverOptions::default());
        let direct = direct_t.elapsed().as_secs_f64() * 1e3;
        let compiled = compile(&problem.program(), &CompilerOptions::default()).unwrap();
        let qubo_t = Instant::now();
        let (_, stats) = minimize(&compiled.qubo, &QuboBbOptions { node_limit: 10_000_000 });
        let qubo = qubo_t.elapsed().as_secs_f64() * 1e3;
        rows.push(vec![
            n.to_string(),
            fmt_f(direct, 2),
            format!("{}{}", fmt_f(qubo, 1), if stats.truncated { " (capped)" } else { "" }),
            fmt_f(qubo / direct.max(1e-3), 0),
        ]);
    }
    print_table(&["vertices", "direct (ms)", "via QUBO (ms)", "slowdown x"], &rows);
}
