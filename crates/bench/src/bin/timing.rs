//! §VIII-C timing: the per-stage pipeline breakdown, the D-Wave
//! access-time model, and the compiler's symmetric-constraint cache
//! ablation.
//!
//! The paper reports (a) ≈30 ms of QPU time per 100-sample job, with
//! the samples together costing slightly less than the single ~15 ms
//! programming step, and (b) that its unoptimized compiler
//! "redundantly computes QUBOs for symmetric constraints instead of
//! caching", making compilation 40–50× slower than a direct classical
//! solve. Our compiler has the cache; disabling it reproduces the
//! paper's waste. The per-stage CSV comes straight from the execution
//! pipeline's [`StageTimings`] instrumentation: one row per stage per
//! run, with the compile stage collapsing to the cache-probe cost
//! after the first seed.
//!
//! Run with: `cargo run --release -p nck-bench --bin timing`

use nck_anneal::{AnnealerDevice, TimingModel};
use nck_bench::{fmt_f, print_table};
use nck_classical::{solve, SolverOptions};
use nck_compile::{compile, CompilerOptions};
use nck_exec::{AnnealerBackend, ClassicalBackend, ExecutionPlan, StageTimings};
use nck_problems::{Graph, MinVertexCover};
use std::time::Instant;

fn main() {
    // --- Per-stage pipeline breakdown ----------------------------
    // Min vertex cover on a 16-vertex circulant graph, annealed over a
    // 5-seed sweep plus one classical run, all through one plan: the
    // program compiles once (every later row's compile stage is the
    // cache probe) and the annealer re-embeds only on the first seed.
    println!("Per-stage wall times (one CSV row per stage per run):");
    let g = Graph::circulant(16, 4);
    let program = MinVertexCover::new(g).program();
    let plan = ExecutionPlan::new(&program);
    let annealer = AnnealerBackend::new(AnnealerDevice::advantage_4_1(), 100);
    print!("{}", StageTimings::CSV_HEADER);
    println!(",compile_cache,embed_cache");
    let emit = |label: String, t: &StageTimings| {
        for line in t.csv_rows(&label).lines() {
            println!("{line},{},{}", t.compile_cache_hit, t.embed_cache_hit);
        }
    };
    match plan.run_seeds(&annealer, &[11, 12, 13, 14, 15]) {
        Ok(reports) => {
            for (i, r) in reports.iter().enumerate() {
                emit(format!("annealer/seed{}", 11 + i), &r.timings);
            }
        }
        Err(e) => println!("# annealer sweep failed: {e}"),
    }
    match plan.run(&ClassicalBackend::default(), 0) {
        Ok(r) => emit("classical".to_string(), &r.timings),
        Err(e) => println!("# classical run failed: {e}"),
    }
    let stats = plan.stats();
    println!(
        "# plan cache: {} compile(s), {} compile cache hit(s), {} oracle build(s)",
        stats.compiles, stats.compile_cache_hits, stats.oracle_builds
    );
    println!();

    // --- D-Wave access time model --------------------------------
    let t = TimingModel::dwave_default();
    println!("D-Wave Advantage access-time model (§VIII-C):");
    println!("  programming step       : {:?}", t.programming);
    println!(
        "  per sample             : {:?} (20 µs anneal + 3.5x readout + 20 µs delay)",
        t.per_sample()
    );
    println!(
        "  100 samples            : {:?} (slightly less than programming)",
        t.per_sample() * 100
    );
    println!("  post-processing        : {:?}", t.postprocess);
    println!("  total per 100-read job : {:?} (paper: ~30 ms)", t.qpu_access_time(100));
    println!();

    // --- Compiler cache ablation ---------------------------------
    println!("QUBO compilation vs direct classical solve (min vertex cover on");
    println!("circulant graphs; cache off = the paper's redundant recompilation):\n");
    let mut rows = Vec::new();
    for n in [16usize, 24, 32, 48] {
        let g = Graph::circulant(n, 4);
        let program = MinVertexCover::new(g).program();

        let t0 = Instant::now();
        let cached = compile(&program, &CompilerOptions::default()).unwrap();
        let with_cache = t0.elapsed().as_secs_f64() * 1e3;

        let t0 = Instant::now();
        let uncached = compile(
            &program,
            &CompilerOptions { use_cache: false, use_closed_forms: false, ..Default::default() },
        )
        .unwrap();
        let without = t0.elapsed().as_secs_f64() * 1e3;

        let t0 = Instant::now();
        let _ = solve(&program, &SolverOptions::default());
        let direct = t0.elapsed().as_secs_f64() * 1e3;

        assert_eq!(cached.qubo, uncached.qubo);
        rows.push(vec![
            n.to_string(),
            program.constraints().len().to_string(),
            format!("{} hits / {} misses", cached.stats.cache_hits, cached.stats.cache_misses),
            fmt_f(with_cache, 2),
            fmt_f(without, 2),
            fmt_f(without / with_cache.max(1e-3), 1),
            fmt_f(direct, 2),
        ]);
    }
    print_table(
        &[
            "vertices",
            "constraints",
            "cache use",
            "compile+cache (ms)",
            "compile no-cache (ms)",
            "cache speedup x",
            "direct solve (ms)",
        ],
        &rows,
    );
    println!("\n(paper: its prototype redundantly recompiled symmetric constraints,");
    println!(" costing 40-50x a direct Z3 solve; with the cache, compile cost is a");
    println!(" constant two SMT searches per problem, and the redundant-recompile");
    println!(" cost grows linearly with the constraint count, as shown above —");
    println!(" absolute ratios differ from the paper because our exact solver is");
    println!(" slower than Z3 while our compiler is faster than its prototype)");
}
