//! Figure 8: qubits used per problem on the (simulated) IBM Q
//! ibmq_brooklyn, with optimal / suboptimal / incorrect markers.
//!
//! Each instance runs QAOA (p = 1, 4000 shots) once and returns a
//! single result, per the paper's protocol. Instances needing more
//! than the device's qubits are reported as unmappable. Expect the
//! paper's shape: optimal at small scale, then suboptimal, then
//! incorrect — "there seems to be a discrete barrier to optimal
//! solutions" — with everything failing earlier than on the annealer.
//!
//! Run with: `cargo run --release -p nck-bench --bin fig8`

use nck_bench::{print_table, run_gate_study};

fn main() {
    println!("Figure 8 — simulated ibmq_brooklyn (65 qubits), QAOA p=1, 4000 shots");
    println!("qubits used per problem, with result-quality markers\n");
    let outcomes = run_gate_study(4000, 30);
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| vec![o.problem.clone(), o.label.clone(), o.qubits.to_string(), o.quality.clone()])
        .collect();
    print_table(&["problem", "instance", "qubits", "result"], &rows);
}
