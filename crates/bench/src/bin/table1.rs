//! Table I: complexity comparison across the seven problems.
//!
//! For each problem, prints the complexity class, the number of
//! mutually non-symmetric constraints (Definition 7), the total number
//! of NchooseK constraints, and the number of handcrafted QUBO terms,
//! measured on concrete instances at two sizes so the growth trends of
//! the paper's asymptotic columns are visible.
//!
//! Run with: `cargo run --release -p nck-bench --bin table1`

use nck_bench::print_table;
use nck_problems::{
    CliqueCover, ExactCover, Graph, KSat, MapColoring, MaxCut, MinSetCover, MinVertexCover,
    TableCounts,
};

fn row(name: &str, class: &str, asym: &str, size: String, c: TableCounts) -> Vec<String> {
    vec![
        name.to_string(),
        class.to_string(),
        asym.to_string(),
        size,
        c.nonsymmetric.to_string(),
        c.nck_constraints.to_string(),
        c.handcrafted_qubo_terms.to_string(),
        c.num_vars.to_string(),
        c.handcrafted_qubo_vars.to_string(),
    ]
}

fn main() {
    let mut rows = Vec::new();
    // 1. Exact Cover — n elements, N subsets.
    for (n, extra) in [(6usize, 3usize), (12, 6)] {
        let ec = ExactCover::random(n, extra, 1);
        rows.push(row(
            "Exact Cover",
            "NP-C",
            "n / n / nN^2",
            format!("n={n}, N={}", ec.subsets().len()),
            ec.counts(),
        ));
    }
    // 2. Minimum Set Cover — same sets (§VII).
    for (n, extra) in [(6usize, 3usize), (12, 6)] {
        let msc = MinSetCover::from_exact_cover(ExactCover::random(n, extra, 1));
        rows.push(row(
            "Min. Set Cover",
            "NP-H",
            "n / nN / nN^2",
            format!("n={n}, N={}", msc.subsets().len()),
            msc.counts(),
        ));
    }
    // 3. Minimum Vertex Cover.
    for k in [4usize, 8] {
        let g = Graph::clique_chain(k);
        let size = format!("|V|={}, |E|={}", g.num_vertices(), g.num_edges());
        rows.push(row(
            "Min. Vertex Cover",
            "NP-H",
            "2 / |V|+|E| / 3|E|+|V|",
            size,
            MinVertexCover::new(g).counts(),
        ));
    }
    // 4. Map Coloring (3 colors).
    for k in [3usize, 6] {
        let g = Graph::clique_chain(k);
        let size = format!("|V|={}, |E|={}, n=3", g.num_vertices(), g.num_edges());
        rows.push(row(
            "Map Coloring",
            "NP-C",
            "2 / |V|+n|E| / |V|n(2n+1)/2+|E|n",
            size,
            MapColoring::new(g, 3).counts(),
        ));
    }
    // 5. Clique Cover (4 cliques on the edge-scaling family).
    for m in [18usize, 42] {
        let g = Graph::edge_scaling(m);
        let size = format!("|V|=12, |E|={m}, n=4");
        rows.push(row(
            "Clique Cover",
            "NP-C",
            "2 / n(|V|^2-|E|)+|V| / same",
            size,
            CliqueCover::new(g, 4).counts(),
        ));
    }
    // 6. 3-SAT (dual-rail).
    for (n, m) in [(6usize, 9usize), (12, 24)] {
        let sat = KSat::random_3sat(n, m, 2);
        rows.push(row(
            "3-SAT",
            "NP-C",
            "2 / n+m / km^2+k^2m",
            format!("n={n}, m={m}"),
            sat.counts(),
        ));
    }
    // 7. Max Cut.
    for k in [4usize, 8] {
        let g = Graph::clique_chain(k);
        let size = format!("|V|={}, |E|={}", g.num_vertices(), g.num_edges());
        rows.push(row("Max Cut", "NP-H", "1 / |E| / |E|+|V|", size, MaxCut::new(g).counts()));
    }
    println!("Table I — complexity comparison (measured on concrete instances)");
    println!("asymptotics column: non-symmetric / NchooseK constraints / QUBO terms\n");
    print_table(
        &[
            "problem",
            "class",
            "paper asymptotics",
            "instance",
            "non-sym",
            "nck cons",
            "QUBO terms",
            "nck vars",
            "QUBO vars",
        ],
        &rows,
    );
}
