//! Figure 7: percentage of optimal results versus physical qubits used
//! on the (simulated) D-Wave Advantage 4.1, per problem, plus the
//! §VIII-A clique-cover edge-scaling detail.
//!
//! Protocol (§VII): one job of 100 samples per instance; samples are
//! classified optimal / suboptimal / incorrect against the classical
//! oracle. The paper's headline shapes to look for:
//!
//! * mixed hard/soft problems (min vertex cover, min set cover) lose
//!   optimality sooner than hard-only problems, because the soft energy
//!   gap is small relative to the hard weight;
//! * physical qubits exceed logical variables through chains, more so
//!   for densely constrained problems;
//! * for clique cover, *adding* edges removes constraints and qubits
//!   and improves the success rate.
//!
//! Run with: `cargo run --release -p nck-bench --bin fig7`

use nck_anneal::AnnealerDevice;
use nck_bench::{
    clique_chain_max_cut, clique_chain_min_vertex_cover, edge_scaling_graphs, print_table,
    vertex_scaling_graphs,
};
use nck_classical::OptimalityOracle;
use nck_core::Program;
use nck_exec::{AnnealerBackend, BackendMetrics, ExecutionPlan};
use nck_problems::{
    CliqueCover, ExactCover, KSat, MapColoring, MaxCut, MinSetCover, MinVertexCover,
};

const NUM_READS: usize = 100;

struct Outcome {
    label: String,
    logical: usize,
    physical: usize,
    max_chain: usize,
    pct_optimal: f64,
    pct_suboptimal: f64,
    pct_incorrect: f64,
}

/// Run one instance through the unified pipeline: compile, anneal 100
/// reads, classify every sample.
fn run_instance(
    device: &AnnealerDevice,
    program: &Program,
    oracle: &OptimalityOracle,
    label: String,
    seed: u64,
) -> Option<Outcome> {
    let plan = ExecutionPlan::new(program).with_oracle(oracle.clone());
    let backend = AnnealerBackend::new(device.clone(), NUM_READS);
    let report = plan.run(&backend, seed).ok()?;
    let BackendMetrics::Annealer { physical_qubits, max_chain_length, .. } = report.metrics else {
        return None;
    };
    let pct = |c: usize| 100.0 * c as f64 / NUM_READS as f64;
    Some(Outcome {
        label,
        logical: report.compiled.num_qubo_vars(),
        physical: physical_qubits,
        max_chain: max_chain_length,
        pct_optimal: pct(report.tally.optimal),
        pct_suboptimal: pct(report.tally.suboptimal),
        pct_incorrect: pct(report.tally.incorrect),
    })
}

fn rows_of(outcomes: &[Outcome]) -> Vec<Vec<String>> {
    outcomes
        .iter()
        .map(|o| {
            vec![
                o.label.clone(),
                o.logical.to_string(),
                o.physical.to_string(),
                o.max_chain.to_string(),
                format!("{:.0}%", o.pct_optimal),
                format!("{:.0}%", o.pct_suboptimal),
                format!("{:.0}%", o.pct_incorrect),
            ]
        })
        .collect()
}

fn headers() -> [&'static str; 7] {
    ["instance", "logical", "physical", "max chain", "optimal", "subopt", "incorrect"]
}

fn main() {
    let device = AnnealerDevice::advantage_4_1();
    println!("Figure 7 — simulated D-Wave Advantage 4.1, 100 samples per job\n");

    // --- Max Cut (soft-only) over vertex scaling -----------------
    let mut outcomes = Vec::new();
    for (i, g) in vertex_scaling_graphs().into_iter().enumerate() {
        let k = g.num_vertices() / 3;
        let problem = MaxCut::new(g.clone());
        let oracle = OptimalityOracle { max_soft: Some(clique_chain_max_cut(k) as u64) };
        if let Some(o) = run_instance(
            &device,
            &problem.program(),
            &oracle,
            format!("|V|={}, |E|={}", g.num_vertices(), g.num_edges()),
            100 + i as u64,
        ) {
            outcomes.push(o);
        }
    }
    println!("Max Cut (all soft constraints), vertex scaling:");
    print_table(&headers(), &rows_of(&outcomes));
    println!();

    // --- Min Vertex Cover (mixed) over vertex scaling ------------
    let mut outcomes = Vec::new();
    for (i, g) in vertex_scaling_graphs().into_iter().enumerate() {
        let k = g.num_vertices() / 3;
        let problem = MinVertexCover::new(g.clone());
        let oracle = OptimalityOracle {
            max_soft: Some((g.num_vertices() - clique_chain_min_vertex_cover(k)) as u64),
        };
        if let Some(o) = run_instance(
            &device,
            &problem.program(),
            &oracle,
            format!("|V|={}, |E|={}", g.num_vertices(), g.num_edges()),
            200 + i as u64,
        ) {
            outcomes.push(o);
        }
    }
    println!("Min Vertex Cover (mixed hard/soft), vertex scaling:");
    print_table(&headers(), &rows_of(&outcomes));
    println!();

    // --- Map Coloring (hard-only) over vertex scaling ------------
    let mut outcomes = Vec::new();
    for (i, g) in vertex_scaling_graphs().into_iter().take(8).enumerate() {
        let problem = MapColoring::new(g.clone(), 3);
        let program = problem.program();
        let oracle = OptimalityOracle::build(&program);
        if let Some(o) = run_instance(
            &device,
            &program,
            &oracle,
            format!("|V|={}, n=3 ({} vars)", g.num_vertices(), program.num_vars()),
            300 + i as u64,
        ) {
            outcomes.push(o);
        }
    }
    println!("Map Coloring (hard only, 3 colors), vertex scaling:");
    print_table(&headers(), &rows_of(&outcomes));
    println!();

    // --- Clique Cover over edge scaling (§VIII-A detail) ---------
    let mut outcomes = Vec::new();
    for (i, g) in edge_scaling_graphs().into_iter().enumerate() {
        let m = g.num_edges();
        let problem = CliqueCover::new(g, 4);
        let program = problem.program();
        let oracle = OptimalityOracle::build(&program);
        if let Some(o) = run_instance(
            &device,
            &program,
            &oracle,
            format!("|E|={m}, 4 cliques ({} constraints)", program.constraints().len()),
            400 + i as u64,
        ) {
            outcomes.push(o);
        }
    }
    println!("Clique Cover (hard only, 48 variables), edge scaling:");
    println!("(the paper's §VIII-A: more edges → fewer constraints → fewer");
    println!(" physical qubits → higher success)");
    print_table(&headers(), &rows_of(&outcomes));
    println!();

    // §VIII-A's contrast: fewer variables but many more constraints
    // can still hurt ("27 variables and 78 constraints … success rate
    // of just 39%" vs 48 variables / 24 constraints at 65%). A 9-vertex
    // sparse graph with 3 cliques gives 27 one-hot variables and a
    // large non-edge constraint set.
    let mut outcomes = Vec::new();
    let g9 = nck_problems::Graph::clique_chain(3); // 9 vertices, 13 edges
    let problem = CliqueCover::new(g9, 3);
    let program = problem.program();
    let oracle = OptimalityOracle::build(&program);
    if let Some(o) = run_instance(
        &device,
        &program,
        &oracle,
        format!("9 vertices, 3 cliques ({} constraints)", program.constraints().len()),
        450,
    ) {
        outcomes.push(o);
    }
    println!("Clique Cover contrast (27 variables, constraint-heavy):");
    print_table(&headers(), &rows_of(&outcomes));
    println!();

    // --- Exact Cover and Min Set Cover (random, shared sets) -----
    let mut ec_outcomes = Vec::new();
    let mut msc_outcomes = Vec::new();
    for (i, n) in [4usize, 8, 12, 16, 20].into_iter().enumerate() {
        let ec = ExactCover::random(n, n / 2, 42 + i as u64);
        let label = format!("n={n}, N={}", ec.subsets().len());
        let program = ec.program();
        let oracle = OptimalityOracle::build(&program);
        if let Some(o) = run_instance(&device, &program, &oracle, label.clone(), 500 + i as u64) {
            ec_outcomes.push(o);
        }
        let msc = MinSetCover::from_exact_cover(ec);
        let program = msc.program();
        let oracle = OptimalityOracle::build(&program);
        if let Some(o) = run_instance(&device, &program, &oracle, label, 600 + i as u64) {
            msc_outcomes.push(o);
        }
    }
    println!("Exact Cover (hard only), random instances:");
    print_table(&headers(), &rows_of(&ec_outcomes));
    println!();
    println!("Min Set Cover (mixed hard/soft), same sets:");
    print_table(&headers(), &rows_of(&msc_outcomes));
    println!();

    // --- 3-SAT (hard-only), random planted instances -------------
    let mut outcomes = Vec::new();
    for (i, n) in [6usize, 10, 14, 18, 24].into_iter().enumerate() {
        let sat = KSat::random_3sat(n, 2 * n, 77 + i as u64);
        let program = sat.program_dual_rail();
        let oracle = OptimalityOracle::build(&program);
        if let Some(o) = run_instance(
            &device,
            &program,
            &oracle,
            format!("n={n}, m={}", sat.clauses().len()),
            700 + i as u64,
        ) {
            outcomes.push(o);
        }
    }
    println!("3-SAT (hard only, dual-rail), random instances:");
    print_table(&headers(), &rows_of(&outcomes));
}
