//! # nck-bench
//!
//! Shared harness code for regenerating every table and figure of the
//! paper's evaluation. Each figure has a binary (`table1`, `fig7`,
//! `fig8`, `fig9`, `fig10`, `fig11`, `fig12`, `timing`, `qubo_compare`)
//! that prints the corresponding rows/series; `cargo bench` runs the
//! criterion micro-benchmarks behind them.

#![warn(missing_docs)]

use nck_classical::OptimalityOracle;
use nck_core::{Program, SolutionQuality};
use nck_problems::Graph;

/// The paper's *vertex scaling* study (§VII): chains of 3-cliques from
/// 3 vertices up to 33, "after 33 vertices the scaling continues in
/// larger increments" toward the 65-qubit IBM limit.
pub fn vertex_scaling_graphs() -> Vec<Graph> {
    let mut ks: Vec<usize> = (1..=11).collect(); // 3..=33 vertices
    ks.extend([13, 15, 17, 19, 21]); // 39..=63 vertices
    ks.into_iter().map(Graph::clique_chain).collect()
}

/// The paper's *edge scaling* study (§VII): 12 vertices, 18 edges
/// (four cliques) up to 63 edges.
pub fn edge_scaling_graphs() -> Vec<Graph> {
    [18, 24, 30, 37, 42, 48, 55, 63].into_iter().map(Graph::edge_scaling).collect()
}

/// Classify a batch of program-variable samples and return
/// `(optimal, suboptimal, incorrect)` counts plus whether any sample
/// was optimal (the paper's per-job annealer success criterion).
pub fn classify_batch(
    program: &Program,
    oracle: &OptimalityOracle,
    samples: impl IntoIterator<Item = Vec<bool>>,
) -> (usize, usize, usize, bool) {
    let mut t = (0usize, 0usize, 0usize);
    for s in samples {
        match oracle.classify(program, &s) {
            SolutionQuality::Optimal => t.0 += 1,
            SolutionQuality::Suboptimal => t.1 += 1,
            SolutionQuality::Incorrect => t.2 += 1,
        }
    }
    let any_optimal = t.0 > 0;
    (t.0, t.1, t.2, any_optimal)
}

/// Render an aligned text table to stdout.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |f: &dyn Fn(usize) -> String| {
        let cells: Vec<String> = widths.iter().enumerate().map(|(i, _)| f(i)).collect();
        println!("| {} |", cells.join(" | "));
    };
    line(&|i| format!("{:<w$}", headers[i], w = widths[i]));
    line(&|i| "-".repeat(widths[i]));
    for row in rows {
        line(&|i| format!("{:<w$}", row[i], w = widths[i]));
    }
}

/// Format a float with fixed precision for table cells.
pub fn fmt_f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Basic box-plot statistics (min, q1, median, q3, max) of a sample.
pub fn box_stats(mut xs: Vec<f64>) -> (f64, f64, f64, f64, f64) {
    assert!(!xs.is_empty());
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |f: f64| -> f64 {
        let idx = f * (xs.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        let frac = idx - lo as f64;
        xs[lo] * (1.0 - frac) + xs[hi] * frac
    };
    (xs[0], q(0.25), q(0.5), q(0.75), xs[xs.len() - 1])
}

/// Exact maximum cut of `Graph::clique_chain(k)` by dynamic
/// programming over the chain (state = the partition bits of the
/// current triangle). Used as the classification oracle for scaling
/// studies too large for branch and bound.
pub fn clique_chain_max_cut(k: usize) -> usize {
    assert!(k >= 1);
    let tri_cut = |s: u32| -> usize {
        let b = [(s & 1), (s >> 1) & 1, (s >> 2) & 1];
        usize::from(b[0] != b[1]) + usize::from(b[0] != b[2]) + usize::from(b[1] != b[2])
    };
    let mut dp: Vec<usize> = (0..8).map(&tri_cut).collect();
    for _ in 1..k {
        let mut next = vec![0usize; 8];
        for (s, v) in next.iter_mut().enumerate() {
            let s = s as u32;
            let mut best = 0usize;
            for p in 0..8u32 {
                // Connectors: (prev base+2, base) and (prev base+1,
                // base+1).
                let conn =
                    usize::from((p >> 2) & 1 != s & 1) + usize::from((p >> 1) & 1 != (s >> 1) & 1);
                best = best.max(dp[p as usize] + conn);
            }
            *v = best + tri_cut(s);
        }
        dp = next;
    }
    dp.into_iter().max().unwrap()
}

/// Exact minimum vertex cover size of `Graph::clique_chain(k)` by the
/// same chain dynamic program (state = which triangle vertices are in
/// the cover).
pub fn clique_chain_min_vertex_cover(k: usize) -> usize {
    assert!(k >= 1);
    let covers_triangle = |s: u32| -> bool {
        // Every triangle edge needs an endpoint in the cover: at least
        // two of the three vertices.
        s.count_ones() >= 2
    };
    let inf = usize::MAX / 2;
    let mut dp: Vec<usize> =
        (0..8u32).map(|s| if covers_triangle(s) { s.count_ones() as usize } else { inf }).collect();
    for _ in 1..k {
        let mut next = vec![inf; 8];
        for (si, v) in next.iter_mut().enumerate() {
            let s = si as u32;
            if !covers_triangle(s) {
                continue;
            }
            let mut best = inf;
            for p in 0..8u32 {
                if dp[p as usize] >= inf {
                    continue;
                }
                // Connector edges must be covered.
                let c1 = (p >> 2) & 1 == 1 || s & 1 == 1;
                let c2 = (p >> 1) & 1 == 1 || (s >> 1) & 1 == 1;
                if c1 && c2 {
                    best = best.min(dp[p as usize]);
                }
            }
            if best < inf {
                *v = best + s.count_ones() as usize;
            }
        }
        dp = next;
    }
    dp.into_iter().min().unwrap()
}

/// One instance's outcome in the gate-model study shared by Figs. 8–10.
#[derive(Clone, Debug)]
pub struct GateOutcome {
    /// Problem family name.
    pub problem: String,
    /// Instance label.
    pub label: String,
    /// NchooseK constraints in the program (Fig. 10's x axis).
    pub constraints: usize,
    /// Qubits used on the device (Fig. 8's y axis).
    pub qubits: usize,
    /// Transpiled circuit depth (Fig. 9's y axis).
    pub depth: usize,
    /// SWAPs inserted by routing.
    pub num_swaps: usize,
    /// Depolarizing fidelity of the transpiled circuit.
    pub fidelity: f64,
    /// Result quality ("optimal" / "suboptimal" / "incorrect") or
    /// "unmappable" when the instance exceeds the device.
    pub quality: String,
}

/// Run the shared gate-model study: every problem family scaled until
/// it no longer fits the 65-qubit device, one QAOA (p = 1, 4000 shots)
/// execution each through the unified [`Backend`] pipeline. Figs. 8,
/// 9, and 10 print different columns of this table.
///
/// [`Backend`]: nck_exec::Backend
pub fn run_gate_study(shots: usize, max_iter: usize) -> Vec<GateOutcome> {
    use nck_circuit::GateModelDevice;
    use nck_exec::{BackendMetrics, ExecError, ExecutionPlan, GateModelBackend};
    use nck_problems::{
        CliqueCover, ExactCover, KSat, MapColoring, MaxCut, MinSetCover, MinVertexCover,
    };

    let device = GateModelDevice::ibmq_brooklyn();
    let mut out = Vec::new();
    let mut run = |problem: &str,
                   label: String,
                   program: &Program,
                   oracle: &OptimalityOracle,
                   seed: u64| {
        let plan = ExecutionPlan::new(program).with_oracle(oracle.clone());
        let Ok(compiled) = plan.compiled() else {
            return;
        };
        let backend = GateModelBackend::new(device.clone(), 1, shots, max_iter);
        let mut outcome = GateOutcome {
            problem: problem.to_string(),
            label,
            constraints: program.constraints().len(),
            qubits: compiled.num_qubo_vars(),
            depth: 0,
            num_swaps: 0,
            fidelity: 0.0,
            quality: String::new(),
        };
        match plan.run(&backend, seed) {
            Ok(report) => {
                if let BackendMetrics::GateModel {
                    qubits_used, depth, num_swaps, fidelity, ..
                } = report.metrics
                {
                    outcome.qubits = qubits_used;
                    outcome.depth = depth;
                    outcome.num_swaps = num_swaps;
                    outcome.fidelity = fidelity;
                }
                outcome.quality = report.quality.to_string();
            }
            // The packed large-register sampler handles ≤ 64 variables;
            // the device itself stops at 65.
            Err(ExecError::TooLarge { .. }) => outcome.quality = "unmappable".to_string(),
            Err(e) => outcome.quality = format!("error: {e}"),
        }
        out.push(outcome);
    };

    // Max cut and min vertex cover over vertex scaling (fit up to 63
    // variables = 21 cliques).
    for (i, g) in vertex_scaling_graphs().into_iter().enumerate() {
        let k = g.num_vertices() / 3;
        let label = format!("|V|={}", g.num_vertices());
        let mc_oracle = OptimalityOracle { max_soft: Some(clique_chain_max_cut(k) as u64) };
        run(
            "Max Cut",
            label.clone(),
            &MaxCut::new(g.clone()).program(),
            &mc_oracle,
            1000 + i as u64,
        );
        let vc_oracle = OptimalityOracle {
            max_soft: Some((g.num_vertices() - clique_chain_min_vertex_cover(k)) as u64),
        };
        run(
            "Min Vertex Cover",
            label,
            &MinVertexCover::new(g).program(),
            &vc_oracle,
            2000 + i as u64,
        );
    }
    // Map coloring (3 colors → 9..63 one-hot variables: ≤ 7 cliques).
    for (i, g) in vertex_scaling_graphs().into_iter().take(7).enumerate() {
        let program = MapColoring::new(g.clone(), 3).program();
        let oracle = OptimalityOracle::build(&program);
        run(
            "Map Coloring",
            format!("|V|={}, n=3", g.num_vertices()),
            &program,
            &oracle,
            3000 + i as u64,
        );
    }
    // Clique cover on the edge-scaling family (48 variables).
    for (i, g) in edge_scaling_graphs().into_iter().enumerate() {
        let m = g.num_edges();
        let program = CliqueCover::new(g, 4).program();
        let oracle = OptimalityOracle::build(&program);
        run("Clique Cover", format!("|E|={m}"), &program, &oracle, 4000 + i as u64);
    }
    // Exact cover + min set cover (shared random sets).
    for (i, n) in [4usize, 8, 12, 16].into_iter().enumerate() {
        let ec = ExactCover::random(n, n / 2, 42 + i as u64);
        let label = format!("n={n}, N={}", ec.subsets().len());
        let program = ec.program();
        let oracle = OptimalityOracle::build(&program);
        run("Exact Cover", label.clone(), &program, &oracle, 5000 + i as u64);
        let program = MinSetCover::from_exact_cover(ec).program();
        let oracle = OptimalityOracle::build(&program);
        run("Min Set Cover", label, &program, &oracle, 6000 + i as u64);
    }
    // 3-SAT dual-rail (2n rails + clause ancillas).
    for (i, n) in [5usize, 8, 12, 16].into_iter().enumerate() {
        let sat = KSat::random_3sat(n, 2 * n, 77 + i as u64);
        let program = sat.program_dual_rail();
        let oracle = OptimalityOracle::build(&program);
        run(
            "3-SAT",
            format!("n={n}, m={}", sat.clauses().len()),
            &program,
            &oracle,
            7000 + i as u64,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nck_classical::solve_brute;
    use nck_problems::{MaxCut, MinVertexCover};

    #[test]
    fn chain_dp_matches_brute_force() {
        for k in 1..=4usize {
            let g = Graph::clique_chain(k);
            let n = g.num_vertices();
            let mc = solve_brute(&MaxCut::new(g.clone()).program()).unwrap();
            assert_eq!(clique_chain_max_cut(k) as u64, mc.max_soft, "max cut mismatch at k={k}");
            let vc = solve_brute(&MinVertexCover::new(g).program()).unwrap();
            let min_cover = n - vc.max_soft as usize;
            assert_eq!(
                clique_chain_min_vertex_cover(k),
                min_cover,
                "vertex cover mismatch at k={k}"
            );
        }
    }

    #[test]
    fn vertex_scaling_reaches_63() {
        let gs = vertex_scaling_graphs();
        assert_eq!(gs.first().unwrap().num_vertices(), 3);
        assert!(gs.iter().any(|g| g.num_vertices() == 33));
        assert_eq!(gs.last().unwrap().num_vertices(), 63);
    }

    #[test]
    fn edge_scaling_fixed_vertices() {
        for g in edge_scaling_graphs() {
            assert_eq!(g.num_vertices(), 12);
        }
    }

    #[test]
    fn box_stats_ordering() {
        let (min, q1, med, q3, max) = box_stats(vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!((min, med, max), (1.0, 3.0, 5.0));
        assert!(q1 <= med && med <= q3);
    }

    #[test]
    fn classify_batch_counts() {
        let mut p = Program::new();
        let a = p.new_var("a").unwrap();
        p.nck(vec![a], [1]).unwrap();
        p.nck_soft(vec![a], [1]).unwrap();
        let oracle = OptimalityOracle::build(&p);
        let (opt, sub, inc, any) =
            classify_batch(&p, &oracle, vec![vec![true], vec![false], vec![true]]);
        assert_eq!((opt, sub, inc), (2, 0, 1));
        assert!(any);
    }
}
