//! Exhaustive (brute-force) QUBO solving.
//!
//! The test suite and the optimality classifier both need ground truth
//! for small problems. The search space is embarrassingly parallel, so
//! we split the `2ⁿ` assignments across rayon tasks and reduce.

use crate::qubo::Qubo;
use rayon::prelude::*;

/// Result of an exhaustive minimization.
#[derive(Clone, Debug, PartialEq)]
pub struct ExhaustiveResult {
    /// The minimum energy found.
    pub min_energy: f64,
    /// Every assignment (bit `i` = variable `i`) attaining the minimum,
    /// in increasing numeric order.
    pub minimizers: Vec<u64>,
}

impl ExhaustiveResult {
    /// Decode minimizer `idx` into a boolean vector of length `n`.
    pub fn decode(&self, idx: usize, n: usize) -> Vec<bool> {
        let bits = self.minimizers[idx];
        (0..n).map(|i| bits >> i & 1 == 1).collect()
    }
}

/// Absolute tolerance when comparing energies of floating-point QUBOs.
pub const ENERGY_EPS: f64 = 1e-9;

/// Exhaustively minimize `q` over all `2^num_vars` assignments.
///
/// Panics if `num_vars > 30` — beyond that the enumeration is too large
/// to be useful as ground truth.
pub fn solve_exhaustive(q: &Qubo) -> ExhaustiveResult {
    let n = q.num_vars();
    assert!(n <= 30, "exhaustive solve limited to 30 variables, got {n}");
    let total = 1u64 << n;
    // Each worker scans a contiguous chunk and reports its local optimum
    // with all local argmins; a sequential reduce merges them.
    let chunk = (total / (rayon::current_num_threads() as u64 * 8)).max(1024);
    let num_chunks = total.div_ceil(chunk);
    let locals: Vec<(f64, Vec<u64>)> = (0..num_chunks)
        .into_par_iter()
        .map(|c| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(total);
            let mut best = f64::INFINITY;
            let mut mins = Vec::new();
            for bits in lo..hi {
                let e = q.energy_bits(bits);
                if e < best - ENERGY_EPS {
                    best = e;
                    mins.clear();
                    mins.push(bits);
                } else if e <= best + ENERGY_EPS {
                    best = best.min(e);
                    mins.push(bits);
                }
            }
            (best, mins)
        })
        .collect();
    let mut best = f64::INFINITY;
    for (e, _) in &locals {
        best = best.min(*e);
    }
    let mut minimizers: Vec<u64> =
        locals.into_iter().filter(|(e, _)| *e <= best + ENERGY_EPS).flat_map(|(_, m)| m).collect();
    // Chunk-local tolerance can admit points slightly above the global
    // minimum; re-filter against the global value.
    minimizers.retain(|&bits| q.energy_bits(bits) <= best + ENERGY_EPS);
    minimizers.sort_unstable();
    ExhaustiveResult { min_energy: best, minimizers }
}

/// Exhaustively *maximize* `q` (used for computing the worst-case soft
/// penalty when weighting hard constraints).
pub fn max_energy(q: &Qubo) -> f64 {
    let n = q.num_vars();
    assert!(n <= 30, "exhaustive max limited to 30 variables, got {n}");
    (0u64..1 << n)
        .into_par_iter()
        .map(|bits| q.energy_bits(bits))
        .reduce(|| f64::NEG_INFINITY, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_unique_minimum() {
        // f = x0 + x1 - 3 x0 x1: min at (1,1) with energy -1
        let mut q = Qubo::new(2);
        q.add_linear(0, 1.0);
        q.add_linear(1, 1.0);
        q.add_quadratic(0, 1, -3.0);
        let r = solve_exhaustive(&q);
        assert_eq!(r.min_energy, -1.0);
        assert_eq!(r.minimizers, vec![0b11]);
        assert_eq!(r.decode(0, 2), vec![true, true]);
    }

    #[test]
    fn finds_all_degenerate_minima() {
        // f = ab - a - b: minima {01, 10, 11} at energy -1
        let mut q = Qubo::new(2);
        q.add_quadratic(0, 1, 1.0);
        q.add_linear(0, -1.0);
        q.add_linear(1, -1.0);
        let r = solve_exhaustive(&q);
        assert_eq!(r.min_energy, -1.0);
        assert_eq!(r.minimizers, vec![0b01, 0b10, 0b11]);
    }

    #[test]
    fn zero_qubo_all_assignments_minimize() {
        let q = Qubo::new(3);
        let r = solve_exhaustive(&q);
        assert_eq!(r.min_energy, 0.0);
        assert_eq!(r.minimizers.len(), 8);
    }

    #[test]
    fn parallel_matches_sequential_on_larger_instance() {
        // A pseudo-random 16-variable QUBO; compare the parallel result
        // against a straightforward sequential scan.
        let mut q = Qubo::new(16);
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 17) as f64 - 8.0
        };
        for i in 0..16 {
            q.add_linear(i, next());
            for j in i + 1..16 {
                if next() > 4.0 {
                    q.add_quadratic(i, j, next());
                }
            }
        }
        let r = solve_exhaustive(&q);
        let mut best = f64::INFINITY;
        let mut mins = Vec::new();
        for bits in 0..1u64 << 16 {
            let e = q.energy_bits(bits);
            if e < best - ENERGY_EPS {
                best = e;
                mins.clear();
                mins.push(bits);
            } else if e <= best + ENERGY_EPS {
                mins.push(bits);
            }
        }
        assert_eq!(r.min_energy, best);
        assert_eq!(r.minimizers, mins);
    }

    #[test]
    fn max_energy_is_negated_min_of_negation() {
        let mut q = Qubo::new(4);
        q.add_linear(0, 2.0);
        q.add_linear(3, -1.0);
        q.add_quadratic(1, 2, 5.0);
        let max = max_energy(&q);
        let mut neg = q.clone();
        neg.scale(-1.0);
        let r = solve_exhaustive(&neg);
        assert_eq!(max, -r.min_energy);
    }

    #[test]
    #[should_panic(expected = "limited to 30 variables")]
    fn too_many_variables_panics() {
        let q = Qubo::new(31);
        let _ = solve_exhaustive(&q);
    }
}
