//! Ising-model form of a quadratic binary problem.
//!
//! An Ising Hamiltonian `H(s) = Σᵢ hᵢsᵢ + Σᵢ<ⱼ Jᵢⱼsᵢsⱼ + c` over spins
//! `sᵢ ∈ {−1, +1}` is related to a QUBO by the linear substitution
//! `xᵢ = (1 + sᵢ)/2`. The annealing backend and the QAOA phase
//! separator both work in Ising form; the compiler works in QUBO form.

use crate::qubo::Qubo;
use std::collections::BTreeMap;

/// An Ising Hamiltonian over `num_spins` spins.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Ising {
    num_spins: usize,
    h: Vec<f64>,
    j: BTreeMap<(usize, usize), f64>,
    offset: f64,
}

impl Ising {
    /// The zero Hamiltonian over `num_spins` spins.
    pub fn new(num_spins: usize) -> Self {
        Ising { num_spins, h: vec![0.0; num_spins], j: BTreeMap::new(), offset: 0.0 }
    }

    /// Number of spins.
    pub fn num_spins(&self) -> usize {
        self.num_spins
    }

    /// Add a local field term `c·sᵢ`.
    pub fn add_field(&mut self, i: usize, c: f64) {
        assert!(i < self.num_spins, "spin {i} out of range");
        self.h[i] += c;
    }

    /// Add a coupling term `c·sᵢsⱼ` (requires `i ≠ j`; `s² = 1` means a
    /// same-spin product is just a constant).
    pub fn add_coupling(&mut self, i: usize, j: usize, c: f64) {
        assert!(i < self.num_spins && j < self.num_spins, "spin pair out of range");
        if i == j {
            self.offset += c; // s·s = 1
            return;
        }
        let key = (i.min(j), i.max(j));
        let e = self.j.entry(key).or_insert(0.0);
        *e += c;
        if *e == 0.0 {
            self.j.remove(&key);
        }
    }

    /// Add a constant.
    pub fn add_offset(&mut self, c: f64) {
        self.offset += c;
    }

    /// The constant offset.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Field on spin `i`.
    pub fn field(&self, i: usize) -> f64 {
        self.h[i]
    }

    /// Coupling between spins `i` and `j` (0 if absent).
    pub fn coupling(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        self.j.get(&(i.min(j), i.max(j))).copied().unwrap_or(0.0)
    }

    /// Iterate nonzero couplings `((i, j), J)` with `i < j`.
    pub fn couplings(&self) -> impl Iterator<Item = ((usize, usize), f64)> + '_ {
        self.j.iter().map(|(&k, &v)| (k, v))
    }

    /// Iterate nonzero fields `(i, h)`.
    pub fn fields(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.h.iter().enumerate().filter(|(_, &c)| c != 0.0).map(|(i, &c)| (i, c))
    }

    /// Number of nonzero terms (fields + couplings).
    pub fn num_terms(&self) -> usize {
        self.h.iter().filter(|&&c| c != 0.0).count() + self.j.len()
    }

    /// Energy of a spin configuration (`true` = +1, `false` = −1).
    pub fn energy(&self, s: &[bool]) -> f64 {
        assert_eq!(s.len(), self.num_spins, "spin configuration length mismatch");
        let sp = |b: bool| if b { 1.0 } else { -1.0 };
        let mut e = self.offset;
        for (i, &c) in self.h.iter().enumerate() {
            e += c * sp(s[i]);
        }
        for (&(i, j), &c) in &self.j {
            e += c * sp(s[i]) * sp(s[j]);
        }
        e
    }

    /// Convert to QUBO form via `xᵢ = (1 + sᵢ)/2` ⇔ `sᵢ = 2xᵢ − 1`.
    pub fn to_qubo(&self) -> Qubo {
        let mut q = Qubo::new(self.num_spins);
        q.add_offset(self.offset);
        for (i, h) in self.fields() {
            // h·s = h·(2x − 1)
            q.add_linear(i, 2.0 * h);
            q.add_offset(-h);
        }
        for ((i, j), c) in self.couplings() {
            // J·sᵢsⱼ = J(2xᵢ−1)(2xⱼ−1) = 4J xᵢxⱼ − 2J xᵢ − 2J xⱼ + J
            q.add_quadratic(i, j, 4.0 * c);
            q.add_linear(i, -2.0 * c);
            q.add_linear(j, -2.0 * c);
            q.add_offset(c);
        }
        q
    }

    /// Largest absolute coefficient (field or coupling).
    pub fn max_abs_coeff(&self) -> f64 {
        let h = self.h.iter().fold(0.0f64, |m, c| m.max(c.abs()));
        let j = self.j.values().fold(0.0f64, |m, c| m.max(c.abs()));
        h.max(j)
    }
}

impl Qubo {
    /// Convert to Ising form via `xᵢ = (1 + sᵢ)/2`.
    pub fn to_ising(&self) -> Ising {
        let mut ising = Ising::new(self.num_vars());
        ising.add_offset(self.offset());
        for (i, a) in self.linear_terms() {
            // a·x = a(1 + s)/2
            ising.add_field(i, a / 2.0);
            ising.add_offset(a / 2.0);
        }
        for ((i, j), b) in self.quadratic_terms() {
            // b·xᵢxⱼ = b(1+sᵢ)(1+sⱼ)/4
            ising.add_coupling(i, j, b / 4.0);
            ising.add_field(i, b / 4.0);
            ising.add_field(j, b / 4.0);
            ising.add_offset(b / 4.0);
        }
        ising
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assignments(n: usize) -> impl Iterator<Item = Vec<bool>> {
        (0..1u64 << n).map(move |bits| (0..n).map(|i| bits >> i & 1 == 1).collect())
    }

    #[test]
    fn round_trip_preserves_energy() {
        let mut q = Qubo::new(3);
        q.add_linear(0, 1.0);
        q.add_linear(2, -2.5);
        q.add_quadratic(0, 1, 2.0);
        q.add_quadratic(1, 2, -1.0);
        q.add_offset(0.75);
        let ising = q.to_ising();
        let back = ising.to_qubo();
        for x in assignments(3) {
            // x=true corresponds to s=+1 under our convention
            assert!((q.energy(&x) - ising.energy(&x)).abs() < 1e-12, "qubo vs ising at {x:?}");
            assert!((q.energy(&x) - back.energy(&x)).abs() < 1e-12, "round trip at {x:?}");
        }
    }

    #[test]
    fn max_cut_ising_is_pure_couplings() {
        // Max cut on one edge: minimize s0·s1 (antiferromagnetic).
        let mut ising = Ising::new(2);
        ising.add_coupling(0, 1, 1.0);
        assert_eq!(ising.energy(&[true, false]), -1.0);
        assert_eq!(ising.energy(&[true, true]), 1.0);
        // In QUBO form this picks up linear terms — the paper's note
        // that max cut converts from O(|E|) Ising terms to
        // O(|E| + |V|) QUBO terms.
        let q = ising.to_qubo();
        assert_eq!(q.num_terms(), 3);
    }

    #[test]
    fn same_spin_coupling_is_constant() {
        let mut ising = Ising::new(1);
        ising.add_coupling(0, 0, 5.0);
        assert_eq!(ising.offset(), 5.0);
        assert_eq!(ising.num_terms(), 0);
    }

    #[test]
    fn coupling_symmetry_and_cancellation() {
        let mut ising = Ising::new(3);
        ising.add_coupling(2, 0, 1.0);
        assert_eq!(ising.coupling(0, 2), 1.0);
        ising.add_coupling(0, 2, -1.0);
        assert_eq!(ising.num_terms(), 0);
    }

    #[test]
    fn field_energy() {
        let mut ising = Ising::new(2);
        ising.add_field(0, 2.0);
        ising.add_field(1, -1.0);
        assert_eq!(ising.energy(&[true, true]), 1.0);
        assert_eq!(ising.energy(&[false, true]), -3.0);
    }

    #[test]
    fn qubo_to_ising_ground_state_preserved() {
        // f = ab - a - b: minima are the three assignments with >=1 true.
        let mut q = Qubo::new(2);
        q.add_quadratic(0, 1, 1.0);
        q.add_linear(0, -1.0);
        q.add_linear(1, -1.0);
        let ising = q.to_ising();
        let energies: Vec<f64> = assignments(2).map(|x| ising.energy(&x)).collect();
        let min = energies.iter().cloned().fold(f64::INFINITY, f64::min);
        let argmin: Vec<usize> = energies
            .iter()
            .enumerate()
            .filter(|(_, &e)| (e - min).abs() < 1e-12)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(argmin, vec![1, 2, 3]);
    }
}
