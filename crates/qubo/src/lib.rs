//! # nck-qubo
//!
//! Quadratic unconstrained binary optimization (QUBO) and Ising-model
//! types: the intermediate representation the NchooseK compiler targets
//! and both quantum backends consume (§V of the paper).
//!
//! * [`Qubo`] — sparse quadratic pseudo-Boolean function; compositional
//!   under addition, closed under positive scaling, with variable
//!   remapping for summing per-constraint QUBOs into a program QUBO.
//! * [`Ising`] — the ±1-spin form used by the annealer and the QAOA
//!   phase separator, with exact conversions in both directions.
//! * [`exhaustive`] — rayon-parallel brute-force minimization, the
//!   ground-truth oracle for tests and optimality classification.

#![warn(missing_docs)]

pub mod exhaustive;
pub mod io;
pub mod ising;
pub mod poly;
pub mod qubo;

pub use exhaustive::{max_energy, solve_exhaustive, ExhaustiveResult, ENERGY_EPS};
pub use io::{from_qubo_file, to_qubo_file, QuboIoError};
pub use ising::Ising;
pub use poly::Poly;
pub use qubo::Qubo;
