//! Quadratic unconstrained binary optimization (QUBO) expressions.
//!
//! A QUBO is a function `f(x) = Σᵢ aᵢxᵢ + Σᵢ<ⱼ bᵢⱼxᵢxⱼ + c` over binary
//! variables, minimized by the annealing and QAOA backends. QUBOs are
//! compositional with respect to addition and closed under positive
//! scaling — the two properties the NchooseK compiler exploits (§V of
//! the paper).

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, AddAssign};

/// A QUBO expression over `num_vars` binary variables.
///
/// Quadratic keys are always stored with `i < j`; a product `xᵢxᵢ` is
/// folded into the linear term because `x² = x` for binary `x`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Qubo {
    num_vars: usize,
    linear: Vec<f64>,
    quadratic: BTreeMap<(usize, usize), f64>,
    offset: f64,
}

impl Qubo {
    /// An identically-zero QUBO over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        Qubo { num_vars, linear: vec![0.0; num_vars], quadratic: BTreeMap::new(), offset: 0.0 }
    }

    /// Number of variables (including ones with zero coefficient).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Grow the variable count (new variables get zero coefficients).
    pub fn grow(&mut self, num_vars: usize) {
        if num_vars > self.num_vars {
            self.linear.resize(num_vars, 0.0);
            self.num_vars = num_vars;
        }
    }

    /// Add `c·xᵢ`.
    pub fn add_linear(&mut self, i: usize, c: f64) {
        assert!(i < self.num_vars, "variable {i} out of range");
        self.linear[i] += c;
    }

    /// Add `c·xᵢxⱼ`. `i == j` folds into the linear term (`x² = x`).
    pub fn add_quadratic(&mut self, i: usize, j: usize, c: f64) {
        assert!(i < self.num_vars && j < self.num_vars, "variable pair ({i},{j}) out of range");
        if i == j {
            self.linear[i] += c;
            return;
        }
        let key = (i.min(j), i.max(j));
        let e = self.quadratic.entry(key).or_insert(0.0);
        *e += c;
        if *e == 0.0 {
            self.quadratic.remove(&key);
        }
    }

    /// Add a constant offset.
    pub fn add_offset(&mut self, c: f64) {
        self.offset += c;
    }

    /// The constant offset.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Linear coefficient of `xᵢ`.
    pub fn linear(&self, i: usize) -> f64 {
        self.linear[i]
    }

    /// Quadratic coefficient of `xᵢxⱼ` (0 if absent).
    pub fn quadratic(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        self.quadratic.get(&(i.min(j), i.max(j))).copied().unwrap_or(0.0)
    }

    /// Iterate nonzero quadratic terms as `((i, j), coeff)` with `i < j`.
    pub fn quadratic_terms(&self) -> impl Iterator<Item = ((usize, usize), f64)> + '_ {
        self.quadratic.iter().map(|(&k, &v)| (k, v))
    }

    /// Iterate nonzero linear terms as `(i, coeff)`.
    pub fn linear_terms(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.linear.iter().enumerate().filter(|(_, &c)| c != 0.0).map(|(i, &c)| (i, c))
    }

    /// Number of nonzero terms (linear + quadratic), the paper's "QUBO
    /// terms" metric from Table I.
    pub fn num_terms(&self) -> usize {
        self.linear.iter().filter(|&&c| c != 0.0).count() + self.quadratic.len()
    }

    /// Number of nonzero quadratic couplings.
    pub fn num_interactions(&self) -> usize {
        self.quadratic.len()
    }

    /// Add the expansion of `(k + Σ coeffs·x)²`, using `x² = x`.
    ///
    /// This is the building block of every handcrafted Hamiltonian in
    /// the paper's §VI (e.g. the exact-cover `Σ (1 − Σ xᵢ)²`).
    pub fn add_square_of_linear(&mut self, terms: &[(usize, f64)], k: f64) {
        self.add_offset(k * k);
        for &(i, a) in terms {
            // cross term with the constant plus the x² = x fold
            self.add_linear(i, 2.0 * k * a + a * a);
        }
        for (idx, &(i, a)) in terms.iter().enumerate() {
            for &(j, b) in &terms[idx + 1..] {
                self.add_quadratic(i, j, 2.0 * a * b);
            }
        }
    }

    /// Multiply every coefficient (and the offset) by `k`.
    ///
    /// Scaling by a positive factor preserves the set of minimizing
    /// assignments — the property used to weight hard constraints above
    /// soft ones.
    pub fn scale(&mut self, k: f64) {
        for c in &mut self.linear {
            *c *= k;
        }
        for c in self.quadratic.values_mut() {
            *c *= k;
        }
        self.offset *= k;
        if k == 0.0 {
            self.quadratic.clear();
        }
    }

    /// Evaluate the energy of a full assignment.
    pub fn energy(&self, x: &[bool]) -> f64 {
        assert_eq!(x.len(), self.num_vars, "assignment length mismatch");
        let mut e = self.offset;
        for (i, &c) in self.linear.iter().enumerate() {
            if x[i] {
                e += c;
            }
        }
        for (&(i, j), &c) in &self.quadratic {
            if x[i] && x[j] {
                e += c;
            }
        }
        e
    }

    /// Evaluate the energy of an assignment packed into the low bits of
    /// a `u64` (bit `i` = variable `i`). Usable for up to 64 variables.
    pub fn energy_bits(&self, x: u64) -> f64 {
        debug_assert!(self.num_vars <= 64);
        let mut e = self.offset;
        for (i, &c) in self.linear.iter().enumerate() {
            if x >> i & 1 == 1 {
                e += c;
            }
        }
        for (&(i, j), &c) in &self.quadratic {
            if x >> i & 1 == 1 && x >> j & 1 == 1 {
                e += c;
            }
        }
        e
    }

    /// Add `other` into `self` with its variable `v` mapped to
    /// `mapping[v]` of `self`. This is how per-constraint QUBOs over
    /// local variables are summed into the program QUBO over global
    /// variables.
    pub fn add_mapped(&mut self, other: &Qubo, mapping: &[usize]) {
        assert_eq!(mapping.len(), other.num_vars, "mapping length mismatch");
        self.offset += other.offset;
        for (i, c) in other.linear_terms() {
            self.add_linear(mapping[i], c);
        }
        for ((i, j), c) in other.quadratic_terms() {
            let (mi, mj) = (mapping[i], mapping[j]);
            assert_ne!(mi, mj, "mapping identifies the distinct variables {i} and {j}");
            self.add_quadratic(mi, mj, c);
        }
    }

    /// Adjacency lists induced by the quadratic terms (used by the
    /// minor embedder and the QAOA circuit builder).
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.num_vars];
        for &(i, j) in self.quadratic.keys() {
            adj[i].push(j);
            adj[j].push(i);
        }
        adj
    }

    /// Largest absolute coefficient (linear or quadratic), 0 for the
    /// zero QUBO. Used for chain-strength heuristics.
    pub fn max_abs_coeff(&self) -> f64 {
        let lin = self.linear.iter().fold(0.0f64, |m, c| m.max(c.abs()));
        let quad = self.quadratic.values().fold(0.0f64, |m, c| m.max(c.abs()));
        lin.max(quad)
    }
}

impl AddAssign<&Qubo> for Qubo {
    fn add_assign(&mut self, other: &Qubo) {
        self.grow(other.num_vars);
        self.offset += other.offset;
        for (i, c) in other.linear_terms() {
            self.linear[i] += c;
        }
        for ((i, j), c) in other.quadratic_terms() {
            self.add_quadratic(i, j, c);
        }
    }
}

impl Add for &Qubo {
    type Output = Qubo;
    fn add(self, other: &Qubo) -> Qubo {
        let mut out = self.clone();
        out += other;
        out
    }
}

impl fmt::Display for Qubo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut write_term = |f: &mut fmt::Formatter<'_>, c: f64, label: &str| {
            if c == 0.0 {
                return Ok(());
            }
            if first {
                first = false;
                if label.is_empty() {
                    write!(f, "{c}")
                } else if c == 1.0 {
                    write!(f, "{label}")
                } else if c == -1.0 {
                    write!(f, "-{label}")
                } else {
                    write!(f, "{c}*{label}")
                }
            } else {
                let sign = if c < 0.0 { " - " } else { " + " };
                let a = c.abs();
                if label.is_empty() {
                    write!(f, "{sign}{a}")
                } else if a == 1.0 {
                    write!(f, "{sign}{label}")
                } else {
                    write!(f, "{sign}{a}*{label}")
                }
            }
        };
        for (i, c) in self.linear_terms() {
            write_term(f, c, &format!("x{i}"))?;
        }
        for ((i, j), c) in self.quadratic_terms() {
            write_term(f, c, &format!("x{i}*x{j}"))?;
        }
        write_term(f, self.offset, "")?;
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_qubo_energy() {
        let q = Qubo::new(3);
        assert_eq!(q.energy(&[true, false, true]), 0.0);
        assert_eq!(q.num_terms(), 0);
    }

    #[test]
    fn linear_and_quadratic_energy() {
        let mut q = Qubo::new(2);
        q.add_linear(0, -1.0);
        q.add_linear(1, -1.0);
        q.add_quadratic(0, 1, 1.0);
        // f = ab - a - b (the paper's vertex-cover edge QUBO, §V)
        assert_eq!(q.energy(&[false, false]), 0.0);
        assert_eq!(q.energy(&[true, false]), -1.0);
        assert_eq!(q.energy(&[false, true]), -1.0);
        assert_eq!(q.energy(&[true, true]), -1.0);
    }

    #[test]
    fn square_fold_into_linear() {
        let mut q = Qubo::new(1);
        q.add_quadratic(0, 0, 2.0);
        assert_eq!(q.linear(0), 2.0);
        assert_eq!(q.num_interactions(), 0);
    }

    #[test]
    fn quadratic_key_symmetry() {
        let mut q = Qubo::new(3);
        q.add_quadratic(2, 0, 1.5);
        assert_eq!(q.quadratic(0, 2), 1.5);
        assert_eq!(q.quadratic(2, 0), 1.5);
        q.add_quadratic(0, 2, -1.5);
        assert_eq!(q.num_interactions(), 0); // cancelled term removed
    }

    #[test]
    fn square_of_linear_matches_direct_expansion() {
        // (1 - x0 - x1)^2 = 1 - x0 - x1 + 2 x0 x1  (binary x)
        let mut q = Qubo::new(2);
        q.add_square_of_linear(&[(0, -1.0), (1, -1.0)], 1.0);
        for bits in 0..4u64 {
            let x = [bits & 1 == 1, bits >> 1 & 1 == 1];
            let s = 1.0 - (x[0] as i64 as f64) - (x[1] as i64 as f64);
            assert_eq!(q.energy(&x), s * s, "mismatch at {x:?}");
        }
    }

    #[test]
    fn composition_is_pointwise_addition() {
        let mut a = Qubo::new(2);
        a.add_linear(0, 1.0);
        a.add_quadratic(0, 1, 2.0);
        let mut b = Qubo::new(3);
        b.add_linear(2, -1.0);
        b.add_offset(0.5);
        let c = &a + &b;
        assert_eq!(c.num_vars(), 3);
        for bits in 0..8u64 {
            let x: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let ea = a.energy(&x[..2]);
            assert_eq!(c.energy(&x), ea + b.energy(&x));
        }
    }

    #[test]
    fn scaling_preserves_argmin() {
        let mut q = Qubo::new(2);
        q.add_linear(0, -1.0);
        q.add_quadratic(0, 1, 3.0);
        let mut s = q.clone();
        s.scale(7.0);
        for bits in 0..4u64 {
            assert_eq!(s.energy_bits(bits), 7.0 * q.energy_bits(bits));
        }
    }

    #[test]
    fn add_mapped_relabels() {
        // local QUBO over (y0, y1), mapped to globals (3, 1)
        let mut local = Qubo::new(2);
        local.add_linear(0, 2.0);
        local.add_quadratic(0, 1, -1.0);
        let mut global = Qubo::new(4);
        global.add_mapped(&local, &[3, 1]);
        assert_eq!(global.linear(3), 2.0);
        assert_eq!(global.quadratic(1, 3), -1.0);
    }

    #[test]
    #[should_panic(expected = "identifies the distinct variables")]
    fn add_mapped_rejects_collapsing_quadratic() {
        let mut local = Qubo::new(2);
        local.add_quadratic(0, 1, 1.0);
        let mut global = Qubo::new(2);
        global.add_mapped(&local, &[1, 1]);
    }

    #[test]
    fn energy_bits_matches_energy() {
        let mut q = Qubo::new(4);
        q.add_linear(1, 0.5);
        q.add_linear(3, -2.0);
        q.add_quadratic(0, 3, 1.25);
        q.add_offset(3.0);
        for bits in 0..16u64 {
            let x: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(q.energy(&x), q.energy_bits(bits));
        }
    }

    #[test]
    fn adjacency_from_quadratic() {
        let mut q = Qubo::new(3);
        q.add_quadratic(0, 1, 1.0);
        q.add_quadratic(1, 2, 1.0);
        let adj = q.adjacency();
        assert_eq!(adj[0], vec![1]);
        assert_eq!(adj[1], vec![0, 2]);
        assert_eq!(adj[2], vec![1]);
    }

    #[test]
    fn max_abs_coeff() {
        let mut q = Qubo::new(2);
        q.add_linear(0, -3.0);
        q.add_quadratic(0, 1, 2.0);
        assert_eq!(q.max_abs_coeff(), 3.0);
        assert_eq!(Qubo::new(1).max_abs_coeff(), 0.0);
    }

    #[test]
    fn display_readable() {
        let mut q = Qubo::new(2);
        q.add_linear(0, 1.0);
        q.add_linear(1, -1.0);
        q.add_quadratic(0, 1, -2.0);
        q.add_offset(4.0);
        assert_eq!(format!("{q}"), "x0 - x1 - 2*x0*x1 + 4");
        assert_eq!(format!("{}", Qubo::new(1)), "0");
    }
}
