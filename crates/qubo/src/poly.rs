//! Higher-order binary polynomials and quadratization.
//!
//! Many natural penalty formulations are cubic or worse — e.g. the
//! product form `(1−x)(1−y)(1−z)` of a 3-SAT clause — while both
//! quantum backends consume *quadratic* models only. This module
//! provides a pseudo-Boolean polynomial of arbitrary degree and the
//! classic Rosenberg reduction (the role of Ocean's `make_quadratic`):
//! repeatedly substitute a product `xᵢxⱼ` by a fresh auxiliary variable
//! `z`, enforced by the penalty `M·(xᵢxⱼ − 2xᵢz − 2xⱼz + 3z)`, which is
//! 0 when `z = xᵢxⱼ` and ≥ M otherwise.

use crate::qubo::Qubo;
use std::collections::{BTreeMap, BTreeSet};

/// A pseudo-Boolean polynomial `Σ c_S · Π_{i∈S} xᵢ` over binary
/// variables (the empty monomial is the constant term).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Poly {
    num_vars: usize,
    terms: BTreeMap<BTreeSet<usize>, f64>,
}

impl Poly {
    /// The zero polynomial over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        Poly { num_vars, terms: BTreeMap::new() }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Add `c · Π xᵢ` for the distinct variables in `vars` (duplicates
    /// collapse — `x² = x`). An empty slice adds a constant.
    pub fn add_term(&mut self, vars: &[usize], c: f64) {
        if c == 0.0 {
            return;
        }
        let key: BTreeSet<usize> = vars.iter().copied().collect();
        for &v in &key {
            assert!(v < self.num_vars, "variable {v} out of range");
        }
        let e = self.terms.entry(key).or_insert(0.0);
        *e += c;
        if *e == 0.0 {
            self.terms.remove(&vars.iter().copied().collect());
        }
    }

    /// Highest monomial degree (0 for a constant/zero polynomial).
    pub fn degree(&self) -> usize {
        self.terms.keys().map(BTreeSet::len).max().unwrap_or(0)
    }

    /// Number of nonzero monomials.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Evaluate under a full assignment.
    pub fn energy(&self, x: &[bool]) -> f64 {
        assert!(x.len() >= self.num_vars);
        self.terms.iter().map(|(s, &c)| if s.iter().all(|&v| x[v]) { c } else { 0.0 }).sum()
    }

    /// Multiply in the factor `(k + Σ coeffs·x)` — convenient for
    /// building product-form penalties like `(1−x)(1−y)(1−z)`.
    pub fn multiply_linear(&mut self, terms: &[(usize, f64)], k: f64) {
        let old = std::mem::take(&mut self.terms);
        let mut out: BTreeMap<BTreeSet<usize>, f64> = BTreeMap::new();
        let mut add = |key: BTreeSet<usize>, c: f64| {
            if c != 0.0 {
                let e = out.entry(key.clone()).or_insert(0.0);
                *e += c;
                if *e == 0.0 {
                    out.remove(&key);
                }
            }
        };
        for (s, &c) in &old {
            add(s.clone(), c * k);
            for &(v, a) in terms {
                let mut key = s.clone();
                key.insert(v);
                add(key, c * a);
            }
        }
        self.terms = out;
    }

    /// The constant-1 polynomial (handy as a `multiply_linear` seed).
    pub fn one(num_vars: usize) -> Self {
        let mut p = Poly::new(num_vars);
        p.add_term(&[], 1.0);
        p
    }

    /// Iterate monomials as `(variables, coefficient)`.
    pub fn terms(&self) -> impl Iterator<Item = (Vec<usize>, f64)> + '_ {
        self.terms.iter().map(|(s, &c)| (s.iter().copied().collect(), c))
    }

    /// Add another polynomial into this one.
    pub fn add_assign(&mut self, other: &Poly) {
        assert_eq!(self.num_vars, other.num_vars, "variable space mismatch");
        for (vars, c) in other.terms() {
            self.add_term(&vars, c);
        }
    }

    /// Reduce to a QUBO by Rosenberg substitution. Returns the QUBO
    /// (over the original variables followed by the auxiliaries) and
    /// the substitution list `(i, j, z)` meaning `x_z := x_i·x_j`.
    ///
    /// For every assignment `x` of the original variables,
    /// `min_z QUBO(x, z) = Poly(x)`, with the minimum attained at the
    /// consistent auxiliary values.
    pub fn quadratize(&self) -> (Qubo, Vec<(usize, usize, usize)>) {
        // Penalty weight: must exceed any gain from breaking a
        // substitution; the sum of |coefficients| + 1 is safely above.
        let m: f64 = self.terms.values().map(|c| c.abs()).sum::<f64>() + 1.0;
        let mut terms: Vec<(BTreeSet<usize>, f64)> =
            self.terms.iter().map(|(s, &c)| (s.clone(), c)).collect();
        let mut next_var = self.num_vars;
        let mut subs: Vec<(usize, usize, usize)> = Vec::new();
        loop {
            // Most frequent pair among monomials of degree ≥ 3.
            let mut counts: BTreeMap<(usize, usize), usize> = BTreeMap::new();
            for (s, _) in terms.iter().filter(|(s, _)| s.len() >= 3) {
                let vs: Vec<usize> = s.iter().copied().collect();
                for i in 0..vs.len() {
                    for j in i + 1..vs.len() {
                        *counts.entry((vs[i], vs[j])).or_insert(0) += 1;
                    }
                }
            }
            let Some((&(i, j), _)) = counts.iter().max_by_key(|(_, &c)| c) else {
                break; // already quadratic
            };
            let z = next_var;
            next_var += 1;
            subs.push((i, j, z));
            for (s, _) in terms.iter_mut() {
                if s.len() >= 3 && s.contains(&i) && s.contains(&j) {
                    s.remove(&i);
                    s.remove(&j);
                    s.insert(z);
                }
            }
        }
        let mut q = Qubo::new(next_var);
        for (s, c) in &terms {
            let vs: Vec<usize> = s.iter().copied().collect();
            match vs.as_slice() {
                [] => q.add_offset(*c),
                [a] => q.add_linear(*a, *c),
                [a, b] => q.add_quadratic(*a, *b, *c),
                _ => unreachable!("reduction left a degree-{} monomial", vs.len()),
            }
        }
        // Rosenberg penalties: M(x_i x_j − 2x_i z − 2x_j z + 3z).
        for &(i, j, z) in &subs {
            q.add_quadratic(i, j, m);
            q.add_quadratic(i, z, -2.0 * m);
            q.add_quadratic(j, z, -2.0 * m);
            q.add_linear(z, 3.0 * m);
        }
        (q, subs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// min over auxiliaries of the quadratized QUBO equals the
    /// polynomial, for every original assignment.
    fn assert_quadratization_exact(p: &Poly) {
        let (q, subs) = p.quadratize();
        let n = p.num_vars();
        let aux = q.num_vars() - n;
        for bits in 0..1u64 << n {
            let x: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            let mut best = f64::INFINITY;
            for zbits in 0..1u64 << aux {
                let mut full = x.clone();
                full.extend((0..aux).map(|k| zbits >> k & 1 == 1));
                best = best.min(q.energy(&full));
            }
            assert!(
                (best - p.energy(&x)).abs() < 1e-9,
                "x={bits:b}: min QUBO {best} vs poly {} (subs {subs:?})",
                p.energy(&x)
            );
        }
    }

    #[test]
    fn quadratic_poly_needs_no_aux() {
        let mut p = Poly::new(3);
        p.add_term(&[0], 1.5);
        p.add_term(&[0, 1], -2.0);
        p.add_term(&[], 0.5);
        let (q, subs) = p.quadratize();
        assert!(subs.is_empty());
        assert_eq!(q.num_vars(), 3);
        assert_quadratization_exact(&p);
    }

    #[test]
    fn cubic_term() {
        let mut p = Poly::new(3);
        p.add_term(&[0, 1, 2], 2.0);
        p.add_term(&[1], -1.0);
        assert_eq!(p.degree(), 3);
        let (q, subs) = p.quadratize();
        assert_eq!(subs.len(), 1);
        assert_eq!(q.num_vars(), 4);
        assert_quadratization_exact(&p);
    }

    #[test]
    fn negative_cubic_coefficient() {
        let mut p = Poly::new(3);
        p.add_term(&[0, 1, 2], -3.0);
        p.add_term(&[0, 1], 1.0);
        assert_quadratization_exact(&p);
    }

    #[test]
    fn quartic_and_shared_pairs() {
        let mut p = Poly::new(4);
        p.add_term(&[0, 1, 2, 3], 1.0);
        p.add_term(&[0, 1, 2], -2.0);
        p.add_term(&[1, 2, 3], 0.5);
        assert_eq!(p.degree(), 4);
        assert_quadratization_exact(&p);
    }

    #[test]
    fn product_form_clause_penalty() {
        // (1−x)(1−y)(1−z): the cubic 3-SAT clause penalty — 1 iff all
        // three are FALSE.
        let mut p = Poly::one(3);
        for v in 0..3 {
            p.multiply_linear(&[(v, -1.0)], 1.0);
        }
        assert_eq!(p.degree(), 3);
        for bits in 0..8u64 {
            let x: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let expect = if bits == 0 { 1.0 } else { 0.0 };
            assert_eq!(p.energy(&x), expect, "at {bits:03b}");
        }
        assert_quadratization_exact(&p);
    }

    #[test]
    fn duplicates_collapse() {
        let mut p = Poly::new(2);
        p.add_term(&[0, 0, 1], 2.0); // x0²x1 = x0x1
        assert_eq!(p.degree(), 2);
        assert_eq!(p.energy(&[true, true]), 2.0);
    }

    #[test]
    fn term_cancellation() {
        let mut p = Poly::new(2);
        p.add_term(&[0, 1], 1.0);
        p.add_term(&[1, 0], -1.0);
        assert_eq!(p.num_terms(), 0);
    }

    #[test]
    fn multiply_linear_expands() {
        // (1 + x0)(2 − x1) = 2 − x1 + 2x0 − x0x1
        let mut p = Poly::one(2);
        p.multiply_linear(&[(0, 1.0)], 1.0);
        p.multiply_linear(&[(1, -1.0)], 2.0);
        assert_eq!(p.energy(&[false, false]), 2.0);
        assert_eq!(p.energy(&[true, false]), 4.0);
        assert_eq!(p.energy(&[false, true]), 1.0);
        assert_eq!(p.energy(&[true, true]), 2.0);
    }
}
