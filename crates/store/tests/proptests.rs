//! Property tests for the durability layer: WAL frame encode/decode
//! round-trips, snapshot serialization, and the recovery invariants —
//! truncated tails truncate, bit flips are detected, and no input
//! whatsoever makes the decoder panic.

#![allow(clippy::unwrap_used)]

use nck_store::{
    crc32, encode_frame, load_snapshot, save_snapshot, scan_frames, RunStore, ScanStop, WAL_FILE,
};
use proptest::prelude::*;
use std::path::PathBuf;

fn arb_record() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..200)
}

fn arb_records() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(arb_record(), 0..12)
}

proptest! {
    /// Encoding any record sequence and scanning it back yields the
    /// same records with a clean stop.
    #[test]
    fn frames_round_trip(records in arb_records()) {
        let mut buf = Vec::new();
        for r in &records {
            buf.extend_from_slice(&encode_frame(r));
        }
        let scan = scan_frames(&buf);
        prop_assert_eq!(scan.stop, ScanStop::Clean);
        prop_assert_eq!(scan.valid_len, buf.len());
        prop_assert_eq!(scan.payloads, records);
    }

    /// Scanning arbitrary bytes never panics, and the reported valid
    /// prefix always re-scans clean.
    #[test]
    fn scanning_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let scan = scan_frames(&bytes);
        let again = scan_frames(&bytes[..scan.valid_len]);
        prop_assert_eq!(again.stop, ScanStop::Clean);
        prop_assert_eq!(again.payloads.len(), scan.payloads.len());
    }

    /// Truncating a valid stream anywhere keeps every frame before the
    /// cut and reports a torn (or clean) stop — never a panic.
    #[test]
    fn truncated_tails_keep_the_valid_prefix(records in arb_records(), cut_raw in any::<usize>()) {
        let mut buf = Vec::new();
        let mut boundaries = vec![0usize];
        for r in &records {
            buf.extend_from_slice(&encode_frame(r));
            boundaries.push(buf.len());
        }
        let cut = cut_raw % (buf.len() + 1);
        let scan = scan_frames(&buf[..cut]);
        let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        prop_assert!(scan.payloads.len() >= whole.saturating_sub(0) || scan.payloads.len() == whole);
        prop_assert!(scan.valid_len <= cut);
    }

    /// Any single bit flip in a one-frame buffer is detected: the scan
    /// either rejects the frame or (for a length-field flip) reports a
    /// torn or implausible stop. It never silently accepts altered
    /// payload bytes as valid.
    #[test]
    fn single_bit_flips_never_corrupt_a_payload(record in arb_record(), pos_raw in any::<usize>(), bit in 0u8..8) {
        let clean = encode_frame(&record);
        let mut buf = clean.clone();
        let pos = pos_raw % buf.len();
        buf[pos] ^= 1 << bit;
        let scan = scan_frames(&buf);
        if scan.stop == ScanStop::Clean && scan.payloads.len() == 1 {
            // A "clean" scan after a flip can only happen if the flip
            // landed in the length field and produced a self-consistent
            // frame — impossible with a CRC over the payload unless the
            // payload it selects still checksums, which requires the
            // payload to be unchanged.
            prop_assert_eq!(&scan.payloads[0], &record);
        }
    }

    /// Snapshot save/load round-trips covered_seq and state exactly.
    #[test]
    fn snapshots_round_trip(covered in any::<u64>(), state in arb_record()) {
        let dir = sweep_dir("prop-snap");
        std::fs::create_dir_all(&dir).unwrap();
        save_snapshot(&dir, covered, &state).unwrap();
        let loaded = load_snapshot(&dir).unwrap();
        prop_assert_eq!(loaded, Some((covered, state)));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

fn sweep_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "nck-store-prop-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Executable deterministic sweeps over the same properties (the
/// vendored proptest is a type-check-only stub, so these carry the
/// actual coverage).
mod deterministic_sweeps {
    use super::*;

    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Pseudo-random byte strings, deterministic per (seed, len).
    fn record(seed: u64, len: usize) -> Vec<u8> {
        (0..len).map(|i| (splitmix64(seed ^ i as u64) & 0xff) as u8).collect()
    }

    fn corpus(seed: u64) -> Vec<Vec<u8>> {
        let n = (splitmix64(seed) % 9) as usize;
        (0..n)
            .map(|i| {
                record(
                    seed.wrapping_mul(31).wrapping_add(i as u64),
                    (splitmix64(seed ^ i as u64) % 120) as usize,
                )
            })
            .collect()
    }

    #[test]
    fn frames_round_trip_across_a_corpus_sweep() {
        for seed in 0..64u64 {
            let records = corpus(seed);
            let mut buf = Vec::new();
            for r in &records {
                buf.extend_from_slice(&encode_frame(r));
            }
            let scan = scan_frames(&buf);
            assert_eq!(scan.stop, ScanStop::Clean, "seed {seed}");
            assert_eq!(scan.payloads, records, "seed {seed}");
        }
    }

    #[test]
    fn every_truncation_point_recovers_the_valid_prefix() {
        let records = corpus(7);
        let mut buf = Vec::new();
        let mut boundaries = vec![0usize];
        for r in &records {
            buf.extend_from_slice(&encode_frame(r));
            boundaries.push(buf.len());
        }
        for cut in 0..=buf.len() {
            let scan = scan_frames(&buf[..cut]);
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(scan.payloads.len(), whole, "cut at {cut}");
            assert_eq!(scan.valid_len, boundaries[whole], "cut at {cut}");
            assert_eq!(
                scan.stop == ScanStop::Clean,
                cut == boundaries[whole],
                "cut at {cut} misreported stop {:?}",
                scan.stop
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected_or_harmless() {
        let payload = record(99, 64);
        let clean = encode_frame(&payload);
        for pos in 0..clean.len() {
            for bit in 0..8 {
                let mut buf = clean.clone();
                buf[pos] ^= 1 << bit;
                let scan = scan_frames(&buf);
                if scan.stop == ScanStop::Clean && scan.payloads.len() == 1 {
                    assert_eq!(
                        scan.payloads[0], payload,
                        "flip at byte {pos} bit {bit} silently altered the payload"
                    );
                }
            }
        }
    }

    #[test]
    fn garbage_scans_never_panic_and_prefixes_rescan_clean() {
        for seed in 0..64u64 {
            let bytes =
                record(seed.wrapping_mul(0xd1b5_4a32_d192_ed03), (splitmix64(seed) % 500) as usize);
            let scan = scan_frames(&bytes);
            let again = scan_frames(&bytes[..scan.valid_len]);
            assert_eq!(again.stop, ScanStop::Clean, "seed {seed}");
            assert_eq!(again.payloads, scan.payloads, "seed {seed}");
        }
    }

    #[test]
    fn snapshots_round_trip_across_a_state_sweep() {
        for seed in 0..16u64 {
            let dir = sweep_dir(&format!("det-snap-{seed}"));
            std::fs::create_dir_all(&dir).unwrap();
            let covered = splitmix64(seed);
            let state = record(seed, (splitmix64(seed ^ 1) % 300) as usize);
            save_snapshot(&dir, covered, &state).unwrap();
            assert_eq!(load_snapshot(&dir).unwrap(), Some((covered, state)), "seed {seed}");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn wal_corruption_at_every_tail_offset_recovers_without_panic() {
        // Build a real store, then corrupt the WAL tail at every byte
        // offset past the magic and assert reopen either recovers or
        // rejects with a typed error — never panics, never loses a
        // record before the corruption point's last valid frame.
        let dir = sweep_dir("det-corrupt");
        let (mut store, _) = RunStore::open(&dir).unwrap();
        for i in 0..5u8 {
            store.append(&record(u64::from(i), 40)).unwrap();
        }
        drop(store);
        let wal_path = dir.join(WAL_FILE);
        let pristine = std::fs::read(&wal_path).unwrap();
        for cut in 8..=pristine.len() {
            std::fs::write(&wal_path, &pristine[..cut]).unwrap();
            let (store, rec) = RunStore::open(&dir).unwrap();
            drop(store);
            assert!(rec.records.len() <= 5, "cut {cut}");
            // Reopening after recovery must be clean.
            let (_, again) = RunStore::open(&dir).unwrap();
            assert_eq!(again.records, rec.records, "cut {cut} not idempotent");
            assert!(!again.recovered_tail, "cut {cut} left a torn tail behind");
            std::fs::write(&wal_path, &pristine).unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crc_reference_vectors_hold() {
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414f_a339);
    }
}
