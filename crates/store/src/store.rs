//! The durable run store: one directory, one WAL, one snapshot.
//!
//! Records are opaque byte strings to this crate; the execution layer
//! gives them meaning. Each appended record is stamped with a
//! monotonically increasing sequence number that never resets — a
//! snapshot stores the highest sequence it *covers*, and recovery
//! replays only the WAL records beyond it. That makes the
//! snapshot-then-truncate pair crash-safe in any interleaving: if the
//! process dies between the two, the leftover WAL records are simply
//! recognized as already covered and skipped.

use crate::error::StoreError;
use crate::killpoint::{KillPoint, KillSpec};
use crate::snapshot::{load_snapshot, save_snapshot, SNAP_FILE};
use crate::wal::{Wal, WAL_MAGIC};
use std::fs;
use std::path::{Path, PathBuf};

/// Filename of the write-ahead log inside a run directory.
pub const WAL_FILE: &str = "wal.log";

/// State recovered from a run directory on open.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Recovered {
    /// The latest snapshot's state bytes, if a snapshot exists.
    pub snapshot: Option<Vec<u8>>,
    /// WAL records not covered by the snapshot, oldest first, with the
    /// sequence prefix stripped.
    pub records: Vec<Vec<u8>>,
    /// True when open truncated a torn or corrupt WAL tail.
    pub recovered_tail: bool,
}

impl Recovered {
    /// True when the directory held no prior state at all.
    pub fn is_empty(&self) -> bool {
        self.snapshot.is_none() && self.records.is_empty()
    }
}

/// A crash-safe, append-only run store.
#[derive(Debug)]
pub struct RunStore {
    dir: PathBuf,
    wal: Wal,
    next_seq: u64,
    kill: Option<KillSpec>,
    append_ops: u64,
    snapshot_ops: u64,
    dead: Option<&'static str>,
}

impl RunStore {
    /// Open the store in `dir` (creating the directory if needed),
    /// recovering any prior state: load the snapshot, replay the WAL,
    /// truncate torn tails, and skip records the snapshot covers.
    pub fn open(dir: &Path) -> Result<(RunStore, Recovered), StoreError> {
        fs::create_dir_all(dir).map_err(|e| StoreError::io("mkdir", dir, &e))?;
        let snap = load_snapshot(dir)?;
        let (covered, snapshot) = match snap {
            Some((c, s)) => (c, Some(s)),
            None => (0, None),
        };
        let wal_path = dir.join(WAL_FILE);
        let replay = Wal::open(&wal_path)?;
        let mut records = Vec::with_capacity(replay.records.len());
        let mut max_seq = covered;
        for (i, rec) in replay.records.into_iter().enumerate() {
            if rec.len() < 8 {
                return Err(StoreError::Corrupt {
                    path: wal_path.display().to_string(),
                    offset: WAL_MAGIC.len() as u64,
                    reason: format!("record {i} shorter than its sequence header"),
                });
            }
            let seq = u64::from_le_bytes([
                rec[0], rec[1], rec[2], rec[3], rec[4], rec[5], rec[6], rec[7],
            ]);
            if seq > max_seq {
                max_seq = seq;
            }
            if seq > covered {
                records.push(rec[8..].to_vec());
            }
        }
        let store = RunStore {
            dir: dir.to_path_buf(),
            wal: replay.wal,
            next_seq: max_seq + 1,
            kill: None,
            append_ops: 0,
            snapshot_ops: 0,
            dead: None,
        };
        Ok((store, Recovered { snapshot, records, recovered_tail: replay.recovered_tail }))
    }

    /// True when `dir` already holds a run (a WAL or a snapshot).
    pub fn has_run(dir: &Path) -> bool {
        dir.join(WAL_FILE).exists() || dir.join(SNAP_FILE).exists()
    }

    /// Open `dir` for a brand-new run; reject a directory that already
    /// holds one so a typo cannot silently interleave two runs.
    pub fn open_fresh(dir: &Path) -> Result<RunStore, StoreError> {
        if Self::has_run(dir) {
            return Err(StoreError::NotEmpty { path: dir.display().to_string() });
        }
        Ok(Self::open(dir)?.0)
    }

    /// Open `dir` to resume a prior run; reject a directory without one.
    pub fn open_resume(dir: &Path) -> Result<(RunStore, Recovered), StoreError> {
        if !Self::has_run(dir) {
            return Err(StoreError::NoRun { path: dir.display().to_string() });
        }
        Self::open(dir)
    }

    /// The run directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Arm a deterministic kill-point. The store simulates the crash
    /// when the spec's operation counter is reached, then refuses all
    /// further work until reopened.
    pub fn arm_kill(&mut self, spec: KillSpec) {
        self.kill = Some(spec);
    }

    /// True once a kill-point or I/O failure has "crashed" this handle.
    pub fn is_dead(&self) -> bool {
        self.dead.is_some()
    }

    /// Append one record durably (fsync before returning). Returns the
    /// record's sequence number.
    pub fn append(&mut self, record: &[u8]) -> Result<u64, StoreError> {
        self.check_alive()?;
        self.append_ops += 1;
        let seq = self.next_seq;
        let mut payload = Vec::with_capacity(8 + record.len());
        payload.extend_from_slice(&seq.to_le_bytes());
        payload.extend_from_slice(record);
        if let Some(spec) = self.kill {
            if spec.at_op == self.append_ops {
                match spec.point {
                    KillPoint::CrashBeforeFsync => {
                        self.wal.append_lost(&payload)?;
                        return Err(self.die(spec.point));
                    }
                    KillPoint::CrashMidFrame => {
                        self.wal.append_torn(&payload)?;
                        return Err(self.die(spec.point));
                    }
                    KillPoint::CrashBetweenSnapshotAndTruncate => {}
                }
            }
        }
        if let Err(e) = self.wal.append(&payload) {
            self.dead = Some("io-failure");
            return Err(e);
        }
        self.next_seq += 1;
        Ok(seq)
    }

    /// Snapshot the caller's full state, then truncate the WAL. The
    /// snapshot covers every sequence appended so far; a crash between
    /// the two steps is harmless because recovery skips covered
    /// records.
    pub fn snapshot(&mut self, state: &[u8]) -> Result<(), StoreError> {
        self.check_alive()?;
        self.snapshot_ops += 1;
        let covered = self.next_seq.saturating_sub(1);
        if let Err(e) = save_snapshot(&self.dir, covered, state) {
            self.dead = Some("io-failure");
            return Err(e);
        }
        if let Some(spec) = self.kill {
            if spec.point == KillPoint::CrashBetweenSnapshotAndTruncate
                && spec.at_op == self.snapshot_ops
            {
                // The snapshot is durable; the crash lands before the
                // WAL truncation, leaving covered records behind.
                return Err(self.die(spec.point));
            }
        }
        if let Err(e) = self.wal.truncate_all() {
            self.dead = Some("io-failure");
            return Err(e);
        }
        Ok(())
    }

    fn check_alive(&self) -> Result<(), StoreError> {
        match self.dead {
            Some(_) => Err(StoreError::Dead),
            None => Ok(()),
        }
    }

    fn die(&mut self, point: KillPoint) -> StoreError {
        self.dead = Some(point.name());
        StoreError::Killed { point: point.name() }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::killpoint::{KillPoint, KillSpec};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "nck-store-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fresh_open_append_reopen_replays() {
        let dir = tmp_dir("fresh");
        let (mut store, rec) = RunStore::open(&dir).unwrap();
        assert!(rec.is_empty());
        assert_eq!(store.append(b"one").unwrap(), 1);
        assert_eq!(store.append(b"two").unwrap(), 2);
        drop(store);
        let (_, rec) = RunStore::open(&dir).unwrap();
        assert_eq!(rec.records, vec![b"one".to_vec(), b"two".to_vec()]);
        assert!(rec.snapshot.is_none());
        assert!(!rec.recovered_tail);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_collapses_wal_and_new_records_follow() {
        let dir = tmp_dir("snap");
        let (mut store, _) = RunStore::open(&dir).unwrap();
        store.append(b"a").unwrap();
        store.append(b"b").unwrap();
        store.snapshot(b"STATE").unwrap();
        store.append(b"c").unwrap();
        drop(store);
        let (mut store, rec) = RunStore::open(&dir).unwrap();
        assert_eq!(rec.snapshot.as_deref(), Some(&b"STATE"[..]));
        assert_eq!(rec.records, vec![b"c".to_vec()]);
        // Sequence numbers never reset.
        assert_eq!(store.append(b"d").unwrap(), 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_before_fsync_loses_exactly_the_unacked_record() {
        let dir = tmp_dir("kill-fsync");
        let (mut store, _) = RunStore::open(&dir).unwrap();
        store.arm_kill(KillSpec { point: KillPoint::CrashBeforeFsync, at_op: 2 });
        store.append(b"acked").unwrap();
        let err = store.append(b"lost").unwrap_err();
        assert_eq!(err, StoreError::Killed { point: "crash-before-fsync" });
        assert_eq!(store.append(b"after-death").unwrap_err(), StoreError::Dead);
        let (_, rec) = RunStore::open(&dir).unwrap();
        assert_eq!(rec.records, vec![b"acked".to_vec()]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_mid_frame_recovers_by_truncation() {
        let dir = tmp_dir("kill-torn");
        let (mut store, _) = RunStore::open(&dir).unwrap();
        store.arm_kill(KillSpec { point: KillPoint::CrashMidFrame, at_op: 2 });
        store.append(b"acked").unwrap();
        let err = store.append(b"torn-record-payload").unwrap_err();
        assert_eq!(err, StoreError::Killed { point: "crash-mid-frame" });
        let (mut store, rec) = RunStore::open(&dir).unwrap();
        assert!(rec.recovered_tail);
        assert_eq!(rec.records, vec![b"acked".to_vec()]);
        // The truncated tail must leave a clean append point.
        store.append(b"next").unwrap();
        drop(store);
        let (_, rec) = RunStore::open(&dir).unwrap();
        assert_eq!(rec.records, vec![b"acked".to_vec(), b"next".to_vec()]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_between_snapshot_and_truncate_skips_covered_records() {
        let dir = tmp_dir("kill-snap");
        let (mut store, _) = RunStore::open(&dir).unwrap();
        store.append(b"a").unwrap();
        store.append(b"b").unwrap();
        store.arm_kill(KillSpec { point: KillPoint::CrashBetweenSnapshotAndTruncate, at_op: 1 });
        let err = store.snapshot(b"STATE").unwrap_err();
        assert_eq!(err, StoreError::Killed { point: "crash-between-snapshot-and-truncate" });
        // The WAL still physically holds a and b; recovery must not
        // replay them on top of the snapshot that covers them.
        let (mut store, rec) = RunStore::open(&dir).unwrap();
        assert_eq!(rec.snapshot.as_deref(), Some(&b"STATE"[..]));
        assert!(rec.records.is_empty());
        assert_eq!(store.append(b"c").unwrap(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_and_resume_guards() {
        let dir = tmp_dir("guards");
        assert_eq!(
            RunStore::open_resume(&dir).unwrap_err(),
            StoreError::NoRun { path: dir.display().to_string() }
        );
        let mut store = RunStore::open_fresh(&dir).unwrap();
        store.append(b"x").unwrap();
        drop(store);
        assert_eq!(
            RunStore::open_fresh(&dir).unwrap_err(),
            StoreError::NotEmpty { path: dir.display().to_string() }
        );
        let (_, rec) = RunStore::open_resume(&dir).unwrap();
        assert_eq!(rec.records, vec![b"x".to_vec()]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_file_rejected_not_destroyed() {
        let dir = tmp_dir("foreign");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(WAL_FILE), b"not a wal file at all").unwrap();
        let err = RunStore::open(&dir).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }));
        // The foreign file must be untouched.
        assert_eq!(fs::read(dir.join(WAL_FILE)).unwrap(), b"not a wal file at all");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_rejected_with_typed_error() {
        let dir = tmp_dir("badsnap");
        let (mut store, _) = RunStore::open(&dir).unwrap();
        store.append(b"a").unwrap();
        store.snapshot(b"STATE").unwrap();
        drop(store);
        let path = dir.join(SNAP_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let err = RunStore::open(&dir).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "got {err:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_snapshot_tmp_is_swept() {
        let dir = tmp_dir("staletmp");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(crate::snapshot::SNAP_TMP_FILE), b"half-written").unwrap();
        let (_, rec) = RunStore::open(&dir).unwrap();
        assert!(rec.is_empty());
        assert!(!dir.join(crate::snapshot::SNAP_TMP_FILE).exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
