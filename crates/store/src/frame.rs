//! CRC32-framed records: the unit of both the WAL and the snapshot
//! payload.
//!
//! Wire format of one frame:
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [payload: len bytes]
//! ```
//!
//! `crc` is the CRC-32 (IEEE 802.3 polynomial, the zlib/qbsolv-era
//! standard) of the payload alone. A reader accepts a frame only when
//! the full header is present, `len` is sane, the payload is complete,
//! and the checksum matches — anything else is a *torn tail* (the
//! crash left a partial write) or corruption, and scanning stops at
//! the last fully valid frame. Decoding never panics.

/// Upper bound on a single frame payload. A corrupt length field must
/// not drive a multi-gigabyte allocation; real records (journal
/// events, solver checkpoints) are kilobytes.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// Frame header size: length + checksum.
pub const HEADER_LEN: usize = 8;

/// CRC-32 (IEEE) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// Encode one frame: header plus payload.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Why a frame scan stopped before the end of the buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScanStop {
    /// The buffer ended exactly on a frame boundary: nothing wrong.
    Clean,
    /// Fewer than [`HEADER_LEN`] bytes remained — a torn header.
    TornHeader,
    /// The header declared more payload than the buffer holds — a torn
    /// payload.
    TornPayload,
    /// The payload checksum did not match — bit rot or a torn write
    /// that happened to leave the right length.
    BadChecksum,
    /// The declared length exceeded [`MAX_FRAME_LEN`] — corruption, not
    /// a real record.
    ImplausibleLength,
}

/// Result of scanning a byte buffer for consecutive frames.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrameScan {
    /// Every fully valid payload, in order.
    pub payloads: Vec<Vec<u8>>,
    /// Bytes consumed by valid frames (the truncate-to point).
    pub valid_len: usize,
    /// Why the scan stopped.
    pub stop: ScanStop,
}

/// Scan `bytes` for consecutive frames, stopping at the first invalid
/// one. The caller truncates its file to `valid_len` to recover from a
/// torn tail. Never panics, whatever the input.
pub fn scan_frames(bytes: &[u8]) -> FrameScan {
    let mut payloads = Vec::new();
    let mut pos = 0usize;
    let stop = loop {
        if pos == bytes.len() {
            break ScanStop::Clean;
        }
        if bytes.len() - pos < HEADER_LEN {
            break ScanStop::TornHeader;
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
        let crc =
            u32::from_le_bytes([bytes[pos + 4], bytes[pos + 5], bytes[pos + 6], bytes[pos + 7]]);
        if len > MAX_FRAME_LEN {
            break ScanStop::ImplausibleLength;
        }
        let len = len as usize;
        if bytes.len() - pos - HEADER_LEN < len {
            break ScanStop::TornPayload;
        }
        let payload = &bytes[pos + HEADER_LEN..pos + HEADER_LEN + len];
        if crc32(payload) != crc {
            break ScanStop::BadChecksum;
        }
        payloads.push(payload.to_vec());
        pos += HEADER_LEN + len;
    };
    FrameScan { payloads, valid_len: pos, stop }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn crc_known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trip_frames() {
        let mut buf = Vec::new();
        let records: Vec<&[u8]> = vec![b"", b"a", b"hello world", &[0xff; 300]];
        for r in &records {
            buf.extend_from_slice(&encode_frame(r));
        }
        let scan = scan_frames(&buf);
        assert_eq!(scan.stop, ScanStop::Clean);
        assert_eq!(scan.valid_len, buf.len());
        assert_eq!(scan.payloads, records.iter().map(|r| r.to_vec()).collect::<Vec<_>>());
    }

    #[test]
    fn torn_tail_truncates_to_last_valid() {
        let mut buf = encode_frame(b"first");
        let keep = buf.len();
        let second = encode_frame(b"second-record");
        buf.extend_from_slice(&second[..second.len() - 3]); // torn payload
        let scan = scan_frames(&buf);
        assert_eq!(scan.stop, ScanStop::TornPayload);
        assert_eq!(scan.valid_len, keep);
        assert_eq!(scan.payloads.len(), 1);
    }

    #[test]
    fn bit_flip_detected() {
        let mut buf = encode_frame(b"sensitive payload");
        let last = buf.len() - 1;
        buf[last] ^= 0x40;
        let scan = scan_frames(&buf);
        assert_eq!(scan.stop, ScanStop::BadChecksum);
        assert_eq!(scan.valid_len, 0);
        assert!(scan.payloads.is_empty());
    }

    #[test]
    fn implausible_length_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let scan = scan_frames(&buf);
        assert_eq!(scan.stop, ScanStop::ImplausibleLength);
    }

    #[test]
    fn torn_header_stops_cleanly() {
        let mut buf = encode_frame(b"ok");
        buf.extend_from_slice(&[1, 2, 3]); // 3 stray bytes
        let scan = scan_frames(&buf);
        assert_eq!(scan.stop, ScanStop::TornHeader);
        assert_eq!(scan.payloads.len(), 1);
    }
}
