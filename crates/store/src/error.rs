//! Typed store failures.
//!
//! Everything the store can report is `Clone + PartialEq` so the
//! execution layer can embed a [`StoreError`] inside its own error
//! enum and tests can match on exact failure shapes. I/O errors are
//! captured as (operation, path, kind) rather than carrying
//! `std::io::Error` (which is neither `Clone` nor `PartialEq`).

use std::fmt;

/// Errors from the durable run store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// An operating-system I/O failure.
    Io {
        /// The store operation that failed (`"open"`, `"append"`, …).
        op: &'static str,
        /// File or directory involved.
        path: String,
        /// `std::io::ErrorKind` of the failure, stringified.
        kind: String,
    },
    /// A store file failed validation: bad magic, bad CRC, an
    /// impossible frame length. Recovery *rejects* corrupt snapshots
    /// and *truncates* corrupt WAL tails; it never panics.
    Corrupt {
        /// File that failed validation.
        path: String,
        /// Byte offset of the first invalid content.
        offset: u64,
        /// What was wrong.
        reason: String,
    },
    /// A deterministic kill-point fired: the store simulated a process
    /// crash at this operation and is now permanently dead.
    Killed {
        /// Which kill-point fired.
        point: &'static str,
    },
    /// The store was used after it died (a kill-point or an I/O
    /// failure); no further operation can succeed.
    Dead,
    /// A fresh run was requested on a directory that already holds one.
    NotEmpty {
        /// The offending run directory.
        path: String,
    },
    /// A resume was requested on a directory with no run in it.
    NoRun {
        /// The empty run directory.
        path: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, kind } => {
                write!(f, "store {op} failed on {path}: {kind}")
            }
            StoreError::Corrupt { path, offset, reason } => {
                write!(f, "corrupt store file {path} at byte {offset}: {reason}")
            }
            StoreError::Killed { point } => {
                write!(f, "store killed at deterministic crash point: {point}")
            }
            StoreError::Dead => write!(f, "store is dead (crashed earlier); reopen to recover"),
            StoreError::NotEmpty { path } => {
                write!(f, "run directory {path} already holds a run (use resume)")
            }
            StoreError::NoRun { path } => {
                write!(f, "run directory {path} holds no run to resume")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl StoreError {
    /// Capture an `std::io::Error` as a cloneable, comparable record.
    pub fn io(op: &'static str, path: &std::path::Path, e: &std::io::Error) -> Self {
        StoreError::Io { op, path: path.display().to_string(), kind: e.kind().to_string() }
    }
}
