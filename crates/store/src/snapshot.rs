//! Atomic-rename snapshots.
//!
//! A snapshot collapses the WAL: it records the caller's state bytes
//! together with `covered_seq`, the highest WAL sequence number the
//! state already incorporates. The file is a `NCKSNAP1` magic followed
//! by exactly one CRC32 frame whose payload is
//! `[covered_seq: u64 LE][state bytes]`.
//!
//! Durability dance: write `snapshot.tmp` → fsync it → rename over
//! `snapshot.bin` → fsync the directory. A crash anywhere in that
//! sequence leaves either the old snapshot or the new one, never a
//! half-written file under the final name. A stale `snapshot.tmp`
//! found on open is removed.

use crate::error::StoreError;
use crate::frame::{encode_frame, scan_frames, ScanStop};
use crate::wal::sync_dir;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

/// Magic bytes opening every snapshot file.
pub const SNAP_MAGIC: &[u8; 8] = b"NCKSNAP1";

/// Final snapshot filename inside a run directory.
pub const SNAP_FILE: &str = "snapshot.bin";

/// Scratch name used for the atomic-rename dance.
pub const SNAP_TMP_FILE: &str = "snapshot.tmp";

/// Write a snapshot durably via the tmp-fsync-rename-fsync sequence.
pub fn save_snapshot(dir: &Path, covered_seq: u64, state: &[u8]) -> Result<(), StoreError> {
    let tmp = dir.join(SNAP_TMP_FILE);
    let fin = dir.join(SNAP_FILE);
    let mut payload = Vec::with_capacity(8 + state.len());
    payload.extend_from_slice(&covered_seq.to_le_bytes());
    payload.extend_from_slice(state);
    let mut bytes = Vec::with_capacity(SNAP_MAGIC.len() + payload.len() + 8);
    bytes.extend_from_slice(SNAP_MAGIC);
    bytes.extend_from_slice(&encode_frame(&payload));
    let mut f = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)
        .map_err(|e| StoreError::io("open", &tmp, &e))?;
    f.write_all(&bytes).map_err(|e| StoreError::io("write", &tmp, &e))?;
    f.sync_all().map_err(|e| StoreError::io("fsync", &tmp, &e))?;
    drop(f);
    fs::rename(&tmp, &fin).map_err(|e| StoreError::io("rename", &fin, &e))?;
    sync_dir(dir)
}

/// Load the snapshot, if any. Removes a stale `snapshot.tmp` left by a
/// crash mid-dance. A snapshot that fails validation is rejected with
/// [`StoreError::Corrupt`] — it is the *only* copy of compacted state,
/// so silently dropping it would lose acknowledged work.
pub fn load_snapshot(dir: &Path) -> Result<Option<(u64, Vec<u8>)>, StoreError> {
    let tmp = dir.join(SNAP_TMP_FILE);
    if tmp.exists() {
        fs::remove_file(&tmp).map_err(|e| StoreError::io("remove", &tmp, &e))?;
    }
    let fin = dir.join(SNAP_FILE);
    let mut f = match File::open(&fin) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StoreError::io("open", &fin, &e)),
    };
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes).map_err(|e| StoreError::io("read", &fin, &e))?;
    let corrupt = |offset: u64, reason: &str| StoreError::Corrupt {
        path: fin.display().to_string(),
        offset,
        reason: reason.to_string(),
    };
    if bytes.len() < SNAP_MAGIC.len() || &bytes[..SNAP_MAGIC.len()] != SNAP_MAGIC {
        return Err(corrupt(0, "bad snapshot magic"));
    }
    let scan = scan_frames(&bytes[SNAP_MAGIC.len()..]);
    if scan.stop != ScanStop::Clean || scan.payloads.len() != 1 {
        return Err(corrupt(
            (SNAP_MAGIC.len() + scan.valid_len) as u64,
            "snapshot must hold exactly one valid frame",
        ));
    }
    let payload = &scan.payloads[0];
    if payload.len() < 8 {
        return Err(corrupt(SNAP_MAGIC.len() as u64, "snapshot payload shorter than header"));
    }
    let covered = u64::from_le_bytes([
        payload[0], payload[1], payload[2], payload[3], payload[4], payload[5], payload[6],
        payload[7],
    ]);
    Ok(Some((covered, payload[8..].to_vec())))
}
