//! Deterministic crash points for the recovery harness.
//!
//! A [`KillSpec`] armed on a [`RunStore`](crate::RunStore) makes the
//! store simulate a process crash at a precise durability-relevant
//! instant: the partial on-disk effect of that crash is produced, the
//! operation returns [`StoreError::Killed`](crate::StoreError::Killed),
//! and every later operation returns
//! [`StoreError::Dead`](crate::StoreError::Dead). The harness then
//! reopens the directory and asserts recovery.

/// Where the simulated crash lands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KillPoint {
    /// The WAL frame was written but the page cache was never flushed:
    /// after the crash the record does not exist on disk.
    CrashBeforeFsync,
    /// Only a prefix of the WAL frame reached disk: recovery must
    /// truncate the torn tail back to the last valid frame.
    CrashMidFrame,
    /// The snapshot was renamed into place but the process died before
    /// truncating the WAL: recovery must ignore WAL records the
    /// snapshot already covers.
    CrashBetweenSnapshotAndTruncate,
}

impl KillPoint {
    /// Stable name, used in error payloads and harness reports.
    pub fn name(self) -> &'static str {
        match self {
            KillPoint::CrashBeforeFsync => "crash-before-fsync",
            KillPoint::CrashMidFrame => "crash-mid-frame",
            KillPoint::CrashBetweenSnapshotAndTruncate => "crash-between-snapshot-and-truncate",
        }
    }

    /// All kill-points, for exhaustive harness sweeps.
    pub fn all() -> [KillPoint; 3] {
        [
            KillPoint::CrashBeforeFsync,
            KillPoint::CrashMidFrame,
            KillPoint::CrashBetweenSnapshotAndTruncate,
        ]
    }
}

/// A kill-point armed to fire at a specific operation.
///
/// `at_op` is 1-based and counts the operations the point applies to:
/// appends for the two append-side points, snapshots for
/// [`KillPoint::CrashBetweenSnapshotAndTruncate`]. `at_op: 3` on
/// `CrashMidFrame` means "the third append tears mid-frame".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KillSpec {
    /// Which crash to simulate.
    pub point: KillPoint,
    /// 1-based index of the triggering operation.
    pub at_op: u64,
}
