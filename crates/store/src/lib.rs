//! Crash-safe run persistence for the constraint-satisfaction stack.
//!
//! `nck-store` is a dependency-free durability layer: an append-only,
//! CRC32-framed write-ahead log plus atomic-rename snapshots, kept in a
//! single run directory. The execution layer appends opaque records
//! (journal events, supervisor progress, solver checkpoints) and
//! periodically snapshots consolidated state; after a crash, reopening
//! the directory recovers by snapshot-load + log-replay, truncating
//! torn tails and rejecting corrupt files with typed errors — never a
//! panic, whatever the bytes on disk.
//!
//! For the recovery harness the store can simulate crashes at
//! deterministic [`KillPoint`]s: the partial on-disk effect is
//! produced, the handle goes permanently dead, and the harness reopens
//! to assert that recovery holds.

#![warn(missing_docs)]

mod error;
pub mod frame;
mod killpoint;
mod snapshot;
mod store;
mod wal;

pub use error::StoreError;
pub use frame::{crc32, encode_frame, scan_frames, FrameScan, ScanStop, MAX_FRAME_LEN};
pub use killpoint::{KillPoint, KillSpec};
pub use snapshot::{load_snapshot, save_snapshot, SNAP_FILE, SNAP_TMP_FILE};
pub use store::{Recovered, RunStore, WAL_FILE};
pub use wal::WAL_MAGIC;
