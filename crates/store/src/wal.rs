//! The append-only write-ahead log file.
//!
//! Layout: an 8-byte magic (`NCKWAL01`) followed by CRC32 frames
//! ([`frame`](crate::frame)). Opening an existing log replays it:
//! every fully valid frame is returned, and anything after the last
//! valid frame — a torn header, a torn payload, a failed checksum —
//! is truncated away, exactly once, so the next append lands on a
//! clean boundary. A file that does not start with the magic is
//! rejected as corrupt rather than silently overwritten.

use crate::error::StoreError;
use crate::frame::{encode_frame, scan_frames, ScanStop};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"NCKWAL01";

/// Fsync a directory so a file creation or rename inside it is
/// durable (the metadata half of the usual fsync dance).
pub fn sync_dir(dir: &Path) -> Result<(), StoreError> {
    let d = File::open(dir).map_err(|e| StoreError::io("open-dir", dir, &e))?;
    d.sync_all().map_err(|e| StoreError::io("sync-dir", dir, &e))
}

/// An open, replayed WAL.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
    /// Durable length of the file (magic + valid frames).
    len: u64,
}

/// Result of opening a WAL: the log handle, every valid record
/// payload in append order, and whether a torn tail was truncated.
#[derive(Debug)]
pub struct WalReplay {
    /// The open log, positioned for appending.
    pub wal: Wal,
    /// Valid record payloads, oldest first.
    pub records: Vec<Vec<u8>>,
    /// True when recovery truncated a torn or corrupt tail.
    pub recovered_tail: bool,
}

impl Wal {
    /// Open (or create) the WAL at `path`, replaying existing records
    /// and truncating any torn tail.
    pub fn open(path: &Path) -> Result<WalReplay, StoreError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| StoreError::io("open", path, &e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(|e| StoreError::io("read", path, &e))?;
        let mut recovered_tail = false;
        if bytes.len() < WAL_MAGIC.len() {
            // Brand new, or a crash tore the header write before any
            // record could exist: (re)initialize.
            recovered_tail = !bytes.is_empty();
            file.set_len(0).map_err(|e| StoreError::io("truncate", path, &e))?;
            file.seek(SeekFrom::Start(0)).map_err(|e| StoreError::io("seek", path, &e))?;
            file.write_all(WAL_MAGIC).map_err(|e| StoreError::io("write", path, &e))?;
            file.sync_data().map_err(|e| StoreError::io("fsync", path, &e))?;
            if let Some(dir) = path.parent() {
                sync_dir(dir)?;
            }
            let len = WAL_MAGIC.len() as u64;
            return Ok(WalReplay {
                wal: Wal { path: path.to_path_buf(), file, len },
                records: Vec::new(),
                recovered_tail,
            });
        }
        if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(StoreError::Corrupt {
                path: path.display().to_string(),
                offset: 0,
                reason: "bad WAL magic (not an nck-store log)".to_string(),
            });
        }
        let scan = scan_frames(&bytes[WAL_MAGIC.len()..]);
        let valid = (WAL_MAGIC.len() + scan.valid_len) as u64;
        if scan.stop != ScanStop::Clean {
            // Torn or corrupt tail: truncate to the last valid frame.
            file.set_len(valid).map_err(|e| StoreError::io("truncate", path, &e))?;
            file.sync_data().map_err(|e| StoreError::io("fsync", path, &e))?;
            recovered_tail = true;
        }
        Ok(WalReplay {
            wal: Wal { path: path.to_path_buf(), file, len: valid },
            records: scan.payloads,
            recovered_tail,
        })
    }

    /// Append one framed record and fsync it durable.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        let frame = encode_frame(payload);
        self.write_at_end(&frame)?;
        self.sync()?;
        self.len += frame.len() as u64;
        Ok(())
    }

    /// Write the full frame but roll the file back before "fsync" — the
    /// `CrashBeforeFsync` kill-point: the OS never made the write
    /// durable, so after the simulated crash the record is gone.
    pub fn append_lost(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        let frame = encode_frame(payload);
        self.write_at_end(&frame)?;
        self.file.set_len(self.len).map_err(|e| StoreError::io("truncate", &self.path, &e))?;
        self.file.sync_data().map_err(|e| StoreError::io("fsync", &self.path, &e))?;
        Ok(())
    }

    /// Write only a prefix of the frame and make *that* durable — the
    /// `CrashMidFrame` kill-point: recovery must truncate this torn
    /// tail.
    pub fn append_torn(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        let frame = encode_frame(payload);
        let keep = (frame.len() / 2).max(1);
        self.write_at_end(&frame[..keep])?;
        self.sync()?;
        // Deliberately do not advance len: the store is dead after
        // this, so the bookkeeping no longer matters.
        Ok(())
    }

    /// Drop every record (after a snapshot has made them redundant).
    pub fn truncate_all(&mut self) -> Result<(), StoreError> {
        self.file
            .set_len(WAL_MAGIC.len() as u64)
            .map_err(|e| StoreError::io("truncate", &self.path, &e))?;
        self.file.sync_data().map_err(|e| StoreError::io("fsync", &self.path, &e))?;
        self.len = WAL_MAGIC.len() as u64;
        Ok(())
    }

    fn write_at_end(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.file
            .seek(SeekFrom::Start(self.len))
            .map_err(|e| StoreError::io("seek", &self.path, &e))?;
        self.file.write_all(bytes).map_err(|e| StoreError::io("write", &self.path, &e))
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        self.file.sync_data().map_err(|e| StoreError::io("fsync", &self.path, &e))
    }
}
