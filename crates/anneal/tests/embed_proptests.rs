//! Property tests for the annealing pipeline: embedding validity,
//! energy preservation under chains, and sampler invariants.

use nck_anneal::{embed_ising, find_embedding, sample_ising, NoiseModel, SaParams, Topology};
use nck_qubo::Ising;
use proptest::prelude::*;

/// Random sparse logical graph over `n` vertices.
fn random_adj(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in edges {
        let (a, b) = (a % n, b % n);
        if a != b && !adj[a].contains(&b) {
            adj[a].push(b);
            adj[b].push(a);
        }
    }
    adj
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the embedder returns must validate: disjoint connected
    /// chains, every logical edge covered.
    #[test]
    fn found_embeddings_are_valid(
        n in 2usize..12,
        edges in prop::collection::vec((0usize..12, 0usize..12), 0..20),
        seed in any::<u64>(),
    ) {
        let adj = random_adj(n, &edges);
        let topo = Topology::chimera(3, 3, 4);
        if let Some(e) = find_embedding(&adj, &topo, seed, 5) {
            prop_assert!(e.is_valid(&adj, &topo));
            prop_assert_eq!(e.num_logical(), n);
            prop_assert!(e.num_physical() >= n);
        }
    }

    /// With intact chains, the embedded physical energy equals the
    /// logical energy plus the constant chain bonus.
    #[test]
    fn intact_chain_energy_matches_logical(
        n in 2usize..8,
        edges in prop::collection::vec((0usize..8, 0usize..8), 1..12),
        spins in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let adj = random_adj(n, &edges);
        let topo = Topology::chimera(3, 3, 4);
        let Some(e) = find_embedding(&adj, &topo, seed, 5) else {
            return Ok(());
        };
        let mut logical = Ising::new(n);
        for (u, nbrs) in adj.iter().enumerate() {
            logical.add_field(u, (u as f64 * 0.3) - 0.5);
            for &v in nbrs {
                if v > u {
                    logical.add_coupling(u, v, 1.0 - (v as f64) * 0.1);
                }
            }
        }
        let strength = 5.0;
        let emb = embed_ising(&logical, &e, &topo, strength);
        // Build a physical state with every chain intact.
        let mut phys = vec![false; topo.num_qubits()];
        for (v, chain) in e.chains().iter().enumerate() {
            let s = spins >> v & 1 == 1;
            for &q in chain {
                phys[q] = s;
            }
        }
        let (decoded, broken) = emb.unembed(&phys);
        prop_assert_eq!(broken, 0);
        let logical_state: Vec<bool> = (0..n).map(|v| spins >> v & 1 == 1).collect();
        prop_assert_eq!(&decoded, &logical_state);
        // Physical energy = logical energy − strength·(#intra-chain couplers).
        let chain_couplers: usize = e
            .chains()
            .iter()
            .map(|chain| {
                let mut c = 0;
                for (i, &a) in chain.iter().enumerate() {
                    for &b in &chain[i + 1..] {
                        if topo.coupled(a, b) {
                            c += 1;
                        }
                    }
                }
                c
            })
            .sum();
        let expect = logical.energy(&logical_state) - strength * chain_couplers as f64;
        prop_assert!((emb.physical.energy(&phys) - expect).abs() < 1e-9);
    }

    /// The sampler returns the requested number of full-length reads
    /// and is deterministic in its seed.
    #[test]
    fn sampler_shape_and_determinism(
        n in 1usize..10,
        reads in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut ising = Ising::new(n);
        for i in 0..n {
            ising.add_field(i, if i % 2 == 0 { -0.7 } else { 0.4 });
        }
        let p = SaParams { num_sweeps: 8, ..SaParams::default() };
        let a = sample_ising(&ising, &p, &NoiseModel::dwave_default(), reads, seed);
        let b = sample_ising(&ising, &p, &NoiseModel::dwave_default(), reads, seed);
        prop_assert_eq!(a.len(), reads);
        prop_assert!(a.iter().all(|s| s.len() == n));
        prop_assert_eq!(a, b);
    }
}
