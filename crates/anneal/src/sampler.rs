//! Simulated annealing sampler over arbitrary Ising problems.
//!
//! The physical anneal of the D-Wave device is replaced by classical
//! simulated annealing over the *embedded* problem, with an ICE-style
//! noise model: per-read Gaussian perturbation of fields and couplings
//! plus readout flips. Reads are independent, so they fan out across
//! rayon workers.

use nck_cancel::CancelToken;
use nck_qubo::Ising;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Simulated-annealing schedule parameters.
#[derive(Clone, Copy, Debug)]
pub struct SaParams {
    /// Metropolis sweeps per read.
    pub num_sweeps: usize,
    /// Initial inverse temperature.
    pub beta_min: f64,
    /// Final inverse temperature.
    pub beta_max: f64,
}

impl Default for SaParams {
    fn default() -> Self {
        SaParams { num_sweeps: 64, beta_min: 0.1, beta_max: 10.0 }
    }
}

/// Analog-control error model (D-Wave "ICE"): coefficients seen by the
/// hardware differ slightly from the programmed ones, and readout
/// occasionally flips.
#[derive(Clone, Copy, Debug)]
pub struct NoiseModel {
    /// Gaussian σ added to each field, per read.
    pub h_sigma: f64,
    /// Gaussian σ added to each coupling, per read.
    pub j_sigma: f64,
    /// Probability of flipping each qubit at readout.
    pub readout_flip: f64,
}

impl NoiseModel {
    /// No noise at all (for deterministic tests).
    pub fn ideal() -> Self {
        NoiseModel { h_sigma: 0.0, j_sigma: 0.0, readout_flip: 0.0 }
    }

    /// Default calibration roughly matching published ICE magnitudes
    /// for problems autoscaled to `[−1, 1]`.
    pub fn dwave_default() -> Self {
        NoiseModel { h_sigma: 0.03, j_sigma: 0.02, readout_flip: 0.001 }
    }
}

/// Compact per-qubit problem view touching only active qubits.
struct Compact {
    /// Active qubit ids (those with a field or coupling).
    qubits: Vec<usize>,
    h: Vec<f64>,
    /// Per active qubit: (compact neighbor index, J).
    adj: Vec<Vec<(usize, f64)>>,
}

fn compact_view(ising: &Ising) -> Compact {
    let mut active = vec![false; ising.num_spins()];
    for (i, _) in ising.fields() {
        active[i] = true;
    }
    for ((i, j), _) in ising.couplings() {
        active[i] = true;
        active[j] = true;
    }
    let qubits: Vec<usize> = (0..ising.num_spins()).filter(|&q| active[q]).collect();
    let mut index = vec![usize::MAX; ising.num_spins()];
    for (ci, &q) in qubits.iter().enumerate() {
        index[q] = ci;
    }
    let mut h = vec![0.0; qubits.len()];
    for (i, f) in ising.fields() {
        h[index[i]] = f;
    }
    let mut adj = vec![Vec::new(); qubits.len()];
    for ((i, j), c) in ising.couplings() {
        adj[index[i]].push((index[j], c));
        adj[index[j]].push((index[i], c));
    }
    Compact { qubits, h, adj }
}

/// SplitMix64 finalizer: the statistically-mixed output function of
/// the SplitMix64 generator (Steele, Lea & Flood). Used to derive
/// per-read RNG seeds: read `r` of job seed `s` takes the `r`-th
/// element of the SplitMix64 stream seeded at `s`. The previous
/// `seed ^ read·φ` scheme left read 0 equal to the raw job seed and
/// made `(seed, read)` pairs collide trivially across seed sweeps
/// (e.g. `(s ^ φ, 0)` and `(s, 1)` produced identical reads).
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Box–Muller standard normal.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-300);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draw `num_reads` samples from `ising` (full-length spin vectors,
/// `true` = +1). Deterministic in `seed`.
pub fn sample_ising(
    ising: &Ising,
    params: &SaParams,
    noise: &NoiseModel,
    num_reads: usize,
    seed: u64,
) -> Vec<Vec<bool>> {
    sample_ising_clustered(ising, params, noise, num_reads, seed, &[])
}

/// [`sample_ising`] with *cluster moves*: each sweep additionally
/// proposes flipping every listed qubit group (an embedding's chains)
/// as a single Metropolis move. Single-spin dynamics freeze on chained
/// problems — flipping a logical variable means crossing a barrier of
/// broken-chain states — whereas the physical annealer's quantum
/// dynamics reorient chains collectively; cluster moves are the
/// standard classical stand-in (see DESIGN.md).
pub fn sample_ising_clustered(
    ising: &Ising,
    params: &SaParams,
    noise: &NoiseModel,
    num_reads: usize,
    seed: u64,
    clusters: &[Vec<usize>],
) -> Vec<Vec<bool>> {
    sample_ising_clustered_cancellable(
        ising,
        params,
        noise,
        num_reads,
        seed,
        clusters,
        &CancelToken::never(),
    )
}

/// [`sample_ising_clustered`] under cooperative cancellation: the
/// sweep loop polls `cancel` once per sweep. Reads not yet started
/// when the token fires are dropped entirely; reads in flight stop
/// annealing and read out their current (partially annealed) spins, so
/// a deadline yields whatever the job completed rather than nothing.
/// With a never-firing token this is byte-identical to the plain
/// sampler.
#[allow(clippy::too_many_arguments)]
pub fn sample_ising_clustered_cancellable(
    ising: &Ising,
    params: &SaParams,
    noise: &NoiseModel,
    num_reads: usize,
    seed: u64,
    clusters: &[Vec<usize>],
    cancel: &CancelToken,
) -> Vec<Vec<bool>> {
    sample_ising_clustered_range(ising, params, noise, 0..num_reads, seed, clusters, cancel)
}

/// [`sample_ising_clustered_cancellable`] restricted to a read-index
/// range. Each read's RNG stream depends only on `(seed, read index)`,
/// so computing reads `[skip..n)` after a restart is bit-identical to
/// the tail of a single `[0..n)` run — the foundation of mid-solve
/// checkpoint/resume for the annealer.
#[allow(clippy::too_many_arguments)]
pub fn sample_ising_clustered_range(
    ising: &Ising,
    params: &SaParams,
    noise: &NoiseModel,
    reads: std::ops::Range<usize>,
    seed: u64,
    clusters: &[Vec<usize>],
    cancel: &CancelToken,
) -> Vec<Vec<bool>> {
    let compact = compact_view(ising);
    let n = compact.qubits.len();
    // Map cluster qubit ids into compact indices, dropping inactive
    // qubits (no field/coupling) and trivial singleton clusters.
    let mut index = vec![usize::MAX; ising.num_spins()];
    for (ci, &q) in compact.qubits.iter().enumerate() {
        index[q] = ci;
    }
    let compact_clusters: Vec<Vec<usize>> = clusters
        .iter()
        .map(|c| {
            c.iter().filter(|&&q| index[q] != usize::MAX).map(|&q| index[q]).collect::<Vec<usize>>()
        })
        .filter(|c: &Vec<usize>| c.len() >= 2)
        .collect();
    let betas: Vec<f64> = (0..params.num_sweeps)
        .map(|s| {
            if params.num_sweeps <= 1 {
                params.beta_max
            } else {
                let f = s as f64 / (params.num_sweeps - 1) as f64;
                params.beta_min * (params.beta_max / params.beta_min).powf(f)
            }
        })
        .collect();
    reads
        .into_par_iter()
        .filter_map(|read| {
            // A read not yet started when the token fires is dropped;
            // the job returns only what it completed.
            if cancel.is_cancelled() {
                return None;
            }
            // Finalize the job seed before mixing in the read index:
            // combining the raw inputs linearly (the old
            // `seed ^ read·φ`) makes stream (seed, read) collide with
            // (seed ^ k·φ, read ± k) for every k.
            let mut rng = StdRng::seed_from_u64(splitmix64(
                splitmix64(seed) ^ (read as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15),
            ));
            // Per-read ICE perturbation.
            let h: Vec<f64> =
                compact.h.iter().map(|&v| v + noise.h_sigma * gaussian(&mut rng)).collect();
            let adj: Vec<Vec<(usize, f64)>> = if noise.j_sigma == 0.0 {
                compact.adj.clone()
            } else {
                // Perturb couplings consistently for both endpoints.
                let mut adj = compact.adj.clone();
                for i in 0..n {
                    for e in 0..adj[i].len() {
                        let (j, c) = adj[i][e];
                        if j > i {
                            let noisy = c + noise.j_sigma * gaussian(&mut rng);
                            adj[i][e].1 = noisy;
                            let back = adj[j].iter().position(|&(k, _)| k == i).unwrap();
                            adj[j][back].1 = noisy;
                        }
                    }
                }
                adj
            };
            // Random initial spins.
            let mut spin: Vec<f64> =
                (0..n).map(|_| if rng.random::<bool>() { 1.0 } else { -1.0 }).collect();
            let mut in_cluster = vec![false; n];
            for &beta in &betas {
                // Cooperative cancellation poll, once per sweep: a read
                // in flight stops annealing and reads out as-is.
                if cancel.is_cancelled() {
                    break;
                }
                for i in 0..n {
                    // ΔE of flipping spin i: −2·s_i·(h_i + Σ J_ij s_j)
                    let mut local = h[i];
                    for &(j, c) in &adj[i] {
                        local += c * spin[j];
                    }
                    let delta = -2.0 * spin[i] * local;
                    if delta >= 0.0 && (-(beta * delta)).exp() < rng.random::<f64>() {
                        continue;
                    }
                    spin[i] = -spin[i];
                }
                // Cluster pass: flip whole chains at once. Internal
                // couplings cancel; only fields and boundary couplings
                // contribute to ΔE.
                for cluster in &compact_clusters {
                    for &i in cluster {
                        in_cluster[i] = true;
                    }
                    let mut delta = 0.0;
                    for &i in cluster {
                        let mut local = h[i];
                        for &(j, c) in &adj[i] {
                            if !in_cluster[j] {
                                local += c * spin[j];
                            }
                        }
                        delta += -2.0 * spin[i] * local;
                    }
                    if delta < 0.0 || (-(beta * delta)).exp() >= rng.random::<f64>() {
                        for &i in cluster {
                            spin[i] = -spin[i];
                        }
                    }
                    for &i in cluster {
                        in_cluster[i] = false;
                    }
                }
            }
            // Readout with occasional flips; inactive qubits read +1.
            let mut out = vec![true; ising.num_spins()];
            for (ci, &q) in compact.qubits.iter().enumerate() {
                let mut v = spin[ci] > 0.0;
                if noise.readout_flip > 0.0 && rng.random::<f64>() < noise.readout_flip {
                    v = !v;
                }
                out[q] = v;
            }
            Some(out)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Frustrated-free ferromagnetic chain: ground states all-up /
    /// all-down.
    fn fm_chain(n: usize) -> Ising {
        let mut ising = Ising::new(n);
        for i in 0..n - 1 {
            ising.add_coupling(i, i + 1, -1.0);
        }
        ising
    }

    #[test]
    fn finds_ferromagnetic_ground_state() {
        let ising = fm_chain(12);
        let samples = sample_ising(&ising, &SaParams::default(), &NoiseModel::ideal(), 20, 42);
        let ground = -(11.0);
        let hits = samples.iter().filter(|s| (ising.energy(s) - ground).abs() < 1e-9).count();
        assert!(hits >= 15, "only {hits}/20 reads reached the ground state");
    }

    #[test]
    fn field_bias_respected() {
        let mut ising = Ising::new(4);
        for i in 0..4 {
            ising.add_field(i, -1.0); // minimized at s = +1
        }
        let samples = sample_ising(&ising, &SaParams::default(), &NoiseModel::ideal(), 10, 7);
        for s in &samples {
            assert_eq!(&s[..4], &[true; 4]);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let ising = fm_chain(8);
        let a = sample_ising(&ising, &SaParams::default(), &NoiseModel::dwave_default(), 5, 3);
        let b = sample_ising(&ising, &SaParams::default(), &NoiseModel::dwave_default(), 5, 3);
        assert_eq!(a, b);
        let c = sample_ising(&ising, &SaParams::default(), &NoiseModel::dwave_default(), 5, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn inactive_qubits_untouched() {
        // Problem on qubits 2 and 5 of a 10-spin register.
        let mut ising = Ising::new(10);
        ising.add_coupling(2, 5, -1.0);
        let samples = sample_ising(&ising, &SaParams::default(), &NoiseModel::ideal(), 5, 1);
        for s in &samples {
            assert_eq!(s.len(), 10);
            assert_eq!(s[2], s[5], "FM pair should align");
        }
    }

    #[test]
    fn readout_noise_flips_some_bits() {
        let mut ising = Ising::new(64);
        for i in 0..64 {
            ising.add_field(i, -1.0);
        }
        let noisy = NoiseModel { h_sigma: 0.0, j_sigma: 0.0, readout_flip: 0.2 };
        let samples = sample_ising(&ising, &SaParams::default(), &noisy, 10, 11);
        let flips: usize = samples.iter().map(|s| s.iter().filter(|&&b| !b).count()).sum();
        assert!(flips > 0, "readout noise should flip something across 640 readouts");
    }

    #[test]
    fn fewer_sweeps_degrade_quality() {
        // A larger frustrated ring: quick anneals should fail more.
        let mut ising = Ising::new(40);
        for i in 0..40 {
            ising.add_coupling(i, (i + 1) % 40, -1.0);
            ising.add_field(i, if i % 2 == 0 { 0.1 } else { -0.1 });
        }
        let good = sample_ising(
            &ising,
            &SaParams { num_sweeps: 256, ..SaParams::default() },
            &NoiseModel::ideal(),
            30,
            5,
        );
        let bad = sample_ising(
            &ising,
            &SaParams { num_sweeps: 2, beta_min: 0.1, beta_max: 0.2 },
            &NoiseModel::ideal(),
            30,
            5,
        );
        let best =
            |ss: &[Vec<bool>]| ss.iter().map(|s| ising.energy(s)).fold(f64::INFINITY, f64::min);
        assert!(best(&good) < best(&bad), "longer anneal should find lower energy");
    }

    #[test]
    fn never_token_matches_plain_sampler() {
        let ising = fm_chain(8);
        let plain = sample_ising(&ising, &SaParams::default(), &NoiseModel::dwave_default(), 5, 3);
        let cancellable = sample_ising_clustered_cancellable(
            &ising,
            &SaParams::default(),
            &NoiseModel::dwave_default(),
            5,
            3,
            &[],
            &CancelToken::never(),
        );
        assert_eq!(plain, cancellable);
    }

    #[test]
    fn fired_token_drops_unstarted_reads() {
        let ising = fm_chain(8);
        let token = CancelToken::never();
        token.cancel();
        let samples = sample_ising_clustered_cancellable(
            &ising,
            &SaParams::default(),
            &NoiseModel::ideal(),
            10,
            3,
            &[],
            &token,
        );
        assert!(samples.is_empty(), "no read should start after cancellation");
    }
}
