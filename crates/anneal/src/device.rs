//! The simulated annealer device: the full Ocean-style pipeline from a
//! QUBO to decoded logical samples.
//!
//! Pipeline: autoscale → QUBO→Ising → minor-embed onto the hardware
//! graph → apply chains → simulated anneal with ICE noise → unembed by
//! majority vote → rank by clean logical energy.

use crate::chain::{embed_ising, suggested_chain_strength, EmbeddedIsing};
use crate::embed::{find_embedding, Embedding};
use crate::gauge::Gauge;
use crate::sampler::{sample_ising_clustered_range, NoiseModel, SaParams};
use crate::timing::TimingModel;
use crate::topology::Topology;
use nck_cancel::CancelToken;
use nck_qubo::Qubo;
use std::fmt;
use std::time::Duration;

/// Errors from the annealing pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnnealError {
    /// The embedder could not fit the problem onto the hardware graph.
    EmbeddingFailed {
        /// Logical variable count of the problem.
        logical_vars: usize,
        /// Qubits available on the device.
        device_qubits: usize,
    },
}

impl fmt::Display for AnnealError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnnealError::EmbeddingFailed { logical_vars, device_qubits } => write!(
                f,
                "could not embed {logical_vars}-variable problem into {device_qubits} qubits"
            ),
        }
    }
}

impl std::error::Error for AnnealError {}

/// One decoded sample.
#[derive(Clone, Debug)]
pub struct AnnealSample {
    /// Logical assignment (`true` = 1).
    pub assignment: Vec<bool>,
    /// Energy under the *clean* (unnoised) logical QUBO.
    pub energy: f64,
    /// Chains that returned split votes in this read.
    pub broken_chains: usize,
}

/// Result of one annealer job.
#[derive(Clone, Debug)]
pub struct AnnealResult {
    /// Samples sorted by ascending energy.
    pub samples: Vec<AnnealSample>,
    /// Physical qubits used by the embedding — the paper's Fig. 7
    /// x-axis metric.
    pub physical_qubits: usize,
    /// Longest chain length.
    pub max_chain_length: usize,
    /// Fraction of (read × chain) events that broke.
    pub chain_break_fraction: f64,
    /// Modeled QPU access time for the job.
    pub qpu_access_time: Duration,
    /// The embedding used (for diagnostics).
    pub embedding: Embedding,
}

impl AnnealResult {
    /// The lowest-energy sample (the paper considers "only the best
    /// (lowest-energy) result" in §VII).
    pub fn best(&self) -> &AnnealSample {
        &self.samples[0]
    }

    /// Aggregate identical assignments, Ocean-`SampleSet` style:
    /// `(assignment, energy, num_occurrences)` sorted by ascending
    /// energy then descending count.
    pub fn aggregate(&self) -> Vec<(Vec<bool>, f64, usize)> {
        let mut counts: std::collections::HashMap<Vec<bool>, (f64, usize)> =
            std::collections::HashMap::new();
        for s in &self.samples {
            let e = counts.entry(s.assignment.clone()).or_insert((s.energy, 0));
            e.1 += 1;
        }
        let mut out: Vec<(Vec<bool>, f64, usize)> =
            counts.into_iter().map(|(a, (e, c))| (a, e, c)).collect();
        out.sort_by(|a, b| {
            a.1.partial_cmp(&b.1).unwrap().then_with(|| b.2.cmp(&a.2)).then_with(|| a.0.cmp(&b.0))
        });
        out
    }
}

/// A simulated annealing device.
#[derive(Clone, Debug)]
pub struct AnnealerDevice {
    /// Hardware graph.
    pub topology: Topology,
    /// Anneal schedule.
    pub sa: SaParams,
    /// Analog noise model.
    pub noise: NoiseModel,
    /// Timing model.
    pub timing: TimingModel,
    /// Chain-strength multiplier relative to the suggested value
    /// (1.0 = default; the chain-strength ablation varies this).
    pub chain_strength_scale: f64,
    /// Embedding retries.
    pub embed_tries: usize,
    /// Number of spin-reversal (gauge) transforms to average over per
    /// job (1 = identity only). Gauge averaging decorrelates the
    /// systematic part of the ICE noise, an Ocean-stack mitigation.
    pub num_gauges: usize,
    /// Polish each decoded sample to a local minimum of the logical
    /// QUBO (`SteepestDescentComposite`); part of the few-ms
    /// post-processing in the §VIII-C timing breakdown.
    pub postprocess: bool,
    /// When the heuristic embedder fails and the topology is
    /// `pegasus_like(m)`, fall back to the precomputed clique
    /// embedding for that `m` (the `DWaveCliqueSampler` pattern).
    pub clique_fallback: Option<usize>,
}

impl AnnealerDevice {
    /// The simulated Advantage 4.1 preset (5,640 qubits).
    pub fn advantage_4_1() -> Self {
        AnnealerDevice {
            topology: Topology::advantage_4_1(),
            sa: SaParams::default(),
            noise: NoiseModel::dwave_default(),
            timing: TimingModel::dwave_default(),
            chain_strength_scale: 1.0,
            embed_tries: 5,
            num_gauges: 1,
            postprocess: false,
            clique_fallback: Some(16),
        }
    }

    /// A small ideal device for tests: complete connectivity, no noise.
    pub fn ideal(num_qubits: usize) -> Self {
        AnnealerDevice {
            topology: Topology::complete(num_qubits),
            sa: SaParams { num_sweeps: 256, ..SaParams::default() },
            noise: NoiseModel::ideal(),
            timing: TimingModel::dwave_default(),
            chain_strength_scale: 1.0,
            embed_tries: 3,
            num_gauges: 1,
            postprocess: false,
            clique_fallback: None,
        }
    }

    /// Run one job of `num_reads` samples on `qubo`, finding a fresh
    /// minor embedding.
    pub fn sample_qubo(
        &self,
        qubo: &Qubo,
        num_reads: usize,
        seed: u64,
    ) -> Result<AnnealResult, AnnealError> {
        let adj = qubo.adjacency();
        let embedding = find_embedding(&adj, &self.topology, seed, self.embed_tries)
            .or_else(|| {
                // Dense problems can defeat the heuristic; the clique
                // embedding hosts any minor of K_n directly.
                self.clique_fallback
                    .and_then(|m| Topology::pegasus_like_clique_embedding(m, qubo.num_vars()))
            })
            .ok_or(AnnealError::EmbeddingFailed {
                logical_vars: qubo.num_vars(),
                device_qubits: self.topology.num_qubits(),
            })?;
        self.sample_qubo_embedded(qubo, &embedding, num_reads, seed)
    }

    /// Run one job reusing a previously found embedding — the
    /// `FixedEmbeddingComposite` pattern: scaling studies re-submit the
    /// same problem structure many times, and re-embedding per job
    /// would dominate.
    pub fn sample_qubo_embedded(
        &self,
        qubo: &Qubo,
        embedding: &Embedding,
        num_reads: usize,
        seed: u64,
    ) -> Result<AnnealResult, AnnealError> {
        self.sample_qubo_embedded_cancellable(
            qubo,
            embedding,
            num_reads,
            seed,
            &CancelToken::never(),
        )
    }

    /// [`sample_qubo_embedded`](Self::sample_qubo_embedded) under
    /// cooperative cancellation: the anneal sweep loops poll `cancel`,
    /// so a fired deadline returns the reads completed so far (possibly
    /// none) instead of running the job to the end.
    pub fn sample_qubo_embedded_cancellable(
        &self,
        qubo: &Qubo,
        embedding: &Embedding,
        num_reads: usize,
        seed: u64,
        cancel: &CancelToken,
    ) -> Result<AnnealResult, AnnealError> {
        self.sample_qubo_embedded_resumable(
            qubo,
            embedding,
            num_reads,
            seed,
            0,
            Vec::new(),
            0,
            cancel,
            &mut |_, _| {},
        )
    }

    /// [`sample_qubo_embedded_cancellable`](Self::sample_qubo_embedded_cancellable)
    /// with mid-solve checkpoint/resume. Each read's RNG stream depends
    /// only on the job seed and the read's global index, so a run that
    /// computed reads `[0..skip_reads)` before dying and a resume
    /// computing `[skip_reads..num_reads)` produce, together, exactly
    /// the samples of one uninterrupted run.
    ///
    /// `restored` carries the decoded samples of the skipped reads (in
    /// generation order, pre-sort). Every `chunk` completed reads
    /// (`0` = never) `on_progress(reads_done, samples_so_far)` fires so
    /// the caller can persist a checkpoint; it is only called after
    /// fully completed, uncancelled chunks, so a persisted
    /// `reads_done` is always safe to resume from.
    #[allow(clippy::too_many_arguments)]
    pub fn sample_qubo_embedded_resumable(
        &self,
        qubo: &Qubo,
        embedding: &Embedding,
        num_reads: usize,
        seed: u64,
        skip_reads: usize,
        restored: Vec<AnnealSample>,
        chunk: usize,
        cancel: &CancelToken,
        on_progress: &mut dyn FnMut(usize, &[AnnealSample]),
    ) -> Result<AnnealResult, AnnealError> {
        // Autoscale to the device range [−1, 1] (argmin-preserving).
        let mut scaled = qubo.clone();
        let m = scaled.max_abs_coeff();
        if m > 0.0 {
            scaled.scale(1.0 / m);
        }
        let logical = scaled.to_ising();
        let strength = suggested_chain_strength(&logical) * self.chain_strength_scale;
        let embedded: EmbeddedIsing = embed_ising(&logical, embedding, &self.topology, strength);
        // Split the reads across spin-reversal transforms; gauge 0 is
        // the identity so num_gauges = 1 preserves the plain behavior.
        let gauges = self.num_gauges.max(1);
        let mut samples: Vec<AnnealSample> = restored;
        let n_phys = self.topology.num_qubits();
        let mut g_start = 0usize; // global index of this gauge's first read
        for gi in 0..gauges {
            let reads_here = num_reads / gauges + usize::from(gi < num_reads % gauges);
            let g_end = g_start + reads_here;
            if reads_here == 0 || g_end <= skip_reads || cancel.is_cancelled() {
                g_start = g_end;
                continue;
            }
            let gauge = if gi == 0 {
                Gauge::identity(n_phys)
            } else {
                Gauge::random(n_phys, seed ^ (gi as u64).wrapping_mul(0xd1b54a32d192ed03))
            };
            let physical = gauge.apply(&embedded.physical);
            let lo = skip_reads.saturating_sub(g_start);
            let step = if chunk == 0 { reads_here } else { chunk };
            let mut pos = lo;
            while pos < reads_here {
                if cancel.is_cancelled() {
                    break;
                }
                let hi = (pos + step).min(reads_here);
                let reads = sample_ising_clustered_range(
                    &physical,
                    &self.sa,
                    &self.noise,
                    pos..hi,
                    seed ^ gi as u64,
                    embedding.chains(),
                    cancel,
                );
                let complete = reads.len() == hi - pos && !cancel.is_cancelled();
                for r in &reads {
                    let ungauged = gauge.decode(r);
                    let (mut assignment, broken_chains) = embedded.unembed(&ungauged);
                    let mut energy = qubo.energy(&assignment);
                    if self.postprocess {
                        let (polished, e, _) =
                            crate::postprocess::steepest_descent(qubo, &assignment);
                        assignment = polished;
                        energy = e;
                    }
                    samples.push(AnnealSample { assignment, energy, broken_chains });
                }
                // Only a fully completed chunk is a safe resume point:
                // a cancelled chunk may have dropped reads.
                if complete && chunk != 0 {
                    on_progress(g_start + hi, &samples);
                }
                pos = hi;
            }
            g_start = g_end;
        }
        samples.sort_by(|a, b| a.energy.partial_cmp(&b.energy).unwrap());
        let total_chains = embedding.num_logical().max(1) * num_reads.max(1);
        let broken: usize = samples.iter().map(|s| s.broken_chains).sum();
        Ok(AnnealResult {
            physical_qubits: embedding.num_physical(),
            max_chain_length: embedding.max_chain_length(),
            chain_break_fraction: broken as f64 / total_chains as f64,
            qpu_access_time: self.timing.qpu_access_time(num_reads),
            embedding: embedding.clone(),
            samples,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Vertex-cover-edge QUBO: ground states are the three assignments
    /// with at least one TRUE.
    fn edge_qubo() -> Qubo {
        let mut q = Qubo::new(2);
        q.add_quadratic(0, 1, 1.0);
        q.add_linear(0, -1.0);
        q.add_linear(1, -1.0);
        q
    }

    #[test]
    fn ideal_device_finds_ground_state() {
        let dev = AnnealerDevice::ideal(8);
        let r = dev.sample_qubo(&edge_qubo(), 20, 1).unwrap();
        assert_eq!(r.best().energy, -1.0);
        assert_eq!(r.physical_qubits, 2);
        assert_eq!(r.max_chain_length, 1);
        assert_eq!(r.chain_break_fraction, 0.0);
    }

    #[test]
    fn samples_sorted_by_energy() {
        let dev = AnnealerDevice::ideal(8);
        let r = dev.sample_qubo(&edge_qubo(), 25, 2).unwrap();
        for w in r.samples.windows(2) {
            assert!(w[0].energy <= w[1].energy);
        }
    }

    #[test]
    fn resumable_sampling_matches_uninterrupted() {
        // Multi-gauge device so resume points cross gauge boundaries.
        let mut dev = AnnealerDevice::ideal(8);
        dev.num_gauges = 3;
        let qubo = edge_qubo();
        let adj = qubo.adjacency();
        let embedding = find_embedding(&adj, &dev.topology, 5, dev.embed_tries).unwrap();
        let cancel = CancelToken::never();
        let full = dev.sample_qubo_embedded_cancellable(&qubo, &embedding, 17, 9, &cancel).unwrap();
        for skip in [0usize, 1, 5, 6, 11, 16, 17] {
            // Phase one: a run that checkpoints after every read; keep
            // the checkpoint that covers exactly `skip` reads (what a
            // crash right after that save would leave behind).
            let mut gen_order: Vec<AnnealSample> = Vec::new();
            dev.sample_qubo_embedded_resumable(
                &qubo,
                &embedding,
                17,
                9,
                0,
                Vec::new(),
                1,
                &cancel,
                &mut |done, samples| {
                    if done == skip {
                        gen_order = samples.to_vec();
                    }
                },
            )
            .unwrap();
            // Phase two: resume from `skip` with the restored prefix.
            let resumed = dev
                .sample_qubo_embedded_resumable(
                    &qubo,
                    &embedding,
                    17,
                    9,
                    skip,
                    gen_order,
                    2,
                    &cancel,
                    &mut |_, _| {},
                )
                .unwrap();
            assert_eq!(resumed.samples.len(), full.samples.len(), "skip {skip}");
            for (a, b) in resumed.samples.iter().zip(full.samples.iter()) {
                assert_eq!(a.assignment, b.assignment, "skip {skip}");
                assert_eq!(a.energy.to_bits(), b.energy.to_bits(), "skip {skip}");
                assert_eq!(a.broken_chains, b.broken_chains, "skip {skip}");
            }
            assert_eq!(resumed.chain_break_fraction, full.chain_break_fraction, "skip {skip}");
        }
    }

    #[test]
    fn embedding_failure_reported() {
        // 20-variable complete QUBO into 8 qubits: impossible.
        let mut q = Qubo::new(20);
        for i in 0..20 {
            for j in i + 1..20 {
                q.add_quadratic(i, j, 1.0);
            }
        }
        let dev = AnnealerDevice::ideal(8);
        match dev.sample_qubo(&q, 5, 3) {
            Err(AnnealError::EmbeddingFailed { logical_vars: 20, device_qubits: 8 }) => {}
            other => panic!("expected embedding failure, got {other:?}"),
        }
    }

    #[test]
    fn advantage_preset_runs_small_problem() {
        let dev = AnnealerDevice::advantage_4_1();
        let r = dev.sample_qubo(&edge_qubo(), 100, 4).unwrap();
        assert_eq!(r.samples.len(), 100);
        // §VIII-C: a 100-sample job costs about 30 ms of QPU time.
        assert!(r.qpu_access_time >= Duration::from_millis(25));
        assert!(r.qpu_access_time <= Duration::from_millis(35));
        // The best of 100 reads of a 2-variable problem is optimal even
        // with noise.
        assert_eq!(r.best().energy, -1.0);
    }

    #[test]
    fn qubits_used_exceed_variables_on_dense_problems() {
        // §VIII-A: dense coupling forces chains. K12 on the
        // Pegasus-like lattice (degree 15) still usually chains some
        // variables; check physical ≥ logical at minimum.
        let mut q = Qubo::new(12);
        for i in 0..12 {
            for j in i + 1..12 {
                q.add_quadratic(i, j, -1.0);
            }
        }
        let dev = AnnealerDevice::advantage_4_1();
        let r = dev.sample_qubo(&q, 10, 5).unwrap();
        assert!(r.physical_qubits >= 12);
    }

    #[test]
    fn aggregate_counts_duplicates() {
        let dev = AnnealerDevice::ideal(8);
        let r = dev.sample_qubo(&edge_qubo(), 40, 7).unwrap();
        let agg = r.aggregate();
        let total: usize = agg.iter().map(|(_, _, c)| c).sum();
        assert_eq!(total, 40);
        assert!(agg.len() <= 4, "only 4 assignments exist");
        // Sorted by energy: the ground states come first.
        assert_eq!(agg[0].1, -1.0);
        for w in agg.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let dev = AnnealerDevice::advantage_4_1();
        let a = dev.sample_qubo(&edge_qubo(), 10, 9).unwrap();
        let b = dev.sample_qubo(&edge_qubo(), 10, 9).unwrap();
        let key = |r: &AnnealResult| -> Vec<(Vec<bool>, u64)> {
            r.samples.iter().map(|s| (s.assignment.clone(), s.energy.to_bits())).collect()
        };
        assert_eq!(key(&a), key(&b));
    }

    #[test]
    fn autoscaling_preserves_argmin() {
        // Huge coefficients would swamp fixed beta schedules without
        // autoscaling.
        let mut q = edge_qubo();
        q.scale(1e6);
        let dev = AnnealerDevice::ideal(4);
        let r = dev.sample_qubo(&q, 20, 6).unwrap();
        assert_eq!(r.best().energy, -1e6);
    }
}
