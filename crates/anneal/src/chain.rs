//! Applying an embedding: logical Ising → physical Ising, and samples
//! back (chain-break repair by majority vote).

use crate::embed::Embedding;
use crate::topology::Topology;
use nck_qubo::Ising;

/// A logical Ising problem mapped onto hardware qubits.
#[derive(Clone, Debug)]
pub struct EmbeddedIsing {
    /// The physical Ising over the full topology's qubits.
    pub physical: Ising,
    /// The embedding used.
    pub embedding: Embedding,
    /// Ferromagnetic chain coupling magnitude.
    pub chain_strength: f64,
}

/// D-Wave-style default chain strength: a constant factor above the
/// largest problem coefficient, so chains usually (but not always —
/// that is the noise channel the paper's mixed problems suffer from)
/// hold together.
pub fn suggested_chain_strength(logical: &Ising) -> f64 {
    let m = logical.max_abs_coeff();
    if m == 0.0 {
        1.0
    } else {
        1.5 * m
    }
}

/// Map `logical` onto hardware through `embedding`.
///
/// Fields are split evenly across a chain's qubits; each logical
/// coupling is split evenly across every available physical coupler
/// between the two chains; intra-chain couplers get `−chain_strength`.
pub fn embed_ising(
    logical: &Ising,
    embedding: &Embedding,
    topo: &Topology,
    chain_strength: f64,
) -> EmbeddedIsing {
    let mut physical = Ising::new(topo.num_qubits());
    for (v, h) in logical.fields() {
        let chain = embedding.chain(v);
        let share = h / chain.len() as f64;
        for &q in chain {
            physical.add_field(q, share);
        }
    }
    for ((u, v), j) in logical.couplings() {
        let cu = embedding.chain(u);
        let cv = embedding.chain(v);
        let couplers: Vec<(usize, usize)> = cu
            .iter()
            .flat_map(|&a| cv.iter().filter(move |&&b| topo.coupled(a, b)).map(move |&b| (a, b)))
            .collect();
        assert!(!couplers.is_empty(), "embedding does not cover logical edge ({u},{v})");
        let share = j / couplers.len() as f64;
        for (a, b) in couplers {
            physical.add_coupling(a, b, share);
        }
    }
    for chain in embedding.chains() {
        for (i, &a) in chain.iter().enumerate() {
            for &b in &chain[i + 1..] {
                if topo.coupled(a, b) {
                    physical.add_coupling(a, b, -chain_strength);
                }
            }
        }
    }
    EmbeddedIsing { physical, embedding: embedding.clone(), chain_strength }
}

impl EmbeddedIsing {
    /// Decode a physical sample into logical values by majority vote
    /// per chain (ties resolve to TRUE). Returns the logical sample and
    /// the number of broken chains.
    pub fn unembed(&self, physical_sample: &[bool]) -> (Vec<bool>, usize) {
        let mut logical = Vec::with_capacity(self.embedding.num_logical());
        let mut broken = 0;
        for chain in self.embedding.chains() {
            let ups = chain.iter().filter(|&&q| physical_sample[q]).count();
            if ups != 0 && ups != chain.len() {
                broken += 1;
            }
            logical.push(2 * ups >= chain.len());
        }
        (logical, broken)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed::find_embedding;

    /// Antiferromagnetic pair: ground states are the two unequal spin
    /// configurations.
    fn afm_pair() -> Ising {
        let mut ising = Ising::new(2);
        ising.add_coupling(0, 1, 1.0);
        ising
    }

    #[test]
    fn unit_chain_embedding_is_identity() {
        let topo = Topology::complete(2);
        let adj = vec![vec![1], vec![0]];
        let e = find_embedding(&adj, &topo, 1, 4).unwrap();
        let logical = afm_pair();
        let emb = embed_ising(&logical, &e, &topo, 2.0);
        // Physical energies must match logical energies exactly.
        for s in [[false, false], [false, true], [true, false], [true, true]] {
            let (l, broken) = emb.unembed(&s);
            assert_eq!(broken, 0);
            assert_eq!(emb.physical.energy(&s), logical.energy(&l));
        }
    }

    #[test]
    fn chain_ground_state_preserves_logical_ground_state() {
        // Force a chain: path topology 0-1-2, logical AFM pair must map
        // one variable to a 2-qubit chain... build it explicitly.
        let topo = Topology::new("path3", 3, &[(0, 1), (1, 2)]);
        let e = crate::embed::Embedding::from_chains(vec![vec![0, 1], vec![2]]);
        let logical = afm_pair();
        assert!(e.is_valid(&[vec![1], vec![0]], &topo));
        let emb = embed_ising(&logical, &e, &topo, 2.0);
        // Exhaustive scan of the 8 physical states: the minimum must
        // unembed to a logical ground state with intact chains.
        let mut best = f64::INFINITY;
        let mut best_states = Vec::new();
        for bits in 0..8u64 {
            let s: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let en = emb.physical.energy(&s);
            if en < best - 1e-12 {
                best = en;
                best_states.clear();
                best_states.push(s);
            } else if (en - best).abs() < 1e-12 {
                best_states.push(s);
            }
        }
        for s in best_states {
            let (l, broken) = emb.unembed(&s);
            assert_eq!(broken, 0, "ground state must not break chains");
            assert_eq!(logical.energy(&l), -1.0);
        }
    }

    #[test]
    fn coupling_split_preserves_total() {
        // Two chains with two parallel couplers between them: shares
        // must sum to the logical J.
        let topo = Topology::complete(4);
        let e = crate::embed::Embedding::from_chains(vec![vec![0, 1], vec![2, 3]]);
        let logical = afm_pair();
        let emb = embed_ising(&logical, &e, &topo, 3.0);
        let total: f64 = [(0, 2), (0, 3), (1, 2), (1, 3)]
            .iter()
            .map(|&(a, b)| emb.physical.coupling(a, b))
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Intra-chain couplers are ferromagnetic at chain strength.
        assert_eq!(emb.physical.coupling(0, 1), -3.0);
        assert_eq!(emb.physical.coupling(2, 3), -3.0);
    }

    #[test]
    fn field_split_preserves_total() {
        let topo = Topology::complete(3);
        let e = crate::embed::Embedding::from_chains(vec![vec![0, 1, 2]]);
        let mut logical = Ising::new(1);
        logical.add_field(0, 0.9);
        let emb = embed_ising(&logical, &e, &topo, 1.0);
        let total: f64 = (0..3).map(|q| emb.physical.field(q)).sum();
        assert!((total - 0.9).abs() < 1e-12);
    }

    #[test]
    fn majority_vote_counts_breaks() {
        let topo = Topology::complete(4);
        let e = crate::embed::Embedding::from_chains(vec![vec![0, 1, 2], vec![3]]);
        let logical = afm_pair();
        let emb = embed_ising(&logical, &e, &topo, 1.0);
        let (l, broken) = emb.unembed(&[true, true, false, false]);
        assert_eq!(broken, 1);
        assert_eq!(l, vec![true, false]); // 2 of 3 up → TRUE
        let (l, broken) = emb.unembed(&[true, true, true, true]);
        assert_eq!(broken, 0);
        assert_eq!(l, vec![true, true]);
    }

    #[test]
    fn suggested_strength_scales_with_problem() {
        let mut ising = Ising::new(2);
        ising.add_coupling(0, 1, 4.0);
        assert_eq!(suggested_chain_strength(&ising), 6.0);
        assert_eq!(suggested_chain_strength(&Ising::new(1)), 1.0);
    }
}
