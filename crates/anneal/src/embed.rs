//! Heuristic minor embedding (the role of `minorminer` in the Ocean
//! stack).
//!
//! A logical problem graph rarely matches the hardware graph, so each
//! logical variable is mapped to a *chain* of physical qubits forming a
//! connected subgraph, with every logical edge realized by at least one
//! physical coupler between the two chains (§VIII-A of the paper: "a
//! variable may need to be mapped to a chain of qubits … the more
//! densely connected the problem, the more qubits are required to
//! represent each variable").
//!
//! The algorithm follows the minorminer idea: chains are routed with
//! Dijkstra searches in which a qubit already used by `k` other chains
//! costs `PENALTY^k`, so overlap is allowed early but exponentially
//! discouraged. Repeated rip-up-and-reroute sweeps (with the penalty
//! rising each sweep) drive the embedding overlap-free; several seeded
//! restarts are attempted before giving up.

use crate::topology::Topology;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BinaryHeap;

/// A minor embedding: one chain of physical qubits per logical
/// variable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Embedding {
    chains: Vec<Vec<usize>>,
}

impl Embedding {
    /// Build an embedding from explicit chains (validate with
    /// [`Embedding::is_valid`] before use).
    pub fn from_chains(chains: Vec<Vec<usize>>) -> Self {
        Embedding { chains }
    }

    /// The chain (sorted physical qubits) of logical variable `v`.
    pub fn chain(&self, v: usize) -> &[usize] {
        &self.chains[v]
    }

    /// All chains, indexed by logical variable.
    pub fn chains(&self) -> &[Vec<usize>] {
        &self.chains
    }

    /// Number of logical variables.
    pub fn num_logical(&self) -> usize {
        self.chains.len()
    }

    /// Total physical qubits used — the paper's "number of qubits"
    /// metric for D-Wave runs (Fig. 7's x axis).
    pub fn num_physical(&self) -> usize {
        self.chains.iter().map(Vec::len).sum()
    }

    /// Length of the longest chain.
    pub fn max_chain_length(&self) -> usize {
        self.chains.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Validate against the logical adjacency and the hardware graph:
    /// chains non-empty, disjoint, connected, and every logical edge
    /// covered by a physical coupler.
    pub fn is_valid(&self, logical_adj: &[Vec<usize>], topo: &Topology) -> bool {
        let mut owner = vec![usize::MAX; topo.num_qubits()];
        for (v, chain) in self.chains.iter().enumerate() {
            if chain.is_empty() {
                return false;
            }
            for &q in chain {
                if q >= topo.num_qubits() || owner[q] != usize::MAX {
                    return false;
                }
                owner[q] = v;
            }
        }
        // Connectivity of each chain.
        for chain in &self.chains {
            let mut seen = vec![false; chain.len()];
            let mut stack = vec![0usize];
            seen[0] = true;
            while let Some(i) = stack.pop() {
                for (j, &q) in chain.iter().enumerate() {
                    if !seen[j] && topo.coupled(chain[i], q) {
                        seen[j] = true;
                        stack.push(j);
                    }
                }
            }
            if !seen.iter().all(|&s| s) {
                return false;
            }
        }
        // Edge coverage.
        for (u, nbrs) in logical_adj.iter().enumerate() {
            for &v in nbrs {
                if v <= u {
                    continue;
                }
                let covered = self.chains[u]
                    .iter()
                    .any(|&a| topo.neighbors(a).iter().any(|&b| owner[b] == v));
                if !covered {
                    return false;
                }
            }
        }
        true
    }
}

/// Find a minor embedding of `logical_adj` into `topo`, retrying with
/// `tries` random restarts. Returns `None` if every attempt fails.
pub fn find_embedding(
    logical_adj: &[Vec<usize>],
    topo: &Topology,
    seed: u64,
    tries: usize,
) -> Option<Embedding> {
    for t in 0..tries {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(t as u64));
        if let Some(e) = try_embed(logical_adj, topo, &mut rng) {
            debug_assert!(e.is_valid(logical_adj, topo));
            return Some(e);
        }
    }
    None
}

/// Cost of stepping onto a qubit used by `usage` other chains, with an
/// overlap penalty `base` that escalates across sweeps.
fn qubit_weight(usage: u32, base: u64) -> u64 {
    base.saturating_pow(usage.min(10))
}

/// Rip-up-and-reroute sweeps until overlap-free or the sweep budget
/// runs out.
fn try_embed(logical_adj: &[Vec<usize>], topo: &Topology, rng: &mut StdRng) -> Option<Embedding> {
    const MAX_SWEEPS: usize = 24;
    let n = logical_adj.len();
    let nq = topo.num_qubits();
    if n == 0 {
        return Some(Embedding { chains: Vec::new() });
    }
    if n > nq {
        return None;
    }
    // Connectivity-aware placement order: seed at a max-degree
    // variable, then always place the variable with the most
    // already-placed logical neighbors — otherwise disconnected seeds
    // scatter across the chip and get joined by enormous chains.
    let mut order: Vec<usize> = Vec::with_capacity(n);
    {
        let mut placed = vec![false; n];
        let mut placed_nbrs = vec![0usize; n];
        let mut tie: Vec<usize> = (0..n).collect();
        tie.shuffle(rng);
        for _ in 0..n {
            let &v = tie
                .iter()
                .filter(|&&v| !placed[v])
                .max_by_key(|&&v| (placed_nbrs[v], logical_adj[v].len()))
                .expect("unplaced variable remains");
            placed[v] = true;
            order.push(v);
            for &u in &logical_adj[v] {
                placed_nbrs[u] += 1;
            }
        }
    }
    let mut chains: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut usage: Vec<u32> = vec![0; nq];
    let mut base = 4u64;
    for _sweep in 0..MAX_SWEEPS {
        // Early sweeps re-route everything; once the layout has mostly
        // settled, only rip chains that still share qubits — ripping
        // clean chains just reshuffles the conflict.
        let targets: Vec<usize> = if _sweep < 3 {
            order.clone()
        } else {
            let mut t: Vec<usize> = order
                .iter()
                .copied()
                .filter(|&v| chains[v].iter().any(|&q| usage[q] > 1))
                .collect();
            if t.is_empty() {
                t = order.clone();
            }
            t
        };
        for &v in &targets {
            // Rip out v's current chain.
            for &q in &chains[v] {
                usage[q] -= 1;
            }
            chains[v].clear();
            route_chain(v, logical_adj, topo, &mut chains, &mut usage, base, rng)?;
        }
        if std::env::var_os("NCK_EMBED_DEBUG").is_some() {
            let overlapped = usage.iter().filter(|&&u| u > 1).count();
            let total: usize = chains.iter().map(Vec::len).sum();
            eprintln!(
                "sweep {_sweep}: base {base}, {overlapped} overlapped qubits, {total} chain qubits"
            );
        }
        if usage.iter().all(|&u| u <= 1) {
            // Valid embedding found. Polish: a few more full re-route
            // sweeps at high penalty usually shrink the chains now that
            // the global layout has settled; keep the smallest valid
            // snapshot.
            trim_chains(logical_adj, topo, &mut chains);
            rebuild_usage(&chains, &mut usage);
            let mut best = chains.clone();
            let mut best_size: usize = best.iter().map(Vec::len).sum();
            'polish: for _ in 0..2 {
                for &v in &order {
                    for &q in &chains[v] {
                        usage[q] -= 1;
                    }
                    chains[v].clear();
                    if route_chain(v, logical_adj, topo, &mut chains, &mut usage, base, rng)
                        .is_none()
                    {
                        break 'polish;
                    }
                }
                if usage.iter().all(|&u| u <= 1) {
                    trim_chains(logical_adj, topo, &mut chains);
                    rebuild_usage(&chains, &mut usage);
                    let size: usize = chains.iter().map(Vec::len).sum();
                    if size < best_size {
                        best = chains.clone();
                        best_size = size;
                    }
                }
            }
            for c in &mut best {
                c.sort_unstable();
            }
            return Some(Embedding { chains: best });
        }
        // Escalate the overlap penalty and randomize the re-route
        // order so symmetric configurations cannot oscillate.
        base = base.saturating_mul(4).min(1 << 40);
        order.shuffle(rng);
    }
    None
}

/// Recompute the per-qubit usage counts from the chains (needed after
/// trimming, which edits chains without touching the counters).
fn rebuild_usage(chains: &[Vec<usize>], usage: &mut [u32]) {
    usage.fill(0);
    for chain in chains {
        for &q in chain {
            usage[q] += 1;
        }
    }
}

/// Shrink every chain to a minimal connected subgraph that still
/// covers all of its logical edges. The routed chains contain full
/// Dijkstra paths and can be badly bloated; trimming removes any qubit
/// whose deletion keeps the chain connected and every neighbor
/// reachable. Iterates to a fixpoint.
fn trim_chains(logical_adj: &[Vec<usize>], topo: &Topology, chains: &mut [Vec<usize>]) {
    // owner map for coverage checks
    let mut owner = vec![usize::MAX; topo.num_qubits()];
    for (v, chain) in chains.iter().enumerate() {
        for &q in chain {
            owner[q] = v;
        }
    }
    let connected_without = |chain: &[usize], skip: usize| -> bool {
        let rest: Vec<usize> = chain.iter().copied().filter(|&q| q != skip).collect();
        if rest.is_empty() {
            return false;
        }
        let mut seen = vec![false; rest.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(i) = stack.pop() {
            for (j, &q) in rest.iter().enumerate() {
                if !seen[j] && topo.coupled(rest[i], q) {
                    seen[j] = true;
                    stack.push(j);
                }
            }
        }
        seen.iter().all(|&s| s)
    };
    let mut changed = true;
    while changed {
        changed = false;
        for v in 0..chains.len() {
            let mut i = 0;
            while i < chains[v].len() {
                let q = chains[v][i];
                if chains[v].len() > 1 && connected_without(&chains[v], q) {
                    // Check edge coverage without q.
                    let covered = logical_adj[v].iter().all(|&u| {
                        chains[v]
                            .iter()
                            .any(|&a| a != q && topo.neighbors(a).iter().any(|&b| owner[b] == u))
                    });
                    if covered {
                        owner[q] = usize::MAX;
                        chains[v].swap_remove(i);
                        changed = true;
                        continue;
                    }
                }
                i += 1;
            }
        }
    }
}

/// (Re)build the chain of `v`, allowing penalized overlap.
fn route_chain(
    v: usize,
    logical_adj: &[Vec<usize>],
    topo: &Topology,
    chains: &mut [Vec<usize>],
    usage: &mut [u32],
    base: u64,
    rng: &mut StdRng,
) -> Option<()> {
    let nq = topo.num_qubits();
    let placed: Vec<usize> =
        logical_adj[v].iter().copied().filter(|&u| !chains[u].is_empty()).collect();
    if placed.is_empty() {
        // Seed at a cheap qubit with usable neighborhood.
        let start = rng.random_range(0..nq);
        let q = (0..nq).map(|i| (start + i) % nq).min_by_key(|&q| {
            (
                qubit_weight(usage[q], base),
                std::cmp::Reverse(topo.neighbors(q).iter().filter(|&&x| usage[x] == 0).count()),
            )
        })?;
        usage[q] += 1;
        chains[v].push(q);
        return Some(());
    }
    // Weighted Dijkstra from each placed neighbor's chain. Per-call
    // random jitter on qubit costs spreads paths across equivalent
    // corridors — with deterministic tie-breaking, every chain funnels
    // through the same routes and dense problems never untangle.
    let jitter: Vec<u16> = (0..nq).map(|_| 16 + rng.random_range(0..8) as u16).collect();
    let fields: Vec<(Vec<u64>, Vec<usize>)> = placed
        .iter()
        .map(|&u| dijkstra_from_chain(&chains[u], usage, topo, base, &jitter))
        .collect();
    // Root: qubit minimizing the total path cost to all neighbor
    // chains, with random tie-breaking so symmetric layouts do not
    // deterministically collide.
    let start = rng.random_range(0..nq);
    let mut best: Option<(u64, usize)> = None;
    for i in 0..nq {
        let q = (start + i) % nq;
        // The root's own occupancy cost, otherwise a fresh chain would
        // happily sit on top of an existing one (distance 0) forever.
        let mut sum = qubit_weight(usage[q], base).saturating_mul(jitter[q] as u64);
        let mut ok = true;
        for (dist, _) in &fields {
            if dist[q] == u64::MAX {
                ok = false;
                break;
            }
            sum = sum.saturating_add(dist[q]);
        }
        if ok && best.is_none_or(|(s, _)| sum < s) {
            best = Some((sum, q));
        }
    }
    let (_, root) = best?;
    let mut in_chain = vec![false; nq];
    in_chain[root] = true;
    usage[root] += 1;
    chains[v].push(root);
    // Connect the root to each neighbor chain one at a time, nearest
    // first, rerunning Dijkstra from the *whole grown chain* so later
    // paths reuse the trunk built by earlier ones — without this,
    // high-degree variables get one radial path per neighbor and
    // chains balloon. The far half of each new path is donated to the
    // neighbor's chain (the CMR splitting trick).
    let mut targets: Vec<usize> = (0..placed.len()).collect();
    targets.sort_by_key(|&i| fields[i].0[root]);
    for ti in targets {
        let u = placed[ti];
        // Already adjacent?
        let adjacent =
            chains[v].iter().any(|&a| topo.neighbors(a).iter().any(|&b| chains[u].contains(&b)));
        if adjacent {
            continue;
        }
        let (dist, parent) = dijkstra_from_chain(&chains[v], usage, topo, base, &jitter);
        // If the chains currently overlap (possible mid-optimization,
        // before the penalty sweeps separate them), skip routing this
        // edge — a later sweep re-routes both chains.
        if chains[u].iter().any(|&cu| dist[cu] == 0) {
            continue;
        }
        // Cheapest qubit adjacent to chain(u) (not inside chain(v)).
        let mut best: Option<(u64, usize)> = None;
        for &cu in &chains[u] {
            for &q in topo.neighbors(cu) {
                if dist[q] != u64::MAX && !in_chain[q] {
                    let d = dist[q];
                    if best.is_none_or(|(bd, _)| d < bd) {
                        best = Some((d, q));
                    }
                }
            }
        }
        let Some((_, target)) = best else {
            // Genuinely unreachable from chain(v): abandon this try.
            return None;
        };
        // Walk back from target to chain(v), collecting the new path
        // (ordered from the chain(v) side to the target side).
        let mut path = vec![target];
        let mut cur = target;
        while dist[cur] != 0 {
            cur = parent[cur];
            if dist[cur] != 0 {
                path.push(cur);
            }
        }
        path.reverse();
        let split = path.len().div_ceil(2);
        for (i, &q) in path.iter().enumerate() {
            if i < split {
                if !in_chain[q] {
                    in_chain[q] = true;
                    usage[q] += 1;
                    chains[v].push(q);
                }
            } else if !chains[u].contains(&q) {
                usage[q] += 1;
                chains[u].push(q);
            }
        }
    }
    Some(())
}

/// Dijkstra over qubits with node weights `qubit_weight(usage)`;
/// sources are the chain's qubits at distance 0. Returns (dist,
/// parent).
fn dijkstra_from_chain(
    chain: &[usize],
    usage: &[u32],
    topo: &Topology,
    base: u64,
    jitter: &[u16],
) -> (Vec<u64>, Vec<usize>) {
    let nq = topo.num_qubits();
    let mut dist = vec![u64::MAX; nq];
    let mut parent = vec![usize::MAX; nq];
    let mut heap: BinaryHeap<(std::cmp::Reverse<u64>, usize)> = BinaryHeap::new();
    for &q in chain {
        dist[q] = 0;
        heap.push((std::cmp::Reverse(0), q));
    }
    while let Some((std::cmp::Reverse(d), q)) = heap.pop() {
        if d > dist[q] {
            continue;
        }
        for &x in topo.neighbors(q) {
            let nd =
                d.saturating_add(qubit_weight(usage[x], base).saturating_mul(jitter[x] as u64));
            if nd < dist[x] {
                dist[x] = nd;
                parent[x] = q;
                heap.push((std::cmp::Reverse(nd), x));
            }
        }
    }
    (dist, parent)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_adj(n: usize) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); n];
        for i in 0..n - 1 {
            adj[i].push(i + 1);
            adj[i + 1].push(i);
        }
        adj
    }

    fn complete_adj(n: usize) -> Vec<Vec<usize>> {
        (0..n).map(|u| (0..n).filter(|&v| v != u).collect()).collect()
    }

    #[test]
    fn identity_embedding_on_complete_topology() {
        let topo = Topology::complete(8);
        let adj = complete_adj(6);
        let e = find_embedding(&adj, &topo, 1, 4).expect("embeds");
        assert_eq!(e.num_physical(), 6, "complete hardware needs unit chains");
        assert_eq!(e.max_chain_length(), 1);
    }

    #[test]
    fn path_embeds_in_chimera() {
        let topo = Topology::chimera(2, 2, 4);
        let adj = path_adj(10);
        let e = find_embedding(&adj, &topo, 2, 8).expect("embeds");
        assert!(e.is_valid(&adj, &topo));
    }

    #[test]
    fn dense_problem_needs_chains() {
        // K8 cannot embed in Chimera(2,2,4) with unit chains: hardware
        // degree is 6 < 7. Chains must appear.
        let topo = Topology::chimera(2, 2, 4);
        let adj = complete_adj(8);
        let e = find_embedding(&adj, &topo, 3, 30).expect("K8 fits in 32 qubits");
        assert!(e.is_valid(&adj, &topo));
        assert!(
            e.num_physical() > 8,
            "dense logical graph must use chains: {} qubits",
            e.num_physical()
        );
    }

    #[test]
    fn too_large_problem_fails() {
        // K10 cannot embed in 8 qubits at all.
        let topo = Topology::complete(8);
        let adj = complete_adj(10);
        assert_eq!(find_embedding(&adj, &topo, 4, 4), None);
    }

    #[test]
    fn isolated_variables_get_unit_chains() {
        let topo = Topology::chimera(1, 1, 4);
        let adj = vec![Vec::new(); 4];
        let e = find_embedding(&adj, &topo, 5, 4).expect("embeds");
        assert_eq!(e.num_physical(), 4);
        assert!(e.is_valid(&adj, &topo));
    }

    #[test]
    fn empty_problem() {
        let topo = Topology::complete(4);
        let e = find_embedding(&[], &topo, 6, 1).expect("trivially embeds");
        assert_eq!(e.num_logical(), 0);
        assert_eq!(e.num_physical(), 0);
    }

    #[test]
    fn validation_rejects_overlapping_chains() {
        let topo = Topology::complete(4);
        let e = Embedding::from_chains(vec![vec![0, 1], vec![1, 2]]);
        assert!(!e.is_valid(&path_adj(2), &topo));
    }

    #[test]
    fn validation_rejects_disconnected_chain() {
        // Path topology 0-1-2-3: chain {0, 3} is disconnected.
        let topo = Topology::new("path4", 4, &[(0, 1), (1, 2), (2, 3)]);
        let e = Embedding::from_chains(vec![vec![0, 3]]);
        assert!(!e.is_valid(&[vec![]], &topo));
    }

    #[test]
    fn validation_rejects_uncovered_edge() {
        // Two chains with no coupler between them.
        let topo = Topology::new("two-pairs", 4, &[(0, 1), (2, 3)]);
        let e = Embedding::from_chains(vec![vec![0], vec![3]]);
        assert!(!e.is_valid(&path_adj(2), &topo));
    }

    #[test]
    fn larger_scale_on_pegasus_like() {
        // A 48-variable one-hot style problem on the Advantage-scale
        // lattice (the paper's clique-cover instances are this size).
        let topo = Topology::pegasus_like(6);
        let mut adj = vec![Vec::new(); 48];
        for v in 0..12 {
            for a in 0..4 {
                for b in 0..4 {
                    if a != b {
                        adj[v * 4 + a].push(v * 4 + b);
                    }
                }
            }
        }
        // Ring of one-hot groups with cross couplings.
        for v in 0..12 {
            for k in 0..4 {
                let u = ((v + 1) % 12) * 4 + k;
                adj[v * 4 + k].push(u);
                adj[u].push(v * 4 + k);
            }
        }
        for l in &mut adj {
            l.sort_unstable();
            l.dedup();
        }
        let e = find_embedding(&adj, &topo, 7, 10).expect("embeds at scale");
        assert!(e.is_valid(&adj, &topo));
        assert!(e.num_physical() >= 48);
    }

    #[test]
    fn chain_lengths_grow_with_density() {
        // §VIII-A: denser problems need more physical qubits per
        // variable. Compare a ring to a complete graph of the same
        // size on the same hardware.
        let topo = Topology::chimera(4, 4, 4);
        let ring = {
            let mut adj = vec![Vec::new(); 12];
            for i in 0..12 {
                adj[i].push((i + 1) % 12);
                adj[(i + 1) % 12].push(i);
            }
            adj
        };
        let sparse = find_embedding(&ring, &topo, 11, 10).expect("ring embeds");
        let dense = find_embedding(&complete_adj(12), &topo, 11, 30).expect("K12 embeds");
        assert!(
            dense.num_physical() > sparse.num_physical(),
            "K12 ({}) should use more qubits than C12 ({})",
            dense.num_physical(),
            sparse.num_physical()
        );
    }
}
