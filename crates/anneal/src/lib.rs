//! # nck-anneal
//!
//! A simulated quantum annealer standing in for the D-Wave Advantage
//! 4.1 system of the paper's evaluation. The full Ocean-style pipeline
//! is reproduced:
//!
//! * [`topology`] — Chimera and Pegasus-like hardware graphs (5,640
//!   qubits at the Advantage preset, degree 15, K4 cliques).
//! * [`embed`] — heuristic minor embedding: logical variables become
//!   *chains* of physical qubits, the effect behind the paper's
//!   physical-qubits ≫ variables observations (§VIII-A).
//! * [`chain`] — chain strength, field/coupling splitting, and
//!   majority-vote chain-break repair.
//! * [`sampler`] — rayon-parallel simulated annealing with an
//!   ICE-style analog noise model.
//! * [`timing`] — the §VIII-C QPU access-time model (15 ms programming,
//!   20 µs anneals, ≈30 ms per 100-sample job).
//! * [`device`] — the assembled [`AnnealerDevice`] with the
//!   `advantage_4_1()` preset.
//!
//! ```
//! use nck_anneal::AnnealerDevice;
//! use nck_qubo::Qubo;
//!
//! // f(a, b) = ab − a − b: minimized when at least one variable is 1.
//! let mut q = Qubo::new(2);
//! q.add_quadratic(0, 1, 1.0);
//! q.add_linear(0, -1.0);
//! q.add_linear(1, -1.0);
//!
//! let device = AnnealerDevice::advantage_4_1();
//! let result = device.sample_qubo(&q, 100, 42).unwrap();
//! assert_eq!(result.best().energy, -1.0);
//! ```

#![warn(missing_docs)]

pub mod chain;
pub mod device;
pub mod embed;
pub mod gauge;
pub mod postprocess;
pub mod sampler;
pub mod timing;
pub mod topology;

pub use chain::{embed_ising, suggested_chain_strength, EmbeddedIsing};
pub use device::{AnnealError, AnnealResult, AnnealSample, AnnealerDevice};
pub use embed::{find_embedding, Embedding};
pub use gauge::Gauge;
pub use postprocess::steepest_descent;
pub use sampler::{
    sample_ising, sample_ising_clustered, sample_ising_clustered_cancellable,
    sample_ising_clustered_range, NoiseModel, SaParams,
};
pub use timing::TimingModel;
pub use topology::Topology;
