//! Quantum-annealer hardware topologies.
//!
//! Two families: the classic Chimera lattice (D-Wave 2000Q era), and a
//! Pegasus-like lattice matching the qubit count, degree-15
//! connectivity, K4 cliques, and 2-D locality of the Advantage
//! generation. The exact Advantage wiring (shifted internal couplers)
//! is proprietary-documentation territory; what drives the paper's
//! observations — chain length growth with problem density, physical
//! qubit count `≫` logical variable count — depends on qubit count,
//! degree, and locality, all of which this construction preserves (see
//! DESIGN.md's substitution table).

/// An undirected hardware graph of qubits and couplers.
#[derive(Clone, Debug)]
pub struct Topology {
    name: String,
    num_qubits: usize,
    adj: Vec<Vec<usize>>,
    num_couplers: usize,
}

impl Topology {
    /// Build from an explicit coupler list.
    pub fn new(name: impl Into<String>, num_qubits: usize, couplers: &[(usize, usize)]) -> Self {
        let mut adj = vec![Vec::new(); num_qubits];
        let mut count = 0;
        for &(a, b) in couplers {
            assert!(a != b && a < num_qubits && b < num_qubits, "bad coupler ({a},{b})");
            if !adj[a].contains(&b) {
                adj[a].push(b);
                adj[b].push(a);
                count += 1;
            }
        }
        for l in &mut adj {
            l.sort_unstable();
        }
        Topology { name: name.into(), num_qubits, adj, num_couplers: count }
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of couplers.
    pub fn num_couplers(&self) -> usize {
        self.num_couplers
    }

    /// Neighbors of qubit `q`.
    pub fn neighbors(&self, q: usize) -> &[usize] {
        &self.adj[q]
    }

    /// True iff qubits `a` and `b` share a coupler.
    pub fn coupled(&self, a: usize, b: usize) -> bool {
        self.adj[a].binary_search(&b).is_ok()
    }

    /// Degree of qubit `q`.
    pub fn degree(&self, q: usize) -> usize {
        self.adj[q].len()
    }

    /// The Chimera lattice `C_{m,n,t}`: an `m × n` grid of `K_{t,t}`
    /// unit cells; horizontal shores couple along rows, vertical shores
    /// along columns. `C_{16,16,4}` is the 2048-qubit D-Wave 2000Q.
    pub fn chimera(m: usize, n: usize, t: usize) -> Self {
        let cell = 2 * t;
        let num_qubits = m * n * cell;
        // qubit id = ((row * n) + col) * cell + shore*t + k
        let id =
            |row: usize, col: usize, shore: usize, k: usize| (row * n + col) * cell + shore * t + k;
        let mut couplers = Vec::new();
        for row in 0..m {
            for col in 0..n {
                // K_{t,t} inside the cell.
                for a in 0..t {
                    for b in 0..t {
                        couplers.push((id(row, col, 0, a), id(row, col, 1, b)));
                    }
                }
                // Vertical shore (0) couples down the column.
                if row + 1 < m {
                    for k in 0..t {
                        couplers.push((id(row, col, 0, k), id(row + 1, col, 0, k)));
                    }
                }
                // Horizontal shore (1) couples along the row.
                if col + 1 < n {
                    for k in 0..t {
                        couplers.push((id(row, col, 1, k), id(row, col + 1, 1, k)));
                    }
                }
            }
        }
        Topology::new(format!("chimera({m},{n},{t})"), num_qubits, &couplers)
    }

    /// A Pegasus-like lattice with `8(3m−1)(m−1)` qubits (5640 at
    /// `m = 16`, the paper's Advantage 4.1 figure): an
    /// `(m−1) × (3m−1)` grid of Chimera-style `K_{4,4}` cells — whose
    /// shore "wires" run across the grid, the structural property that
    /// makes compact minor embeddings possible — augmented with
    /// Pegasus-style intra-shore couplers (each shore forms a clique),
    /// giving interior degree 9. (Real Pegasus reaches degree 15 with
    /// additional shifted couplers; qubit count, wires, and
    /// better-than-Chimera local cliques are the embedding-relevant
    /// properties reproduced here — see DESIGN.md.)
    pub fn pegasus_like(m: usize) -> Self {
        assert!(m >= 2, "pegasus_like needs m >= 2");
        let rows = m - 1;
        let cols = 3 * m - 1;
        let cell = 8;
        let num_qubits = rows * cols * cell;
        // shore 0 = "vertical" (wires down columns),
        // shore 1 = "horizontal" (wires along rows).
        let id = |r: usize, c: usize, shore: usize, k: usize| (r * cols + c) * cell + shore * 4 + k;
        let mut couplers = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                for a in 0..4 {
                    // K_{4,4} between shores.
                    for b in 0..4 {
                        couplers.push((id(r, c, 0, a), id(r, c, 1, b)));
                    }
                    // Pegasus-style intra-shore cliques.
                    for b in a + 1..4 {
                        couplers.push((id(r, c, 0, a), id(r, c, 0, b)));
                        couplers.push((id(r, c, 1, a), id(r, c, 1, b)));
                    }
                    // Wires: vertical shore couples down the column,
                    // horizontal shore along the row.
                    if r + 1 < rows {
                        couplers.push((id(r, c, 0, a), id(r + 1, c, 0, a)));
                    }
                    if c + 1 < cols {
                        couplers.push((id(r, c, 1, a), id(r, c + 1, 1, a)));
                    }
                }
            }
        }
        Topology::new(format!("pegasus_like({m})"), num_qubits, &couplers)
    }

    /// The Advantage 4.1 preset used throughout the evaluation: a
    /// Pegasus-like lattice with the paper's quoted 5,640 qubits.
    pub fn advantage_4_1() -> Self {
        let mut t = Self::pegasus_like(16);
        t.name = "Advantage_4.1(sim)".into();
        t
    }

    /// Precomputed complete-graph embedding for [`Topology::pegasus_like`]`(m)`
    /// — the `DWaveCliqueSampler` pattern. Logical variable `i` becomes
    /// an L-shaped chain: the shore-0 (vertical) wire `i mod 4` of
    /// column `i/4` spanning `g` rows, joined to the shore-1
    /// (horizontal) wire `i mod 4` of row `i/4` spanning `g` columns,
    /// where `g = ⌈k/4⌉`. Any two chains cross in exactly one cell,
    /// where the `K_{4,4}` coupler connects them, so the embedding
    /// hosts `K_k` for `k ≤ 4·min(m−1, 3m−1)` with uniform chain
    /// length `2g`.
    ///
    /// Returns `None` when `k` exceeds the lattice.
    pub fn pegasus_like_clique_embedding(m: usize, k: usize) -> Option<crate::embed::Embedding> {
        let rows = m - 1;
        let cols = 3 * m - 1;
        let g = k.div_ceil(4).max(1);
        if g > rows || g > cols || k == 0 {
            return None;
        }
        let id = |r: usize, c: usize, shore: usize, kk: usize| (r * cols + c) * 8 + shore * 4 + kk;
        let chains = (0..k)
            .map(|i| {
                let band = i / 4;
                let wire = i % 4;
                let mut chain = Vec::with_capacity(2 * g);
                for r in 0..g {
                    chain.push(id(r, band, 0, wire)); // vertical segment
                }
                for c in 0..g {
                    // Horizontal segment; in the corner cell (c == band)
                    // the K_{4,4} coupler bridges it to the vertical
                    // segment, keeping the chain connected.
                    chain.push(id(band, c, 1, wire));
                }
                chain
            })
            .collect();
        Some(crate::embed::Embedding::from_chains(chains))
    }

    /// A complete graph (useful for tests: every problem embeds with
    /// unit chains).
    pub fn complete(n: usize) -> Self {
        let couplers: Vec<(usize, usize)> =
            (0..n).flat_map(|a| (a + 1..n).map(move |b| (a, b))).collect();
        Topology::new(format!("complete({n})"), n, &couplers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chimera_counts() {
        let c = Topology::chimera(2, 2, 4);
        assert_eq!(c.num_qubits(), 32);
        // couplers: 4 cells × 16 internal + vertical 1×2cols×4 +
        // horizontal 1×2rows×4 = 64 + 8 + 8
        assert_eq!(c.num_couplers(), 80);
    }

    #[test]
    fn chimera_2000q_scale() {
        let c = Topology::chimera(16, 16, 4);
        assert_eq!(c.num_qubits(), 2048);
        // Interior degree: t internal + 2 vertical/horizontal = 6.
        let interior = c.degree(((8 * 16) + 8) * 8 + 2);
        assert_eq!(interior, 6);
    }

    #[test]
    fn pegasus_like_qubit_count_matches_paper() {
        // 8(3m−1)(m−1); the paper quotes 5,640 for Advantage 4.1.
        assert_eq!(Topology::pegasus_like(16).num_qubits(), 5640);
        assert_eq!(Topology::advantage_4_1().num_qubits(), 5640);
        assert_eq!(Topology::pegasus_like(2).num_qubits(), 8 * 5);
    }

    #[test]
    fn pegasus_like_interior_degree_is_9() {
        // Interior qubit: 4 cross-shore + 3 intra-shore + 2 wire.
        let t = Topology::pegasus_like(4);
        let rows = 3;
        let cols = 11;
        let interior = ((rows / 2) * cols + cols / 2) * 8; // shore-0 qubit mid-grid
        assert_eq!(t.degree(interior), 9);
    }

    #[test]
    fn pegasus_like_has_wires() {
        // Shore-0 qubits couple to the same index one cell down; shore-1
        // along the row — the property compact embeddings rely on.
        let t = Topology::pegasus_like(4);
        let cols = 11;
        let id = |r: usize, c: usize, shore: usize, k: usize| (r * cols + c) * 8 + shore * 4 + k;
        assert!(t.coupled(id(0, 5, 0, 2), id(1, 5, 0, 2)));
        assert!(t.coupled(id(1, 4, 1, 3), id(1, 5, 1, 3)));
        assert!(!t.coupled(id(0, 5, 0, 2), id(1, 5, 0, 3)));
    }

    #[test]
    fn clique_embedding_is_valid_complete_graph_minor() {
        let m = 6;
        let topo = Topology::pegasus_like(m);
        for k in [1usize, 4, 7, 12, 20] {
            let e = Topology::pegasus_like_clique_embedding(m, k).expect("fits");
            let adj: Vec<Vec<usize>> =
                (0..k).map(|u| (0..k).filter(|&v| v != u).collect()).collect();
            assert!(e.is_valid(&adj, &topo), "K{k} embedding invalid on m={m}");
            // Uniform L-shaped chains: 2g qubits each.
            let g = k.div_ceil(4);
            assert_eq!(e.max_chain_length(), 2 * g);
        }
    }

    #[test]
    fn clique_embedding_rejects_oversize() {
        // m = 4: rows = 3 → K12 is the largest clique (4·3 wires).
        assert!(Topology::pegasus_like_clique_embedding(4, 12).is_some());
        assert!(Topology::pegasus_like_clique_embedding(4, 13).is_none());
    }

    #[test]
    fn advantage_hosts_k60() {
        let topo = Topology::advantage_4_1();
        let k = 60;
        let e = Topology::pegasus_like_clique_embedding(16, k).expect("fits");
        let adj: Vec<Vec<usize>> = (0..k).map(|u| (0..k).filter(|&v| v != u).collect()).collect();
        assert!(e.is_valid(&adj, &topo));
    }

    #[test]
    fn coupled_is_symmetric() {
        let t = Topology::pegasus_like(3);
        for q in 0..t.num_qubits() {
            for &n in t.neighbors(q) {
                assert!(t.coupled(n, q));
                assert_ne!(n, q);
            }
        }
    }

    #[test]
    fn complete_topology() {
        let t = Topology::complete(6);
        assert_eq!(t.num_couplers(), 15);
        assert!(t.coupled(0, 5));
    }

    #[test]
    fn duplicate_couplers_ignored() {
        let t = Topology::new("x", 3, &[(0, 1), (1, 0), (0, 1)]);
        assert_eq!(t.num_couplers(), 1);
    }
}
