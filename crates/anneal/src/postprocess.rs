//! Sample post-processing: greedy steepest-descent polish.
//!
//! The Ocean stack offers `SteepestDescentComposite` to locally improve
//! raw hardware samples (the few-millisecond "post-processing" step in
//! the paper's §VIII-C timing breakdown includes the server-side
//! equivalent). Each sample descends single-variable flips until it
//! reaches a local minimum of the *logical* QUBO.

use nck_qubo::Qubo;

/// Polish one assignment to a local minimum by steepest descent.
/// Returns the improved assignment, its energy, and the number of
/// flips applied.
pub fn steepest_descent(q: &Qubo, assignment: &[bool]) -> (Vec<bool>, f64, usize) {
    let n = q.num_vars();
    assert_eq!(assignment.len(), n, "assignment length mismatch");
    let mut couplings = vec![Vec::new(); n];
    for ((i, j), c) in q.quadratic_terms() {
        couplings[i].push((j, c));
        couplings[j].push((i, c));
    }
    let mut x = assignment.to_vec();
    let mut energy = q.energy(&x);
    // delta[i]: energy change if x[i] flips.
    let mut delta: Vec<f64> = (0..n)
        .map(|i| {
            let mut on = q.linear(i);
            for &(j, c) in &couplings[i] {
                if x[j] {
                    on += c;
                }
            }
            if x[i] {
                -on
            } else {
                on
            }
        })
        .collect();
    let mut flips = 0usize;
    #[allow(clippy::while_let_loop)] // the break condition is on the value, not the pattern
    loop {
        let Some((i, &d)) = delta.iter().enumerate().min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        else {
            break;
        };
        if d >= -1e-12 {
            break; // local minimum
        }
        x[i] = !x[i];
        energy += d;
        flips += 1;
        delta[i] = -delta[i];
        let si = if x[i] { 1.0 } else { -1.0 };
        for &(j, c) in &couplings[i] {
            let sj = if x[j] { -1.0 } else { 1.0 };
            delta[j] += c * si * sj;
        }
    }
    (x, energy, flips)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nck_qubo::solve_exhaustive;

    #[test]
    fn already_optimal_is_untouched() {
        let mut q = Qubo::new(2);
        q.add_linear(0, -1.0);
        q.add_linear(1, 2.0);
        let (x, e, flips) = steepest_descent(&q, &[true, false]);
        assert_eq!(x, vec![true, false]);
        assert_eq!(e, -1.0);
        assert_eq!(flips, 0);
    }

    #[test]
    fn descends_to_local_minimum() {
        // f = -x0 - x1 + 3 x0 x1: minima at 01 and 10; start at 11.
        let mut q = Qubo::new(2);
        q.add_linear(0, -1.0);
        q.add_linear(1, -1.0);
        q.add_quadratic(0, 1, 3.0);
        let (x, e, flips) = steepest_descent(&q, &[true, true]);
        assert_eq!(e, -1.0);
        assert_eq!(flips, 1);
        assert_ne!(x[0], x[1]);
    }

    #[test]
    fn polish_never_increases_energy() {
        let mut state = 0xabcdef12345u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..10 {
            let n = 10;
            let mut q = Qubo::new(n);
            for i in 0..n {
                q.add_linear(i, (next() % 11) as f64 - 5.0);
                for j in i + 1..n {
                    if next() % 3 == 0 {
                        q.add_quadratic(i, j, (next() % 9) as f64 - 4.0);
                    }
                }
            }
            let start: Vec<bool> = (0..n).map(|i| next() >> i & 1 == 1).collect();
            let before = q.energy(&start);
            let (x, e, _) = steepest_descent(&q, &start);
            assert!(e <= before + 1e-12);
            assert!((q.energy(&x) - e).abs() < 1e-9, "tracked energy drifted");
            // Result is 1-flip stable.
            for i in 0..n {
                let mut y = x.clone();
                y[i] = !y[i];
                assert!(q.energy(&y) >= e - 1e-9, "not a local minimum at {i}");
            }
        }
    }

    #[test]
    fn finds_global_on_smooth_landscape() {
        // Ferromagnetic chain QUBO: descent from anywhere reaches one
        // of the two ground states.
        let mut q = Qubo::new(6);
        for i in 0..5 {
            // x_i = x_{i+1} preferred: (x_i - x_{i+1})^2 expansion.
            q.add_square_of_linear(&[(i, 1.0), (i + 1, -1.0)], 0.0);
        }
        let truth = solve_exhaustive(&q);
        let (_, e, _) = steepest_descent(&q, &[true, false, true, false, true, false]);
        assert_eq!(e, truth.min_energy);
    }
}
