//! Spin-reversal (gauge) transforms.
//!
//! A gauge transform flips a chosen subset `G` of spins: `s'ᵢ = −sᵢ`
//! for `i ∈ G`, with `h'ᵢ = −hᵢ` and `J'ᵢⱼ = −Jᵢⱼ` when exactly one
//! endpoint is flipped. Energies are invariant, but analog control
//! errors (ICE) are *not* gauge-invariant — so averaging jobs over
//! random gauges decorrelates the systematic part of the noise. This
//! is D-Wave's standard `num_spin_reversal_transforms` mitigation,
//! which the Ocean stack applies to jobs like the paper's.

use nck_qubo::Ising;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A gauge: the set of spins to flip, as a boolean mask.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Gauge {
    flip: Vec<bool>,
}

impl Gauge {
    /// The identity gauge (no flips).
    pub fn identity(num_spins: usize) -> Self {
        Gauge { flip: vec![false; num_spins] }
    }

    /// A uniformly random gauge.
    pub fn random(num_spins: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Gauge { flip: (0..num_spins).map(|_| rng.random()).collect() }
    }

    /// Build from an explicit flip mask.
    pub fn from_mask(flip: Vec<bool>) -> Self {
        Gauge { flip }
    }

    /// Number of spins covered.
    pub fn num_spins(&self) -> usize {
        self.flip.len()
    }

    /// Is spin `i` flipped?
    pub fn flips(&self, i: usize) -> bool {
        self.flip[i]
    }

    /// Transform a problem: `h'ᵢ = ±hᵢ`, `J'ᵢⱼ = ±Jᵢⱼ`.
    pub fn apply(&self, ising: &Ising) -> Ising {
        assert_eq!(ising.num_spins(), self.flip.len(), "gauge size mismatch");
        let sign = |i: usize| if self.flip[i] { -1.0 } else { 1.0 };
        let mut out = Ising::new(ising.num_spins());
        out.add_offset(ising.offset());
        for (i, h) in ising.fields() {
            out.add_field(i, h * sign(i));
        }
        for ((i, j), c) in ising.couplings() {
            out.add_coupling(i, j, c * sign(i) * sign(j));
        }
        out
    }

    /// Undo the gauge on a sample drawn from the transformed problem.
    pub fn decode(&self, sample: &[bool]) -> Vec<bool> {
        sample.iter().zip(&self.flip).map(|(&s, &f)| s ^ f).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_ising() -> Ising {
        let mut ising = Ising::new(4);
        ising.add_field(0, 0.7);
        ising.add_field(2, -0.3);
        ising.add_coupling(0, 1, 1.0);
        ising.add_coupling(1, 2, -0.5);
        ising.add_coupling(2, 3, 0.25);
        ising.add_offset(1.5);
        ising
    }

    #[test]
    fn identity_gauge_is_noop() {
        let ising = test_ising();
        let g = Gauge::identity(4);
        assert_eq!(g.apply(&ising), ising);
        assert_eq!(g.decode(&[true, false, true, true]), vec![true, false, true, true]);
    }

    #[test]
    fn energy_invariance() {
        // E'(s') = E(s) for s' the gauge-image of s.
        let ising = test_ising();
        for seed in 0..8 {
            let g = Gauge::random(4, seed);
            let transformed = g.apply(&ising);
            for bits in 0..16u64 {
                let s: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
                // Image of s under the gauge (flip masked spins).
                let s_img: Vec<bool> = s.iter().enumerate().map(|(i, &v)| v ^ g.flips(i)).collect();
                assert!(
                    (ising.energy(&s) - transformed.energy(&s_img)).abs() < 1e-12,
                    "gauge broke energy at {bits:04b} (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn decode_inverts_encode() {
        let g = Gauge::random(6, 3);
        let s = vec![true, false, true, true, false, false];
        // decode is an involution on the mask.
        assert_eq!(g.decode(&g.decode(&s)), s);
    }

    #[test]
    fn gauge_randomness_is_seeded() {
        assert_eq!(Gauge::random(10, 5), Gauge::random(10, 5));
        assert_ne!(Gauge::random(10, 5), Gauge::random(10, 6));
    }

    #[test]
    fn transformed_ground_states_map_back() {
        // AFM pair: ground states (+1,−1), (−1,+1). Flip spin 0: the
        // transformed problem is ferromagnetic; its ground states map
        // back to the original ones.
        let mut ising = Ising::new(2);
        ising.add_coupling(0, 1, 1.0);
        let g = Gauge::from_mask(vec![true, false]);
        let t = g.apply(&ising);
        assert_eq!(t.coupling(0, 1), -1.0);
        for s in [[true, true], [false, false]] {
            assert_eq!(t.energy(&s), -1.0);
            let back = g.decode(&s);
            assert_eq!(ising.energy(&back), -1.0);
            assert_ne!(back[0], back[1]);
        }
    }
}
