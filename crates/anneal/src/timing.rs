//! D-Wave QPU access-time model (§VIII-C of the paper).
//!
//! "Each job has a single, relatively long programming step (observed
//! to be on the order of 15 ms) … the cost of a sample includes the
//! anneal itself (default 20 µs); a readout time … usually 3–4 times as
//! long as the annealing time; and an added delay between each readout
//! and the subsequent anneal (about 20 µs each) … a few more
//! milliseconds for post-processing. … our jobs each spent about 30 ms
//! apiece on the Advantage system."

use std::time::Duration;

/// Timing model for one annealer job.
#[derive(Clone, Copy, Debug)]
pub struct TimingModel {
    /// One-time programming step per job.
    pub programming: Duration,
    /// Anneal time per sample.
    pub anneal_per_sample: Duration,
    /// Readout time as a multiple of the anneal time.
    pub readout_factor: f64,
    /// Delay between readout and the next anneal.
    pub delay_per_sample: Duration,
    /// Post-processing at the end of the job.
    pub postprocess: Duration,
}

impl TimingModel {
    /// The paper's observed Advantage 4.1 numbers.
    pub fn dwave_default() -> Self {
        TimingModel {
            programming: Duration::from_millis(15),
            anneal_per_sample: Duration::from_micros(20),
            readout_factor: 3.5,
            delay_per_sample: Duration::from_micros(20),
            postprocess: Duration::from_millis(3),
        }
    }

    /// Time per sample (anneal + readout + delay).
    pub fn per_sample(&self) -> Duration {
        let readout = self.anneal_per_sample.mul_f64(self.readout_factor);
        self.anneal_per_sample + readout + self.delay_per_sample
    }

    /// Total QPU access time for a job of `num_reads` samples.
    pub fn qpu_access_time(&self, num_reads: usize) -> Duration {
        self.programming + self.per_sample() * num_reads as u32 + self.postprocess
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hundred_samples_cost_less_than_programming() {
        // §VIII-C: "The total time for the 100 samples is slightly less
        // than the … programming step."
        let t = TimingModel::dwave_default();
        let samples = t.per_sample() * 100;
        assert!(samples < t.programming, "{samples:?} !< {:?}", t.programming);
        assert!(samples > t.programming / 2, "should be *slightly* less");
    }

    #[test]
    fn full_job_is_about_30ms() {
        let t = TimingModel::dwave_default();
        let total = t.qpu_access_time(100);
        assert!(
            total >= Duration::from_millis(25) && total <= Duration::from_millis(35),
            "expected ≈30 ms, got {total:?}"
        );
    }

    #[test]
    fn per_sample_breakdown() {
        let t = TimingModel::dwave_default();
        // 20 µs anneal + 70 µs readout + 20 µs delay = 110 µs.
        assert_eq!(t.per_sample(), Duration::from_micros(110));
    }
}
