//! Tabu search over QUBOs — the classical heuristic the Ocean stack
//! ships as `TabuSampler`, useful both as a strong incumbent generator
//! for the exact solvers and as a no-hardware fallback backend.
//!
//! Single-flip steepest-descent with a recency-based tabu list and
//! aspiration (a tabu move is allowed if it improves the best-known
//! energy), restarted from random assignments.

use nck_qubo::Qubo;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tabu search options.
#[derive(Clone, Copy, Debug)]
pub struct TabuOptions {
    /// Random restarts.
    pub restarts: usize,
    /// Moves per restart.
    pub moves_per_restart: usize,
    /// Tabu tenure (moves a flipped variable stays locked).
    pub tenure: usize,
}

impl Default for TabuOptions {
    fn default() -> Self {
        TabuOptions { restarts: 8, moves_per_restart: 2_000, tenure: 10 }
    }
}

/// Result of a tabu run.
#[derive(Clone, Debug)]
pub struct TabuResult {
    /// Best assignment found.
    pub assignment: Vec<bool>,
    /// Its energy.
    pub energy: f64,
    /// Total moves executed.
    pub moves: usize,
}

/// Minimize `q` heuristically. Deterministic in `seed`. The result is
/// an incumbent, not a proven optimum.
pub fn tabu_search(q: &Qubo, opts: &TabuOptions, seed: u64) -> TabuResult {
    let n = q.num_vars();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best: Option<(f64, Vec<bool>)> = None;
    let mut total_moves = 0usize;
    // Dense coupling rows for O(1) delta updates.
    let mut couplings = vec![Vec::new(); n];
    for ((i, j), c) in q.quadratic_terms() {
        couplings[i].push((j, c));
        couplings[j].push((i, c));
    }
    for _ in 0..opts.restarts.max(1) {
        let mut x: Vec<bool> = (0..n).map(|_| rng.random()).collect();
        let mut energy = q.energy(&x);
        // delta[i] = energy change if x[i] flips.
        let mut delta: Vec<f64> = (0..n)
            .map(|i| {
                let mut on = q.linear(i);
                for &(j, c) in &couplings[i] {
                    if x[j] {
                        on += c;
                    }
                }
                if x[i] {
                    -on
                } else {
                    on
                }
            })
            .collect();
        let mut tabu_until = vec![0usize; n];
        let mut local_best = energy;
        for step in 1..=opts.moves_per_restart {
            // Best admissible move (non-tabu, or aspirational).
            let mut pick: Option<(f64, usize)> = None;
            for i in 0..n {
                let admissible = tabu_until[i] <= step
                    || energy + delta[i] < best.as_ref().map_or(f64::INFINITY, |(e, _)| *e);
                if admissible && pick.is_none_or(|(d, _)| delta[i] < d) {
                    pick = Some((delta[i], i));
                }
            }
            let Some((d, i)) = pick else { break };
            // Flip i and update deltas.
            x[i] = !x[i];
            energy += d;
            total_moves += 1;
            delta[i] = -delta[i];
            let si = if x[i] { 1.0 } else { -1.0 }; // x_i's change: ±1
            for &(j, c) in &couplings[i] {
                // x_j's flip-delta shifts by (direction x_j would
                // move) · (change in its local field).
                let sj = if x[j] { -1.0 } else { 1.0 };
                delta[j] += c * si * sj;
            }
            tabu_until[i] = step + opts.tenure;
            local_best = local_best.min(energy);
            if best.as_ref().is_none_or(|(e, _)| energy < *e) {
                best = Some((energy, x.clone()));
            }
        }
    }
    let (energy, assignment) = best.expect("at least one restart");
    TabuResult { assignment, energy, moves: total_moves }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nck_qubo::solve_exhaustive;

    fn random_qubo(n: usize, seed: u64) -> Qubo {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut q = Qubo::new(n);
        for i in 0..n {
            q.add_linear(i, rng.random_range(-5.0..5.0));
            for j in i + 1..n {
                if rng.random::<f64>() < 0.4 {
                    q.add_quadratic(i, j, rng.random_range(-5.0..5.0));
                }
            }
        }
        q
    }

    #[test]
    fn finds_exact_optimum_on_small_instances() {
        for seed in 0..6 {
            let q = random_qubo(12, seed);
            let truth = solve_exhaustive(&q);
            let r = tabu_search(&q, &TabuOptions::default(), 99);
            assert!(
                (r.energy - truth.min_energy).abs() < 1e-9,
                "seed {seed}: tabu {} vs optimum {}",
                r.energy,
                truth.min_energy
            );
            assert!((q.energy(&r.assignment) - r.energy).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let q = random_qubo(16, 3);
        let a = tabu_search(&q, &TabuOptions::default(), 7);
        let b = tabu_search(&q, &TabuOptions::default(), 7);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.energy, b.energy);
    }

    #[test]
    fn respects_move_budget() {
        let q = random_qubo(10, 1);
        let opts = TabuOptions { restarts: 2, moves_per_restart: 5, tenure: 3 };
        let r = tabu_search(&q, &opts, 1);
        assert!(r.moves <= 10);
    }

    #[test]
    fn zero_qubo() {
        let q = Qubo::new(4);
        let r = tabu_search(&q, &TabuOptions::default(), 5);
        assert_eq!(r.energy, 0.0);
    }

    #[test]
    fn delta_bookkeeping_is_consistent() {
        // After many moves the incrementally tracked energy must match
        // a fresh evaluation.
        let q = random_qubo(20, 9);
        let r = tabu_search(&q, &TabuOptions::default(), 2);
        assert!((q.energy(&r.assignment) - r.energy).abs() < 1e-6);
    }
}
