//! # nck-classical
//!
//! Classical exact solvers — the substitute for Z3's role as (a) the
//! paper's classical baseline (§VIII-C) and (b) the optimality oracle
//! behind Definition 8 classification (§VII).
//!
//! * [`solver`] — branch-and-bound over NchooseK programs *directly*:
//!   cardinality propagation, soft-violation bounding. Fast, like Z3 on
//!   the original constraints.
//! * [`qubo_bb`] — branch-and-bound over *translated QUBOs*: exact but
//!   much slower on dense instances, reproducing the paper's
//!   observation that classical solvers handle the QUBO form poorly.
//! * [`brute`] — rayon-parallel exhaustive ground truth for tests.
//! * [`classify`] — optimal / suboptimal / incorrect classification of
//!   backend samples.
//! * [`tabu`] — tabu-search QUBO heuristic (the Ocean `TabuSampler`
//!   role): strong incumbents without hardware.

#![warn(missing_docs)]

pub mod brute;
pub mod classify;
pub mod qubo_bb;
pub mod solver;
pub mod tabu;

pub use brute::{solve_brute, BruteResult};
pub use classify::OptimalityOracle;
pub use qubo_bb::{minimize, QuboBbOptions, QuboBbResult, QuboBbStats};
pub use solver::{
    max_soft_satisfiable, solve, solve_cancellable, solve_resumable, Incumbent, SolveOutcome,
    SolveStats, SolverOptions,
};
pub use tabu::{tabu_search, TabuOptions, TabuResult};
