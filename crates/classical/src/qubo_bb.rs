//! Exact branch-and-bound QUBO minimization.
//!
//! The paper observes (§VIII-C) that handing *translated QUBOs* to a
//! classical solver performs far worse than solving the original
//! constraint program directly — minutes at 20 vertices, hours at 30,
//! versus sub-second direct solves. This module is our classical QUBO
//! comparator for reproducing that gap (Fig. 12's companion
//! experiment): a depth-first branch and bound with an admissible
//! interval bound, exact but exponential in practice on dense QUBOs.

use nck_qubo::Qubo;
use std::time::{Duration, Instant};

/// Options for the QUBO branch and bound.
#[derive(Clone, Copy, Debug)]
pub struct QuboBbOptions {
    /// Node budget; the search aborts (truncated) beyond it.
    pub node_limit: u64,
}

impl Default for QuboBbOptions {
    fn default() -> Self {
        QuboBbOptions { node_limit: u64::MAX }
    }
}

/// Statistics from a QUBO branch-and-bound run.
#[derive(Clone, Copy, Debug, Default)]
pub struct QuboBbStats {
    /// Nodes explored.
    pub nodes: u64,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// True if the node limit fired (the result is an incumbent, not a
    /// proven optimum).
    pub truncated: bool,
}

/// Result of an exact QUBO minimization.
#[derive(Clone, Debug, PartialEq)]
pub struct QuboBbResult {
    /// Minimum energy found.
    pub min_energy: f64,
    /// One minimizing assignment.
    pub assignment: Vec<bool>,
}

struct Bb<'a> {
    q: &'a Qubo,
    /// Dense coupling matrix for O(1) lookups.
    couplings: Vec<Vec<f64>>,
    order: Vec<usize>,
    opts: QuboBbOptions,
    best_energy: f64,
    best: Vec<bool>,
    stats: QuboBbStats,
}

/// Minimize `q` exactly by branch and bound.
pub fn minimize(q: &Qubo, opts: &QuboBbOptions) -> (QuboBbResult, QuboBbStats) {
    let start = Instant::now();
    let n = q.num_vars();
    let mut couplings = vec![vec![0.0; n]; n];
    for ((i, j), c) in q.quadratic_terms() {
        couplings[i][j] = c;
        couplings[j][i] = c;
    }
    // Branch on high-degree / large-coefficient variables first: they
    // tighten the bound fastest.
    let mut order: Vec<usize> = (0..n).collect();
    let weight =
        |v: usize| -> f64 { q.linear(v).abs() + couplings[v].iter().map(|c| c.abs()).sum::<f64>() };
    order.sort_by(|&a, &b| weight(b).partial_cmp(&weight(a)).unwrap());
    let mut bb = Bb {
        q,
        couplings,
        order,
        opts: *opts,
        best_energy: f64::INFINITY,
        best: vec![false; n],
        stats: QuboBbStats::default(),
    };
    let mut assigned = vec![false; n];
    bb.search(0, q.offset(), &mut assigned);
    bb.stats.elapsed = start.elapsed();
    (QuboBbResult { min_energy: bb.best_energy, assignment: bb.best.clone() }, bb.stats)
}

impl Bb<'_> {
    /// Admissible lower bound on the energy completable from a partial
    /// assignment of the first `depth` order positions: the accumulated
    /// energy plus, for each free variable, the cheapest contribution
    /// it could possibly make (assuming every free-free coupling gets
    /// its most favorable sign).
    fn lower_bound(&self, depth: usize, acc: f64, assigned: &[bool]) -> f64 {
        let mut bound = acc;
        for &v in &self.order[depth..] {
            // Contribution if v = 1: linear + couplings to assigned
            // TRUE vars + best case (≤ 0 parts) of couplings to free.
            let mut on = self.q.linear(v);
            for (d2, &u) in self.order.iter().enumerate() {
                let c = self.couplings[v][u];
                if c == 0.0 || u == v {
                    continue;
                }
                if d2 < depth {
                    if assigned[u] {
                        on += c;
                    }
                } else {
                    on += c.min(0.0) / 2.0; // halve: pair counted from both ends
                }
            }
            bound += on.min(0.0);
        }
        bound
    }

    fn search(&mut self, depth: usize, acc: f64, assigned: &mut Vec<bool>) {
        self.stats.nodes += 1;
        if self.stats.nodes > self.opts.node_limit {
            self.stats.truncated = true;
            return;
        }
        if depth == self.order.len() {
            if acc < self.best_energy {
                self.best_energy = acc;
                self.best = assigned.clone();
            }
            return;
        }
        if self.lower_bound(depth, acc, assigned) >= self.best_energy {
            return;
        }
        let v = self.order[depth];
        // Energy delta of setting v = 1 given assignments so far.
        let mut delta = self.q.linear(v);
        for &u in &self.order[..depth] {
            if assigned[u] {
                delta += self.couplings[v][u];
            }
        }
        // Value ordering: try the locally cheaper value first.
        let first = delta < 0.0;
        for value in [first, !first] {
            assigned[v] = value;
            let next_acc = if value { acc + delta } else { acc };
            self.search(depth + 1, next_acc, assigned);
            if self.stats.truncated {
                return;
            }
        }
        assigned[v] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nck_qubo::solve_exhaustive;

    fn assert_matches_exhaustive(q: &Qubo) {
        let (res, stats) = minimize(q, &QuboBbOptions::default());
        assert!(!stats.truncated);
        let truth = solve_exhaustive(q);
        assert!(
            (res.min_energy - truth.min_energy).abs() < 1e-9,
            "bb {} vs exhaustive {}",
            res.min_energy,
            truth.min_energy
        );
        assert!((q.energy(&res.assignment) - truth.min_energy).abs() < 1e-9);
    }

    #[test]
    fn single_variable() {
        let mut q = Qubo::new(1);
        q.add_linear(0, -2.0);
        assert_matches_exhaustive(&q);
        let (res, _) = minimize(&q, &QuboBbOptions::default());
        assert_eq!(res.assignment, vec![true]);
        assert_eq!(res.min_energy, -2.0);
    }

    #[test]
    fn vertex_cover_edge_qubo() {
        let mut q = Qubo::new(2);
        q.add_quadratic(0, 1, 1.0);
        q.add_linear(0, -1.0);
        q.add_linear(1, -1.0);
        assert_matches_exhaustive(&q);
    }

    #[test]
    fn offset_carried_through() {
        let mut q = Qubo::new(2);
        q.add_offset(5.0);
        q.add_linear(0, 1.0);
        let (res, _) = minimize(&q, &QuboBbOptions::default());
        assert_eq!(res.min_energy, 5.0);
    }

    #[test]
    fn random_instances_match_exhaustive() {
        let mut state = 0x2545f4914f6cdd1du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 21) as f64 - 10.0
        };
        for n in [4usize, 8, 12, 16] {
            let mut q = Qubo::new(n);
            for i in 0..n {
                q.add_linear(i, next());
                for j in i + 1..n {
                    if next() > 3.0 {
                        q.add_quadratic(i, j, next());
                    }
                }
            }
            assert_matches_exhaustive(&q);
        }
    }

    #[test]
    fn node_limit_truncates() {
        let mut q = Qubo::new(24);
        for i in 0..24 {
            q.add_linear(i, if i % 2 == 0 { 1.0 } else { -1.0 });
            q.add_quadratic(i, (i + 1) % 24, 0.5);
        }
        // Reaching any leaf needs 25 nodes, so a budget of 5 must fire.
        let (_, stats) = minimize(&q, &QuboBbOptions { node_limit: 5 });
        assert!(stats.truncated);
    }

    #[test]
    fn pruning_beats_exhaustive_node_count() {
        // A QUBO with a strong unique minimum: branch and bound should
        // explore far fewer nodes than 2^n.
        let n = 18;
        let mut q = Qubo::new(n);
        for i in 0..n {
            q.add_linear(i, -10.0); // all-TRUE is clearly optimal
            for j in i + 1..n {
                q.add_quadratic(i, j, 0.1);
            }
        }
        let (res, stats) = minimize(&q, &QuboBbOptions::default());
        assert_eq!(res.assignment, vec![true; n]);
        assert!(stats.nodes < 1 << (n - 2), "expected pruning, explored {} nodes", stats.nodes);
    }
}
