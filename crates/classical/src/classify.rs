//! Optimality classification of backend samples (Definition 8).
//!
//! The paper checks results "against the Z3 solver, which solves the
//! problems classically" (§VII). Here the exact branch-and-bound solver
//! provides the soft-constraint optimum, and samples from either
//! quantum backend are classified as optimal / suboptimal / incorrect.

use crate::solver::max_soft_satisfiable;
use nck_core::{Program, SolutionQuality};

/// A classifier holding the classically-computed soft optimum for one
/// program.
#[derive(Clone, Debug)]
pub struct OptimalityOracle {
    /// Maximum satisfiable soft *weight* (equal to the count under
    /// unit weights), or `None` when the hard constraints are
    /// unsatisfiable (every sample is then incorrect).
    pub max_soft: Option<u64>,
}

impl OptimalityOracle {
    /// Solve the program classically to establish the optimum.
    pub fn build(program: &Program) -> Self {
        OptimalityOracle { max_soft: max_soft_satisfiable(program) }
    }

    /// Classify one assignment.
    pub fn classify(&self, program: &Program, assignment: &[bool]) -> SolutionQuality {
        match self.max_soft {
            None => SolutionQuality::Incorrect,
            Some(max_soft) => program.evaluate(assignment).classify(max_soft),
        }
    }

    /// Classify a batch and return the best quality found — the
    /// annealer-style success criterion ("the problem is considered
    /// solved correctly if any of the hundred solutions returned is
    /// optimal", §VIII-B).
    pub fn best_of<'a>(
        &self,
        program: &Program,
        samples: impl IntoIterator<Item = &'a [bool]>,
    ) -> Option<SolutionQuality> {
        samples.into_iter().map(|s| self.classify(program, s)).max()
    }

    /// Fraction of samples at each quality: `(optimal, suboptimal,
    /// incorrect)` counts.
    pub fn tally<'a>(
        &self,
        program: &Program,
        samples: impl IntoIterator<Item = &'a [bool]>,
    ) -> (usize, usize, usize) {
        let mut t = (0, 0, 0);
        for s in samples {
            match self.classify(program, s) {
                SolutionQuality::Optimal => t.0 += 1,
                SolutionQuality::Suboptimal => t.1 += 1,
                SolutionQuality::Incorrect => t.2 += 1,
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vertex_cover_program() -> Program {
        let mut p = Program::new();
        let vs = p.new_vars("v", 5).unwrap();
        for (u, w) in [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)] {
            p.nck(vec![vs[u], vs[w]], [1, 2]).unwrap();
        }
        for &v in &vs {
            p.nck_soft(vec![v], [0]).unwrap();
        }
        p
    }

    #[test]
    fn classify_each_quality() {
        let p = vertex_cover_program();
        let oracle = OptimalityOracle::build(&p);
        assert_eq!(oracle.max_soft, Some(2));
        // Minimum cover {b,c,d}: optimal.
        assert_eq!(
            oracle.classify(&p, &[false, true, true, true, false]),
            SolutionQuality::Optimal
        );
        // Full cover: all hard satisfied, 0 soft: suboptimal.
        assert_eq!(oracle.classify(&p, &[true; 5]), SolutionQuality::Suboptimal);
        // Empty set: edges uncovered: incorrect.
        assert_eq!(oracle.classify(&p, &[false; 5]), SolutionQuality::Incorrect);
    }

    #[test]
    fn best_of_samples() {
        let p = vertex_cover_program();
        let oracle = OptimalityOracle::build(&p);
        let samples: Vec<Vec<bool>> =
            vec![vec![false; 5], vec![true; 5], vec![false, true, true, true, false]];
        let best = oracle.best_of(&p, samples.iter().map(Vec::as_slice)).unwrap();
        assert_eq!(best, SolutionQuality::Optimal);
        assert_eq!(oracle.tally(&p, samples.iter().map(Vec::as_slice)), (1, 1, 1));
    }

    #[test]
    fn unsatisfiable_program_everything_incorrect() {
        let mut p = Program::new();
        let a = p.new_var("a").unwrap();
        p.nck(vec![a], [0]).unwrap();
        p.nck(vec![a], [1]).unwrap();
        let oracle = OptimalityOracle::build(&p);
        assert_eq!(oracle.max_soft, None);
        assert_eq!(oracle.classify(&p, &[true]), SolutionQuality::Incorrect);
        assert_eq!(oracle.classify(&p, &[false]), SolutionQuality::Incorrect);
    }

    #[test]
    fn best_of_empty_is_none() {
        let p = vertex_cover_program();
        let oracle = OptimalityOracle::build(&p);
        assert_eq!(oracle.best_of(&p, std::iter::empty()), None);
    }
}
