//! Exact branch-and-bound solver for NchooseK programs.
//!
//! This plays the role Z3 plays in the paper's evaluation (§VIII-C):
//! the classical baseline that solves programs *directly* — no QUBO
//! translation — and the oracle that determines the maximum number of
//! satisfiable soft constraints for Definition 8 classification.
//!
//! The search is DPLL-style: assign variables one at a time, propagate
//! forced values through hard cardinality constraints, and
//! branch-and-bound on the number of violated soft constraints.

use nck_cancel::CancelToken;
use nck_core::{Constraint, Program};
use std::time::{Duration, Instant};

/// How many decision nodes pass between cooperative cancellation
/// polls. Polling costs an atomic load plus (with a deadline) an
/// `Instant::now()`, so it is amortized over a block of nodes.
const CANCEL_POLL_NODES: u64 = 64;

/// Solver options.
#[derive(Clone, Copy, Debug)]
pub struct SolverOptions {
    /// Abort after exploring this many nodes (safety valve for
    /// benchmarks). `u64::MAX` means unlimited.
    pub node_limit: u64,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions { node_limit: u64::MAX }
    }
}

/// Search statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolveStats {
    /// Decision nodes explored.
    pub nodes: u64,
    /// Assignments forced by propagation.
    pub propagations: u64,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// True if the node limit stopped the search early (the result is
    /// then a best-effort incumbent, not proven optimal).
    pub truncated: bool,
}

/// Outcome of an exact solve.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveOutcome {
    /// Best assignment found: all hard constraints hold and the
    /// satisfied soft *weight* is maximal (unless the search was
    /// truncated). With unit weights, weight = count.
    Solved {
        /// The optimal assignment (indexed by variable id).
        assignment: Vec<bool>,
        /// Number of satisfied soft constraints.
        soft_satisfied: usize,
        /// Total weight of satisfied soft constraints.
        soft_weight: u64,
    },
    /// No assignment satisfies every hard constraint.
    Unsatisfiable,
}

/// Tracked lifecycle of a constraint during search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    /// Outcome still depends on unassigned variables.
    Open,
    /// Satisfied no matter how the remaining variables are assigned.
    Sat,
    /// Violated no matter how the remaining variables are assigned.
    Violated,
}

struct Ctx<'a> {
    program: &'a Program,
    /// Per constraint: (distinct var index, multiplicity) pairs.
    members: Vec<Vec<(usize, u32)>>,
    /// Per constraint: is it hard?
    hard: Vec<bool>,
    /// var -> list of (constraint index, multiplicity).
    by_var: Vec<Vec<(usize, u32)>>,
    /// Static branching order (most-constrained variables first).
    order: Vec<usize>,
    /// Cooperative cancellation token, polled every
    /// [`CANCEL_POLL_NODES`] decision nodes.
    cancel: &'a CancelToken,
    /// Per var: total weight of singleton soft constraints violated by
    /// TRUE (the minimization pattern `nck({v},{0},soft)`); fuels the
    /// matching lower bound. Zero when the var has none.
    prefer_false: Vec<u64>,
    opts: SolverOptions,
}

struct State {
    assigned: Vec<Option<bool>>,
    /// Per constraint: multiplicity-weighted count of TRUE members.
    count: Vec<u32>,
    /// Per constraint: total multiplicity of unassigned members.
    remaining: Vec<u32>,
    status: Vec<Status>,
    /// Total *weight* of soft constraints already determined violated.
    violated_soft: u64,
    best_violations: u64,
    best: Option<(Vec<bool>, usize, u64)>,
    stats: SolveStats,
}

/// One undo record: a constraint's previous bookkeeping.
struct TrailEntry {
    constraint: usize,
    count: u32,
    remaining: u32,
    status: Status,
}

/// Solve `program` exactly.
pub fn solve(program: &Program, opts: &SolverOptions) -> (SolveOutcome, SolveStats) {
    solve_cancellable(program, opts, &CancelToken::never())
}

/// [`solve`] under cooperative cancellation: the search polls `cancel`
/// every [`CANCEL_POLL_NODES`] decision nodes and, when it fires, stops
/// with `stats.truncated = true` and the best incumbent found so far —
/// the same semantics as hitting the node limit. A truncated search
/// never proves unsatisfiability.
pub fn solve_cancellable(
    program: &Program,
    opts: &SolverOptions,
    cancel: &CancelToken,
) -> (SolveOutcome, SolveStats) {
    solve_resumable(program, opts, cancel, None, &mut |_| {})
}

/// A checkpointable incumbent: the best feasible assignment a run has
/// proven so far, with the violated-soft-weight bound it establishes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Incumbent {
    /// The feasible assignment (indexed by variable id).
    pub assignment: Vec<bool>,
    /// Soft constraints it satisfies.
    pub soft_satisfied: usize,
    /// Total weight of satisfied soft constraints.
    pub soft_weight: u64,
    /// Total weight of violated soft constraints — the branch-and-bound
    /// pruning bound this incumbent establishes.
    pub violated_weight: u64,
}

/// [`solve_cancellable`] with incumbent checkpoint/resume. `on_incumbent`
/// fires whenever the search records a strictly better feasible
/// assignment; a restored incumbent seeds both the answer-so-far and
/// the pruning bound, so a resumed search never re-proves what the
/// crashed run already established. Because bounds only tighten, a
/// resumed-from-incumbent search reaches the same optimal solution an
/// uninterrupted run does (node counts may differ — the restored bound
/// prunes harder).
///
/// A restored incumbent whose assignment length does not match the
/// program is ignored (it belongs to some other problem).
pub fn solve_resumable(
    program: &Program,
    opts: &SolverOptions,
    cancel: &CancelToken,
    restored: Option<Incumbent>,
    on_incumbent: &mut dyn FnMut(&Incumbent),
) -> (SolveOutcome, SolveStats) {
    let start = Instant::now();
    let n = program.num_vars();
    let constraints = program.constraints();
    let members: Vec<Vec<(usize, u32)>> = constraints
        .iter()
        .map(|c| c.multiplicities().into_iter().map(|(v, m)| (v.index(), m)).collect())
        .collect();
    let mut by_var: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
    for (ci, mem) in members.iter().enumerate() {
        for &(v, m) in mem {
            by_var[v].push((ci, m));
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(by_var[v].len()));
    let mut prefer_false = vec![0u64; n];
    for c in constraints {
        if !c.is_hard() {
            let m = c.multiplicities();
            if let [(v, mult)] = m.as_slice() {
                // Violated as soon as the variable is TRUE.
                if !c.selection().contains(mult) && c.selection().contains(&0) {
                    prefer_false[v.index()] += c.weight() as u64;
                }
            }
        }
    }
    let ctx = Ctx {
        program,
        hard: constraints.iter().map(Constraint::is_hard).collect(),
        members,
        by_var,
        order,
        prefer_false,
        cancel,
        opts: *opts,
    };
    let (best, best_violations) = match restored {
        Some(inc) if inc.assignment.len() == n => {
            ((Some((inc.assignment, inc.soft_satisfied, inc.soft_weight))), inc.violated_weight)
        }
        _ => (None, u64::MAX),
    };
    let mut state = State {
        assigned: vec![None; n],
        count: vec![0; constraints.len()],
        remaining: constraints.iter().map(|c| c.cardinality()).collect(),
        status: vec![Status::Open; constraints.len()],
        violated_soft: 0,
        best_violations,
        best,
        stats: SolveStats::default(),
    };
    // Initial status scan: constraints may be decided before any
    // assignment (tautological or unsatisfiable selection sets).
    for ci in 0..constraints.len() {
        refresh_status(&ctx, &mut state, ci);
        if state.status[ci] == Status::Violated && ctx.hard[ci] {
            state.stats.elapsed = start.elapsed();
            return (SolveOutcome::Unsatisfiable, state.stats);
        }
    }
    search(&ctx, &mut state, on_incumbent);
    state.stats.elapsed = start.elapsed();
    let outcome = match state.best.take() {
        Some((assignment, soft, weight)) => {
            SolveOutcome::Solved { assignment, soft_satisfied: soft, soft_weight: weight }
        }
        None => SolveOutcome::Unsatisfiable,
    };
    (outcome, state.stats)
}

/// Convenience wrapper: the maximum satisfiable soft *weight* (equal
/// to the maximum satisfied count under unit weights — the paper's
/// Definition 6 objective), or `None` if the hard constraints are
/// unsatisfiable.
pub fn max_soft_satisfiable(program: &Program) -> Option<u64> {
    match solve(program, &SolverOptions::default()).0 {
        SolveOutcome::Solved { soft_weight, .. } => Some(soft_weight),
        SolveOutcome::Unsatisfiable => None,
    }
}

/// Does the selection set contain any value in `[lo, hi]`?
fn selection_hits_range(c: &Constraint, lo: u32, hi: u32) -> bool {
    c.selection().range(lo..=hi).next().is_some()
}

/// Does the selection set contain *every* integer in `[lo, hi]`?
fn selection_covers_range(c: &Constraint, lo: u32, hi: u32) -> bool {
    c.selection().range(lo..=hi).count() as u64 == u64::from(hi - lo) + 1
}

/// Recompute a constraint's status from its (count, remaining) pair.
///
/// Achievable final counts lie in `[count, count + remaining]` — exact
/// when all remaining multiplicities are 1, a sound over-approximation
/// otherwise: `Violated` is only declared when the range misses the
/// selection entirely (truly violated), and `Sat` only when the range
/// is fully covered (truly satisfied).
fn refresh_status(ctx: &Ctx<'_>, state: &mut State, ci: usize) {
    if state.status[ci] != Status::Open {
        return;
    }
    let c = &ctx.program.constraints()[ci];
    let lo = state.count[ci];
    let hi = lo + state.remaining[ci];
    if !selection_hits_range(c, lo, hi) {
        state.status[ci] = Status::Violated;
        if !ctx.hard[ci] {
            state.violated_soft += c.weight() as u64;
        }
    } else if selection_covers_range(c, lo, hi) {
        state.status[ci] = Status::Sat;
    }
}

/// Apply `var := value`, updating every touched constraint and logging
/// undo records. Returns `false` on a hard conflict (state must still
/// be undone by the caller).
fn assign(
    ctx: &Ctx<'_>,
    state: &mut State,
    trail: &mut Vec<TrailEntry>,
    undo_vars: &mut Vec<usize>,
    var: usize,
    value: bool,
) -> bool {
    debug_assert!(state.assigned[var].is_none());
    state.assigned[var] = Some(value);
    undo_vars.push(var);
    let mut ok = true;
    for &(ci, m) in &ctx.by_var[var] {
        trail.push(TrailEntry {
            constraint: ci,
            count: state.count[ci],
            remaining: state.remaining[ci],
            status: state.status[ci],
        });
        state.remaining[ci] -= m;
        if value {
            state.count[ci] += m;
        }
        refresh_status(ctx, state, ci);
        if state.status[ci] == Status::Violated && ctx.hard[ci] {
            ok = false;
        }
    }
    ok
}

/// Undo every trail entry and assignment made since the branch began.
fn undo(ctx: &Ctx<'_>, state: &mut State, trail: &mut Vec<TrailEntry>, undo_vars: &mut Vec<usize>) {
    while let Some(e) = trail.pop() {
        if state.status[e.constraint] == Status::Violated
            && e.status != Status::Violated
            && !ctx.hard[e.constraint]
        {
            state.violated_soft -= ctx.program.constraints()[e.constraint].weight() as u64;
        }
        state.count[e.constraint] = e.count;
        state.remaining[e.constraint] = e.remaining;
        state.status[e.constraint] = e.status;
    }
    for v in undo_vars.drain(..) {
        state.assigned[v] = None;
    }
}

/// Unit propagation over hard constraints: if one value of an
/// unassigned member makes the constraint's achievable range miss the
/// selection set entirely, the other value is forced. Every assignment
/// is recorded in `undo_vars`, so the caller can undo even after a
/// conflict. Returns `false` on conflict.
fn propagate(
    ctx: &Ctx<'_>,
    state: &mut State,
    trail: &mut Vec<TrailEntry>,
    undo_vars: &mut Vec<usize>,
    seed: usize,
) -> bool {
    let mut queue = vec![seed];
    while let Some(v) = queue.pop() {
        for &(ci, _) in &ctx.by_var[v] {
            if !ctx.hard[ci] || state.status[ci] != Status::Open {
                continue;
            }
            let c = &ctx.program.constraints()[ci];
            for &(u, m) in &ctx.members[ci] {
                if state.assigned[u].is_some() {
                    continue;
                }
                let lo = state.count[ci];
                let rem = state.remaining[ci];
                let feasible_true = selection_hits_range(c, lo + m, lo + rem);
                let feasible_false = selection_hits_range(c, lo, lo + rem - m);
                let forced = match (feasible_true, feasible_false) {
                    (false, false) => return false,
                    (true, false) => Some(true),
                    (false, true) => Some(false),
                    (true, true) => None,
                };
                if let Some(value) = forced {
                    state.stats.propagations += 1;
                    if !assign(ctx, state, trail, undo_vars, u, value) {
                        return false;
                    }
                    queue.push(u);
                    // The constraint's bookkeeping changed; it is
                    // rescanned via u's queue entry (u is one of its
                    // members), so stop this stale scan.
                    break;
                }
            }
        }
    }
    true
}

/// Matching-style lower bound on *additional* soft violations: every
/// Open hard constraint whose selection now starts above its TRUE
/// count forces that many more TRUEs among its unassigned members; if
/// those members all carry prefer-false soft constraints and the
/// member sets are chosen disjoint (greedy), each forced TRUE violates
/// a distinct soft constraint.
fn matching_bound(ctx: &Ctx<'_>, state: &State, used: &mut [bool]) -> u64 {
    used.fill(false);
    let mut extra = 0u64;
    for (ci, members) in ctx.members.iter().enumerate() {
        if !ctx.hard[ci] || state.status[ci] != Status::Open {
            continue;
        }
        let c = &ctx.program.constraints()[ci];
        let lo = state.count[ci];
        let Some(&smin) = c.selection().range(lo..).next() else {
            continue;
        };
        let t_min = (smin - lo) as usize;
        if t_min == 0 {
            continue;
        }
        let unassigned: Vec<usize> = members
            .iter()
            .filter(|&&(v, _)| state.assigned[v].is_none())
            .map(|&(v, _)| v)
            .collect();
        if unassigned.is_empty() || unassigned.iter().any(|&v| used[v] || ctx.prefer_false[v] == 0)
        {
            continue;
        }
        // The forced TRUEs each violate at least the cheapest member's
        // prefer-false weight. (`unassigned` was checked non-empty
        // above; the let-else keeps this hot path panic-free anyway.)
        let Some(min_w) = unassigned.iter().map(|&v| ctx.prefer_false[v]).min() else {
            continue;
        };
        for &v in &unassigned {
            used[v] = true;
        }
        extra += (t_min.min(unassigned.len()) as u64) * min_w;
    }
    extra
}

fn search(ctx: &Ctx<'_>, state: &mut State, on_incumbent: &mut dyn FnMut(&Incumbent)) {
    state.stats.nodes += 1;
    if state.stats.nodes > ctx.opts.node_limit
        || (state.stats.nodes.is_multiple_of(CANCEL_POLL_NODES) && ctx.cancel.is_cancelled())
    {
        state.stats.truncated = true;
        return;
    }
    // Bound: the violated-soft count can only grow deeper in the tree.
    if state.violated_soft >= state.best_violations {
        return;
    }
    // Stronger bound via forced TRUEs on minimization variables.
    if state.best_violations != u64::MAX {
        let mut used = vec![false; state.assigned.len()];
        let extra = matching_bound(ctx, state, &mut used);
        if state.violated_soft + extra >= state.best_violations {
            return;
        }
    }
    let next = ctx.order.iter().copied().find(|&v| state.assigned[v].is_none());
    let Some(var) = next else {
        // Full assignment. No hard constraint is Violated (conflicts
        // prune earlier), so this is feasible; record if it improves.
        // Every slot is Some here (no unassigned var was found), so the
        // unwrap_or default can never actually be read.
        state.best_violations = state.violated_soft;
        let assignment: Vec<bool> = state.assigned.iter().map(|a| a.unwrap_or(false)).collect();
        let ev = ctx.program.evaluate(&assignment);
        on_incumbent(&Incumbent {
            assignment: assignment.clone(),
            soft_satisfied: ev.soft_satisfied,
            soft_weight: ev.soft_weight_satisfied,
            violated_weight: state.violated_soft,
        });
        state.best = Some((assignment, ev.soft_satisfied, ev.soft_weight_satisfied));
        return;
    };
    for value in [false, true] {
        let mut trail: Vec<TrailEntry> = Vec::new();
        let mut undo_vars: Vec<usize> = Vec::new();
        if assign(ctx, state, &mut trail, &mut undo_vars, var, value)
            && propagate(ctx, state, &mut trail, &mut undo_vars, var)
        {
            search(ctx, state, on_incumbent);
        }
        undo(ctx, state, &mut trail, &mut undo_vars);
        if state.stats.truncated {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::solve_brute;

    fn assert_matches_brute(p: &Program) {
        let (outcome, stats) = solve(p, &SolverOptions::default());
        assert!(!stats.truncated);
        match (outcome, solve_brute(p)) {
            (SolveOutcome::Unsatisfiable, None) => {}
            (SolveOutcome::Solved { assignment, soft_satisfied, soft_weight }, Some(brute)) => {
                assert_eq!(soft_weight, brute.max_soft, "soft optimum mismatch on {p}");
                assert!(p.all_hard_satisfied(&assignment));
                let ev = p.evaluate(&assignment);
                assert_eq!(ev.soft_satisfied, soft_satisfied);
                assert_eq!(ev.soft_weight_satisfied, soft_weight);
            }
            (got, brute) => panic!("solver {got:?} vs brute {brute:?} on {p}"),
        }
    }

    #[test]
    fn intro_example() {
        let mut p = Program::new();
        let a = p.new_var("a").unwrap();
        let b = p.new_var("b").unwrap();
        let c = p.new_var("c").unwrap();
        p.nck(vec![a, b], [0, 1]).unwrap();
        p.nck(vec![b, c], [1]).unwrap();
        assert_matches_brute(&p);
    }

    #[test]
    fn min_vertex_cover_five() {
        let mut p = Program::new();
        let vs = p.new_vars("v", 5).unwrap();
        for (u, w) in [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)] {
            p.nck(vec![vs[u], vs[w]], [1, 2]).unwrap();
        }
        for &v in &vs {
            p.nck_soft(vec![v], [0]).unwrap();
        }
        let (outcome, _) = solve(&p, &SolverOptions::default());
        match outcome {
            SolveOutcome::Solved { assignment, soft_satisfied, soft_weight } => {
                assert_eq!(soft_satisfied, 2); // minimum cover size 3
                assert_eq!(soft_weight, 2);
                assert_eq!(assignment.iter().filter(|&&b| b).count(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_matches_brute(&p);
    }

    #[test]
    fn unsatisfiable_conflicting_units() {
        let mut p = Program::new();
        let a = p.new_var("a").unwrap();
        p.nck(vec![a], [0]).unwrap();
        p.nck(vec![a], [1]).unwrap();
        let (outcome, _) = solve(&p, &SolverOptions::default());
        assert_eq!(outcome, SolveOutcome::Unsatisfiable);
    }

    #[test]
    fn unsatisfiable_by_multiplicity() {
        let mut p = Program::new();
        let a = p.new_var("a").unwrap();
        p.nck(vec![a, a], [1]).unwrap();
        let (outcome, _) = solve(&p, &SolverOptions::default());
        assert_eq!(outcome, SolveOutcome::Unsatisfiable);
    }

    #[test]
    fn propagation_solves_chain_without_branching() {
        // x0 = 1, and x_i XOR x_{i+1} = 1 forces an alternating chain.
        let mut p = Program::new();
        let vs = p.new_vars("x", 10).unwrap();
        p.nck(vec![vs[0]], [1]).unwrap();
        for i in 0..9 {
            p.nck(vec![vs[i], vs[i + 1]], [1]).unwrap();
        }
        let (outcome, stats) = solve(&p, &SolverOptions::default());
        match outcome {
            SolveOutcome::Solved { assignment, .. } => {
                for (i, &b) in assignment.iter().enumerate() {
                    assert_eq!(b, i % 2 == 0, "alternating chain broken at {i}");
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(stats.propagations >= 9, "expected unit propagation to fire");
    }

    #[test]
    fn max_cut_triangle() {
        let mut p = Program::new();
        let vs = p.new_vars("v", 3).unwrap();
        for (u, w) in [(0, 1), (0, 2), (1, 2)] {
            p.nck_soft(vec![vs[u], vs[w]], [1]).unwrap();
        }
        assert_eq!(max_soft_satisfiable(&p), Some(2));
        assert_matches_brute(&p);
    }

    #[test]
    fn mixed_hard_soft_interaction() {
        // Hard: exactly one of {a,b,c}; soft: prefer each TRUE.
        // Optimum satisfies exactly one soft constraint.
        let mut p = Program::new();
        let vs = p.new_vars("v", 3).unwrap();
        p.nck(vs.clone(), [1]).unwrap();
        for &v in &vs {
            p.nck_soft(vec![v], [1]).unwrap();
        }
        assert_eq!(max_soft_satisfiable(&p), Some(1));
        assert_matches_brute(&p);
    }

    #[test]
    fn cancelled_search_truncates_without_claiming_unsat() {
        let mut p = Program::new();
        let vs = p.new_vars("v", 20).unwrap();
        for i in 0..19 {
            p.nck_soft(vec![vs[i], vs[i + 1]], [1]).unwrap();
        }
        let token = CancelToken::never();
        token.cancel();
        let (outcome, stats) = solve_cancellable(&p, &SolverOptions::default(), &token);
        assert!(stats.truncated, "fired token must truncate the search");
        // 19 soft ring constraints, no hard constraints: the program is
        // trivially satisfiable, so any Unsatisfiable claim under
        // truncation would be wrong. An incumbent may or may not exist
        // (the poll is amortized), but a claim of unsat is only
        // acceptable from an untruncated search.
        if let SolveOutcome::Solved { assignment, .. } = outcome {
            assert!(p.all_hard_satisfied(&assignment));
        }
    }

    #[test]
    fn resume_from_incumbent_reaches_the_same_optimum() {
        // A soft-heavy instance with a nontrivial search: capture every
        // incumbent, then resume from each and check the final answer
        // matches the uninterrupted solve on all solution fields.
        let mut p = Program::new();
        let vs = p.new_vars("v", 12).unwrap();
        for (u, w) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (5, 6), (6, 7), (0, 5)] {
            p.nck(vec![vs[u], vs[w]], [1, 2]).unwrap();
        }
        for &v in &vs {
            p.nck_soft(vec![v], [0]).unwrap();
        }
        let token = CancelToken::never();
        let mut incumbents: Vec<Incumbent> = Vec::new();
        let (full, full_stats) =
            solve_resumable(&p, &SolverOptions::default(), &token, None, &mut |inc| {
                incumbents.push(inc.clone())
            });
        assert!(!full_stats.truncated);
        assert!(!incumbents.is_empty(), "expected at least one incumbent");
        // Bounds must strictly tighten along the incumbent sequence.
        for w in incumbents.windows(2) {
            assert!(w[1].violated_weight < w[0].violated_weight);
        }
        for inc in incumbents {
            let (resumed, stats) =
                solve_resumable(&p, &SolverOptions::default(), &token, Some(inc), &mut |_| {});
            assert!(!stats.truncated);
            match (&resumed, &full) {
                (
                    SolveOutcome::Solved { soft_satisfied: a, soft_weight: b, assignment: x },
                    SolveOutcome::Solved { soft_satisfied: c, soft_weight: d, .. },
                ) => {
                    assert_eq!(a, c);
                    assert_eq!(b, d);
                    assert!(p.all_hard_satisfied(x));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        // A mismatched incumbent (wrong problem) is ignored, not used.
        let bogus = Incumbent {
            assignment: vec![true; 3],
            soft_satisfied: 99,
            soft_weight: 99,
            violated_weight: 0,
        };
        let (resumed, _) =
            solve_resumable(&p, &SolverOptions::default(), &token, Some(bogus), &mut |_| {});
        assert_eq!(resumed, full);
    }

    #[test]
    fn node_limit_truncates() {
        // A soft-constraint-heavy program with a big search space.
        let mut p = Program::new();
        let vs = p.new_vars("v", 20).unwrap();
        for i in 0..19 {
            p.nck_soft(vec![vs[i], vs[i + 1]], [1]).unwrap();
        }
        let (_, stats) = solve(&p, &SolverOptions { node_limit: 10 });
        assert!(stats.truncated);
        assert!(stats.nodes <= 11);
    }

    #[test]
    fn larger_random_instances_match_brute() {
        // Deterministic pseudo-random mixed programs, cross-checked
        // against brute force.
        let mut seed = 0x243f6a8885a308d3u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for trial in 0..20 {
            let n = 6 + (next() % 6) as usize; // 6..11 vars
            let mut p = Program::new();
            let vs = p.new_vars("v", n).unwrap();
            for _ in 0..n {
                let a = vs[(next() % n as u64) as usize];
                let b = vs[(next() % n as u64) as usize];
                let c = vs[(next() % n as u64) as usize];
                let col: Vec<_> = vec![a, b, c];
                let card = col.len() as u32;
                let mut sel: Vec<u32> = Vec::new();
                for k in 0..=card {
                    if next() % 2 == 0 {
                        sel.push(k);
                    }
                }
                if sel.is_empty() {
                    sel.push(next() as u32 % (card + 1));
                }
                if next() % 3 == 0 {
                    p.nck_soft(col, sel).unwrap();
                } else {
                    p.nck(col, sel).unwrap();
                }
            }
            let _ = trial;
            assert_matches_brute(&p);
        }
    }
}
