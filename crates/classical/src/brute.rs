//! Parallel brute-force solving of NchooseK programs.
//!
//! Ground truth for tests and for classifying backend samples on small
//! instances: enumerate all assignments, keep those satisfying every
//! hard constraint, and maximize the number of satisfied soft
//! constraints. Embarrassingly parallel over the assignment space.

use nck_core::Program;
use rayon::prelude::*;

/// Result of a brute-force solve.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BruteResult {
    /// The maximum satisfiable soft *weight* while meeting every hard
    /// constraint (equals the satisfied count under unit weights).
    pub max_soft: u64,
    /// All optimal assignments, as packed bit patterns (bit `i` =
    /// variable `i`), ascending.
    pub optima: Vec<u64>,
}

impl BruteResult {
    /// Decode optimum `idx` into a boolean vector of length `n`.
    pub fn decode(&self, idx: usize, n: usize) -> Vec<bool> {
        let bits = self.optima[idx];
        (0..n).map(|i| bits >> i & 1 == 1).collect()
    }
}

/// Exhaustively solve `program`. Returns `None` if no assignment
/// satisfies all hard constraints. Panics above 30 variables.
pub fn solve_brute(program: &Program) -> Option<BruteResult> {
    let n = program.num_vars();
    assert!(n <= 30, "brute force limited to 30 variables, got {n}");
    let total = 1u64 << n;
    let chunk = (total / (rayon::current_num_threads() as u64 * 8)).max(1024);
    let num_chunks = total.div_ceil(chunk);
    let locals: Vec<(u64, Vec<u64>)> = (0..num_chunks)
        .into_par_iter()
        .filter_map(|c| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(total);
            let mut best: Option<u64> = None;
            let mut optima = Vec::new();
            let mut x = vec![false; n];
            for bits in lo..hi {
                for (i, xi) in x.iter_mut().enumerate() {
                    *xi = bits >> i & 1 == 1;
                }
                if !program.all_hard_satisfied(&x) {
                    continue;
                }
                let soft = program.evaluate(&x).soft_weight_satisfied;
                match best {
                    Some(b) if soft < b => {}
                    Some(b) if soft == b => optima.push(bits),
                    _ => {
                        best = Some(soft);
                        optima.clear();
                        optima.push(bits);
                    }
                }
            }
            best.map(|b| (b, optima))
        })
        .collect();
    let max_soft = locals.iter().map(|(b, _)| *b).max()?;
    let mut optima: Vec<u64> =
        locals.into_iter().filter(|(b, _)| *b == max_soft).flat_map(|(_, o)| o).collect();
    optima.sort_unstable();
    Some(BruteResult { max_soft, optima })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intro_example_solutions() {
        let mut p = Program::new();
        let a = p.new_var("a").unwrap();
        let b = p.new_var("b").unwrap();
        let c = p.new_var("c").unwrap();
        p.nck(vec![a, b], [0, 1]).unwrap();
        p.nck(vec![b, c], [1]).unwrap();
        let r = solve_brute(&p).unwrap();
        assert_eq!(r.max_soft, 0);
        // Solutions: b=1,c=0,a=0 (0b010); b=0,c=1,a∈{0,1} (0b100, 0b101)
        assert_eq!(r.optima, vec![0b010, 0b100, 0b101]);
    }

    #[test]
    fn min_vertex_cover_finds_minimum() {
        let mut p = Program::new();
        let vs = p.new_vars("v", 5).unwrap();
        for (u, w) in [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)] {
            p.nck(vec![vs[u], vs[w]], [1, 2]).unwrap();
        }
        for &v in &vs {
            p.nck_soft(vec![v], [0]).unwrap();
        }
        let r = solve_brute(&p).unwrap();
        // Minimum cover has 3 vertices => 2 soft constraints satisfied.
        assert_eq!(r.max_soft, 2);
        for &bits in &r.optima {
            assert_eq!(bits.count_ones(), 3);
        }
    }

    #[test]
    fn hard_unsatisfiable_returns_none() {
        let mut p = Program::new();
        let a = p.new_var("a").unwrap();
        p.nck(vec![a], [0]).unwrap();
        p.nck(vec![a], [1]).unwrap();
        assert_eq!(solve_brute(&p), None);
    }

    #[test]
    fn soft_only_program() {
        // Two conflicting soft constraints on one variable: either way
        // exactly one is satisfiable.
        let mut p = Program::new();
        let a = p.new_var("a").unwrap();
        p.nck_soft(vec![a], [0]).unwrap();
        p.nck_soft(vec![a], [1]).unwrap();
        let r = solve_brute(&p).unwrap();
        assert_eq!(r.max_soft, 1);
        assert_eq!(r.optima.len(), 2);
    }

    #[test]
    fn decode_round_trip() {
        let mut p = Program::new();
        let a = p.new_var("a").unwrap();
        let b = p.new_var("b").unwrap();
        p.nck(vec![a], [1]).unwrap();
        p.nck(vec![b], [0]).unwrap();
        let r = solve_brute(&p).unwrap();
        assert_eq!(r.optima, vec![0b01]);
        assert_eq!(r.decode(0, 2), vec![true, false]);
    }
}
