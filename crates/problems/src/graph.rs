//! Undirected simple graphs and the generators used in the paper's
//! scaling studies (§VII).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// An undirected simple graph over vertices `0..n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    edges: Vec<(usize, usize)>,
}

impl Graph {
    /// Build from an edge list. Edges are canonicalized to `(min, max)`,
    /// deduplicated, and sorted; self-loops are rejected.
    pub fn new(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut es: Vec<(usize, usize)> = edges
            .into_iter()
            .map(|(u, v)| {
                assert!(u != v, "self-loop ({u},{u})");
                assert!(u < n && v < n, "edge ({u},{v}) out of range for n={n}");
                (u.min(v), u.max(v))
            })
            .collect();
        es.sort_unstable();
        es.dedup();
        Graph { n, edges: es }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edges, each as `(u, v)` with `u < v`, sorted.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// True iff `(u, v)` is an edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        let key = (u.min(v), u.max(v));
        self.edges.binary_search(&key).is_ok()
    }

    /// All non-adjacent distinct vertex pairs `(u, v)` with `u < v` —
    /// the pairs the clique-cover problem constrains.
    pub fn non_edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for u in 0..self.n {
            for v in u + 1..self.n {
                if !self.has_edge(u, v) {
                    out.push((u, v));
                }
            }
        }
        out
    }

    /// Adjacency lists.
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.n];
        for &(u, v) in &self.edges {
            adj[u].push(v);
            adj[v].push(u);
        }
        adj
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.edges.iter().filter(|&&(a, b)| a == v || b == v).count()
    }

    /// The complete graph `K_n`.
    pub fn complete(n: usize) -> Self {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in u + 1..n {
                edges.push((u, v));
            }
        }
        Graph::new(n, edges)
    }

    /// The cycle `C_n` (requires `n ≥ 3`).
    pub fn cycle(n: usize) -> Self {
        assert!(n >= 3, "cycle needs at least 3 vertices");
        Graph::new(n, (0..n).map(|i| (i, (i + 1) % n)))
    }

    /// The path graph on `n` vertices.
    pub fn path(n: usize) -> Self {
        Graph::new(n, (0..n.saturating_sub(1)).map(|i| (i, i + 1)))
    }

    /// Circulant graph: vertex `i` connects to `i ± 1, …, i ± degree/2`
    /// (mod n). `degree` must be even and `< n`. This is the family the
    /// paper times Z3 on in Fig. 12 ("a circulant graph with the
    /// indicated number of nodes").
    pub fn circulant(n: usize, degree: usize) -> Self {
        assert!(degree.is_multiple_of(2), "circulant degree must be even");
        assert!(degree < n, "circulant degree must be < n");
        let mut edges = Vec::new();
        for i in 0..n {
            for d in 1..=degree / 2 {
                edges.push((i, (i + d) % n));
            }
        }
        Graph::new(n, edges)
    }

    /// The paper's *vertex scaling* family (§VII): start from a
    /// triangle; "each iteration adds a clique of three vertices
    /// connected to the previous iteration by two edges". `cliques` is
    /// the number of triangles (so `3 · cliques` vertices).
    pub fn clique_chain(cliques: usize) -> Self {
        assert!(cliques >= 1);
        let n = 3 * cliques;
        let mut edges = Vec::new();
        for c in 0..cliques {
            let base = 3 * c;
            edges.push((base, base + 1));
            edges.push((base, base + 2));
            edges.push((base + 1, base + 2));
            if c > 0 {
                // Two edges back to the previous clique.
                edges.push((base - 1, base));
                edges.push((base - 2, base + 1));
            }
        }
        Graph::new(n, edges)
    }

    /// The paper's *edge scaling* family (§VII): 12 vertices in four
    /// triangles (12 intra-clique edges) plus six inter-clique edges —
    /// 18 edges total, coverable by four cliques — then additional
    /// deterministic inter-clique edges up to `num_edges ≤ 66`.
    pub fn edge_scaling(num_edges: usize) -> Self {
        assert!((18..=66).contains(&num_edges), "edge scaling supports 18..=66 edges");
        let mut edges = Vec::new();
        for c in 0..4 {
            let b = 3 * c;
            edges.push((b, b + 1));
            edges.push((b, b + 2));
            edges.push((b + 1, b + 2));
        }
        // Six inter-clique connectors (a ring of cliques plus two
        // chords), fixed so the base instance is reproducible.
        let connectors = [(2, 3), (5, 6), (8, 9), (0, 11), (1, 4), (7, 10)];
        edges.extend_from_slice(&connectors);
        debug_assert_eq!(edges.len(), 18);
        if num_edges > 18 {
            // Remaining non-edges in a deterministic shuffled order.
            let base = Graph::new(12, edges.clone());
            let mut pool = base.non_edges();
            let mut rng = StdRng::seed_from_u64(0x5ca1e);
            pool.shuffle(&mut rng);
            edges.extend(pool.into_iter().take(num_edges - 18));
        }
        Graph::new(12, edges)
    }

    /// Erdős–Rényi G(n, m): `m` distinct edges chosen uniformly with a
    /// seeded RNG.
    pub fn random_gnm(n: usize, m: usize, seed: u64) -> Self {
        let max = n * (n - 1) / 2;
        assert!(m <= max, "G({n}, m={m}) exceeds {max} possible edges");
        let mut pool: Vec<(usize, usize)> =
            (0..n).flat_map(|u| (u + 1..n).map(move |v| (u, v))).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        pool.shuffle(&mut rng);
        pool.truncate(m);
        Graph::new(n, pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_canonicalize() {
        let g = Graph::new(3, [(1, 0), (0, 1), (2, 1)]);
        assert_eq!(g.edges(), &[(0, 1), (1, 2)]);
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loops() {
        let _ = Graph::new(2, [(1, 1)]);
    }

    #[test]
    fn complete_graph() {
        let g = Graph::complete(5);
        assert_eq!(g.num_edges(), 10);
        assert!(g.non_edges().is_empty());
    }

    #[test]
    fn cycle_and_path() {
        assert_eq!(Graph::cycle(4).num_edges(), 4);
        assert_eq!(Graph::path(4).num_edges(), 3);
        assert_eq!(Graph::path(1).num_edges(), 0);
    }

    #[test]
    fn circulant_degree() {
        let g = Graph::circulant(10, 4);
        for v in 0..10 {
            assert_eq!(g.degree(v), 4);
        }
        assert_eq!(g.num_edges(), 20);
    }

    #[test]
    fn clique_chain_shape() {
        // k triangles: 3k vertices, 3k + 2(k−1) edges.
        for k in 1..=11 {
            let g = Graph::clique_chain(k);
            assert_eq!(g.num_vertices(), 3 * k);
            assert_eq!(g.num_edges(), 3 * k + 2 * (k - 1));
        }
        // 11 triangles = 33 vertices, the paper's initial scaling limit.
        assert_eq!(Graph::clique_chain(11).num_vertices(), 33);
    }

    #[test]
    fn edge_scaling_range() {
        let base = Graph::edge_scaling(18);
        assert_eq!(base.num_vertices(), 12);
        assert_eq!(base.num_edges(), 18);
        for m in [24, 37, 48, 63, 66] {
            let g = Graph::edge_scaling(m);
            assert_eq!(g.num_edges(), m, "requested {m} edges");
            // Base edges are always present.
            for &(u, v) in base.edges() {
                assert!(g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn edge_scaling_deterministic() {
        assert_eq!(Graph::edge_scaling(30), Graph::edge_scaling(30));
    }

    #[test]
    fn gnm_is_seeded_and_sized() {
        let a = Graph::random_gnm(10, 15, 7);
        let b = Graph::random_gnm(10, 15, 7);
        let c = Graph::random_gnm(10, 15, 8);
        assert_eq!(a, b);
        assert_eq!(a.num_edges(), 15);
        assert_ne!(a, c); // overwhelmingly likely
    }

    #[test]
    fn adjacency_consistent() {
        let g = Graph::cycle(5);
        let adj = g.adjacency();
        for (v, nbrs) in adj.iter().enumerate() {
            assert_eq!(nbrs.len(), 2, "cycle vertex {v}");
            for &u in nbrs {
                assert!(g.has_edge(u, v));
            }
        }
    }
}
