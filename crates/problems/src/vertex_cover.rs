//! Minimum Vertex Cover (§IV of the paper — the motivating example for
//! soft constraints; NP-hard).
//!
//! NchooseK encoding: one variable per vertex (TRUE = in the cover);
//! hard `nck({u,v},{1,2})` per edge; soft `nck({v},{0})` per vertex.
//! Exactly two non-symmetric constraint shapes.
//!
//! Handcrafted QUBO (§VI-A-c): `A·Σ_{(u,v)∈E} (1−x_u)(1−x_v) + B·Σ_v x_v`
//! with `A > B` so that uncovering an edge is never worth dropping a
//! vertex; `3|E| + |V|` terms.

use crate::counts::TableCounts;
use crate::graph::Graph;
use nck_core::Program;
use nck_qubo::Qubo;

/// A Minimum Vertex Cover instance.
#[derive(Clone, Debug)]
pub struct MinVertexCover {
    graph: Graph,
}

impl MinVertexCover {
    /// Wrap a graph.
    pub fn new(graph: Graph) -> Self {
        MinVertexCover { graph }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The NchooseK program: variable `v<i>` per vertex.
    pub fn program(&self) -> Program {
        let mut p = Program::new();
        let vs = p.new_vars("v", self.graph.num_vertices()).expect("fresh names");
        for &(u, w) in self.graph.edges() {
            p.nck(vec![vs[u], vs[w]], [1, 2]).expect("edge constraint");
        }
        for &v in &vs {
            p.nck_soft(vec![v], [0]).expect("vertex soft constraint");
        }
        p
    }

    /// The paper's handcrafted Hamiltonian with `A = 2, B = 1`.
    pub fn handcrafted_qubo(&self) -> Qubo {
        let a = 2.0;
        let b = 1.0;
        let mut q = Qubo::new(self.graph.num_vertices());
        for &(u, v) in self.graph.edges() {
            // A(1−x_u)(1−x_v) = A(1 − x_u − x_v + x_u x_v)
            q.add_offset(a);
            q.add_linear(u, -a);
            q.add_linear(v, -a);
            q.add_quadratic(u, v, a);
        }
        for v in 0..self.graph.num_vertices() {
            q.add_linear(v, b);
        }
        q
    }

    /// Domain check: is the TRUE-set a vertex cover?
    pub fn is_cover(&self, assignment: &[bool]) -> bool {
        self.graph.edges().iter().all(|&(u, v)| assignment[u] || assignment[v])
    }

    /// Cover size of an assignment.
    pub fn cover_size(&self, assignment: &[bool]) -> usize {
        assignment.iter().filter(|&&b| b).count()
    }

    /// Table I metrics.
    pub fn counts(&self) -> TableCounts {
        TableCounts::of(&self.program(), &self.handcrafted_qubo())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_graph() -> Graph {
        // Figure 2: 5 vertices a..e, edges ab, ac, bc, cd, de.
        Graph::new(5, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn program_shape_matches_paper() {
        let mvc = MinVertexCover::new(paper_graph());
        let p = mvc.program();
        assert_eq!(p.num_hard(), 5); // |E|
        assert_eq!(p.num_soft(), 5); // |V|
        assert_eq!(p.num_nonsymmetric(), 2); // Table I row 3
    }

    #[test]
    fn handcrafted_term_count() {
        let mvc = MinVertexCover::new(paper_graph());
        let q = mvc.handcrafted_qubo();
        // 3|E| + |V| terms: |E| quadratic + per-vertex linear terms.
        // Linear terms from edges merge with the B·x_v terms, so count
        // quadratic and linear separately.
        assert_eq!(q.num_interactions(), 5); // |E|
        assert_eq!(q.num_terms(), 5 + 5); // every vertex touched + edges
    }

    #[test]
    fn handcrafted_minimum_is_min_cover() {
        let mvc = MinVertexCover::new(paper_graph());
        let r = nck_qubo::solve_exhaustive(&mvc.handcrafted_qubo());
        for &bits in &r.minimizers {
            let x: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            assert!(mvc.is_cover(&x));
            assert_eq!(mvc.cover_size(&x), 3, "minimum cover has 3 vertices");
        }
    }

    #[test]
    fn is_cover_checks() {
        let mvc = MinVertexCover::new(paper_graph());
        assert!(mvc.is_cover(&[true; 5]));
        assert!(mvc.is_cover(&[false, true, true, true, false]));
        assert!(!mvc.is_cover(&[false, false, true, true, false])); // misses ab
        assert!(!mvc.is_cover(&[false; 5]));
    }

    #[test]
    fn counts_scale_linearly() {
        for k in 1..=4 {
            let g = Graph::clique_chain(k);
            let c = MinVertexCover::new(g.clone()).counts();
            assert_eq!(c.nck_constraints, g.num_edges() + g.num_vertices());
            assert_eq!(c.nonsymmetric, 2);
        }
    }
}
