//! Clique Cover (§VI-A-e; NP-complete).
//!
//! Partition a graph's vertices into `n` groups such that each group
//! induces a clique. Structurally the complement of map coloring: the
//! same one-hot encoding, but the pairwise constraints run over
//! *non-edges* — two non-adjacent vertices must not share a color.
//!
//! NchooseK: `|V|` one-hot constraints plus `n` constraints per absent
//! edge: `n(|V|(|V|−1)/2 − |E|) + |V|` total, two non-symmetric shapes.
//! The handcrafted QUBO has the same asymptotics — the paper's example
//! of a problem where NchooseK does *not* reduce the term count.

use crate::counts::TableCounts;
use crate::graph::Graph;
use nck_core::Program;
use nck_qubo::Qubo;

/// A Clique Cover instance.
#[derive(Clone, Debug)]
pub struct CliqueCover {
    graph: Graph,
    cliques: usize,
}

impl CliqueCover {
    /// Wrap a graph with a target number of cliques.
    pub fn new(graph: Graph, cliques: usize) -> Self {
        assert!(cliques >= 1, "need at least one clique");
        CliqueCover { graph, cliques }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The clique budget `n`.
    pub fn cliques(&self) -> usize {
        self.cliques
    }

    /// Variable index for vertex `v`, clique `i`.
    pub fn var_index(&self, v: usize, i: usize) -> usize {
        v * self.cliques + i
    }

    /// The NchooseK program.
    pub fn program(&self) -> Program {
        let mut p = Program::new();
        let mut vars = Vec::with_capacity(self.graph.num_vertices() * self.cliques);
        for v in 0..self.graph.num_vertices() {
            for i in 0..self.cliques {
                vars.push(p.new_var(format!("v{v}_q{i}")).expect("fresh name"));
            }
        }
        for v in 0..self.graph.num_vertices() {
            let collection: Vec<_> =
                (0..self.cliques).map(|i| vars[self.var_index(v, i)]).collect();
            p.nck(collection, [1]).expect("one-hot constraint");
        }
        for (u, v) in self.graph.non_edges() {
            for i in 0..self.cliques {
                p.nck(vec![vars[self.var_index(u, i)], vars[self.var_index(v, i)]], [0, 1])
                    .expect("non-edge constraint");
            }
        }
        p
    }

    /// The handcrafted QUBO: one-hot blocks plus a penalty per
    /// same-clique non-adjacent pair.
    pub fn handcrafted_qubo(&self) -> Qubo {
        let mut q = Qubo::new(self.graph.num_vertices() * self.cliques);
        for v in 0..self.graph.num_vertices() {
            let terms: Vec<(usize, f64)> =
                (0..self.cliques).map(|i| (self.var_index(v, i), -1.0)).collect();
            q.add_square_of_linear(&terms, 1.0);
        }
        for (u, v) in self.graph.non_edges() {
            for i in 0..self.cliques {
                q.add_quadratic(self.var_index(u, i), self.var_index(v, i), 1.0);
            }
        }
        q
    }

    /// Decode to a clique assignment; `None` if not one-hot.
    pub fn decode(&self, assignment: &[bool]) -> Option<Vec<usize>> {
        let mut groups = Vec::with_capacity(self.graph.num_vertices());
        for v in 0..self.graph.num_vertices() {
            let on: Vec<usize> =
                (0..self.cliques).filter(|&i| assignment[self.var_index(v, i)]).collect();
            match on.as_slice() {
                [g] => groups.push(*g),
                _ => return None,
            }
        }
        Some(groups)
    }

    /// True iff every group induces a clique.
    pub fn is_valid_cover(&self, assignment: &[bool]) -> bool {
        match self.decode(assignment) {
            Some(groups) => {
                for u in 0..self.graph.num_vertices() {
                    for v in u + 1..self.graph.num_vertices() {
                        if groups[u] == groups[v] && !self.graph.has_edge(u, v) {
                            return false;
                        }
                    }
                }
                true
            }
            None => false,
        }
    }

    /// Table I metrics.
    pub fn counts(&self) -> TableCounts {
        TableCounts::of(&self.program(), &self.handcrafted_qubo())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nck_classical::solve_brute;

    #[test]
    fn constraint_count_formula() {
        // |V| + n(|V|(|V|−1)/2 − |E|) constraints (Table I row 5).
        let g = Graph::cycle(5);
        let cc = CliqueCover::new(g.clone(), 3);
        let expected = 5 + 3 * (5 * 4 / 2 - g.num_edges());
        assert_eq!(cc.program().constraints().len(), expected);
        assert_eq!(cc.program().num_nonsymmetric(), 2);
    }

    #[test]
    fn two_triangles_cover_with_two_cliques() {
        // Two disjoint triangles: perfectly coverable by 2 cliques.
        let g = Graph::new(6, [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)]);
        let cc = CliqueCover::new(g, 2);
        let r = solve_brute(&cc.program()).expect("coverable");
        for &bits in &r.optima {
            let x: Vec<bool> = (0..12).map(|i| bits >> i & 1 == 1).collect();
            assert!(cc.is_valid_cover(&x));
        }
    }

    #[test]
    fn path_not_coverable_by_one_clique() {
        let cc = CliqueCover::new(Graph::path(3), 1);
        assert!(solve_brute(&cc.program()).is_none());
        let cc2 = CliqueCover::new(Graph::path(3), 2);
        assert!(solve_brute(&cc2.program()).is_some());
    }

    #[test]
    fn handcrafted_ground_states_are_covers() {
        let g = Graph::new(4, [(0, 1), (2, 3)]);
        let cc = CliqueCover::new(g, 2);
        let q = cc.handcrafted_qubo();
        let r = nck_qubo::solve_exhaustive(&q);
        assert_eq!(r.min_energy, 0.0);
        for &bits in &r.minimizers {
            let x: Vec<bool> = (0..8).map(|i| bits >> i & 1 == 1).collect();
            assert!(cc.is_valid_cover(&x));
        }
    }

    #[test]
    fn more_edges_fewer_constraints() {
        // §VIII-A: "increasing the number of edges reduces the number
        // of constraints for this particular problem formulation".
        let sparse = CliqueCover::new(Graph::edge_scaling(18), 4);
        let dense = CliqueCover::new(Graph::edge_scaling(48), 4);
        assert!(dense.program().constraints().len() < sparse.program().constraints().len());
    }

    #[test]
    fn decode_validates_cliqueness() {
        let g = Graph::path(3); // 0-1, 1-2; vertices 0 and 2 not adjacent
        let cc = CliqueCover::new(g, 2);
        // groups: {0,1} clique, {2} singleton — valid
        let valid = [true, false, true, false, false, true];
        assert!(cc.is_valid_cover(&valid));
        // groups: {0,2} not adjacent — invalid
        let invalid = [true, false, false, true, true, false];
        assert!(!cc.is_valid_cover(&invalid));
    }
}
