//! Minimum Set Cover (§VI-A-b; NP-hard).
//!
//! Like Exact Cover but elements may be covered multiple times and the
//! goal is the *fewest* subsets.
//!
//! NchooseK encoding: per element, a hard constraint whose selection
//! set is every positive count up to the collection cardinality
//! ("covered at least once"); plus one soft `nck({s},{0})` per subset.
//!
//! Handcrafted QUBO (Lucas §5.1): counting one-hot ancillas `y_{α,m}`
//! ("element α is covered exactly m times"):
//!
//! ```text
//! H = A Σ_α (1 − Σ_m y_{α,m})²
//!   + A Σ_α (Σ_m m·y_{α,m} − Σ_{i: α∈S_i} x_i)²
//!   + B Σ_i x_i
//! ```
//!
//! — unlike NchooseK's automatic translation, the hand formulation
//! forces the programmer to introduce and balance these ancillas
//! (`A > B`), which is precisely the paper's ease-of-construction
//! argument.

use crate::counts::TableCounts;
use crate::exact_cover::ExactCover;
use nck_core::Program;
use nck_qubo::Qubo;

/// A Minimum Set Cover instance (shares the instance data with
/// [`ExactCover`]; the paper runs both "using the same sets and
/// subsets", §VII).
#[derive(Clone, Debug)]
pub struct MinSetCover {
    inner: ExactCover,
}

impl MinSetCover {
    /// Build from elements and subsets.
    pub fn new(num_elements: usize, subsets: Vec<Vec<usize>>) -> Self {
        MinSetCover { inner: ExactCover::new(num_elements, subsets) }
    }

    /// Reuse an exact-cover instance's sets (the paper's §VII setup).
    pub fn from_exact_cover(inner: ExactCover) -> Self {
        MinSetCover { inner }
    }

    /// Number of elements.
    pub fn num_elements(&self) -> usize {
        self.inner.num_elements()
    }

    /// The subsets.
    pub fn subsets(&self) -> &[Vec<usize>] {
        self.inner.subsets()
    }

    fn containing(&self, e: usize) -> Vec<usize> {
        self.subsets().iter().enumerate().filter(|(_, s)| s.contains(&e)).map(|(i, _)| i).collect()
    }

    /// The NchooseK program.
    pub fn program(&self) -> Program {
        let mut p = Program::new();
        let vs = p.new_vars("s", self.subsets().len()).expect("fresh names");
        for e in 0..self.num_elements() {
            let members: Vec<_> = self.containing(e).into_iter().map(|i| vs[i]).collect();
            assert!(!members.is_empty(), "element {e} is in no subset");
            let card = members.len() as u32;
            p.nck(members, 1..=card).expect("coverage constraint");
        }
        for &v in &vs {
            p.nck_soft(vec![v], [0]).expect("minimization constraint");
        }
        p
    }

    /// The handcrafted Lucas QUBO with counting ancillas. Variable
    /// layout: subset vars `0..N`, then per element `α` its block of
    /// `N_α` one-hot counters.
    pub fn handcrafted_qubo(&self) -> Qubo {
        let n_subsets = self.subsets().len();
        let a = 2.0 * (n_subsets as f64 + 1.0);
        let b = 1.0;
        let blocks: Vec<Vec<usize>> =
            (0..self.num_elements()).map(|e| self.containing(e)).collect();
        let num_ancillas: usize = blocks.iter().map(Vec::len).sum();
        let mut q = Qubo::new(n_subsets + num_ancillas);
        let mut anc = n_subsets;
        for members in &blocks {
            let na = members.len();
            // (1 − Σ_m y_m)²
            let one_hot: Vec<(usize, f64)> = (0..na).map(|m| (anc + m, -1.0)).collect();
            let mut sq = Qubo::new(q.num_vars());
            sq.add_square_of_linear(&one_hot, 1.0);
            sq.scale(a);
            q += &sq;
            // (Σ_m m·y_m − Σ x_i)²
            let mut terms: Vec<(usize, f64)> = (0..na).map(|m| (anc + m, (m + 1) as f64)).collect();
            terms.extend(members.iter().map(|&i| (i, -1.0)));
            let mut sq = Qubo::new(q.num_vars());
            sq.add_square_of_linear(&terms, 0.0);
            sq.scale(a);
            q += &sq;
            anc += na;
        }
        for i in 0..n_subsets {
            q.add_linear(i, b);
        }
        q
    }

    /// Domain check: is every element covered at least once?
    pub fn is_cover(&self, assignment: &[bool]) -> bool {
        (0..self.num_elements()).all(|e| self.containing(e).iter().any(|&i| assignment[i]))
    }

    /// Number of chosen subsets.
    pub fn cover_size(&self, assignment: &[bool]) -> usize {
        assignment[..self.subsets().len()].iter().filter(|&&b| b).count()
    }

    /// Table I metrics. (The handcrafted QUBO includes its counting
    /// ancillas, reflected in `handcrafted_qubo_vars`.)
    pub fn counts(&self) -> TableCounts {
        TableCounts::of(&self.program(), &self.handcrafted_qubo())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nck_classical::solve_brute;

    fn small() -> MinSetCover {
        // Elements 0..3; subsets {0,1}, {1,2}, {2,3}, {0,1,2,3}... keep
        // minimal cover size 1 possible via the big subset.
        MinSetCover::new(4, vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 1, 2, 3]])
    }

    #[test]
    fn program_counts() {
        let msc = small();
        let p = msc.program();
        assert_eq!(p.num_hard(), 4); // per element
        assert_eq!(p.num_soft(), 4); // per subset
    }

    #[test]
    fn brute_optimum_is_minimum_cover() {
        let msc = small();
        let r = solve_brute(&msc.program()).expect("satisfiable");
        // Minimum cover = just the big subset: 3 of 4 soft satisfied.
        assert_eq!(r.max_soft, 3);
        for &bits in &r.optima {
            let x: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            assert!(msc.is_cover(&x));
            assert_eq!(msc.cover_size(&x), 1);
        }
    }

    #[test]
    fn handcrafted_minimum_is_minimum_cover() {
        let msc = small();
        let q = msc.handcrafted_qubo();
        let r = nck_qubo::solve_exhaustive(&q);
        for &bits in &r.minimizers {
            let x: Vec<bool> = (0..q.num_vars()).map(|i| bits >> i & 1 == 1).collect();
            assert!(msc.is_cover(&x), "minimizer not a cover");
            assert_eq!(msc.cover_size(&x), 1, "minimizer not minimal");
        }
    }

    #[test]
    fn handcrafted_has_ancillas_nck_does_not_here() {
        // The paper: the handmade min-set-cover QUBO needs counting
        // variables; NchooseK's element constraints with full positive
        // selection compile without (tested in integration tests).
        let msc = small();
        let c = msc.counts();
        assert!(c.handcrafted_qubo_vars > c.num_vars);
    }

    #[test]
    fn coverage_semantics_allow_overlap() {
        let msc = small();
        // Choosing subsets 0 and 1 covers 0,1,2 but not 3.
        assert!(!msc.is_cover(&[true, true, false, false]));
        // 0 and 2 cover everything with overlap at none... {0,1} ∪ {2,3}.
        assert!(msc.is_cover(&[true, false, true, false]));
    }
}
