//! k-Satisfiability (§VI-A-f; NP-complete).
//!
//! NchooseK cannot negate a variable inside a constraint, so the paper
//! offers two encodings:
//!
//! * **Dual-rail**: one ancilla variable per original variable holding
//!   the opposite value (`nck({x, x̄}, {1})`), then one constraint per
//!   clause over the rails with selection `{1..k}` — `n + m`
//!   constraints, two non-symmetric shapes.
//! * **Repeated-variable**: weight literals by repetition so that the
//!   clause's single violating assignment gets a unique weighted count,
//!   then exclude that count from the selection set. For clause
//!   `(x ∨ y ∨ ¬z)` this yields `nck({x,y,z,z,z}, {0,1,2,4,5})` —
//!   `m` constraints, but up to `k` non-symmetric shapes and larger
//!   collections. (The paper's §VI prints the collection as
//!   `{x,y,z,z}` with selection `{0,1,2,4,5}`; a selection value of 5
//!   requires cardinality 5, so the collection must be `{x,y,z,z,z}` —
//!   we implement the corrected form: negated literals carry
//!   multiplicity `p+1` where `p` is the clause's positive-literal
//!   count, making the violating weighted count `q(p+1)` unique.)
//!
//! Handcrafted QUBO baseline: the classic reduction to Maximum
//! Independent Set [Choi; Lucas §4.2] — one node per literal
//! *occurrence*, clique edges inside each clause, conflict edges
//! between opposite occurrences of the same variable; satisfiable iff
//! the MIS has one node per clause.

use crate::counts::TableCounts;
use nck_core::Program;
use nck_qubo::Qubo;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// A literal: a variable index and a polarity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Literal {
    /// Variable index.
    pub var: usize,
    /// `true` for `x`, `false` for `¬x`.
    pub positive: bool,
}

impl Literal {
    /// Positive literal `x`.
    pub fn pos(var: usize) -> Self {
        Literal { var, positive: true }
    }
    /// Negative literal `¬x`.
    pub fn neg(var: usize) -> Self {
        Literal { var, positive: false }
    }
    /// Value of the literal under an assignment.
    pub fn eval(self, assignment: &[bool]) -> bool {
        assignment[self.var] == self.positive
    }
}

/// A k-SAT instance in CNF.
#[derive(Clone, Debug)]
pub struct KSat {
    num_vars: usize,
    clauses: Vec<Vec<Literal>>,
}

impl KSat {
    /// Build an instance. Clauses must be non-empty and mention each
    /// variable at most once.
    pub fn new(num_vars: usize, clauses: Vec<Vec<Literal>>) -> Self {
        for (i, c) in clauses.iter().enumerate() {
            assert!(!c.is_empty(), "clause {i} is empty");
            let mut seen = BTreeSet::new();
            for lit in c {
                assert!(lit.var < num_vars, "clause {i} mentions variable out of range");
                assert!(seen.insert(lit.var), "clause {i} repeats a variable");
            }
        }
        KSat { num_vars, clauses }
    }

    /// Random 3-SAT with a planted satisfying assignment (so instances
    /// stay satisfiable as in the paper's scaling study).
    pub fn random_3sat(num_vars: usize, num_clauses: usize, seed: u64) -> Self {
        assert!(num_vars >= 3);
        let mut rng = StdRng::seed_from_u64(seed);
        let planted: Vec<bool> = (0..num_vars).map(|_| rng.random()).collect();
        let mut clauses = Vec::with_capacity(num_clauses);
        while clauses.len() < num_clauses {
            let mut vars = BTreeSet::new();
            while vars.len() < 3 {
                vars.insert(rng.random_range(0..num_vars));
            }
            let clause: Vec<Literal> =
                vars.into_iter().map(|v| Literal { var: v, positive: rng.random() }).collect();
            if clause.iter().any(|l| l.eval(&planted)) {
                clauses.push(clause);
            }
        }
        KSat { num_vars, clauses }
    }

    /// Parse a DIMACS CNF document (the standard SAT-competition
    /// format: a `p cnf <vars> <clauses>` header, `c` comment lines,
    /// and zero-terminated clause lines of signed 1-based literals).
    pub fn from_dimacs(text: &str) -> Result<Self, String> {
        let mut num_vars: Option<usize> = None;
        let mut declared_clauses = 0usize;
        let mut clauses: Vec<Vec<Literal>> = Vec::new();
        let mut current: Vec<Literal> = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('p') {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                match parts.as_slice() {
                    ["cnf", v, m] => {
                        num_vars = Some(
                            v.parse()
                                .map_err(|e| format!("line {}: bad var count: {e}", lineno + 1))?,
                        );
                        declared_clauses = m
                            .parse()
                            .map_err(|e| format!("line {}: bad clause count: {e}", lineno + 1))?;
                    }
                    _ => return Err(format!("line {}: malformed problem line", lineno + 1)),
                }
                continue;
            }
            let nv = num_vars
                .ok_or_else(|| format!("line {}: clause before 'p cnf' header", lineno + 1))?;
            for tok in line.split_whitespace() {
                let lit: i64 = tok
                    .parse()
                    .map_err(|e| format!("line {}: bad literal {tok:?}: {e}", lineno + 1))?;
                if lit == 0 {
                    if !current.is_empty() {
                        clauses.push(std::mem::take(&mut current));
                    }
                } else {
                    let var = lit.unsigned_abs() as usize - 1;
                    if var >= nv {
                        return Err(format!(
                            "line {}: literal {lit} exceeds declared {nv} variables",
                            lineno + 1
                        ));
                    }
                    if current.iter().any(|l| l.var == var) {
                        return Err(format!(
                            "line {}: variable {} repeated within a clause",
                            lineno + 1,
                            var + 1
                        ));
                    }
                    current.push(Literal { var, positive: lit > 0 });
                }
            }
        }
        if !current.is_empty() {
            clauses.push(current);
        }
        let num_vars = num_vars.ok_or("missing 'p cnf' header")?;
        if declared_clauses != 0 && clauses.len() != declared_clauses {
            return Err(format!(
                "header declares {declared_clauses} clauses, found {}",
                clauses.len()
            ));
        }
        Ok(KSat::new(num_vars, clauses))
    }

    /// Render as a DIMACS CNF document (round-trips with
    /// [`KSat::from_dimacs`]).
    pub fn to_dimacs(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "p cnf {} {}", self.num_vars, self.clauses.len());
        for clause in &self.clauses {
            for lit in clause {
                let v = lit.var as i64 + 1;
                let _ = write!(out, "{} ", if lit.positive { v } else { -v });
            }
            out.push_str(
                "0
",
            );
        }
        out
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Vec<Literal>] {
        &self.clauses
    }

    /// Domain check: does `assignment` satisfy every clause?
    pub fn is_satisfying(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|c| c.iter().any(|l| l.eval(&assignment[..self.num_vars])))
    }

    /// Dual-rail NchooseK program. Variable layout: `x0..x(n−1)` then
    /// rails `nx0..nx(n−1)`; project a solution by taking the first `n`
    /// variables.
    pub fn program_dual_rail(&self) -> Program {
        let mut p = Program::new();
        let xs = p.new_vars("x", self.num_vars).expect("fresh names");
        let nxs = p.new_vars("nx", self.num_vars).expect("fresh names");
        for v in 0..self.num_vars {
            p.nck(vec![xs[v], nxs[v]], [1]).expect("rail constraint");
        }
        for clause in &self.clauses {
            let collection: Vec<_> =
                clause.iter().map(|l| if l.positive { xs[l.var] } else { nxs[l.var] }).collect();
            let k = collection.len() as u32;
            p.nck(collection, 1..=k).expect("clause constraint");
        }
        p
    }

    /// Repeated-variable NchooseK program over the original `n`
    /// variables only: for a clause with `p` positive and `q` negative
    /// literals, positives enter once and negatives `p+1` times; the
    /// weighted count `q(p+1)` is attained only by the violating
    /// assignment and is excluded from the selection set.
    pub fn program_repeated(&self) -> Program {
        let mut p = Program::new();
        let xs = p.new_vars("x", self.num_vars).expect("fresh names");
        for clause in &self.clauses {
            let positives: Vec<usize> =
                clause.iter().filter(|l| l.positive).map(|l| l.var).collect();
            let negatives: Vec<usize> =
                clause.iter().filter(|l| !l.positive).map(|l| l.var).collect();
            let (np, nq) = (positives.len() as u32, negatives.len() as u32);
            let weight = np + 1;
            let mut collection = Vec::new();
            for &v in &positives {
                collection.push(xs[v]);
            }
            for &v in &negatives {
                for _ in 0..weight {
                    collection.push(xs[v]);
                }
            }
            let violating = nq * weight;
            // Achievable counts t + s·(p+1), minus the violating one.
            let mut selection = BTreeSet::new();
            for t in 0..=np {
                for s in 0..=nq {
                    let count = t + s * weight;
                    if count != violating {
                        selection.insert(count);
                    }
                }
            }
            p.nck(collection, selection).expect("clause constraint");
        }
        p
    }

    /// Handcrafted MIS-reduction QUBO. Node layout: one node per
    /// literal occurrence, clause-major. Energy `−Σ x + 2·Σ_conflicts
    /// x·x`; the instance is satisfiable iff the minimum is `−m`.
    pub fn handcrafted_qubo(&self) -> Qubo {
        let offsets: Vec<usize> = self
            .clauses
            .iter()
            .scan(0usize, |acc, c| {
                let o = *acc;
                *acc += c.len();
                Some(o)
            })
            .collect();
        let total: usize = self.clauses.iter().map(Vec::len).sum();
        let mut q = Qubo::new(total);
        for v in 0..total {
            q.add_linear(v, -1.0);
        }
        // Clique inside each clause: pick at most one literal node.
        for (ci, clause) in self.clauses.iter().enumerate() {
            for a in 0..clause.len() {
                for b in a + 1..clause.len() {
                    q.add_quadratic(offsets[ci] + a, offsets[ci] + b, 2.0);
                }
            }
        }
        // Conflict edges: x in one clause vs ¬x in another.
        for (ci, clause) in self.clauses.iter().enumerate() {
            for (cj, other) in self.clauses.iter().enumerate().skip(ci + 1) {
                for (a, la) in clause.iter().enumerate() {
                    for (b, lb) in other.iter().enumerate() {
                        if la.var == lb.var && la.positive != lb.positive {
                            q.add_quadratic(offsets[ci] + a, offsets[cj] + b, 2.0);
                        }
                    }
                }
            }
        }
        q
    }

    /// A second handcrafted baseline: the product-form clause penalty.
    /// Each clause contributes `Π_lit (1 − lit)` — a degree-k monomial
    /// that is 1 exactly on the clause's violating assignment — and the
    /// cubic-and-above terms are quadratized by Rosenberg substitution
    /// (`nck_qubo::Poly`). Satisfiable iff the minimum is 0. Unlike the
    /// MIS reduction, this stays on the original `n` variables plus one
    /// auxiliary per substitution.
    pub fn handcrafted_qubo_product(&self) -> Qubo {
        use nck_qubo::Poly;
        let mut p = Poly::new(self.num_vars);
        for clause in &self.clauses {
            let mut term = Poly::one(self.num_vars);
            for lit in clause {
                if lit.positive {
                    term.multiply_linear(&[(lit.var, -1.0)], 1.0); // (1 − x)
                } else {
                    term.multiply_linear(&[(lit.var, 1.0)], 0.0); // x
                }
            }
            p.add_assign(&term);
        }
        let (qubo, _) = p.quadratize();
        qubo
    }

    /// Table I metrics (dual-rail encoding, the paper's default).
    pub fn counts(&self) -> TableCounts {
        TableCounts::of(&self.program_dual_rail(), &self.handcrafted_qubo())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nck_classical::solve_brute;

    /// (x ∨ y ∨ ¬z) ∧ (¬x ∨ z)
    fn small() -> KSat {
        KSat::new(
            3,
            vec![
                vec![Literal::pos(0), Literal::pos(1), Literal::neg(2)],
                vec![Literal::neg(0), Literal::pos(2)],
            ],
        )
    }

    fn domain_solutions(sat: &KSat) -> Vec<u64> {
        (0..1u64 << sat.num_vars())
            .filter(|&bits| {
                let x: Vec<bool> = (0..sat.num_vars()).map(|i| bits >> i & 1 == 1).collect();
                sat.is_satisfying(&x)
            })
            .collect()
    }

    #[test]
    fn dual_rail_matches_domain() {
        let sat = small();
        let p = sat.program_dual_rail();
        assert_eq!(p.num_hard(), 3 + 2); // n rails + m clauses
        let r = solve_brute(&p).expect("satisfiable");
        let projected: BTreeSet<u64> =
            r.optima.iter().map(|bits| bits & ((1 << sat.num_vars()) - 1)).collect();
        let expect: BTreeSet<u64> = domain_solutions(&sat).into_iter().collect();
        assert_eq!(projected, expect);
    }

    #[test]
    fn repeated_matches_domain() {
        let sat = small();
        let p = sat.program_repeated();
        assert_eq!(p.num_hard(), 2); // m clauses only
        assert_eq!(p.num_vars(), 3);
        let r = solve_brute(&p).expect("satisfiable");
        let got: BTreeSet<u64> = r.optima.iter().copied().collect();
        let expect: BTreeSet<u64> = domain_solutions(&sat).into_iter().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn repeated_encoding_matches_papers_corrected_example() {
        // (x ∨ y ∨ ¬z): positives {x,y}, negative z with weight 3 →
        // collection {x,y,z,z,z}, selection {0,1,2,4,5}.
        let sat = KSat::new(3, vec![vec![Literal::pos(0), Literal::pos(1), Literal::neg(2)]]);
        let p = sat.program_repeated();
        let c = &p.constraints()[0];
        assert_eq!(c.cardinality(), 5);
        let sel: Vec<u32> = c.selection().iter().copied().collect();
        assert_eq!(sel, vec![0, 1, 2, 4, 5]);
    }

    #[test]
    fn all_negative_clause() {
        // (¬x ∨ ¬y): violating assignment x=y=1.
        let sat = KSat::new(2, vec![vec![Literal::neg(0), Literal::neg(1)]]);
        for p in [sat.program_dual_rail(), sat.program_repeated()] {
            let r = solve_brute(&p).expect("satisfiable");
            let projected: BTreeSet<u64> = r.optima.iter().map(|b| b & 0b11).collect();
            assert_eq!(projected, BTreeSet::from([0b00, 0b01, 0b10]));
        }
    }

    #[test]
    fn unsatisfiable_instance() {
        // x ∧ ¬x via two unit clauses.
        let sat = KSat::new(1, vec![vec![Literal::pos(0)], vec![Literal::neg(0)]]);
        assert!(solve_brute(&sat.program_dual_rail()).is_none());
        assert!(solve_brute(&sat.program_repeated()).is_none());
    }

    #[test]
    fn mis_qubo_detects_satisfiability() {
        let sat = small();
        let q = sat.handcrafted_qubo();
        let r = nck_qubo::solve_exhaustive(&q);
        assert_eq!(r.min_energy, -2.0, "satisfiable: MIS picks one node per clause");
        let unsat = KSat::new(1, vec![vec![Literal::pos(0)], vec![Literal::neg(0)]]);
        let r = nck_qubo::solve_exhaustive(&unsat.handcrafted_qubo());
        assert_eq!(r.min_energy, -1.0, "unsat: conflict edge blocks the second node");
    }

    #[test]
    fn product_form_qubo_detects_satisfiability() {
        // Satisfiable: ground energy 0, and every minimizer projects to
        // a satisfying assignment.
        let sat = small();
        let q = sat.handcrafted_qubo_product();
        let r = nck_qubo::solve_exhaustive(&q);
        assert_eq!(r.min_energy, 0.0);
        let mask = (1u64 << sat.num_vars()) - 1;
        for &bits in &r.minimizers {
            let x: Vec<bool> = (0..sat.num_vars()).map(|i| (bits & mask) >> i & 1 == 1).collect();
            assert!(sat.is_satisfying(&x));
        }
        // Unsatisfiable: ground energy ≥ 1 (at least one clause broken).
        let unsat = KSat::new(1, vec![vec![Literal::pos(0)], vec![Literal::neg(0)]]);
        let r = nck_qubo::solve_exhaustive(&unsat.handcrafted_qubo_product());
        assert!(r.min_energy >= 1.0 - 1e-9);
    }

    #[test]
    fn random_3sat_planted_is_satisfiable() {
        for seed in 0..5 {
            let sat = KSat::random_3sat(8, 12, seed);
            assert_eq!(sat.clauses().len(), 12);
            assert!(!domain_solutions(&sat).is_empty(), "seed {seed} unsatisfiable");
        }
    }

    #[test]
    fn dimacs_parse_basic() {
        let text = "c a comment\np cnf 3 2\n1 2 -3 0\n-1 3 0\n";
        let sat = KSat::from_dimacs(text).unwrap();
        assert_eq!(sat.num_vars(), 3);
        assert_eq!(sat.clauses().len(), 2);
        assert_eq!(sat.clauses()[0], vec![Literal::pos(0), Literal::pos(1), Literal::neg(2)]);
        assert_eq!(sat.clauses()[1], vec![Literal::neg(0), Literal::pos(2)]);
    }

    #[test]
    fn dimacs_multiline_clause_and_trailing() {
        // Clauses may span lines; a final clause may omit the 0.
        let text = "p cnf 2 2\n1\n2 0\n-1 -2";
        let sat = KSat::from_dimacs(text).unwrap();
        assert_eq!(sat.clauses().len(), 2);
        assert_eq!(sat.clauses()[0].len(), 2);
    }

    #[test]
    fn dimacs_errors() {
        assert!(KSat::from_dimacs("1 2 0").unwrap_err().contains("before 'p cnf'"));
        assert!(KSat::from_dimacs("p cnf 2 1\n3 0\n").unwrap_err().contains("exceeds"));
        assert!(KSat::from_dimacs("p cnf 2 5\n1 0\n").unwrap_err().contains("declares 5"));
        assert!(KSat::from_dimacs("p dnf 2 1\n").unwrap_err().contains("malformed"));
    }

    #[test]
    fn dimacs_round_trip() {
        let sat = KSat::random_3sat(7, 12, 42);
        let text = sat.to_dimacs();
        let back = KSat::from_dimacs(&text).unwrap();
        assert_eq!(back.num_vars(), sat.num_vars());
        assert_eq!(back.clauses(), sat.clauses());
    }

    #[test]
    fn random_3sat_deterministic() {
        let a = KSat::random_3sat(8, 12, 9);
        let b = KSat::random_3sat(8, 12, 9);
        assert_eq!(a.clauses(), b.clauses());
    }
}
