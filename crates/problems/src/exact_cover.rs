//! Exact Cover (§VI-A-a; NP-complete).
//!
//! Given a set `E` of elements and a family `S` of subsets, pick
//! subsets so that every element is included *exactly once*.
//!
//! NchooseK encoding: one variable per subset; per element `e`, a hard
//! constraint over the subsets containing `e` with selection `{1}` —
//! `n` constraints for `n` elements.
//!
//! Handcrafted QUBO (Lucas): `Σ_e (1 − Σ_{i: e∈S_i} x_i)²`, worst case
//! `O(nN²)` terms.

use crate::counts::TableCounts;
use nck_core::Program;
use nck_qubo::Qubo;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An Exact Cover instance: `num_elements` elements and a family of
/// subsets over them.
#[derive(Clone, Debug)]
pub struct ExactCover {
    num_elements: usize,
    subsets: Vec<Vec<usize>>,
}

impl ExactCover {
    /// Build an instance. Every element index must be below
    /// `num_elements`; empty subsets are allowed (they can simply never
    /// be chosen usefully).
    pub fn new(num_elements: usize, subsets: Vec<Vec<usize>>) -> Self {
        for (i, s) in subsets.iter().enumerate() {
            for &e in s {
                assert!(e < num_elements, "subset {i} mentions element {e} out of range");
            }
        }
        ExactCover { num_elements, subsets }
    }

    /// Generate a random instance that is guaranteed solvable: a hidden
    /// partition of the elements plus `extra` decoy subsets.
    pub fn random(num_elements: usize, extra: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut subsets: Vec<Vec<usize>> = Vec::new();
        // Hidden partition: consecutive chunks of size 1..=3.
        let mut e = 0;
        while e < num_elements {
            let len = (rng.random_range(1..=3)).min(num_elements - e);
            subsets.push((e..e + len).collect());
            e += len;
        }
        for _ in 0..extra {
            let len = rng.random_range(1..=3.min(num_elements));
            let mut s: Vec<usize> = Vec::new();
            while s.len() < len {
                let cand = rng.random_range(0..num_elements);
                if !s.contains(&cand) {
                    s.push(cand);
                }
            }
            s.sort_unstable();
            subsets.push(s);
        }
        ExactCover { num_elements, subsets }
    }

    /// Number of elements `n`.
    pub fn num_elements(&self) -> usize {
        self.num_elements
    }

    /// The subsets `S`.
    pub fn subsets(&self) -> &[Vec<usize>] {
        &self.subsets
    }

    /// Subsets containing element `e`.
    fn containing(&self, e: usize) -> Vec<usize> {
        self.subsets.iter().enumerate().filter(|(_, s)| s.contains(&e)).map(|(i, _)| i).collect()
    }

    /// The NchooseK program: variable `s<i>` per subset.
    pub fn program(&self) -> Program {
        let mut p = Program::new();
        let vs = p.new_vars("s", self.subsets.len()).expect("fresh names");
        for e in 0..self.num_elements {
            let members: Vec<_> = self.containing(e).into_iter().map(|i| vs[i]).collect();
            assert!(
                !members.is_empty(),
                "element {e} is in no subset; instance trivially unsatisfiable"
            );
            p.nck(members, [1]).expect("element constraint");
        }
        p
    }

    /// The handcrafted QUBO `Σ_e (1 − Σ x_i)²`.
    pub fn handcrafted_qubo(&self) -> Qubo {
        let mut q = Qubo::new(self.subsets.len());
        for e in 0..self.num_elements {
            let terms: Vec<(usize, f64)> =
                self.containing(e).into_iter().map(|i| (i, -1.0)).collect();
            q.add_square_of_linear(&terms, 1.0);
        }
        q
    }

    /// Domain check: does the chosen family cover every element exactly
    /// once?
    pub fn is_exact_cover(&self, assignment: &[bool]) -> bool {
        let mut count = vec![0usize; self.num_elements];
        for (i, s) in self.subsets.iter().enumerate() {
            if assignment[i] {
                for &e in s {
                    count[e] += 1;
                }
            }
        }
        count.iter().all(|&c| c == 1)
    }

    /// Table I metrics.
    pub fn counts(&self) -> TableCounts {
        TableCounts::of(&self.program(), &self.handcrafted_qubo())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nck_classical::solve_brute;

    fn small() -> ExactCover {
        // Elements 0..4; hidden cover {0,1} ∪ {2,3} plus decoys.
        ExactCover::new(4, vec![vec![0, 1], vec![2, 3], vec![1, 2], vec![0, 1, 2], vec![3]])
    }

    #[test]
    fn program_one_constraint_per_element() {
        let ec = small();
        let p = ec.program();
        assert_eq!(p.num_hard(), 4);
        assert_eq!(p.num_soft(), 0);
    }

    #[test]
    fn brute_solutions_are_exact_covers() {
        let ec = small();
        let r = solve_brute(&ec.program()).expect("satisfiable");
        assert!(!r.optima.is_empty());
        for &bits in &r.optima {
            let x: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            assert!(ec.is_exact_cover(&x), "{bits:05b} not an exact cover");
        }
        // The hidden partition is among them.
        assert!(r.optima.contains(&0b00011));
        // {1,2} ∪ {3} ∪ {0,1,2}? overlaps — double-check another valid
        // cover: subsets 2 ({1,2}), 4 ({3}) leave 0 uncovered; so only
        // combos covering exactly once survive.
    }

    #[test]
    fn handcrafted_minimum_iff_exact_cover() {
        let ec = small();
        let q = ec.handcrafted_qubo();
        let r = nck_qubo::solve_exhaustive(&q);
        assert_eq!(r.min_energy, 0.0, "a perfect cover has zero energy");
        for &bits in &r.minimizers {
            let x: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            assert!(ec.is_exact_cover(&x));
        }
    }

    #[test]
    fn random_instance_is_solvable() {
        for seed in 0..5 {
            let ec = ExactCover::random(8, 4, seed);
            let r = solve_brute(&ec.program());
            assert!(r.is_some(), "seed {seed} produced unsolvable instance");
        }
    }

    #[test]
    fn random_is_deterministic() {
        let a = ExactCover::random(8, 4, 3);
        let b = ExactCover::random(8, 4, 3);
        assert_eq!(a.subsets(), b.subsets());
    }

    #[test]
    fn qubo_term_growth_with_overlap() {
        // An element in m subsets contributes m(m+1)/2 terms (§VI-A-a).
        // One element in all 4 subsets: 4 linear + 6 quadratic = 10.
        let ec = ExactCover::new(1, vec![vec![0], vec![0], vec![0], vec![0]]);
        assert_eq!(ec.handcrafted_qubo().num_terms(), 10);
    }
}
