//! # nck-problems
//!
//! The seven benchmark problems of the paper's Table I, each with its
//! NchooseK encoding, the handcrafted QUBO baseline from §VI, a
//! domain-level verifier, seeded instance generators, and the Table I
//! complexity metrics:
//!
//! | # | Problem | Class | Module |
//! |---|---------|-------|--------|
//! | 1 | Exact Cover | NP-C | [`exact_cover`] |
//! | 2 | Minimum Set Cover | NP-H | [`min_set_cover`] |
//! | 3 | Minimum Vertex Cover | NP-H | [`vertex_cover`] |
//! | 4 | Map Coloring | NP-C | [`map_color`] |
//! | 5 | Clique Cover | NP-C | [`clique_cover`] |
//! | 6 | k-SAT | NP-C | [`ksat`] |
//! | 7 | Maximum Cut | NP-H | [`max_cut`] |
//!
//! [`graph`] provides the scaling-study graph generators of §VII
//! (clique chains for vertex scaling, the 12-vertex edge-scaling
//! family, circulant graphs for the Fig. 12 timing study).

#![warn(missing_docs)]

pub mod clique_cover;
pub mod counts;
pub mod exact_cover;
pub mod graph;
pub mod ksat;
pub mod map_color;
pub mod max_cut;
pub mod min_set_cover;
pub mod vertex_cover;

pub use clique_cover::CliqueCover;
pub use counts::TableCounts;
pub use exact_cover::ExactCover;
pub use graph::Graph;
pub use ksat::{KSat, Literal};
pub use map_color::MapColoring;
pub use max_cut::MaxCut;
pub use min_set_cover::MinSetCover;
pub use vertex_cover::MinVertexCover;
