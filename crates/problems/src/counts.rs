//! Table I metrics shared by every problem module.

use nck_core::Program;
use nck_qubo::Qubo;

/// The complexity-comparison metrics of Table I for one instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TableCounts {
    /// Number of NchooseK program variables.
    pub num_vars: usize,
    /// Total NchooseK constraints (column 4).
    pub nck_constraints: usize,
    /// Mutually non-symmetric constraints (column 3, Definition 7).
    pub nonsymmetric: usize,
    /// Nonzero terms of the handcrafted QUBO (column 5).
    pub handcrafted_qubo_terms: usize,
    /// Variables of the handcrafted QUBO (may exceed `num_vars` when
    /// the hand formulation introduces ancillas).
    pub handcrafted_qubo_vars: usize,
}

impl TableCounts {
    /// Compute the metrics from an instance's program and handcrafted
    /// QUBO.
    pub fn of(program: &Program, handcrafted: &Qubo) -> Self {
        TableCounts {
            num_vars: program.num_vars(),
            nck_constraints: program.constraints().len(),
            nonsymmetric: program.num_nonsymmetric(),
            handcrafted_qubo_terms: handcrafted.num_terms(),
            handcrafted_qubo_vars: handcrafted.num_vars(),
        }
    }
}
