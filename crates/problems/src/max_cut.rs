//! Maximum Cut (§VI-A-g; NP-hard, the paper's simplest soft-only
//! problem).
//!
//! NchooseK encoding: one soft `nck({u,v},{1})` per edge — "a
//! preference that every edge be cut". One non-symmetric constraint
//! shape in total.
//!
//! Handcrafted baseline: the Ising Hamiltonian `Σ_{(u,v)∈E} s_u s_v`
//! (minimized when adjacent spins differ), which picks up `O(|V|)`
//! extra linear terms when converted to QUBO form — the paper's note
//! that Ising→QUBO conversion grows max cut from `O(|E|)` to
//! `O(|E| + |V|)` terms.

use crate::counts::TableCounts;
use crate::graph::Graph;
use nck_core::Program;
use nck_qubo::{Ising, Qubo};

/// A Max Cut instance, optionally edge-weighted.
#[derive(Clone, Debug)]
pub struct MaxCut {
    graph: Graph,
    /// Per-edge weights, parallel to `graph.edges()` (all 1 when
    /// unweighted).
    weights: Vec<u32>,
}

impl MaxCut {
    /// Wrap a graph (unit edge weights).
    pub fn new(graph: Graph) -> Self {
        let weights = vec![1; graph.num_edges()];
        MaxCut { graph, weights }
    }

    /// Weighted max cut: maximize the total *weight* of cut edges.
    /// Uses the weighted-soft-constraint extension: one
    /// `nck({u,v},{1}, soft*w)` per edge.
    pub fn with_weights(graph: Graph, weights: Vec<u32>) -> Self {
        assert_eq!(weights.len(), graph.num_edges(), "one weight per edge");
        assert!(weights.iter().all(|&w| w >= 1), "weights must be ≥ 1");
        MaxCut { graph, weights }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The NchooseK program: all-soft, one constraint per edge.
    pub fn program(&self) -> Program {
        let mut p = Program::new();
        let vs = p.new_vars("v", self.graph.num_vertices()).expect("fresh names");
        for (&(u, w), &wt) in self.graph.edges().iter().zip(&self.weights) {
            p.nck_soft_weighted(vec![vs[u], vs[w]], [1], wt).expect("edge soft constraint");
        }
        p
    }

    /// The handcrafted Ising Hamiltonian `Σ w·s_u s_v`.
    pub fn handcrafted_ising(&self) -> Ising {
        let mut ising = Ising::new(self.graph.num_vertices());
        for (&(u, v), &w) in self.graph.edges().iter().zip(&self.weights) {
            ising.add_coupling(u, v, w as f64);
        }
        ising
    }

    /// The handcrafted QUBO (Ising converted).
    pub fn handcrafted_qubo(&self) -> Qubo {
        self.handcrafted_ising().to_qubo()
    }

    /// Number of edges cut by a partition.
    pub fn cut_size(&self, assignment: &[bool]) -> usize {
        self.graph.edges().iter().filter(|&&(u, v)| assignment[u] != assignment[v]).count()
    }

    /// Total weight of cut edges.
    pub fn cut_weight(&self, assignment: &[bool]) -> u64 {
        self.graph
            .edges()
            .iter()
            .zip(&self.weights)
            .filter(|(&(u, v), _)| assignment[u] != assignment[v])
            .map(|(_, &w)| w as u64)
            .sum()
    }

    /// Table I metrics.
    pub fn counts(&self) -> TableCounts {
        TableCounts::of(&self.program(), &self.handcrafted_qubo())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nck_classical::max_soft_satisfiable;

    #[test]
    fn program_is_all_soft_one_shape() {
        let mc = MaxCut::new(Graph::cycle(6));
        let p = mc.program();
        assert_eq!(p.num_hard(), 0);
        assert_eq!(p.num_soft(), 6);
        assert_eq!(p.num_nonsymmetric(), 1); // Table I row 7
    }

    #[test]
    fn soft_optimum_is_max_cut() {
        // Even cycle: perfectly bipartite, all 6 edges cuttable.
        let mc = MaxCut::new(Graph::cycle(6));
        assert_eq!(max_soft_satisfiable(&mc.program()), Some(6));
        // Odd cycle: one edge must stay uncut.
        let mc5 = MaxCut::new(Graph::cycle(5));
        assert_eq!(max_soft_satisfiable(&mc5.program()), Some(4));
        // Triangle: best cut is 2.
        let k3 = MaxCut::new(Graph::complete(3));
        assert_eq!(max_soft_satisfiable(&k3.program()), Some(2));
    }

    #[test]
    fn ising_minimizers_are_max_cuts() {
        let mc = MaxCut::new(Graph::complete(4));
        let r = nck_qubo::solve_exhaustive(&mc.handcrafted_qubo());
        for &bits in &r.minimizers {
            let x: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(mc.cut_size(&x), 4, "K4 max cut is 4 (2+2 split)");
        }
    }

    #[test]
    fn ising_vs_qubo_term_counts() {
        // §VI-A-g: O(|E|) Ising terms vs O(|E| + |V|) QUBO terms.
        let mc = MaxCut::new(Graph::cycle(8));
        assert_eq!(mc.handcrafted_ising().num_terms(), 8);
        assert_eq!(mc.handcrafted_qubo().num_terms(), 8 + 8);
    }

    #[test]
    fn weighted_cut_prefers_heavy_edges() {
        // Triangle with one heavy edge: the optimum cuts the heavy edge
        // plus one light edge (weight 10 + 1), never the two light ones
        // alone (weight 2).
        let g = Graph::complete(3);
        // edges() is sorted: (0,1), (0,2), (1,2); make (0,1) heavy.
        let mc = MaxCut::with_weights(g, vec![10, 1, 1]);
        assert_eq!(max_soft_satisfiable(&mc.program()), Some(11));
        // Exhaustive check of the weighted optimum via the QUBO path.
        use nck_compile::{compile, CompilerOptions};
        let compiled = compile(&mc.program(), &CompilerOptions::default()).unwrap();
        let r = nck_qubo::solve_exhaustive(&compiled.qubo);
        for &bits in &r.minimizers {
            let x: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(mc.cut_weight(&x), 11, "minimizer {bits:03b} not weight-optimal");
        }
    }

    #[test]
    fn cut_size_counts_correctly() {
        let mc = MaxCut::new(Graph::path(3)); // edges (0,1), (1,2)
        assert_eq!(mc.cut_size(&[false, true, false]), 2);
        assert_eq!(mc.cut_size(&[false, false, true]), 1);
        assert_eq!(mc.cut_size(&[true, true, true]), 0);
    }
}
