//! Map Coloring (§VI-A-d; NP-complete).
//!
//! Color a graph with `n` colors so no edge is monochromatic, using a
//! one-hot encoding: variable `x_{v,i}` = "vertex v has color i".
//!
//! NchooseK encoding: per vertex, `nck(colors(v), {1})` (exactly one
//! color); per edge and color, `nck({x_{u,i}, x_{v,i}}, {0,1})` (not
//! both endpoints color i). Two non-symmetric shapes; `|V| + n|E|`
//! constraints.
//!
//! Handcrafted QUBO: `Σ_v (1 − Σ_i x_{v,i})² + Σ_{(u,v)∈E} Σ_i
//! x_{u,i}·x_{v,i}` — `O(|V|n² + |E|n)` terms versus NchooseK's
//! `O(|V| + |E|n)` constraints.

use crate::counts::TableCounts;
use crate::graph::Graph;
use nck_core::Program;
use nck_qubo::Qubo;

/// A Map Coloring instance.
#[derive(Clone, Debug)]
pub struct MapColoring {
    graph: Graph,
    colors: usize,
}

impl MapColoring {
    /// Wrap a graph with a color budget.
    pub fn new(graph: Graph, colors: usize) -> Self {
        assert!(colors >= 1, "need at least one color");
        MapColoring { graph, colors }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of colors.
    pub fn colors(&self) -> usize {
        self.colors
    }

    /// Variable index for vertex `v`, color `i` in the one-hot layout.
    pub fn var_index(&self, v: usize, i: usize) -> usize {
        v * self.colors + i
    }

    /// The NchooseK program: variables `v<v>_c<i>`.
    pub fn program(&self) -> Program {
        let mut p = Program::new();
        let mut vars = Vec::with_capacity(self.graph.num_vertices() * self.colors);
        for v in 0..self.graph.num_vertices() {
            for i in 0..self.colors {
                vars.push(p.new_var(format!("v{v}_c{i}")).expect("fresh name"));
            }
        }
        for v in 0..self.graph.num_vertices() {
            let collection: Vec<_> = (0..self.colors).map(|i| vars[self.var_index(v, i)]).collect();
            p.nck(collection, [1]).expect("one-hot constraint");
        }
        for &(u, v) in self.graph.edges() {
            for i in 0..self.colors {
                p.nck(vec![vars[self.var_index(u, i)], vars[self.var_index(v, i)]], [0, 1])
                    .expect("edge-color constraint");
            }
        }
        p
    }

    /// The handcrafted one-hot QUBO.
    pub fn handcrafted_qubo(&self) -> Qubo {
        let mut q = Qubo::new(self.graph.num_vertices() * self.colors);
        for v in 0..self.graph.num_vertices() {
            let terms: Vec<(usize, f64)> =
                (0..self.colors).map(|i| (self.var_index(v, i), -1.0)).collect();
            q.add_square_of_linear(&terms, 1.0);
        }
        for &(u, v) in self.graph.edges() {
            for i in 0..self.colors {
                q.add_quadratic(self.var_index(u, i), self.var_index(v, i), 1.0);
            }
        }
        q
    }

    /// Decode a one-hot assignment to a coloring; `None` if some vertex
    /// is not exactly-one-hot.
    pub fn decode(&self, assignment: &[bool]) -> Option<Vec<usize>> {
        let mut coloring = Vec::with_capacity(self.graph.num_vertices());
        for v in 0..self.graph.num_vertices() {
            let on: Vec<usize> =
                (0..self.colors).filter(|&i| assignment[self.var_index(v, i)]).collect();
            match on.as_slice() {
                [color] => coloring.push(*color),
                _ => return None,
            }
        }
        Some(coloring)
    }

    /// True iff `assignment` decodes to a proper coloring.
    pub fn is_valid_coloring(&self, assignment: &[bool]) -> bool {
        match self.decode(assignment) {
            Some(coloring) => self.graph.edges().iter().all(|&(u, v)| coloring[u] != coloring[v]),
            None => false,
        }
    }

    /// Table I metrics.
    pub fn counts(&self) -> TableCounts {
        TableCounts::of(&self.program(), &self.handcrafted_qubo())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nck_classical::solve_brute;

    #[test]
    fn program_constraint_counts() {
        // |V| + n|E| constraints, 2 non-symmetric shapes (Table I).
        let mc = MapColoring::new(Graph::cycle(4), 3);
        let p = mc.program();
        assert_eq!(p.num_hard(), 4 + 3 * 4);
        assert_eq!(p.num_nonsymmetric(), 2);
    }

    #[test]
    fn triangle_needs_three_colors() {
        let two = MapColoring::new(Graph::complete(3), 2);
        assert!(solve_brute(&two.program()).is_none(), "K3 is not 2-colorable");
        let three = MapColoring::new(Graph::complete(3), 3);
        let r = solve_brute(&three.program()).expect("K3 is 3-colorable");
        for &bits in &r.optima {
            let x: Vec<bool> = (0..9).map(|i| bits >> i & 1 == 1).collect();
            assert!(three.is_valid_coloring(&x));
        }
    }

    #[test]
    fn handcrafted_ground_states_are_colorings() {
        let mc = MapColoring::new(Graph::path(3), 2);
        let q = mc.handcrafted_qubo();
        let r = nck_qubo::solve_exhaustive(&q);
        assert_eq!(r.min_energy, 0.0);
        for &bits in &r.minimizers {
            let x: Vec<bool> = (0..6).map(|i| bits >> i & 1 == 1).collect();
            assert!(mc.is_valid_coloring(&x));
        }
        // Path of 3 vertices with 2 colors: colorings = 2 (alternate).
        assert_eq!(r.minimizers.len(), 2);
    }

    #[test]
    fn decode_rejects_non_one_hot() {
        let mc = MapColoring::new(Graph::path(2), 2);
        assert_eq!(mc.decode(&[true, true, true, false]), None);
        assert_eq!(mc.decode(&[false, false, true, false]), None);
        assert_eq!(mc.decode(&[true, false, false, true]), Some(vec![0, 1]));
    }

    #[test]
    fn handcrafted_term_count_formula() {
        // |V| one-hot blocks: n linear + C(n,2) quadratic each;
        // |E|·n edge terms.
        let v = 4;
        let e = 4;
        let n = 3;
        let mc = MapColoring::new(Graph::cycle(v), n);
        let expect = v * (n + n * (n - 1) / 2) + e * n;
        assert_eq!(mc.handcrafted_qubo().num_terms(), expect);
    }
}
