//! Program-level compilation: NchooseK program → one QUBO.
//!
//! Each constraint compiles to a small QUBO over its own variables plus
//! ancillas (via closed forms or the SMT search), normalized so that
//! satisfying assignments sit at energy 0 and violations at ≥ 1. The
//! program QUBO is then the weighted sum (§V of the paper):
//!
//! ```text
//! Q = W · Σ hard-constraint QUBOs  +  Σ soft-constraint QUBOs
//! ```
//!
//! with `W` strictly greater than the worst possible total soft
//! penalty, so breaking a single hard constraint always costs more than
//! failing every soft constraint — the scaling rule the paper uses to
//! mix hard and soft constraints in one QUBO.

use crate::cache::QuboCache;
use crate::closed::closed_form;
use crate::error::CompileError;
use crate::search::{
    find_qubo_mode, verify_mode, CompiledQubo, ConstraintShape, GapMode, MAX_ANCILLAS,
};
use nck_core::{Constraint, Program, Var};
use nck_qubo::Qubo;
use nck_smt::Rational;
use rayon::prelude::*;
use std::collections::HashSet;
use std::ops::Range;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Compiler options.
#[derive(Clone, Debug)]
pub struct CompilerOptions {
    /// Maximum ancillas per constraint in the coefficient search.
    pub max_ancillas: u32,
    /// Reuse compiled QUBOs across symmetric constraints. Disabling
    /// reproduces the paper's unoptimized 40–50× compile-time penalty.
    pub use_cache: bool,
    /// Use closed-form constructions where available instead of the
    /// SMT search.
    pub use_closed_forms: bool,
    /// Override the computed hard-constraint weight. `None` computes
    /// the sound weight `1 + Σ max soft penalties`. The Fig. 7 ablation
    /// uses this to study the mixed-problem energy-gap effect.
    pub hard_weight: Option<f64>,
}

impl Default for CompilerOptions {
    fn default() -> Self {
        CompilerOptions {
            max_ancillas: MAX_ANCILLAS,
            use_cache: true,
            use_closed_forms: true,
            hard_weight: None,
        }
    }
}

/// Compile-time statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Cache hits (constraint reused an earlier symmetric compile).
    pub cache_hits: u64,
    /// Cache misses / uncached compilations.
    pub cache_misses: u64,
    /// Compilations answered by a closed form.
    pub closed_form_hits: u64,
    /// Compilations that ran the SMT coefficient search.
    pub smt_searches: u64,
}

/// Where a constraint's pieces live inside the program QUBO.
#[derive(Clone, Debug)]
pub struct ConstraintPlacement {
    /// The compiled per-constraint QUBO (shared across symmetric
    /// constraints when the cache is on).
    pub compiled: Arc<CompiledQubo>,
    /// Global indices of the constraint's distinct variables, in the
    /// compiled QUBO's local order.
    pub var_map: Vec<usize>,
    /// Global indices of this constraint's ancillas (empty range if
    /// none).
    pub ancillas: Range<usize>,
}

/// The result of compiling a whole program.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    /// The program QUBO over `num_program_vars + num_ancillas`
    /// variables; program variable `v` is QUBO variable `v.index()`.
    pub qubo: Qubo,
    /// Number of NchooseK program variables.
    pub num_program_vars: usize,
    /// Number of ancilla variables appended after the program
    /// variables.
    pub num_ancillas: usize,
    /// The hard-constraint scale factor actually used.
    pub hard_weight: f64,
    /// Per-constraint placement, parallel to `program.constraints()`.
    pub placements: Vec<ConstraintPlacement>,
    /// Compilation statistics.
    pub stats: CompileStats,
    /// Wall-clock compilation time.
    pub elapsed: Duration,
}

impl CompiledProgram {
    /// Total QUBO variables (program + ancillas).
    pub fn num_qubo_vars(&self) -> usize {
        self.num_program_vars + self.num_ancillas
    }

    /// Project a full QUBO assignment down to the program variables.
    pub fn program_assignment<'a>(&self, full: &'a [bool]) -> &'a [bool] {
        &full[..self.num_program_vars]
    }
}

/// Shape and variable order for a constraint: distinct variables sorted
/// by (multiplicity, id) so the local order matches the sorted
/// multiplicity profile of [`nck_core::CompileKey`].
fn shape_and_vars(c: &Constraint) -> (ConstraintShape, Vec<Var>) {
    let mut pairs = c.multiplicities();
    pairs.sort_by_key(|&(v, m)| (m, v));
    let shape = ConstraintShape {
        multiplicities: pairs.iter().map(|&(_, m)| m).collect(),
        selection: c.selection().clone(),
    };
    let vars = pairs.into_iter().map(|(v, _)| v).collect();
    (shape, vars)
}

/// Compile a single constraint to its normalized QUBO (no caching).
/// Soft constraints get the flat [`GapMode::ExactlyOne`] penalty so
/// that QUBO energy counts violated constraints, per Definition 6.
pub fn compile_constraint(
    c: &Constraint,
    opts: &CompilerOptions,
) -> Result<CompiledQubo, CompileError> {
    let (shape, _) = shape_and_vars(c);
    let mode = gap_mode_for(c);
    compile_shape(&shape, opts, mode).map(|(q, _)| q)
}

fn gap_mode_for(c: &Constraint) -> GapMode {
    if c.is_hard() {
        GapMode::AtLeastOne
    } else {
        GapMode::ExactlyOne
    }
}

fn compile_shape(
    shape: &ConstraintShape,
    opts: &CompilerOptions,
    mode: GapMode,
) -> Result<(CompiledQubo, bool), CompileError> {
    if !shape.satisfiable() {
        return Err(CompileError::Unsatisfiable(format!(
            "shape {:?} / selection {:?} has no satisfying assignment",
            shape.multiplicities, shape.selection
        )));
    }
    if opts.use_closed_forms {
        if let Some(q) = closed_form(shape) {
            // Closed forms always meet the hard-constraint gap; under
            // the soft (flat) gap they are only usable when the graded
            // penalties happen to be flat already.
            if mode == GapMode::AtLeastOne || verify_mode(&q, shape, mode) {
                return Ok((q, true));
            }
        }
    }
    match find_qubo_mode(shape, opts.max_ancillas, mode) {
        Ok(q) => Ok((q, false)),
        // A soft constraint with no flat-penalty QUBO falls back to the
        // graded penalty: ranking among suboptimal assignments may then
        // deviate from pure violation counting (documented in
        // DESIGN.md), but optima are unaffected when the fallback's
        // minimum penalty is still 1.
        Err(CompileError::NoQuboFound { .. }) if mode == GapMode::ExactlyOne => {
            find_qubo_mode(shape, opts.max_ancillas, GapMode::AtLeastOne).map(|q| (q, false))
        }
        Err(e) => Err(e),
    }
}

/// Compile `program` into a single QUBO.
pub fn compile(program: &Program, opts: &CompilerOptions) -> Result<CompiledProgram, CompileError> {
    let start = Instant::now();
    let cache = QuboCache::new();
    let mut stats = CompileStats::default();

    // Pre-compile each distinct shape in parallel when caching: the
    // compilations are independent pure functions, so this is a
    // classic rayon fan-out.
    let constraints = program.constraints();
    if opts.use_cache {
        let mut shapes = Vec::new();
        let mut seen = HashSet::new();
        for c in constraints {
            if seen.insert((c.compile_key(), gap_mode_for(c))) {
                shapes.push(c);
            }
        }
        let compiled: Result<Vec<_>, CompileError> = shapes
            .par_iter()
            .map(|c| {
                let (shape, _) = shape_and_vars(c);
                let mode = gap_mode_for(c);
                compile_shape(&shape, opts, mode)
                    .map(|(q, closed)| (c.compile_key(), mode, q, closed))
            })
            .collect();
        for (key, mode, q, closed) in compiled? {
            stats.closed_form_hits += u64::from(closed);
            stats.smt_searches += u64::from(!closed);
            let _ = cache.get_or_compile(&key, mode, || Ok(q))?;
        }
    }

    // Assemble: per-constraint QUBOs summed with hard/soft weighting.
    let mut placements = Vec::with_capacity(constraints.len());
    let mut next_ancilla = program.num_vars();
    let mut hard_parts: Vec<(usize, Arc<CompiledQubo>, Vec<usize>)> = Vec::new();
    let mut soft_parts: Vec<(u32, Arc<CompiledQubo>, Vec<usize>)> = Vec::new();
    for (idx, c) in constraints.iter().enumerate() {
        let (shape, vars) = shape_and_vars(c);
        let mode = gap_mode_for(c);
        let compiled: Arc<CompiledQubo> = if opts.use_cache {
            cache.get_or_compile(&c.compile_key(), mode, || {
                // Already populated above; this closure only runs if a
                // shape somehow failed to pre-compile.
                compile_shape(&shape, opts, mode).map(|(q, _)| q)
            })?
        } else {
            // Cache disabled: recompile every constraint, symmetric or
            // not — the paper's reported wasteful behaviour.
            let (q, closed) = compile_shape(&shape, opts, mode)?;
            stats.closed_form_hits += u64::from(closed);
            stats.smt_searches += u64::from(!closed);
            Arc::new(q)
        };
        let ancillas = next_ancilla..next_ancilla + compiled.num_ancillas;
        next_ancilla = ancillas.end;
        let mut var_map: Vec<usize> = vars.iter().map(|v| v.index()).collect();
        var_map.extend(ancillas.clone());
        if c.is_hard() {
            hard_parts.push((idx, Arc::clone(&compiled), var_map.clone()));
        } else {
            soft_parts.push((c.weight(), Arc::clone(&compiled), var_map.clone()));
        }
        placements.push(ConstraintPlacement { compiled, var_map, ancillas });
    }
    if opts.use_cache {
        stats.cache_hits = cache.hits();
        stats.cache_misses = cache.misses();
    } else {
        stats.cache_misses = constraints.len() as u64;
    }

    // Hard weight: 1 + Σ worst-case soft penalties (exact, then
    // lowered). Any hard violation (penalty ≥ 1, scaled by W) then
    // costs more than failing every soft constraint.
    let hard_weight = match opts.hard_weight {
        Some(w) => w,
        None => {
            let mut total = Rational::one();
            for (weight, compiled, _) in &soft_parts {
                let scaled = &Rational::from(*weight as i64) * &compiled.max_penalty();
                total += &scaled;
            }
            total.ceil().to_f64()
        }
    };

    let num_qubo_vars = next_ancilla;
    let mut qubo = Qubo::new(num_qubo_vars);
    for (_, compiled, var_map) in &hard_parts {
        let mut part = compiled.qubo.to_f64();
        part.scale(hard_weight);
        qubo.add_mapped(&part, var_map);
    }
    for (weight, compiled, var_map) in &soft_parts {
        let mut part = compiled.qubo.to_f64();
        if *weight != 1 {
            part.scale(*weight as f64);
        }
        qubo.add_mapped(&part, var_map);
    }

    Ok(CompiledProgram {
        qubo,
        num_program_vars: program.num_vars(),
        num_ancillas: num_qubo_vars - program.num_vars(),
        hard_weight,
        placements,
        stats,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nck_qubo::solve_exhaustive;

    fn opts() -> CompilerOptions {
        CompilerOptions::default()
    }

    /// Brute-force check: the QUBO minimizers, projected to program
    /// variables, are exactly the program's optimal assignments.
    fn assert_ground_states_match(program: &Program, compiled: &CompiledProgram) {
        let n = compiled.num_qubo_vars();
        assert!(n <= 22, "test instance too large");
        let result = solve_exhaustive(&compiled.qubo);
        // Determine the true optimum classically: max soft satisfied
        // over assignments satisfying all hard constraints.
        let pv = compiled.num_program_vars;
        let mut best_soft = None;
        for bits in 0..1u64 << pv {
            let x: Vec<bool> = (0..pv).map(|i| bits >> i & 1 == 1).collect();
            if program.all_hard_satisfied(&x) {
                let ev = program.evaluate(&x);
                best_soft =
                    Some(best_soft.map_or(ev.soft_satisfied, |b: usize| b.max(ev.soft_satisfied)));
            }
        }
        let best_soft = best_soft.expect("program should be satisfiable");
        // Every QUBO minimizer must project to an optimal assignment.
        let mut projected: HashSet<u64> = HashSet::new();
        for &bits in &result.minimizers {
            let x: Vec<bool> = (0..pv).map(|i| bits >> i & 1 == 1).collect();
            let ev = program.evaluate(&x);
            assert_eq!(ev.hard_satisfied, ev.hard_total, "minimizer violates hard constraint");
            assert_eq!(ev.soft_satisfied, best_soft, "minimizer not soft-optimal");
            projected.insert(bits & ((1 << pv) - 1));
        }
        // And every optimal assignment must appear among projections.
        for bits in 0..1u64 << pv {
            let x: Vec<bool> = (0..pv).map(|i| bits >> i & 1 == 1).collect();
            if program.all_hard_satisfied(&x) && program.evaluate(&x).soft_satisfied == best_soft {
                assert!(
                    projected.contains(&bits),
                    "optimal assignment {bits:b} missing from QUBO minimizers"
                );
            }
        }
    }

    #[test]
    fn intro_example_compiles_and_matches() {
        let mut p = Program::new();
        let a = p.new_var("a").unwrap();
        let b = p.new_var("b").unwrap();
        let c = p.new_var("c").unwrap();
        p.nck(vec![a, b], [0, 1]).unwrap();
        p.nck(vec![b, c], [1]).unwrap();
        let compiled = compile(&p, &opts()).unwrap();
        assert_ground_states_match(&p, &compiled);
    }

    #[test]
    fn min_vertex_cover_running_example() {
        // §IV's 5-vertex graph; QUBO minimizers must be exactly the
        // minimum vertex covers (size 3 here).
        let mut p = Program::new();
        let vs = p.new_vars("v", 5).unwrap();
        for (u, w) in [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)] {
            p.nck(vec![vs[u], vs[w]], [1, 2]).unwrap();
        }
        for &v in &vs {
            p.nck_soft(vec![v], [0]).unwrap();
        }
        let compiled = compile(&p, &opts()).unwrap();
        assert_eq!(compiled.num_ancillas, 0);
        assert!(compiled.hard_weight > 5.0, "W must exceed total soft penalty");
        assert_ground_states_match(&p, &compiled);
    }

    #[test]
    fn max_cut_all_soft() {
        // Max cut on a triangle: best cut has 2 edges.
        let mut p = Program::new();
        let vs = p.new_vars("v", 3).unwrap();
        for (u, w) in [(0, 1), (0, 2), (1, 2)] {
            p.nck_soft(vec![vs[u], vs[w]], [1]).unwrap();
        }
        let compiled = compile(&p, &opts()).unwrap();
        assert_ground_states_match(&p, &compiled);
    }

    #[test]
    fn xor_constraint_gets_ancilla() {
        let mut p = Program::new();
        let vs = p.new_vars("v", 3).unwrap();
        p.nck(vs.clone(), [0, 2]).unwrap();
        let compiled = compile(&p, &opts()).unwrap();
        assert_eq!(compiled.num_ancillas, 1);
        assert_eq!(compiled.num_qubo_vars(), 4);
        assert_ground_states_match(&p, &compiled);
    }

    #[test]
    fn cache_dedupes_symmetric_constraints() {
        let mut p = Program::new();
        let vs = p.new_vars("v", 8).unwrap();
        for i in 0..7 {
            p.nck(vec![vs[i], vs[i + 1]], [0, 1]).unwrap();
        }
        let compiled = compile(&p, &opts()).unwrap();
        assert_eq!(compiled.stats.cache_misses, 1);
        assert_eq!(compiled.stats.cache_hits, 7);
        let no_cache = compile(&p, &CompilerOptions { use_cache: false, ..opts() }).unwrap();
        assert_eq!(no_cache.stats.cache_hits, 0);
        // Same QUBO either way.
        assert_eq!(compiled.qubo, no_cache.qubo);
    }

    #[test]
    fn closed_forms_skip_smt() {
        let mut p = Program::new();
        let vs = p.new_vars("v", 4).unwrap();
        p.nck(vs.clone(), [2]).unwrap(); // single-element selection
        let compiled = compile(&p, &opts()).unwrap();
        assert_eq!(compiled.stats.closed_form_hits, 1);
        assert_eq!(compiled.stats.smt_searches, 0);
        let no_closed =
            compile(&p, &CompilerOptions { use_closed_forms: false, ..opts() }).unwrap();
        assert_eq!(no_closed.stats.smt_searches, 1);
        assert_ground_states_match(&p, &no_closed);
    }

    #[test]
    fn unsatisfiable_constraint_errors() {
        let mut p = Program::new();
        let a = p.new_var("a").unwrap();
        p.nck(vec![a, a], [1]).unwrap(); // {a,a} can only count 0 or 2
        assert!(matches!(compile(&p, &opts()), Err(CompileError::Unsatisfiable(_))));
    }

    #[test]
    fn empty_program_is_zero_qubo() {
        let mut p = Program::new();
        let _ = p.new_vars("v", 3).unwrap();
        let compiled = compile(&p, &opts()).unwrap();
        assert_eq!(compiled.qubo.num_terms(), 0);
        assert_eq!(compiled.num_qubo_vars(), 3);
    }

    #[test]
    fn hard_weight_override_respected() {
        let mut p = Program::new();
        let vs = p.new_vars("v", 2).unwrap();
        p.nck(vec![vs[0], vs[1]], [1, 2]).unwrap();
        p.nck_soft(vec![vs[0]], [0]).unwrap();
        let compiled = compile(&p, &CompilerOptions { hard_weight: Some(42.0), ..opts() }).unwrap();
        assert_eq!(compiled.hard_weight, 42.0);
    }

    #[test]
    fn placements_cover_all_constraints() {
        let mut p = Program::new();
        let vs = p.new_vars("v", 3).unwrap();
        p.nck(vs.clone(), [0, 2]).unwrap(); // needs 1 ancilla
        p.nck_soft(vec![vs[0]], [0]).unwrap();
        let compiled = compile(&p, &opts()).unwrap();
        assert_eq!(compiled.placements.len(), 2);
        assert_eq!(compiled.placements[0].ancillas, 3..4);
        assert!(compiled.placements[1].ancillas.is_empty());
        assert_eq!(compiled.placements[1].var_map, vec![0]);
    }

    use std::collections::HashSet;
}
