//! Compiler error type.

use std::fmt;

/// Errors raised while compiling NchooseK constraints to QUBOs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// The constraint has no satisfying assignment at all, so the
    /// program is unsatisfiable by construction.
    Unsatisfiable(String),
    /// The coefficient search exhausted its ancilla budget without
    /// finding a valid QUBO.
    NoQuboFound {
        /// Ancilla counts tried (0..=this).
        ancillas_tried: u32,
        /// Human-readable shape description.
        shape: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Unsatisfiable(what) => {
                write!(f, "constraint is unsatisfiable: {what}")
            }
            CompileError::NoQuboFound { ancillas_tried, shape } => {
                write!(f, "no QUBO found for shape {shape} with up to {ancillas_tried} ancillas")
            }
        }
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = CompileError::NoQuboFound { ancillas_tried: 3, shape: "[1,1]/{1}".into() };
        assert!(e.to_string().contains("up to 3 ancillas"));
        assert!(CompileError::Unsatisfiable("x".into()).to_string().contains("unsatisfiable"));
    }
}
