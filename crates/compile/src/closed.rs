//! Closed-form QUBO constructions that bypass the SMT search.
//!
//! The paper notes (§VI-B) that "constraints with a selection set of
//! {1} are trivial to convert to a QUBO, even for large variable
//! collections". The underlying identity works for any single-element
//! selection `{k}`: the squared deviation `(Σ mᵢxᵢ − k)²` is zero
//! exactly on satisfying assignments and at least 1 elsewhere (the
//! weighted count is an integer). We also shortcut selections that
//! cover every achievable count, which compile to the zero QUBO.

use crate::rqubo::RationalQubo;
use crate::search::{CompiledQubo, ConstraintShape};
use nck_smt::Rational;

/// Try to build a QUBO for `shape` without invoking the SMT search.
/// Returns `None` when no closed form applies.
pub fn closed_form(shape: &ConstraintShape) -> Option<CompiledQubo> {
    let d = shape.num_vars();
    // Case 1: the selection covers every achievable weighted count —
    // the constraint is a tautology; the zero QUBO is exact.
    if achievable_counts(shape).iter().all(|c| shape.selection.contains(c)) {
        return Some(CompiledQubo { qubo: RationalQubo::new(d), num_real: d, num_ancillas: 0 });
    }
    // Case 2: single-element selection {k}: (Σ mᵢxᵢ − k)².
    if shape.selection.len() == 1 {
        let k = *shape.selection.iter().next().unwrap() as i64;
        let mut q = RationalQubo::new(d);
        q.add_offset(Rational::from(k * k));
        for (i, &mi) in shape.multiplicities.iter().enumerate() {
            let m = mi as i64;
            // (m·x)² = m²·x plus the cross term with −k
            q.add_linear(i, Rational::from(m * m - 2 * k * m));
            for (j, &mj) in shape.multiplicities.iter().enumerate().skip(i + 1) {
                q.add_quadratic(i, j, Rational::from(2 * m * mj as i64));
            }
        }
        return Some(CompiledQubo { qubo: q, num_real: d, num_ancillas: 0 });
    }
    None
}

/// All weighted TRUE-counts achievable by some assignment.
fn achievable_counts(shape: &ConstraintShape) -> Vec<u32> {
    let mut sums = vec![false; shape.multiplicities.iter().sum::<u32>() as usize + 1];
    sums[0] = true;
    for &m in &shape.multiplicities {
        for s in (0..sums.len() - m as usize).rev() {
            if sums[s] {
                sums[s + m as usize] = true;
            }
        }
    }
    sums.iter().enumerate().filter(|(_, &ok)| ok).map(|(s, _)| s as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::verify;
    use std::collections::BTreeSet;

    fn shape(mults: &[u32], sel: &[u32]) -> ConstraintShape {
        ConstraintShape {
            multiplicities: mults.to_vec(),
            selection: sel.iter().copied().collect::<BTreeSet<_>>(),
        }
    }

    #[test]
    fn exactly_k_is_squared_deviation() {
        for n in 1..=5usize {
            for k in 0..=n as u32 {
                let s = shape(&vec![1; n], &[k]);
                let c = closed_form(&s).expect("closed form for {{k}}");
                assert!(verify(&c, &s), "invalid closed form n={n} k={k}");
                assert_eq!(c.num_ancillas, 0);
            }
        }
    }

    #[test]
    fn weighted_exactly_k() {
        // {a, a, b} with selection {2}: satisfied iff a TRUE, b FALSE.
        let s = shape(&[2, 1], &[2]);
        let c = closed_form(&s).unwrap();
        assert!(verify(&c, &s));
        assert!(c.penalty(0b01).is_zero());
        assert!(c.penalty(0b11) >= Rational::one());
    }

    #[test]
    fn tautology_is_zero_qubo() {
        let s = shape(&[1, 1], &[0, 1, 2]);
        let c = closed_form(&s).unwrap();
        assert_eq!(c.qubo.num_terms(), 0);
        assert!(verify(&c, &s));
    }

    #[test]
    fn tautology_with_multiplicity_gaps() {
        // {a, a}: achievable counts {0, 2}; selection {0, 2} is a
        // tautology even though 1 is missing.
        let s = shape(&[2], &[0, 2]);
        let c = closed_form(&s).unwrap();
        assert_eq!(c.qubo.num_terms(), 0);
        assert!(verify(&c, &s));
    }

    #[test]
    fn no_closed_form_for_general_selection() {
        assert!(closed_form(&shape(&[1, 1], &[0, 2])).is_none());
        assert!(closed_form(&shape(&[1, 1, 1], &[1, 2])).is_none());
    }

    #[test]
    fn achievable_counts_subset_sums() {
        let s = shape(&[2, 3], &[2]);
        assert_eq!(achievable_counts(&s), vec![0, 2, 3, 5]);
    }
}
