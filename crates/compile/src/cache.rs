//! Symmetry-class cache of compiled constraint QUBOs.
//!
//! The paper reports (§VIII-C) that its prototype "redundantly computes
//! QUBOs for symmetric constraints instead of caching previously
//! computed QUBOs", costing a 40–50× slowdown relative to a direct
//! classical solve. This cache is that missing optimization: compiled
//! QUBOs are keyed by [`CompileKey`] (multiplicity profile + selection
//! set), under which compiled tables are exchangeable up to variable
//! renaming. The cache can be disabled to reproduce the paper's
//! unoptimized timing behaviour (the ablation in the `timing` bench).

use crate::error::CompileError;
use crate::search::{CompiledQubo, GapMode};
use nck_core::CompileKey;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A concurrent cache of compiled per-constraint QUBOs.
#[derive(Debug, Default)]
pub struct QuboCache {
    map: RwLock<HashMap<(CompileKey, GapMode), Arc<CompiledQubo>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl QuboCache {
    /// An empty cache.
    pub fn new() -> Self {
        QuboCache::default()
    }

    /// Look up `key`, or compile it with `f` and remember the result.
    /// Concurrent callers may both compile on a miss; the first insert
    /// wins and the results are interchangeable (compilation is a pure
    /// function of the key).
    pub fn get_or_compile(
        &self,
        key: &CompileKey,
        mode: GapMode,
        f: impl FnOnce() -> Result<CompiledQubo, CompileError>,
    ) -> Result<Arc<CompiledQubo>, CompileError> {
        if let Some(hit) = self.map.read().get(&(key.clone(), mode)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let compiled = Arc::new(f()?);
        let mut map = self.map.write();
        let entry = map.entry((key.clone(), mode)).or_insert_with(|| Arc::clone(&compiled));
        Ok(Arc::clone(entry))
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cache misses (distinct compilations attempted).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// Drop all cached entries and reset counters.
    pub fn clear(&self) {
        self.map.write().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rqubo::RationalQubo;
    use std::collections::BTreeSet;

    fn key(mults: &[u32], sel: &[u32]) -> CompileKey {
        CompileKey {
            multiplicities: mults.to_vec(),
            selection: sel.iter().copied().collect::<BTreeSet<_>>(),
        }
    }

    fn dummy(n: usize) -> CompiledQubo {
        CompiledQubo { qubo: RationalQubo::new(n), num_real: n, num_ancillas: 0 }
    }

    #[test]
    fn hit_after_miss() {
        let cache = QuboCache::new();
        let k = key(&[1, 1], &[1]);
        let mut calls = 0;
        let _ = cache
            .get_or_compile(&k, GapMode::AtLeastOne, || {
                calls += 1;
                Ok(dummy(2))
            })
            .unwrap();
        let _ = cache
            .get_or_compile(&k, GapMode::AtLeastOne, || {
                calls += 1;
                Ok(dummy(2))
            })
            .unwrap();
        assert_eq!(calls, 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_compile_separately() {
        let cache = QuboCache::new();
        let _ = cache
            .get_or_compile(&key(&[1, 1], &[1]), GapMode::AtLeastOne, || Ok(dummy(2)))
            .unwrap();
        let _ = cache
            .get_or_compile(&key(&[1, 1], &[0, 1]), GapMode::AtLeastOne, || Ok(dummy(2)))
            .unwrap();
        let _ = cache
            .get_or_compile(&key(&[1, 1, 1], &[1]), GapMode::AtLeastOne, || Ok(dummy(3)))
            .unwrap();
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.misses(), 3);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = QuboCache::new();
        let k = key(&[2], &[1]);
        let r = cache.get_or_compile(&k, GapMode::AtLeastOne, || {
            Err(CompileError::Unsatisfiable("x".into()))
        });
        assert!(r.is_err());
        assert!(cache.is_empty());
        // A later successful compile still works.
        let r = cache.get_or_compile(&k, GapMode::AtLeastOne, || Ok(dummy(1)));
        assert!(r.is_ok());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn gap_modes_cached_separately() {
        // The same shape compiles to different tables under the hard
        // (≥1) and soft (=1) gaps; the cache must not conflate them.
        let cache = QuboCache::new();
        let k = key(&[1, 1], &[1]);
        let _ = cache.get_or_compile(&k, GapMode::AtLeastOne, || Ok(dummy(2))).unwrap();
        let mut calls = 0;
        let _ = cache
            .get_or_compile(&k, GapMode::ExactlyOne, || {
                calls += 1;
                Ok(dummy(2))
            })
            .unwrap();
        assert_eq!(calls, 1, "ExactlyOne must compile fresh");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn clear_resets() {
        let cache = QuboCache::new();
        let _ =
            cache.get_or_compile(&key(&[1], &[0]), GapMode::AtLeastOne, || Ok(dummy(1))).unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.misses(), 0);
    }
}
