//! QUBOs with exact rational coefficients.
//!
//! The coefficient search works entirely in exact arithmetic so that
//! "every satisfying assignment attains the minimum, every violating
//! assignment sits at least one gap above it" is a *theorem* about the
//! produced table, not a floating-point approximation. Lowering to the
//! `f64` [`nck_qubo::Qubo`] happens only at the very end.

use nck_qubo::Qubo;
use nck_smt::Rational;
use std::collections::BTreeMap;
use std::fmt;

/// A QUBO with [`Rational`] coefficients over a small local variable
/// space (constraint variables followed by ancillas).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RationalQubo {
    num_vars: usize,
    linear: Vec<Rational>,
    quadratic: BTreeMap<(usize, usize), Rational>,
    offset: Rational,
}

impl RationalQubo {
    /// The zero QUBO over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        RationalQubo {
            num_vars,
            linear: vec![Rational::zero(); num_vars],
            quadratic: BTreeMap::new(),
            offset: Rational::zero(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Add `c·xᵢ`.
    pub fn add_linear(&mut self, i: usize, c: Rational) {
        assert!(i < self.num_vars);
        self.linear[i] += &c;
    }

    /// Add `c·xᵢxⱼ`; `i == j` folds into linear (`x² = x`).
    pub fn add_quadratic(&mut self, i: usize, j: usize, c: Rational) {
        assert!(i < self.num_vars && j < self.num_vars);
        if i == j {
            self.linear[i] += &c;
            return;
        }
        let key = (i.min(j), i.max(j));
        let e = self.quadratic.entry(key).or_insert_with(Rational::zero);
        *e += &c;
        if e.is_zero() {
            self.quadratic.remove(&key);
        }
    }

    /// Add a constant.
    pub fn add_offset(&mut self, c: Rational) {
        self.offset += &c;
    }

    /// Linear coefficient of `xᵢ`.
    pub fn linear(&self, i: usize) -> &Rational {
        &self.linear[i]
    }

    /// Quadratic coefficient of `xᵢxⱼ` (zero if absent).
    pub fn quadratic(&self, i: usize, j: usize) -> Rational {
        self.quadratic.get(&(i.min(j), i.max(j))).cloned().unwrap_or_else(Rational::zero)
    }

    /// The constant offset.
    pub fn offset(&self) -> &Rational {
        &self.offset
    }

    /// Number of nonzero terms (linear + quadratic).
    pub fn num_terms(&self) -> usize {
        self.linear.iter().filter(|c| !c.is_zero()).count() + self.quadratic.len()
    }

    /// Exact energy of an assignment packed into the low bits of `bits`.
    pub fn energy_bits(&self, bits: u64) -> Rational {
        let mut e = self.offset.clone();
        for (i, c) in self.linear.iter().enumerate() {
            if bits >> i & 1 == 1 {
                e += c;
            }
        }
        for (&(i, j), c) in &self.quadratic {
            if bits >> i & 1 == 1 && bits >> j & 1 == 1 {
                e += c;
            }
        }
        e
    }

    /// Lower to the `f64` QUBO used by the backends. Lossy only if a
    /// coefficient is not exactly representable — typical compiled
    /// coefficients are small dyadic rationals, which convert exactly.
    pub fn to_f64(&self) -> Qubo {
        let mut q = Qubo::new(self.num_vars);
        for (i, c) in self.linear.iter().enumerate() {
            if !c.is_zero() {
                q.add_linear(i, c.to_f64());
            }
        }
        for (&(i, j), c) in &self.quadratic {
            q.add_quadratic(i, j, c.to_f64());
        }
        q.add_offset(self.offset.to_f64());
        q
    }

    /// Minimum energy over the given ancilla bits for fixed variable
    /// bits: the local variable order is `[vars..., ancillas...]`, so
    /// `var_bits` occupies the low `num_real` bits and ancillas the next
    /// `num_vars − num_real` bits.
    pub fn min_over_ancillas(&self, var_bits: u64, num_real: usize) -> Rational {
        let num_anc = self.num_vars - num_real;
        let mut best: Option<Rational> = None;
        for anc in 0..1u64 << num_anc {
            let e = self.energy_bits(var_bits | anc << num_real);
            best = Some(match best {
                None => e,
                Some(b) => {
                    if e < b {
                        e
                    } else {
                        b
                    }
                }
            });
        }
        best.expect("at least one ancilla assignment")
    }
}

impl fmt::Display for RationalQubo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::ratio(n, d)
    }

    #[test]
    fn exact_energy() {
        let mut q = RationalQubo::new(2);
        q.add_linear(0, r(-1, 1));
        q.add_linear(1, r(-1, 1));
        q.add_quadratic(0, 1, r(1, 1));
        q.add_offset(r(1, 1));
        // f = ab - a - b + 1 (shifted vertex-cover edge QUBO)
        assert_eq!(q.energy_bits(0b00), r(1, 1));
        assert_eq!(q.energy_bits(0b01), r(0, 1));
        assert_eq!(q.energy_bits(0b10), r(0, 1));
        assert_eq!(q.energy_bits(0b11), r(0, 1));
    }

    #[test]
    fn square_fold() {
        let mut q = RationalQubo::new(1);
        q.add_quadratic(0, 0, r(3, 2));
        assert_eq!(*q.linear(0), r(3, 2));
        assert_eq!(q.num_terms(), 1);
    }

    #[test]
    fn quadratic_cancellation() {
        let mut q = RationalQubo::new(2);
        q.add_quadratic(0, 1, r(1, 3));
        q.add_quadratic(1, 0, r(-1, 3));
        assert_eq!(q.num_terms(), 0);
    }

    #[test]
    fn lowering_matches() {
        let mut q = RationalQubo::new(3);
        q.add_linear(0, r(1, 2));
        q.add_quadratic(0, 2, r(-5, 4));
        q.add_offset(r(3, 1));
        let f = q.to_f64();
        for bits in 0..8u64 {
            assert_eq!(f.energy_bits(bits), q.energy_bits(bits).to_f64());
        }
    }

    #[test]
    fn min_over_ancillas() {
        // 2 real vars + 1 ancilla; E = x0 + 2·z − x0·z
        let mut q = RationalQubo::new(3);
        q.add_linear(0, r(1, 1));
        q.add_linear(2, r(2, 1));
        q.add_quadratic(0, 2, r(-1, 1));
        // x0 = 1: z=0 gives 1, z=1 gives 2  => min 1
        assert_eq!(q.min_over_ancillas(0b01, 2), r(1, 1));
        // x0 = 0: z=0 gives 0, z=1 gives 2  => min 0
        assert_eq!(q.min_over_ancillas(0b00, 2), r(0, 1));
    }
}
